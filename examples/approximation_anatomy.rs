//! Anatomy of the approximation algorithms — the dimension the paper
//! concludes matters most (§IV-G).
//!
//! For each dataset this prints how many piecewise-linear segments each
//! algorithm needs, the errors it achieves, and the two headline effects:
//! Opt-PLA's optimality over greedy FSW, and LSA-gap breaking the
//! error-vs-segments conflict by changing the stored distribution.
//!
//! Run with: `cargo run --release --example approximation_anatomy`

use lip::core::approx::lsa_gap::lsa_gap_quality;
use lip::core::approx::ApproxAlgorithm;
use lip::core::cdf::{cdf_complexity, segmentation_quality};
use lip::workloads::{generate_keys, Dataset};

fn main() {
    let n = 200_000;
    println!("datasets ({n} keys each) and their CDF complexity");
    println!("(Opt-PLA segments per million keys at eps=32 — higher = lumpier):\n");
    for d in Dataset::ALL {
        let keys = generate_keys(d, n, 7);
        println!("  {:<8} complexity {:>8.0}", d.name(), cdf_complexity(&keys, 32));
    }

    for d in [Dataset::YcsbNormal, Dataset::OsmLike] {
        let keys = generate_keys(d, n, 7);
        println!("\n=== {} ===", d.name());
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10}",
            "algorithm", "param", "segments", "avg err", "max err"
        );

        // Bounded-error algorithms: same ε, different segment counts —
        // Opt-PLA provably minimal.
        for eps in [16u64, 64, 256] {
            for algo in
                [ApproxAlgorithm::OptPla { epsilon: eps }, ApproxAlgorithm::Fsw { epsilon: eps }]
            {
                let segs = algo.segment(&keys);
                let q = segmentation_quality(&keys, segs.iter().map(|s| (s.start, s.len, s.model)));
                println!(
                    "{:<10} {:>10} {:>10} {:>10.1} {:>10.0}",
                    algo.name(),
                    format!("eps={eps}"),
                    q.segments,
                    q.avg_error,
                    q.max_error
                );
            }
        }
        // Unbounded algorithms at fixed segment sizes.
        for seg in [512usize, 4096] {
            let algo = ApproxAlgorithm::Lsa { seg_size: seg };
            let segs = algo.segment(&keys);
            let q = segmentation_quality(&keys, segs.iter().map(|s| (s.start, s.len, s.model)));
            println!(
                "{:<10} {:>10} {:>10} {:>10.1} {:>10.0}",
                "LSA", seg, q.segments, q.avg_error, q.max_error
            );
            let g = lsa_gap_quality(&keys, seg, 0.7);
            println!(
                "{:<10} {:>10} {:>10} {:>10.1} {:>10.0}",
                "LSA-gap", seg, g.segments, g.avg_error, g.max_error
            );
        }
    }

    println!(
        "\ntakeaways (matching §IV-A): Opt-PLA ≤ FSW in segments at equal ε \
         on both datasets; on YCSB, LSA-gap cuts LSA's error several-fold at \
         identical segment counts by *changing the layout* instead of \
         fitting harder. On the lumpy OSM CDF the per-segment gain narrows — \
         no single line fits a lump, which is exactly why ALEX sizes its \
         leaves by fit quality rather than by a fixed count."
    );
}
