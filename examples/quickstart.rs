//! Quickstart: build a learned index, query it, mutate it, and plug it
//! into the NVM-backed Viper store.
//!
//! Run with: `cargo run --release --example quickstart`

use lip::core::traits::{Index, OrderedIndex, UpdatableIndex};
use lip::viper::{StoreConfig, ViperStore};
use lip::{AnyIndex, IndexKind};

fn main() {
    // --- 1. A learned index over a sorted key/value array ----------------
    let data: Vec<(u64, u64)> = (0..100_000u64).map(|i| (i * 10, i)).collect();

    let mut alex = AnyIndex::build(IndexKind::Alex, &data);
    println!("built {} over {} keys", alex.name(), alex.len());
    println!("  index structure size: {} bytes", alex.index_size_bytes());
    println!("  avg depth {:.2}, leaves {}", alex.avg_depth().unwrap(), alex.leaf_count().unwrap());

    assert_eq!(alex.get(420), Some(42));
    assert_eq!(alex.get(421), None);

    // Updatable learned indexes take inserts directly.
    alex.insert(421, 9_999);
    assert_eq!(alex.get(421), Some(9_999));
    let neighbourhood = alex.range_vec(400, 440);
    println!("  range [400, 440]: {neighbourhood:?}");

    // --- 2. The same index inside the Viper-style NVM store --------------
    // Records (8-byte key + 200-byte value) live on simulated persistent
    // memory; the index lives in DRAM and maps keys to record offsets.
    let keys: Vec<u64> = data.iter().map(|kv| kv.0).collect();
    let config = StoreConfig::paper(keys.len());
    let mut store: ViperStore<lip::alex::Alex> =
        ViperStore::bulk_load(config, &keys, |key, buf| {
            buf.fill((key % 251) as u8);
        });
    println!("\nViper store loaded: {} records on simulated NVM", store.len());

    let mut value = vec![0u8; store.heap().layout().value_size];
    assert!(store.get(420, &mut value));
    println!("  get(420) -> first value byte {}", value[0]);

    store.put(421, &vec![7u8; value.len()]).unwrap();
    assert!(store.get(421, &mut value));
    store.delete(421).unwrap();
    assert!(!store.get(421, &mut value));

    let mut scanned = Vec::new();
    store.scan(100, 200, 100, &mut |k, _v| scanned.push(k));
    println!("  scan [100, 200]: {} records", scanned.len());

    let traffic = store.heap().device().stats().snapshot();
    println!(
        "  NVM traffic: {} reads / {} writes / {} flushes",
        traffic.reads, traffic.writes, traffic.flushes
    );
    println!("\nquickstart OK");
}
