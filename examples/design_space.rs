//! Exploring the paper's four design dimensions (§IV) with the pieces
//! framework: assemble "brand new" learned indexes by combining any
//! approximation algorithm × inner structure × insertion strategy ×
//! retraining policy, and measure what each choice costs.
//!
//! This runs a miniature version of the paper's §IV analysis, including
//! the combination §V speculates about (bounded-error segmentation + the
//! asymmetric tree + gapped leaves).
//!
//! Run with: `cargo run --release --example design_space`

use std::time::Instant;

use lip::core::approx::ApproxAlgorithm;
use lip::core::pieces::assembled::{PiecewiseConfig, PiecewiseIndex};
use lip::core::pieces::insertion::LeafKind;
use lip::core::pieces::retrain::RetrainPolicy;
use lip::core::pieces::structure::StructureKind;
use lip::core::traits::{DepthStats, Index, UpdatableIndex};
use lip::workloads::{generate_keys, Dataset};

fn main() {
    let n = 200_000;
    let keys = generate_keys(Dataset::OsmLike, n, 42);
    let data: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let (loaded, inserts): (Vec<_>, Vec<_>) = data.iter().partition(|kv| kv.1 % 5 != 0);

    println!("design-space sweep over {n} OSM-like keys (hard CDF)");
    println!(
        "{:<10} {:<7} {:<9} {:<10} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "algo", "inner", "leaf", "retrain", "leaves", "depth", "build_ms", "get_ns", "ins_ns"
    );

    let algos = [
        ApproxAlgorithm::Lsa { seg_size: 512 },
        ApproxAlgorithm::OptPla { epsilon: 32 },
        ApproxAlgorithm::Fsw { epsilon: 32 },
    ];
    let structures = StructureKind::ALL;
    let leaves = [
        LeafKind::Inplace { reserve: 64 },
        LeafKind::Buffer { reserve: 64 },
        LeafKind::Gapped { density: 0.7, max_density: 0.85 },
    ];
    let policies = [
        RetrainPolicy::ResegmentLeaf,
        RetrainPolicy::ExpandOrSplit { expand_factor: 1.5, split_error_threshold: 8.0 },
    ];

    let mut best: Option<(f64, String)> = None;
    for algo in algos {
        for structure in structures {
            // Keep the table readable: one leaf/policy pairing per row
            // family; the full cross product is exercised in the tests.
            for (leaf, policy) in leaves.iter().zip(policies.iter().cycle()) {
                let cfg = PiecewiseConfig { algo, structure, leaf: *leaf, policy: *policy };
                let t0 = Instant::now();
                let mut idx = PiecewiseIndex::build_with(cfg, &loaded);
                let build_ms = t0.elapsed().as_secs_f64() * 1e3;

                // Point-lookup cost.
                let t0 = Instant::now();
                let mut hits = 0u64;
                for kv in loaded.iter().step_by(7) {
                    hits += idx.get(kv.0).is_some() as u64;
                }
                let get_ns = t0.elapsed().as_nanos() as f64 / (loaded.len() / 7) as f64;
                assert_eq!(hits as usize, loaded.len().div_ceil(7));

                // Insert cost.
                let t0 = Instant::now();
                for kv in &inserts {
                    idx.insert(kv.0, kv.1);
                }
                let ins_ns = t0.elapsed().as_nanos() as f64 / inserts.len() as f64;

                println!(
                    "{:<10} {:<7} {:<9} {:<10} {:>7} {:>7.2} {:>9.1} {:>9.0} {:>9.0}",
                    algo.name(),
                    structure.name(),
                    leaf.name(),
                    policy.name(),
                    idx.leaf_count(),
                    idx.avg_depth(),
                    build_ms,
                    get_ns,
                    ins_ns
                );
                let score = get_ns + ins_ns;
                let label = format!(
                    "{} + {} + {} + {}",
                    algo.name(),
                    structure.name(),
                    leaf.name(),
                    policy.name()
                );
                if best.as_ref().is_none_or(|(s, _)| score < *s) {
                    best = Some((score, label));
                }
            }
        }
    }

    let (score, label) = best.unwrap();
    println!("\nbest combined get+insert cost: {label} ({score:.0} ns)");
    println!(
        "(§V predicts bounded-error or gap-based approximation with the \
         asymmetric tree should win on hard CDFs)"
    );
}
