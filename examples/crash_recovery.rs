//! Crash consistency and recovery on the simulated NVM device (the
//! paper's availability analysis, §III-E2 / Fig. 16).
//!
//! Loads a store, applies updates, pulls the (virtual) power plug, and
//! rebuilds the DRAM index from the surviving NVM pages — comparing the
//! recovery (index rebuild) time of a learned index vs a B+Tree.
//!
//! Run with: `cargo run --release --example crash_recovery`

use std::sync::Arc;
use std::time::Instant;

use lip::nvm::NvmConfig;
use lip::traditional::BPlusTree;
use lip::viper::{RecordLayout, StoreConfig, ViperStore};
use lip::workloads::{generate_keys, Dataset};

fn main() {
    let n = 200_000;
    let keys = generate_keys(Dataset::YcsbNormal, n, 7);
    let layout = RecordLayout::paper_default();
    let bytes = (n * 2 / layout.slots_per_page() + 16) * layout.page_size;
    let config = StoreConfig {
        layout,
        nvm: NvmConfig {
            capacity: bytes,
            latency: lip::nvm::LatencyModel::dram_like(),
            durability: lip::nvm::DurabilityTracking::Shadow,
        },
        crash_safe_updates: false,
        durability: None,
    };

    println!("loading {n} records into the store (crash tracking on)...");
    let mut store: ViperStore<lip::pgm::DynamicPgm> =
        ViperStore::bulk_load(config, &keys, |key, buf| buf.fill((key % 251) as u8));

    // Updates + deletes after the load.
    for &k in keys.iter().take(1_000) {
        store.put(k, &vec![0xAAu8; layout.value_size]).unwrap();
    }
    for &k in keys.iter().skip(1_000).take(500) {
        store.delete(k).unwrap();
    }
    let live_before = store.len();

    // A write that will be lost: put it, then tamper with the device
    // without flushing (simulating a torn, unpersisted write).
    println!("crashing the machine...");
    let dev = store.into_device();
    let mut dev = Arc::try_unwrap(dev).ok().expect("store dropped, device unique");
    dev.crash();
    let dev = Arc::new(dev);

    // Recovery = scan NVM pages + rebuild the DRAM index (Fig. 16's build
    // operation). Compare a learned index against the B+Tree.
    let t0 = Instant::now();
    let recovered: ViperStore<lip::pgm::DynamicPgm> = ViperStore::recover(Arc::clone(&dev), layout);
    let pgm_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(recovered.len(), live_before, "recovery lost records");

    let mut buf = vec![0u8; layout.value_size];
    assert!(recovered.get(keys[0], &mut buf));
    assert_eq!(buf[0], 0xAA, "updated value must survive the crash");
    assert!(!recovered.get(keys[1_200], &mut buf), "deleted record must stay deleted");

    // Same device, B+Tree index.
    let t0 = Instant::now();
    let recovered_bt: ViperStore<BPlusTree> = ViperStore::recover(dev, layout);
    let bt_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(recovered_bt.len(), live_before);

    println!("recovered {live_before} records");
    println!("  PGM   index rebuild: {pgm_ms:>8.1} ms");
    println!("  BTree index rebuild: {bt_ms:>8.1} ms");
    println!(
        "(the paper finds learned-index recovery slower than traditional \
         indexes at scale — §VII (ii))"
    );
}
