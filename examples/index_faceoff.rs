//! Miniature end-to-end face-off: every index in the paper's lineup
//! serving a YCSB-style workload inside the NVM-backed store — a quick
//! taste of Figs. 10/13/15 (the real harness lives in `crates/bench`).
//!
//! Run with: `cargo run --release --example index_faceoff [n_keys]`

use std::time::Instant;

use lip::core::traits::Index;
use lip::viper::{StoreConfig, ViperStore};
use lip::workloads::{generate_keys, generate_ops, split_load_insert, Dataset, Op, WorkloadSpec};
use lip::{AnyIndex, IndexKind};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let keys = generate_keys(Dataset::YcsbNormal, n, 1);
    let (loaded, pool) = split_load_insert(&keys, 0.2);
    let ops_read = generate_ops(&WorkloadSpec::read_only_uniform(), &loaded, &[], n / 2, 2);
    let ops_mixed = generate_ops(&WorkloadSpec::ycsb_a(), &loaded, &pool, n / 2, 3);

    println!("end-to-end face-off: {n} YCSB keys, 200-byte values on simulated NVM\n");
    println!(
        "{:<16} {:>12} {:>12} {:>14}",
        "index", "read Mops/s", "mixed Mops/s", "index size KiB"
    );

    for kind in IndexKind::ALL {
        let config = StoreConfig::paper(keys.len());
        let mut store = ViperStore::bulk_load_with(config, &loaded, value_of, |pairs| {
            AnyIndex::build(kind, pairs)
        });
        let vs = store.heap().layout().value_size;
        let mut buf = vec![0u8; vs];

        // Read-only phase.
        let t0 = Instant::now();
        let mut hits = 0u64;
        for op in &ops_read {
            if let Op::Read(k) = op {
                hits += store.get(*k, &mut buf) as u64;
            }
        }
        let read_mops = ops_read.len() as f64 / t0.elapsed().as_secs_f64() / 1e6;
        assert_eq!(hits as usize, ops_read.len(), "{}", kind.name());

        // Mixed phase (updates + reads), only for updatable indexes.
        let mixed_mops = if kind.supports_insert() {
            let mut val = vec![0u8; vs];
            let t0 = Instant::now();
            for op in &ops_mixed {
                match op {
                    Op::Read(k) => {
                        store.get(*k, &mut buf);
                    }
                    Op::Insert(k, v) | Op::Update(k, v) | Op::ReadModifyWrite(k, v) => {
                        if matches!(op, Op::ReadModifyWrite(..)) {
                            store.get(*k, &mut buf);
                        }
                        val.fill(*v as u8);
                        store.put(*k, &val).unwrap();
                    }
                    Op::Scan(k, len) => {
                        store.scan(*k, u64::MAX, *len, &mut |_, _| {});
                    }
                }
            }
            Some(ops_mixed.len() as f64 / t0.elapsed().as_secs_f64() / 1e6)
        } else {
            None
        };

        println!(
            "{:<16} {:>12.3} {:>12} {:>14.1}",
            kind.name(),
            read_mops,
            mixed_mops.map_or("  (read-only)".into(), |m| format!("{m:.3}")),
            store.index().index_size_bytes() as f64 / 1024.0
        );
    }
    println!(
        "\n(the paper's headline: learned indexes beat the traditional \
         sorted indexes on reads, and ALEX stays ahead under writes)"
    );
}

fn value_of(key: u64, buf: &mut [u8]) {
    buf.fill((key % 251) as u8);
}
