//! Bounded model checks of the workspace's high-risk concurrency
//! protocols (built only under `RUSTFLAGS="--cfg loom"`).
//!
//! Each test wraps *production* code — the types under test take their
//! atomics and locks from `li-sync`, which resolves to the vendored
//! loom's instrumented types here — in `loom::model`, which explores
//! every thread interleaving of the closure up to a preemption bound
//! (CHESS-style; default 2). An assertion that fails in *any* explored
//! schedule fails the test and prints the decision path.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test --release --test loom_models
//! ```

#![cfg(loom)]

use li_sync::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use li_sync::sync::Arc;

/// Model 1 — XIndex group retire vs. concurrent get/insert.
///
/// A writer inserts enough keys to overflow a group buffer (compaction)
/// and cross the split threshold (retire + fresh snapshot under the
/// structure lock), while a reader does point lookups. In every
/// schedule: bulk-loaded keys stay visible through the retire, and at
/// quiescence the `len` counter agrees with the keys actually stored.
#[test]
fn xindex_retire_vs_get_insert() {
    use li_core::traits::ConcurrentIndex;
    use li_xindex::{XIndex, XIndexConfig};

    loom::model(|| {
        let cfg = XIndexConfig { group_size: 2, buffer_size: 2, max_group_size: 3 };
        let data: Vec<(u64, u64)> = vec![(10, 1), (20, 2), (30, 3), (40, 4)];
        let idx = Arc::new(XIndex::build_with(cfg, &data));

        let writer = {
            let idx = Arc::clone(&idx);
            loom::thread::spawn(move || {
                // Two inserts into the first group: fills its buffer,
                // forcing a compact; the grown run crosses
                // max_group_size, forcing a retire + split.
                idx.insert(12, 100);
                idx.insert(14, 101);
            })
        };
        let reader = {
            let idx = Arc::clone(&idx);
            loom::thread::spawn(move || {
                // A bulk-loaded key must never disappear, retired group
                // or not (the retry loop re-routes via the new snapshot).
                assert_eq!(idx.get(10), Some(1), "bulk key lost during retire");
                assert_eq!(idx.get(40), Some(4));
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();

        // Quiescent state: everything present, len agrees with contents.
        for (k, v) in [(10, 1), (20, 2), (30, 3), (40, 4), (12, 100), (14, 101)] {
            assert_eq!(idx.get(k), Some(v), "key {k} lost at quiescence");
        }
        assert_eq!(idx.len(), 6, "len counter disagrees with contents at quiescence");
    });
}

/// Model 2 — telemetry histogram record vs. snapshot.
///
/// Two recorders race a snapshotter. Mid-flight snapshots must be
/// *coherent* (never more observations than records issued, sum bounded
/// by the values in flight); the quiescent snapshot must be exact.
#[test]
fn histogram_record_vs_snapshot() {
    use li_telemetry::AtomicHistogram;

    loom::model(|| {
        let h = Arc::new(AtomicHistogram::new());
        let a = {
            let h = Arc::clone(&h);
            loom::thread::spawn(move || h.record(1))
        };
        let b = {
            let h = Arc::clone(&h);
            loom::thread::spawn(move || h.record(3))
        };

        // Concurrent snapshot: bucket-derived count and sum may lag but
        // never overshoot what has been recorded.
        let s = h.snapshot();
        assert!(s.count <= 2, "snapshot count {} overshoots records issued", s.count);
        assert!(s.sum <= 4, "snapshot sum {} overshoots recorded values", s.sum);

        a.join().unwrap();
        b.join().unwrap();
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 4);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
    });
}

/// Model 3 — `NvmStats` snapshot frontier (the lone Acquire fence).
///
/// The device increments `writes` *before* `bytes_written` for each op;
/// the snapshot's acquire fence plus that program order means a reader
/// may see the byte count lag, but never lead, the op count.
#[test]
fn nvm_stats_snapshot_frontier() {
    use li_nvm::NvmStats;

    loom::model(|| {
        let stats = Arc::new(NvmStats::default());
        let writer = {
            let stats = Arc::clone(&stats);
            loom::thread::spawn(move || {
                for _ in 0..2 {
                    stats.writes.fetch_add(1, Ordering::Relaxed);
                    stats.bytes_written.fetch_add(8, Ordering::Relaxed);
                }
            })
        };
        let snap = stats.snapshot();
        assert!(
            snap.bytes_written <= 8 * snap.writes,
            "bytes_written {} leads writes {} — snapshot frontier violated",
            snap.bytes_written,
            snap.writes
        );
        writer.join().unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.bytes_written, 16);
    });
}

/// Model 4 — circuit breaker open/close vs. put shedding.
///
/// A maintenance thread feeds overload observations while a put thread
/// consults `is_open`. Transitions must be exact (one open, one close)
/// and the put thread must observe a boolean, never a torn/stuck state.
#[test]
fn breaker_open_close_vs_shedding() {
    use li_core::telemetry::Recorder;
    use li_viper::{BreakerConfig, CircuitBreaker};

    loom::model(|| {
        let cfg =
            BreakerConfig { depth_open: 2, depth_close: 0, sustain_ticks: 1, p999_open_ns: 0 };
        let breaker = Arc::new(CircuitBreaker::new(cfg, Recorder::disabled()));
        let shed = Arc::new(AtomicUsize::new(0));

        let maintenance = {
            let breaker = Arc::clone(&breaker);
            loom::thread::spawn(move || {
                let opened = breaker.observe(2, 0);
                assert!(opened, "sustained overload must open the breaker");
                let still_open = breaker.observe(0, 0);
                assert!(!still_open, "drained queue must close the breaker");
            })
        };
        let putter = {
            let breaker = Arc::clone(&breaker);
            let shed = Arc::clone(&shed);
            loom::thread::spawn(move || {
                if breaker.is_open() {
                    shed.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        maintenance.join().unwrap();
        putter.join().unwrap();

        assert_eq!(breaker.times_opened(), 1);
        assert_eq!(breaker.times_closed(), 1);
        assert!(!breaker.is_open(), "breaker must end closed");
        assert!(shed.load(Ordering::Relaxed) <= 1);
    });
}

/// Model 5 — admission gate never over-admits.
///
/// Two writers contend on a single lane with `limit = 1`; an occupancy
/// counter checked inside the critical region proves mutual exclusion in
/// every schedule, and the lane must drain to zero at quiescence.
#[test]
fn admission_gate_never_over_admits() {
    use li_core::Admission;

    loom::model(|| {
        let gate = Arc::new(Admission::new(1, 1));
        let inside = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let inside = Arc::clone(&inside);
                loom::thread::spawn(move || {
                    // Bounded retry instead of the timed `enter` (model
                    // time is fake); the yield deprioritizes the loser.
                    loop {
                        if let Some(_g) = gate.try_enter(0) {
                            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                            assert!(now <= 1, "{now} callers inside a limit-1 lane");
                            inside.fetch_sub(1, Ordering::SeqCst);
                            break;
                        }
                        loom::thread::yield_now();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(gate.in_flight(0), 0, "lane must drain at quiescence");
    });
}

/// Model 6 — maintenance shutdown handshake (in miniature).
///
/// The worker loop's shape from `viper::maintenance`: check the stop
/// flag with `Acquire`, do a tick, yield (standing in for
/// `sleep_interruptible`'s chunked sleep). The coordinator publishes
/// work with `Release` before raising the flag; the worker must
/// terminate in every schedule and must have observed the final
/// published value once it does.
#[test]
fn maintenance_shutdown_handshake() {
    loom::model(|| {
        let stop = Arc::new(AtomicBool::new(false));
        let published = Arc::new(AtomicUsize::new(0));

        let worker = {
            let stop = Arc::clone(&stop);
            let published = Arc::clone(&published);
            loom::thread::spawn(move || {
                let mut ticks = 0usize;
                while !stop.load(Ordering::Acquire) {
                    ticks += 1;
                    loom::thread::yield_now();
                }
                // stop was stored Release after the publish, so the
                // Acquire load that broke the loop ordered it visible.
                (ticks, published.load(Ordering::Relaxed))
            })
        };

        published.store(42, Ordering::Relaxed);
        stop.store(true, Ordering::Release);
        let (_ticks, seen) = worker.join().unwrap();
        assert_eq!(seen, 42, "worker exited without seeing the published value");
    });
}

/// Model 7 — boundary-table cutover vs. a descending reader and a
/// routed writer.
///
/// An adaptive `Sharded` hot-swaps shard 0's kind (open side log →
/// snapshot → rebuild → commit under table write + cell write) while a
/// writer routes an insert into the same shard and a reader descends
/// through the boundary table into both shards. The protocol's claims,
/// checked in every schedule:
///
/// * the reader never sees a torn `(boundary, cell)` pair — lookups hit
///   either the old or the new cell, both of which answer correctly;
/// * the racing write is never lost: it lands in the new cell via
///   direct insert (before the side log opens), side-log replay
///   (during the build window), or routed insert (after the cutover);
/// * the swap itself commits — contention delays it but cannot fail it.
#[test]
fn shard_cutover_vs_reader_and_writer() {
    use std::collections::BTreeMap;

    use li_core::traits::{ConcurrentIndex, Index, OrderedIndex, UpdatableIndex};
    use li_core::types::{Key, KeyValue, Value};
    use li_core::{AdaptiveConfig, KindSpec, Sharded};

    /// Minimal shard payload: the router's cutover protocol is under
    /// test, not the learned index inside the cell.
    struct MiniMap(BTreeMap<Key, Value>);

    impl MiniMap {
        fn build(data: &[KeyValue]) -> Self {
            MiniMap(data.iter().copied().collect())
        }
    }

    impl Index for MiniMap {
        fn name(&self) -> &'static str {
            "mini"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.0.get(&key).copied()
        }
        fn index_size_bytes(&self) -> usize {
            0
        }
        fn data_size_bytes(&self) -> usize {
            self.0.len() * 16
        }
    }

    impl UpdatableIndex for MiniMap {
        fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
            self.0.insert(key, value)
        }
        fn remove(&mut self, key: Key) -> Option<Value> {
            self.0.remove(&key)
        }
    }

    impl OrderedIndex for MiniMap {
        fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
            out.extend(self.0.range(lo..=hi).map(|(&k, &v)| (k, v)));
        }
    }

    loom::model(|| {
        let kinds = vec![
            KindSpec::new("a", |chunk| Box::new(MiniMap::build(chunk)) as _),
            KindSpec::new("b", |chunk| Box::new(MiniMap::build(chunk)) as _),
        ];
        let data: Vec<KeyValue> = vec![(10, 1), (20, 2), (30, 3), (40, 4)];
        let idx = Arc::new(Sharded::build_adaptive(2, &data, AdaptiveConfig::new(kinds, 0)));

        let swapper = {
            let idx = Arc::clone(&idx);
            loom::thread::spawn(move || {
                idx.force_swap(0, 1).expect("uncontested swap must commit");
            })
        };
        let writer = {
            let idx = Arc::clone(&idx);
            loom::thread::spawn(move || {
                // Routes into shard 0 — the one being swapped. Whatever
                // the interleaving, it must survive the cutover.
                assert_eq!(
                    ConcurrentIndex::insert(&*idx, 12, 100),
                    None,
                    "insert of a fresh key saw a ghost"
                );
            })
        };
        // Reader (this thread) descends mid-swap: table read lock →
        // boundary → cell. Both shards must answer from a coherent pair.
        assert_eq!(ConcurrentIndex::get(&*idx, 10), Some(1), "bulk key lost in the swapped shard");
        assert_eq!(
            ConcurrentIndex::get(&*idx, 30),
            Some(3),
            "untouched shard disturbed by the swap"
        );

        swapper.join().unwrap();
        writer.join().unwrap();

        // Quiescence: the swap took, the racing write was kept, and the
        // ordered face agrees with the routed one.
        assert_eq!(idx.shard_kinds()[0], 1, "shard 0 still its old kind after the swap");
        for (k, v) in [(10, 1), (12, 100), (20, 2), (30, 3), (40, 4)] {
            assert_eq!(ConcurrentIndex::get(&*idx, k), Some(v), "key {k} lost across the cutover");
        }
        assert_eq!(ConcurrentIndex::len(&*idx), 5, "len disagrees with contents after the cutover");
        let all = idx.range_vec(0, Key::MAX);
        assert_eq!(
            all,
            vec![(10, 1), (12, 100), (20, 2), (30, 3), (40, 4)],
            "ordered scan tore across the cutover"
        );
    });
}
