//! Randomized crash-torture of the Viper recovery path (ISSUE tentpole):
//! ≥100 seeded crash schedules across ≥3 index backends, each checked
//! against an in-DRAM oracle, plus a directed demonstration that the
//! per-record CRC is load-bearing (disabling quarantine surfaces a record
//! the workload never wrote).
//!
//! Larger sweeps: `cargo run --release -p li-bench --bin torture -- --seeds 1000`.

use std::sync::Arc;

use lip::nvm::{Fault, FaultPlan, NvmConfig, NvmDevice};
use lip::torture::{torture_run, TortureConfig};
use lip::viper::{RecordHeap, RecordLayout, RecoverOptions};
use lip::IndexKind;

/// 120 seeded schedules (40 per backend) with crash-safe updates: every
/// run must satisfy the oracle, and the sweep as a whole must actually
/// have exercised the fault machinery.
#[test]
fn hundred_plus_seeds_across_three_backends() {
    let kinds = [IndexKind::BTree, IndexKind::Pgm, IndexKind::Alex];
    let mut crashes = 0u64;
    let mut faults_total = 0u64;
    let mut quarantined = 0usize;
    let mut failures = Vec::new();
    for &kind in &kinds {
        let cfg = TortureConfig::quick(kind);
        for seed in 0..40u64 {
            let out = torture_run(seed, &cfg);
            crashes += out.faults.crash_triggers;
            faults_total += out.faults.torn_writes
                + out.faults.dropped_flushes
                + out.faults.failed_writes
                + out.faults.full_rejections;
            quarantined += out.report.quarantined;
            if !out.passed() {
                failures.push(format!(
                    "kind={} seed={}: {:?}",
                    kind.name(),
                    out.seed,
                    out.divergences
                ));
            }
        }
    }
    assert!(failures.is_empty(), "oracle divergences:\n{}", failures.join("\n"));
    // The sweep is only meaningful if faults really fired.
    assert!(crashes > 60, "only {crashes} crash points fired across 120 runs");
    assert!(faults_total > 0, "no byzantine faults were injected in 120 runs");
    // Not asserted: quarantines are legal but depend on schedule timing.
    let _ = quarantined;
}

/// The same crash schedules must hold when the store under torture is the
/// shared-writer flavour over a range-sharded index — the publish path the
/// multi-threaded figures run through.
#[test]
fn sharded_store_survives_torture() {
    let kinds = [IndexKind::BTree, IndexKind::Pgm, IndexKind::Alex];
    let mut crashes = 0u64;
    let mut failures = Vec::new();
    for &kind in &kinds {
        let cfg = TortureConfig::quick_sharded(kind);
        for seed in 200..220u64 {
            let out = torture_run(seed, &cfg);
            crashes += out.faults.crash_triggers;
            if !out.passed() {
                failures.push(format!(
                    "kind={} seed={}: {:?}",
                    kind.name(),
                    out.seed,
                    out.divergences
                ));
            }
        }
    }
    assert!(failures.is_empty(), "oracle divergences:\n{}", failures.join("\n"));
    assert!(crashes > 30, "only {crashes} crash points fired across 60 sharded runs");
}

/// In-place updates are the paper's (and real Viper's) fast path; the
/// oracle must hold for them too — a torn in-place update may cost that
/// one record (quarantine) but can never surface a torn value.
#[test]
fn in_place_update_mode_survives_torture() {
    let mut cfg = TortureConfig::quick(IndexKind::BTree);
    cfg.crash_safe_updates = false;
    for seed in 100..130u64 {
        let out = torture_run(seed, &cfg);
        assert!(out.passed(), "seed {}: {:?}", out.seed, out.divergences);
    }
}

/// Acceptance demo: a dropped payload flush behind a successful publish
/// creates a durably LIVE slot whose bytes never hit the device. With
/// checksum verification the record is quarantined; with verification
/// disabled (the pre-hardening recovery) a record the workload never
/// wrote surfaces. This is the failure the CRC exists to stop.
#[test]
fn dropped_flush_corruption_caught_only_by_checksum() {
    let layout = RecordLayout::small();
    // Op schedule of the first append on a fresh heap:
    //   0: page-header write   1: header flush   2: header fence
    //   3: payload write       4: payload flush  5: fence
    //   6: state write (LIVE)  7: state flush    8: fence
    // Dropping op 4 acks the payload flush without capturing it.
    let plan = FaultPlan { seed: 0, faults: vec![Fault::DroppedFlush { op: 4 }] };
    let dev =
        Arc::new(NvmDevice::with_faults(NvmConfig::fast_with_crash(16 * layout.page_size), &plan));
    let heap = RecordHeap::new(Arc::clone(&dev), layout);
    let mut value = vec![0u8; layout.value_size];
    lip::torture::value_pattern(42, 1, &mut value);
    heap.append(42, &value).expect("append acked");
    assert_eq!(dev.fault_counters().dropped_flushes, 1, "fault must have fired");
    drop(heap);

    // Power loss: only durably captured bytes survive.
    let mut dev = Arc::try_unwrap(dev).ok().expect("unique");
    dev.crash();
    let dev = Arc::new(dev);

    // Hardened recovery: the lying flush is caught and quarantined.
    let (_, live, report) =
        RecordHeap::recover_with_report(Arc::clone(&dev), layout, RecoverOptions::default());
    assert_eq!(report.quarantined, 1, "corrupt slot must be quarantined");
    assert!(live.is_empty(), "no record may surface: {live:?}");

    // Pre-hardening recovery (verification off): the slot's state byte
    // says LIVE, so a never-written record surfaces — the harness fails
    // if quarantine is disabled.
    let (heap, live, report) = RecordHeap::recover_with_report(
        dev,
        layout,
        RecoverOptions { verify_checksums: false, ..RecoverOptions::default() },
    );
    assert_eq!(report.quarantined, 0);
    assert_eq!(live.len(), 1, "unverified recovery trusts the corrupt slot");
    let (bogus_key, bogus_off) = live[0];
    let mut buf = vec![0u8; layout.value_size];
    heap.read(bogus_off, &mut buf);
    let surfaced_written_bytes = bogus_key == 42 && buf == value;
    assert!(!surfaced_written_bytes, "the dropped flush means the written bytes cannot be durable");
    assert_eq!(
        lip::torture::decode_version(bogus_key, &buf),
        None,
        "unverified recovery surfaced bytes that decode as a real write"
    );
}

/// A dropped *page-header* flush must not cost the page: recovery used to
/// stop at the first page without a valid magic, silently discarding every
/// record in it (found by the torture sweep at seed 97 — a single lying
/// flush at device op 1 lost 118 acked keys). Recovery now salvages
/// allocated pages from slot evidence and re-stamps the header.
#[test]
fn dropped_header_flush_does_not_lose_the_page() {
    let layout = RecordLayout::small();
    // Op 1 is the header flush of the first page (0: header write,
    // 1: header flush, 2: header fence).
    let plan = FaultPlan { seed: 0, faults: vec![Fault::DroppedFlush { op: 1 }] };
    let dev =
        Arc::new(NvmDevice::with_faults(NvmConfig::fast_with_crash(16 * layout.page_size), &plan));
    let heap = RecordHeap::new(Arc::clone(&dev), layout);
    let mut value = vec![0u8; layout.value_size];
    for key in 0..10u64 {
        lip::torture::value_pattern(key, 1, &mut value);
        heap.append(key, &value).expect("append acked");
    }
    assert_eq!(dev.fault_counters().dropped_flushes, 1);
    drop(heap);
    let mut dev = Arc::try_unwrap(dev).ok().expect("unique");
    dev.crash();

    let (heap, live, report) =
        RecordHeap::recover_with_report(Arc::new(dev), layout, RecoverOptions::default());
    assert_eq!(report.pages_healed, 1, "the magic-less page must be salvaged");
    assert_eq!(live.len(), 10, "all published records must survive: {report:?}");
    for &(key, off) in &live {
        let mut buf = vec![0u8; layout.value_size];
        heap.read(off, &mut buf);
        assert_eq!(lip::torture::decode_version(key, &buf), Some(1), "key {key}");
    }

    // The re-stamped header is durable: a second crash recovers the same
    // state without needing to salvage again.
    let mut dev = Arc::try_unwrap(heap.into_device()).ok().expect("unique");
    dev.crash();
    let (_, live2, report2) =
        RecordHeap::recover_with_report(Arc::new(dev), layout, RecoverOptions::default());
    assert_eq!(report2.pages_healed, 0, "header healing must itself be durable");
    assert_eq!(live2.len(), 10);
}

/// The whole sweep is replayable: the same seed yields the same outcome,
/// fault counts included.
#[test]
fn torture_runs_are_deterministic() {
    let cfg = TortureConfig::quick(IndexKind::Pgm);
    for seed in [1u64, 17, 23] {
        let a = torture_run(seed, &cfg);
        let b = torture_run(seed, &cfg);
        assert_eq!(a.ops_acked, b.ops_acked, "seed {seed}");
        assert_eq!(a.faults, b.faults, "seed {seed}");
        assert_eq!(a.report, b.report, "seed {seed}");
        assert_eq!(a.divergences, b.divergences, "seed {seed}");
    }
}

/// Durable twin of the main sweep: 120 seeded schedules (40 per backend)
/// against the WAL + checkpoint store. Crash points now also land inside
/// WAL appends, group-commit flushes and mid-run checkpoint writes, and
/// the recovery under test is checkpoint + log replay rather than a page
/// rescan — the oracle (zero lost acked writes beyond the lying-fault
/// budget) must hold regardless.
#[test]
fn durable_stores_survive_torture() {
    let kinds = [IndexKind::BTree, IndexKind::Pgm, IndexKind::Alex];
    let mut crashes = 0u64;
    let mut from_checkpoint = 0usize;
    let mut failures = Vec::new();
    for &kind in &kinds {
        let cfg = TortureConfig::quick_durable(kind);
        for seed in 0..40u64 {
            let out = torture_run(seed, &cfg);
            crashes += out.faults.crash_triggers;
            from_checkpoint += out.report.from_checkpoint as usize;
            if !out.passed() {
                failures.push(format!(
                    "kind={} seed={}: {:?}",
                    kind.name(),
                    out.seed,
                    out.divergences
                ));
            }
        }
    }
    assert!(failures.is_empty(), "oracle divergences:\n{}", failures.join("\n"));
    assert!(crashes > 60, "only {crashes} crash points fired across 120 durable runs");
    // The fast path must actually be the common case, not a lucky fallback.
    assert!(from_checkpoint > 90, "only {from_checkpoint}/120 runs recovered from a checkpoint");
}

/// Shared-writer durable stores under the same schedules.
#[test]
fn sharded_durable_store_survives_torture() {
    let cfg = TortureConfig::quick_durable_sharded(IndexKind::BTree);
    for seed in 300..320u64 {
        let out = torture_run(seed, &cfg);
        assert!(out.passed(), "seed {}: {:?}", out.seed, out.divergences);
    }
}

/// Exhaustive directed crash points for the durability tentpole: a
/// rehearsal run (no faults) measures the device-op windows of one WAL
/// append + group-commit flush, one explicit checkpoint write, and the
/// post-checkpoint log tail; the script is then replayed once per device
/// op in those windows with a crash pinned to exactly that op. Every
/// replay must recover all acked writes byte-exactly (crash-only plans
/// have a zero lying-fault budget) and the in-flight op must be
/// either-or.
#[test]
fn every_crash_point_in_wal_append_group_commit_and_checkpoint_recovers() {
    use lip::core::traits::BulkBuildIndex;
    use lip::nvm::NvmError;
    use lip::torture::{decode_version, value_pattern};
    use lip::traditional::BPlusTree;
    use lip::viper::{DurabilityConfig, ViperError, ViperStore};
    use std::collections::BTreeMap;

    let layout = RecordLayout::small();
    let durability = DurabilityConfig::sized_for(256, 64);
    let capacity = 32 * layout.page_size
        + durability.region_bytes().div_ceil(layout.page_size) * layout.page_size
        + layout.page_size;
    let opts = RecoverOptions { durability: Some(durability), ..RecoverOptions::default() };

    // Runs the deterministic script against `plan`; returns the acked
    // (key -> version) map, the op the script crashed on (if any), the
    // in-flight key, and window marks (taken with `FaultPlan::none`).
    struct Run {
        acked: BTreeMap<u64, u64>,
        in_flight: Option<u64>,
        dev: Arc<NvmDevice>,
        marks: [u64; 2],
    }
    let script = |plan: &FaultPlan| -> Run {
        let dev = Arc::new(NvmDevice::with_faults(NvmConfig::fast_with_crash(capacity), plan));
        let (mut store, _) = ViperStore::<BPlusTree>::recover_with_options(
            Arc::clone(&dev),
            layout,
            opts,
            BPlusTree::build,
        );
        let ops = |d: &NvmDevice| d.fault_injector().expect("injected device").ops();
        let mut acked = BTreeMap::new();
        let mut in_flight = None;
        let mut value = vec![0u8; layout.value_size];
        let mut marks = [0u64; 2];
        // Setup writes, then the probe put (WAL append + group commit),
        // then a checkpoint, then a replayed tail — all distinct keys.
        let phases: [&[u64]; 3] = [&[1, 2, 3, 4, 5, 6, 7, 8], &[100], &[200, 201, 202]];
        'outer: for (i, keys) in phases.iter().enumerate() {
            if i == 1 {
                marks[0] = ops(&dev);
            }
            for &key in *keys {
                value_pattern(key, key + 1, &mut value);
                match store.put(key, &value) {
                    Ok(()) => {
                        acked.insert(key, key + 1);
                    }
                    Err(ViperError::Nvm(NvmError::Crashed)) => {
                        in_flight = Some(key);
                        break 'outer;
                    }
                    Err(e) => panic!("unexpected error on key {key}: {e}"),
                }
            }
            if i == 1 {
                // The explicit checkpoint sits between probe and tail so
                // the sweep crosses blob + manifest writes too.
                match store.checkpoint_now() {
                    Ok(_) => {}
                    Err(ViperError::Nvm(NvmError::Crashed)) => break 'outer,
                    Err(e) => panic!("unexpected checkpoint error: {e}"),
                }
            }
        }
        marks[1] = ops(&dev);
        drop(store);
        Run { acked, in_flight, dev, marks }
    };

    let rehearsal = script(&FaultPlan::none());
    assert!(rehearsal.in_flight.is_none(), "rehearsal must not crash");
    assert_eq!(rehearsal.acked.len(), 12);
    let [probe_start, end] = rehearsal.marks;
    assert!(end > probe_start + 8, "window too small to be the real append+checkpoint path");

    let mut value = vec![0u8; layout.value_size];
    for op in probe_start..end {
        let run = script(&FaultPlan::crash_at(op));
        let mut dev = Arc::try_unwrap(run.dev).ok().expect("script dropped its store");
        dev.crash();
        let (store, report) = ViperStore::<BPlusTree>::recover_with_options(
            Arc::new(dev),
            layout,
            opts,
            BPlusTree::build,
        );
        assert!(report.from_checkpoint, "op {op}: durable recovery must use the checkpoint");
        for (&key, &version) in &run.acked {
            assert!(store.get(key, &mut value), "op {op}: acked key {key} lost");
            assert_eq!(
                decode_version(key, &value),
                Some(version),
                "op {op}: acked key {key} came back wrong"
            );
        }
        // The in-flight op is either-or: absent, or complete and correct.
        let mut expected = run.acked.len();
        if let Some(key) = run.in_flight {
            if store.get(key, &mut value) {
                assert_eq!(
                    decode_version(key, &value),
                    Some(key + 1),
                    "op {op}: in-flight key {key} surfaced torn"
                );
                expected += 1;
            }
        }
        assert_eq!(store.len(), expected, "op {op}: phantom records surfaced");
    }
}
