//! Integration: the multi-threaded setups of Figs. 12 and 14 — concurrent
//! reads through a shared store, and concurrent writes through the
//! write-capable indexes.

use std::sync::Arc;

use lip::core::traits::ConcurrentIndex;
use lip::viper::{ConcurrentViperStore, StoreConfig, ViperStore};
use lip::workloads::{generate_keys, Dataset};
use lip::{AnyConcurrentIndex, AnyIndex, ConcurrentKind, IndexKind};

fn value_of(key: u64, buf: &mut [u8]) {
    buf.fill((key % 251) as u8);
}

#[test]
fn concurrent_reads_every_index() {
    let keys = generate_keys(Dataset::YcsbNormal, 20_000, 21);
    for kind in IndexKind::ALL {
        let config = StoreConfig::test(keys.len());
        let store = Arc::new(ViperStore::bulk_load_with(config, &keys, value_of, |pairs| {
            AnyIndex::build(kind, pairs)
        }));
        let vs = store.heap().layout().value_size;
        let mut handles = Vec::new();
        for t in 0..8usize {
            let store = Arc::clone(&store);
            let keys = keys.clone();
            handles.push(li_sync::thread::spawn(move || {
                let mut buf = vec![0u8; vs];
                let mut expect = vec![0u8; vs];
                for &k in keys.iter().skip(t).step_by(17) {
                    assert!(store.get(k, &mut buf), "lost {k}");
                    value_of(k, &mut expect);
                    assert_eq!(buf, expect);
                }
            }));
        }
        for h in handles {
            h.join().unwrap_or_else(|_| panic!("{}", kind.name()));
        }
    }
}

#[test]
fn concurrent_writes_every_concurrent_kind() {
    // Every updatable index — native (XIndex) or lifted by range sharding —
    // serves concurrent writers through the one shared-writer store.
    let initial: Vec<u64> = (0..8_000u64).map(|i| i * 97 + 5).collect();
    for kind in ConcurrentKind::all() {
        let config = StoreConfig::test(initial.len() + 40_000);
        let store =
            Arc::new(ConcurrentViperStore::bulk_load_shared(config, &initial, value_of, |pairs| {
                AnyConcurrentIndex::build(kind, pairs)
            }));
        let vs = store.heap().layout().value_size;

        // Phase 1: concurrent inserts of disjoint fresh keys, interleaved
        // across the key domain so all shards take writes.
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let store = Arc::clone(&store);
            handles.push(li_sync::thread::spawn(move || {
                let mut val = vec![0u8; vs];
                for i in 0..2_000u64 {
                    let k = (i * 8 + t) * 97 + 6;
                    value_of(k, &mut val);
                    store.put(k, &val).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap_or_else(|_| panic!("{}", kind.name()));
        }
        assert_eq!(store.len(), 24_000, "{}", kind.name());

        // Phase 2: mixed readers + writers on overlapping ranges.
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            let initial = initial.clone();
            handles.push(li_sync::thread::spawn(move || {
                let mut buf = vec![0u8; vs];
                for &k in initial.iter().skip(t as usize).step_by(7) {
                    assert!(store.get(k, &mut buf), "reader {t}: lost {k}");
                }
            }));
        }
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(li_sync::thread::spawn(move || {
                let val = vec![t as u8 + 1; vs];
                for i in 0..1_000u64 {
                    let k = (i * 8 + t) * 97 + 6;
                    store.put(k, &val).unwrap(); // in-place updates
                }
            }));
        }
        for h in handles {
            h.join().unwrap_or_else(|_| panic!("{}", kind.name()));
        }
        assert_eq!(store.len(), 24_000, "{}", kind.name());

        // Updated values must be untorn: all bytes identical.
        let mut buf = vec![0u8; vs];
        for t in 0..4u64 {
            let k = t * 97 + 6;
            assert!(store.get(k, &mut buf));
            assert!(buf.iter().all(|&b| b == buf[0]), "{}: torn value", kind.name());
        }
    }
}

#[test]
fn xindex_splits_under_concurrent_load() {
    // Hammer a narrow region so groups compact and split while readers
    // verify nothing is lost.
    let loaded: Vec<(u64, u64)> = (0..2_000u64).map(|i| (i * 1_000, i)).collect();
    let x = Arc::new(lip::xindex::XIndex::build_with(
        lip::xindex::XIndexConfig { group_size: 128, buffer_size: 16, max_group_size: 256 },
        &loaded,
    ));
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let x = Arc::clone(&x);
        handles.push(li_sync::thread::spawn(move || {
            for i in 0..8_000u64 {
                let k = (i * 37 + t) % 2_000_000;
                ConcurrentIndex::insert(&*x, k, t * 1_000_000 + i);
            }
        }));
    }
    for t in 0..2u64 {
        let x = Arc::clone(&x);
        let loaded = loaded.clone();
        handles.push(li_sync::thread::spawn(move || {
            for _ in 0..5 {
                for &(k, _) in loaded.iter().skip(t as usize).step_by(13) {
                    assert!(ConcurrentIndex::get(&*x, k).is_some(), "lost loaded key {k}");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(x.group_count() > 16, "groups: {}", x.group_count());
    // All loaded keys present, all writer keys present.
    for &(k, _) in loaded.iter().step_by(7) {
        assert!(ConcurrentIndex::get(&*x, k).is_some());
    }
}
