//! Planted lock-order inversions for the li-sync runtime witness.
//!
//! Built only under `--features lockdep`; asserts the witness converts
//! would-be deadlocks into immediate panics carrying both acquisition
//! sites — detection must come from the acquisition graph, never from
//! an actual hang (every scenario here is single-threaded or
//! schedule-independent, so a hang is impossible by construction).

#![cfg(feature = "lockdep")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use li_sync::lock_class;
use li_sync::sync::{Arc, Mutex, RwLock};

fn panic_message(r: li_sync::thread::Result<()>) -> String {
    let err = r.expect_err("expected a lockdep panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default()
}

/// The canonical AB-BA: thread 1 nests A then B, thread 2 nests B then
/// A. Run sequentially on one thread so only the witness can object.
#[test]
fn planted_ab_ba_is_reported_not_hung() {
    let a = Mutex::with_class(lock_class!("witness.ab-a"), 0u64);
    let b = Mutex::with_class(lock_class!("witness.ab-b"), 0u64);
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    })));
    assert!(msg.contains("lock-order inversion"), "unexpected report: {msg}");
    assert!(msg.contains("witness.ab-a") && msg.contains("witness.ab-b"), "{msg}");
    // Both sides of the conflicting edge carry their acquisition site.
    assert!(msg.matches("lockdep_witness.rs").count() >= 2, "{msg}");
}

/// A three-class cycle (A > B, B > C, then C > A) is still a potential
/// deadlock even though no two-lock pair inverts directly.
#[test]
fn transitive_cycle_is_reported() {
    let a = Mutex::with_class(lock_class!("witness.tri-a"), ());
    let b = Mutex::with_class(lock_class!("witness.tri-b"), ());
    let c = Mutex::with_class(lock_class!("witness.tri-c"), ());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
        let _gc = c.lock();
        let _ga = a.lock();
    })));
    assert!(msg.contains("lock-order inversion"), "unexpected report: {msg}");
    assert!(
        msg.contains("witness.tri-a")
            && msg.contains("witness.tri-b")
            && msg.contains("witness.tri-c"),
        "the full reverse path is part of the report: {msg}"
    );
}

/// Mixed-mode inversion through an RwLock: read-side nesting counts
/// exactly like write-side nesting for ordering purposes.
#[test]
fn rwlock_read_edges_participate() {
    let table = RwLock::with_class(lock_class!("witness.rw-table"), ());
    let cell = Mutex::with_class(lock_class!("witness.rw-cell"), ());
    {
        let _t = table.read();
        let _c = cell.lock();
    }
    let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
        let _c = cell.lock();
        let _t = table.write();
    })));
    assert!(msg.contains("lock-order inversion"), "unexpected report: {msg}");
}

/// Consistent nesting across real contending threads never trips the
/// witness (no false positives under concurrency).
#[test]
fn consistent_order_under_contention_is_clean() {
    let outer = Arc::new(RwLock::with_class(lock_class!("witness.clean-outer"), 0u64));
    let inner = Arc::new(Mutex::with_class(lock_class!("witness.clean-inner"), 0u64));
    let mut handles = Vec::new();
    for t in 0..8 {
        let o = Arc::clone(&outer);
        let i = Arc::clone(&inner);
        handles.push(li_sync::thread::spawn(move || {
            for k in 0..200 {
                if (t + k) % 3 == 0 {
                    let mut g = o.write();
                    *g += 1;
                    let mut h = i.lock();
                    *h += 1;
                } else {
                    let _g = o.read();
                    let mut h = i.lock();
                    *h += 1;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*inner.lock(), 8 * 200);
}
