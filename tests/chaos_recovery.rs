//! Chaos suite for the self-healing service layer: multi-threaded seeded
//! sessions against a fault-injected device with the maintenance worker
//! running, checked against an in-DRAM oracle.
//!
//! What must hold:
//!
//! * **Oracle equivalence** — every acked op is visible afterwards, every
//!   failed op is absent (transient-fault retry never half-applies).
//! * **Eventual read-only exit** — a store degraded by device-full
//!   windows comes back writable once the worker can lift it.
//! * **Quarantine repair** — after a corrupting restart, the worker
//!   resolves every quarantined slot as superseded or lost; none linger.
//! * **Overload ladder** — the circuit breaker trips under sustained
//!   retrain backlog, sheds puts (never deletes), and closes once the
//!   worker drains the queue.
//! * **Adaptation under faults** — with a drifting workload on an
//!   adaptive router, the maintenance worker keeps committing tuner
//!   decisions (kind swaps in both directions) through injected device
//!   failures, and no cutover loses or duplicates an acked op.
//! * **Bounded time** — every session runs under a deadline watchdog, so
//!   a deadlock or livelock fails the test instead of hanging CI.

use li_sync::sync::atomic::{AtomicBool, Ordering};
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use lip::core::telemetry::{Event, Recorder};
use lip::core::traits::ConcurrentIndex;
use lip::core::{AdaptiveConfig, KindSpec, Sharded};
use lip::nvm::{Fault, FaultPlan, NvmDevice};
use lip::viper::{
    BreakerConfig, CircuitBreaker, ConcurrentViperStore, MaintenanceConfig, MaintenanceWorker,
    RecoverOptions, RetryPolicy, StoreConfig,
};
use lip::{AnyIndex, IndexKind};

/// Runs `f` on a helper thread and panics if it exceeds `limit` — the
/// suite's deadlock watchdog.
fn with_deadline<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let h = li_sync::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            h.join().expect("chaos session panicked");
            v
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match h.join() {
            Err(e) => std::panic::resume_unwind(e),
            Ok(()) => unreachable!("sender dropped without sending or panicking"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("chaos session exceeded {limit:?} — deadlock or livelock")
        }
    }
}

/// Polls `cond` every 5 ms until it holds or `limit` passes.
fn eventually(limit: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < limit {
        if cond() {
            return true;
        }
        li_sync::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Self-describing value: the version in the first 8 bytes, a key byte
/// after — enough to verify the oracle's exact version survived.
fn value_of(key: u64, version: u64, buf: &mut [u8]) {
    buf[..8].copy_from_slice(&version.to_le_bytes());
    buf[8..].fill((key % 251) as u8);
}

fn sharded_btree(shards: usize) -> impl FnOnce(&[(u64, u64)]) -> Sharded {
    move |pairs| Sharded::build_with(shards, pairs, |c| AnyIndex::build(IndexKind::BTree, c))
}

#[test]
fn transient_storm_eight_threads_matches_oracle_and_exits_read_only() {
    with_deadline(Duration::from_mins(2), || {
        const THREADS: u64 = 8;
        const OPS: u64 = 600;

        // Deterministic storm: short write-failure bursts plus device-full
        // windows scattered over the op horizon (~8 threads × 600 ops ×
        // several device ops each).
        let mut plan = FaultPlan::none();
        for b in 0..20u64 {
            let start = 500 + b * 1_400;
            for op in start..start + 4 {
                plan = plan.with(Fault::FailedWrite { op });
            }
        }
        for w in 0..6u64 {
            let from = 2_000 + w * 4_500;
            plan = plan.with(Fault::FullWindow { from, until: from + 30 });
        }

        let cfg = StoreConfig::test(40_000);
        let dev = Arc::new(NvmDevice::with_faults(cfg.nvm, &plan));
        let (mut store, _) = ConcurrentViperStore::<Sharded>::recover_shared_with_options(
            dev,
            cfg.layout,
            RecoverOptions::default(),
            sharded_btree(8),
        );
        store.set_recorder(Recorder::enabled());
        store.set_retry_policy(RetryPolicy::standard(0xC0FFEE));
        let store = Arc::new(store);
        let worker = MaintenanceWorker::spawn(
            Arc::clone(&store),
            MaintenanceConfig {
                interval: Duration::from_millis(1),
                retrain_budget: 16,
                stall_timeout: Duration::from_secs(30),
            },
        );

        let vs = cfg.layout.value_size;
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            handles.push(li_sync::thread::spawn(move || {
                // Disjoint per-thread key ranges: each thread's oracle is
                // authoritative for its own keys.
                let base = t * 1_000_000;
                let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
                let mut s = 0x5eed ^ t;
                let mut val = vec![0u8; vs];
                for i in 0..OPS {
                    let r = splitmix64(&mut s);
                    let key = base + r % 400;
                    if r >> 61 != 0 {
                        let version = i + 1;
                        value_of(key, version, &mut val);
                        if store.put(key, &val).is_ok() {
                            oracle.insert(key, version);
                        }
                        // Any error is transient-by-design here (no crash
                        // fault scheduled): the op is simply not applied.
                    } else if let Ok(existed) = store.delete(key) {
                        if existed {
                            oracle.remove(&key);
                        }
                    }
                }
                oracle
            }));
        }
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for h in handles {
            oracle.extend(h.join().expect("chaos thread panicked"));
        }

        // The worker's benign fence ticks age out any still-open fault
        // window, then lift the degradation.
        assert!(
            eventually(Duration::from_secs(30), || !store.is_read_only()),
            "store never exited read-only"
        );

        let stats = worker.shutdown();
        assert!(stats.ticks > 0);
        assert!(!stats.stalled, "watchdog flagged a stall on a healthy worker");

        // Oracle equivalence: every acked key has exactly the acked
        // version; nothing failed half-applied, nothing resurrected.
        let mut buf = vec![0u8; vs];
        let mut expect = vec![0u8; vs];
        for (&key, &version) in &oracle {
            assert!(store.get(key, &mut buf), "acked key {key} lost");
            value_of(key, version, &mut expect);
            assert_eq!(buf, expect, "key {key}: wrong version survived");
        }
        assert_eq!(store.len(), oracle.len(), "store holds keys the oracle never acked");

        // The storm must actually have exercised both healing mechanisms.
        let snap = store.recorder().snapshot();
        assert!(snap.event(Event::Retry) > 0, "no injected write failure was observed");
        assert!(snap.event(Event::BackoffWait) > 0, "no store-level backoff happened");
    });
}

/// Builds a self-tuning router for the adaptive storm: shards start as
/// B-Tree (kind 0) and the tuner may hot-swap them to gapped ALEX
/// (kind 1) under a write-heavy mix and back under a read-mostly one.
/// Evidence floors are lowered so decisions commit within a few of the
/// worker's 1 ms epochs instead of the production-scale defaults.
fn adaptive_sharded(shards: usize) -> impl FnOnce(&[(u64, u64)]) -> Sharded {
    move |pairs| {
        let kinds = vec![
            KindSpec::new("btree", |c| Box::new(AnyIndex::build(IndexKind::BTree, c)) as _),
            KindSpec::new("alex", |c| Box::new(AnyIndex::build(IndexKind::Alex, c)) as _),
        ];
        let mut cfg = AdaptiveConfig::new(kinds, 0);
        cfg.tuner.write_heavy_kind = Some(1);
        cfg.tuner.read_mostly_kind = Some(0);
        // Through the store every put is one index lookup plus one
        // publish, so even a pure-put storm caps out at write_frac ≈
        // 0.5 as the router sees it — the default 0.70 threshold can
        // never fire behind Viper. Tighten both bands to the mixes the
        // two phases actually produce (≈0.48 and ≈0.06).
        cfg.tuner.write_heavy_frac = 0.45;
        cfg.tuner.read_mostly_frac = 0.35;
        cfg.tuner.min_dwell_epochs = 1;
        cfg.tuner.cooldown_epochs = 0;
        cfg.tuner.min_epoch_ops = 64;
        cfg.tuner.min_swap_ops = 128;
        cfg.tuner.max_actions_per_epoch = 2;
        // Pin the shard count so the storm isolates the kind-swap rule:
        // the per-thread key clusters are so skewed that split/merge
        // would churn every epoch, and each cutover resets the dwell
        // clock of the cells it touches — the swap rule would starve.
        // Split/merge under concurrent load is covered by the
        // shard_oracle forced-adaptation session.
        cfg.tuner.max_shards = shards;
        cfg.tuner.min_shards = shards;
        Sharded::build_adaptive(shards, pairs, cfg)
    }
}

/// Drift storm on the adaptive router with fault injection: 8 writer
/// threads run a write-heavy mix until the tuner hot-swaps a shard to
/// the write-optimized kind, then flip to read-mostly until it swaps
/// back — all while the device injects write failures and device-full
/// windows and the maintenance worker is the only adaptation driver.
/// Afterwards the store must match the per-thread oracles exactly and
/// the telemetry causality invariant (one TunerDecision per committed
/// structural event) must hold.
#[test]
fn adaptive_storm_swaps_kinds_both_ways_and_matches_oracle() {
    with_deadline(Duration::from_mins(2), || {
        const THREADS: u64 = 8;

        // Deterministic chaos, front-loaded so the write-heavy phase
        // absorbs it: short write-failure bursts plus device-full
        // windows over the first ~30k device ops.
        let mut plan = FaultPlan::none();
        for b in 0..12u64 {
            let start = 700 + b * 2_000;
            for op in start..start + 3 {
                plan = plan.with(Fault::FailedWrite { op });
            }
        }
        for w in 0..3u64 {
            let from = 3_000 + w * 9_000;
            plan = plan.with(Fault::FullWindow { from, until: from + 20 });
        }

        // Generously sized device: the swap gate below needs the put
        // storm to stay writable for many 1 ms maintenance epochs, so
        // out-of-place updates must not exhaust the heap before the
        // tuner's evidence floors are met.
        let cfg = StoreConfig::test(300_000);
        let dev = Arc::new(NvmDevice::with_faults(cfg.nvm, &plan));
        let (mut store, _) = ConcurrentViperStore::<Sharded>::recover_shared_with_options(
            dev,
            cfg.layout,
            RecoverOptions::default(),
            adaptive_sharded(4),
        );
        store.set_recorder(Recorder::enabled());
        store.set_retry_policy(RetryPolicy::standard(0xADA));
        let store = Arc::new(store);
        let worker = MaintenanceWorker::spawn(
            Arc::clone(&store),
            MaintenanceConfig {
                interval: Duration::from_millis(1),
                retrain_budget: 16,
                stall_timeout: Duration::from_secs(30),
            },
        );

        let vs = cfg.layout.value_size;
        let stop = Arc::new(AtomicBool::new(false));
        // false = write-heavy phase, true = read-mostly phase.
        let read_phase = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let read_phase = Arc::clone(&read_phase);
            handles.push(li_sync::thread::spawn(move || {
                // Disjoint per-thread key ranges: each thread's oracle is
                // authoritative for its own keys, even mid-cutover.
                let base = t * 1_000_000;
                let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
                let mut s = 0xada5_eed0 ^ t;
                let mut val = vec![0u8; vs];
                let mut buf = vec![0u8; vs];
                let mut expect = vec![0u8; vs];
                let mut version = 0u64;
                while !stop.load(Ordering::Acquire) {
                    // Pace the storm: full-speed writers would exhaust
                    // the heap's slack in a handful of maintenance
                    // epochs; a short pause per batch buys the tuner
                    // hundreds of epochs of headroom.
                    li_sync::thread::sleep(Duration::from_micros(500));
                    for _ in 0..100 {
                        let r = splitmix64(&mut s);
                        let key = base + r % 2_000;
                        // Write-heavy phase: ~15/16 puts. Read-mostly
                        // phase: ~1/16 puts, the rest verified gets.
                        let write = if read_phase.load(Ordering::Acquire) {
                            r >> 60 == 0
                        } else {
                            r >> 60 != 0
                        };
                        if write {
                            version += 1;
                            value_of(key, version, &mut val);
                            if store.put(key, &val).is_ok() {
                                oracle.insert(key, version);
                            }
                            // Errors are transient-by-design: op not
                            // applied, oracle untouched.
                        } else {
                            let found = store.get(key, &mut buf);
                            match oracle.get(&key) {
                                Some(&v) => {
                                    assert!(found, "t{t}: acked key {key} unreadable");
                                    value_of(key, v, &mut expect);
                                    assert_eq!(buf, expect, "t{t}: key {key} wrong version");
                                }
                                None => assert!(!found, "t{t}: key {key} resurrected"),
                            }
                        }
                    }
                }
                oracle
            }));
        }

        // Phase 1: write-heavy until the tuner commits a hot-swap to the
        // write-optimized kind through the fault storm.
        let swapped_up = eventually(Duration::from_secs(45), || {
            store.recorder().snapshot().event(Event::KindSwap) >= 1
        });
        let swaps_after_write_phase = store.recorder().snapshot().event(Event::KindSwap);
        // Phase 2: flip to read-mostly and wait for a swap back.
        read_phase.store(true, Ordering::Release);
        let swapped_back = eventually(Duration::from_secs(45), || {
            store.recorder().snapshot().event(Event::KindSwap) > swaps_after_write_phase
        });

        stop.store(true, Ordering::Release);
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for h in handles {
            oracle.extend(h.join().expect("adaptive storm thread panicked"));
        }
        assert!(swapped_up, "tuner never swapped a shard under the write-heavy mix");
        assert!(swapped_back, "tuner never swapped back under the read-mostly mix");

        assert!(
            eventually(Duration::from_secs(30), || !store.is_read_only()),
            "store never exited read-only"
        );
        let stats = worker.shutdown();
        assert!(stats.adaptations >= 2, "worker committed fewer than two adaptations");
        assert!(!stats.stalled, "watchdog flagged a stall during adaptation");

        // Oracle equivalence across every cutover the storm committed.
        let mut buf = vec![0u8; vs];
        let mut expect = vec![0u8; vs];
        for (&key, &version) in &oracle {
            assert!(store.get(key, &mut buf), "acked key {key} lost across cutovers");
            value_of(key, version, &mut expect);
            assert_eq!(buf, expect, "key {key}: wrong version survived a cutover");
        }
        assert_eq!(store.len(), oracle.len(), "store holds keys the oracle never acked");

        // Fault injection must actually have bitten, and the causality
        // invariant must hold: every committed structural adaptation is
        // preceded by exactly one tuner decision.
        let snap = store.recorder().snapshot();
        assert!(snap.event(Event::Retry) > 0, "no injected write failure was observed");
        let structural = snap.event(Event::ShardSplit)
            + snap.event(Event::ShardMerge)
            + snap.event(Event::KindSwap);
        assert!(structural >= 2, "fewer than two structural adaptations committed");
        assert!(
            snap.event(Event::TunerDecision) >= structural,
            "committed adaptations outnumber tuner decisions"
        );
    });
}

#[test]
fn worker_repairs_every_quarantined_slot_after_corrupting_restart() {
    with_deadline(Duration::from_mins(1), || {
        let keys: Vec<u64> = (0..2_000u64).map(|i| i * 5 + 2).collect();
        let cfg = StoreConfig::test(4_000);
        let store = ConcurrentViperStore::<Sharded>::bulk_load_shared(
            cfg,
            &keys,
            |k, buf| value_of(k, 1, buf),
            sharded_btree(8),
        );
        // Overwrite a spread of keys so their first copies become stale,
        // then corrupt a mix of current and superseded slots.
        let vs = cfg.layout.value_size;
        let mut val = vec![0u8; vs];
        let mut current = Vec::new();
        let store = {
            let mut s = store;
            s.set_crash_safe_updates(true);
            for &k in keys.iter().step_by(100) {
                value_of(k, 2, &mut val);
                s.put(k, &val).unwrap();
            }
            for &k in keys.iter().skip(50).step_by(100) {
                current.push((k, ConcurrentIndex::get(s.index(), k).unwrap()));
            }
            s
        };
        let dev = store.into_device();
        for &(_, off) in &current {
            let voff = cfg.layout.value_offset(off as usize);
            dev.write(voff, &vec![0xEE; cfg.layout.value_size]);
            dev.persist(voff, cfg.layout.value_size);
        }

        let rec = Recorder::enabled();
        let (store, report) = ConcurrentViperStore::<Sharded>::recover_shared_recorded(
            dev,
            cfg.layout,
            RecoverOptions::default(),
            rec.clone(),
            sharded_btree(8),
        );
        assert_eq!(report.quarantined, current.len(), "every corrupted slot quarantined");
        let store = Arc::new(store);
        let worker = MaintenanceWorker::spawn(Arc::clone(&store), MaintenanceConfig::default());

        // The worker must resolve every quarantined slot online.
        assert!(
            eventually(Duration::from_secs(30), || store.heap().quarantined_count() == 0),
            "quarantine never drained"
        );
        let stats = worker.shutdown();
        assert_eq!(
            stats.repaired_superseded + stats.repaired_lost,
            current.len() as u64,
            "every slot repaired or reported lost"
        );
        // The corrupted records held the *current* copy of their keys, so
        // each is a true loss the oracle can confirm.
        assert_eq!(stats.repaired_lost, current.len() as u64);
        let mut buf = vec![0u8; vs];
        for &(k, _) in &current {
            assert!(!store.get(k, &mut buf), "corrupt key {k} resurfaced");
        }

        // Causality: one RepairedSlot per QuarantineSlot, no phantoms.
        let snap = rec.snapshot();
        assert_eq!(snap.event(Event::QuarantineSlot), current.len() as u64);
        assert_eq!(snap.event(Event::RepairedSlot), snap.event(Event::QuarantineSlot));
    });
}

#[test]
fn circuit_breaker_trips_under_backlog_and_recovers() {
    with_deadline(Duration::from_mins(2), || {
        // Non-linear keys: a perfectly linear key set would collapse each
        // shard's piecewise index into a single segment, capping the
        // retrain queue at one pending leaf per shard — below any
        // realistic open threshold.
        let initial = lip::workloads::generate_keys(lip::workloads::Dataset::OsmLike, 20_000, 5);
        let (lo, hi) = (initial[0], *initial.last().unwrap());
        let cfg = StoreConfig::test(300_000);
        let mut store = ConcurrentViperStore::<Sharded>::bulk_load_shared(
            cfg,
            &initial,
            |k, buf| value_of(k, 1, buf),
            |pairs| Sharded::build_with(8, pairs, |c| AnyIndex::build(IndexKind::FitingBuf, c)),
        );
        let rec = Recorder::enabled();
        store.set_recorder(rec.clone());
        let breaker = Arc::new(CircuitBreaker::new(
            BreakerConfig { depth_open: 16, depth_close: 2, sustain_ticks: 2, p999_open_ns: 0 },
            rec.clone(),
        ));
        store.set_circuit_breaker(Arc::clone(&breaker));
        let store = Arc::new(store);

        // Phase 1: a worker whose drain budget is zero — retraining is
        // deferred but never drained, modelling maintenance that cannot
        // keep up. The backlog of pending leaves can only grow.
        let starved = MaintenanceWorker::spawn(
            Arc::clone(&store),
            MaintenanceConfig {
                interval: Duration::from_millis(1),
                retrain_budget: 0,
                stall_timeout: Duration::from_secs(30),
            },
        );

        // Flood inserts until the breaker trips and a put is shed.
        let vs = cfg.layout.value_size;
        let mut val = vec![0u8; vs];
        let mut s = 0xF100Du64;
        let mut shed = false;
        for i in 0..250_000u64 {
            // Stay inside the loaded key range so the flood spreads over
            // many leaves — retrain deferrals then come from distinct
            // leaves and the queue actually deepens.
            let key = lo + splitmix64(&mut s) % (hi - lo);
            value_of(key, i + 1, &mut val);
            match store.put(key, &val) {
                Ok(()) => {}
                Err(lip::viper::ViperError::Backpressure) => {
                    shed = true;
                    break;
                }
                Err(e) => panic!("unexpected error under flood: {e}"),
            }
        }
        assert!(shed, "breaker never shed a put under sustained backlog");
        assert!(breaker.is_open());
        assert!(breaker.times_opened() >= 1);

        // Deletes are the relief valve: never shed, even while open.
        assert!(store.delete(initial[0]).unwrap());

        // Phase 2: the starved worker hands over (its shutdown drains
        // parked work) to one with a real budget; depth falls and the
        // breaker closes on its own.
        starved.shutdown();
        let worker = MaintenanceWorker::spawn(Arc::clone(&store), MaintenanceConfig::default());
        assert!(
            eventually(Duration::from_mins(1), || !breaker.is_open()),
            "breaker never closed; pending retrains: {}",
            ConcurrentIndex::pending_retrains(store.index())
        );
        assert!(breaker.times_closed() >= 1);
        value_of(7, 99, &mut val);
        store.put(7, &val).expect("puts must flow again after the breaker closes");

        worker.shutdown();
        let snap = rec.snapshot();
        assert!(snap.event(Event::CircuitOpen) >= 1);
        assert!(snap.event(Event::CircuitClose) >= 1);
        assert!(snap.event(Event::RetrainDeferred) > 0, "flood never deferred a retrain");
    });
}

#[test]
fn maintenance_worker_clean_shutdown_smoke() {
    with_deadline(Duration::from_mins(1), || {
        let initial: Vec<u64> = (0..10_000u64).map(|i| i * 13 + 1).collect();
        let cfg = StoreConfig::test(60_000);
        let mut store = ConcurrentViperStore::<Sharded>::bulk_load_shared(
            cfg,
            &initial,
            |k, buf| value_of(k, 1, buf),
            |pairs| Sharded::build_with(4, pairs, |c| AnyIndex::build(IndexKind::FitingBuf, c)),
        );
        store.set_recorder(Recorder::enabled());
        let store = Arc::new(store);
        let worker = MaintenanceWorker::spawn(Arc::clone(&store), MaintenanceConfig::default());

        // Concurrent inserts while the worker runs, then a clean shutdown.
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        let vs = cfg.layout.value_size;
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            handles.push(li_sync::thread::spawn(move || {
                let mut s = t ^ 0xABCD;
                let mut val = vec![0u8; vs];
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) && i < 5_000 {
                    let key = splitmix64(&mut s);
                    value_of(key, i + 1, &mut val);
                    store.put(key, &val).unwrap();
                    i += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Release);

        let stats = worker.shutdown();
        assert!(stats.ticks > 0, "worker never ticked");
        assert!(!stats.stalled);
        // Clean shutdown exits deferred mode and drains the queue: no key
        // may stay parked in an overflow buffer.
        assert_eq!(
            ConcurrentIndex::pending_retrains(store.index()),
            0,
            "shutdown left parked retrains behind"
        );
        // The store keeps working without the worker.
        let mut val = vec![0u8; vs];
        value_of(1, 2, &mut val);
        store.put(1, &val).unwrap();
        let mut buf = vec![0u8; vs];
        assert!(store.get(1, &mut buf));
        assert_eq!(buf, val);
    });
}
