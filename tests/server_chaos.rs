//! Network chaos tests for the `li-server` front-end: seeded
//! [`FaultyTransport`] storms against a real TCP server, graceful-drain
//! coverage, and STATS causality. Companion to `tests/chaos_recovery.rs`
//! (which storms the storage layer); here the faults live in the
//! *network* — torn writes, one-byte reads, stalls, and mid-frame
//! disconnects — and the properties are service-level:
//!
//! 1. Every acknowledged write is visible to a clean client afterwards,
//!    and every request either resolves or its connection dies cleanly
//!    (no hangs, no wrong answers) — `network_fault_storm_*`.
//! 2. Graceful shutdown completes or typed-`CANCELLED`s every in-flight
//!    request, refuses new connections afterwards, and checkpoints the
//!    store — `graceful_shutdown_*`.
//! 3. STATS counters are causal: the per-op counts a server reports
//!    equal the completions a client observed — `stats_counters_*`.

use li_sync::sync::mpsc;
use std::collections::BTreeMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use li_proto::{Body, Command, ErrorKind};
use li_server::{testutil, Client, FaultConfig, FaultyTransport, Server, ServiceConfig};
use li_sync::sync::Arc;

/// Runs `f` under a watchdog so a hung server fails the test instead of
/// hanging CI (same discipline as `tests/chaos_recovery.rs`).
fn with_deadline<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let t = li_sync::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            t.join().expect("test body panicked");
            v
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match t.join() {
            Err(e) => std::panic::resume_unwind(e),
            Ok(()) => unreachable!("sender dropped without sending or panicking"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded {limit:?} deadline — server hang?")
        }
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A client whose socket is wrapped in a seeded fault-injecting
/// transport; the server sees genuinely torn TCP traffic.
fn storm_connect(addr: SocketAddr, seed: u64) -> io::Result<Client<FaultyTransport<TcpStream>>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    Ok(Client::over(FaultyTransport::new(stream, FaultConfig::storm(), seed)))
}

/// What one storm client can prove afterwards: writes it saw acked
/// (pessimistically excluding any key it ever *attempted* to delete,
/// since an unacked delete may still have applied), plus fault/error
/// tallies for the "storm actually stormed" sanity checks.
struct StormOutcome {
    acked: BTreeMap<u64, [u8; 8]>,
    injected: u64,
    io_errors: u64,
}

fn storm_client(addr: SocketAddr, id: u64, ops: usize, preload: u64) -> StormOutcome {
    let mut rng = 0x5eed_c11e ^ (id << 32);
    let mut acked: BTreeMap<u64, [u8; 8]> = BTreeMap::new();
    let mut injected = 0u64;
    let mut io_errors = 0u64;
    let mut attempt = 0u64;
    let mut cli = storm_connect(addr, id * 1000 + attempt).expect("initial connect");

    for i in 0..ops as u64 {
        // One fresh key per op keeps unacked writes from aliasing acked
        // state: an op that died mid-call can only affect its own key.
        let key = 1_000_000 + id * 100_000 + i;
        enum Expect {
            PutOk(u64, [u8; 8]),
            GetAcked(u64, [u8; 8]),
            GetPreloaded(u64),
            DeleteAcked,
        }
        let (cmd, expect) = match splitmix64(&mut rng) % 4 {
            0 | 1 => {
                let value = splitmix64(&mut rng).to_le_bytes();
                (Command::Put { key, value: value.to_vec() }, Expect::PutOk(key, value))
            }
            2 if !acked.is_empty() => {
                let pick = splitmix64(&mut rng) as usize % acked.len();
                let (&k, &v) = acked.iter().nth(pick).expect("non-empty");
                (Command::Get { key: k }, Expect::GetAcked(k, v))
            }
            3 if !acked.is_empty() => {
                let pick = splitmix64(&mut rng) as usize % acked.len();
                let &k = acked.keys().nth(pick).expect("non-empty");
                // Remove from the acked set *before* sending: if the call
                // dies the delete may or may not have applied, so the key
                // is unverifiable either way.
                acked.remove(&k);
                (Command::Delete { key: k }, Expect::DeleteAcked)
            }
            _ => {
                let k = (splitmix64(&mut rng) % preload) * 7 + 1;
                (Command::Get { key: k }, Expect::GetPreloaded(k))
            }
        };

        match cli.call(cmd, 0) {
            Ok(body) => match expect {
                Expect::PutOk(k, v) => {
                    assert_eq!(body, Body::Ok, "put {k} under network faults");
                    acked.insert(k, v);
                }
                Expect::GetAcked(k, v) => {
                    assert_eq!(body, Body::Value(v.to_vec()), "acked key {k} must read back");
                }
                Expect::GetPreloaded(k) => {
                    assert_eq!(
                        body,
                        Body::Value((k as u32).to_le_bytes().to_vec()),
                        "preloaded key {k}"
                    );
                }
                Expect::DeleteAcked => {
                    assert_eq!(body, Body::Deleted(true), "acked put must be deletable");
                }
            },
            Err(_) => {
                // The transport died (injected disconnect, or a frame
                // torn beyond recovery). The op's outcome is unknown —
                // its unique key was never added to the acked set —
                // reconnect with a fresh fault stream and keep going.
                io_errors += 1;
                injected += cli.get_ref().injected;
                attempt += 1;
                cli = storm_connect(addr, id * 1000 + attempt).expect("reconnect");
            }
        }
    }
    injected += cli.get_ref().injected;
    StormOutcome { acked, injected, io_errors }
}

/// Tentpole chaos property: under a seeded storm of torn writes,
/// one-byte reads, stalls, and mid-frame disconnects from six
/// concurrent clients, the server never hangs, never answers wrongly,
/// and every write it acknowledged is visible to a clean client.
#[test]
fn network_fault_storm_acked_writes_survive_and_server_stays_up() {
    with_deadline(Duration::from_mins(2), || {
        const CLIENTS: u64 = 6;
        const OPS: usize = 200;
        const PRELOAD: usize = 512;
        let cfg = ServiceConfig::default();
        let store = testutil::served_store(PRELOAD, &cfg);
        let server = Server::spawn(store, cfg, "127.0.0.1:0").expect("spawn");
        let addr = server.local_addr();

        let handles: Vec<_> = (0..CLIENTS)
            .map(|id| li_sync::thread::spawn(move || storm_client(addr, id, OPS, PRELOAD as u64)))
            .collect();
        let outcomes: Vec<StormOutcome> =
            handles.into_iter().map(|h| h.join().expect("storm client panicked")).collect();

        let injected: u64 = outcomes.iter().map(|o| o.injected).sum();
        let io_errors: u64 = outcomes.iter().map(|o| o.io_errors).sum();
        assert!(injected > 100, "storm profile must actually inject faults, got {injected}");

        // A clean (fault-free) client must see every acked write.
        let mut clean = Client::connect(addr, Duration::from_secs(5)).expect("clean connect");
        let mut verified = 0u64;
        for o in &outcomes {
            for (&k, v) in &o.acked {
                assert_eq!(
                    clean.call(Command::Get { key: k }, 0).expect("clean get"),
                    Body::Value(v.to_vec()),
                    "acked write {k} lost after network storm"
                );
                verified += 1;
            }
        }
        assert!(verified > 0, "storm must have acked at least one write");

        // The server is still fully functional (stats answers, drain is
        // clean) — the storm was absorbed, not accumulated.
        let json = clean.stats().expect("stats after storm");
        assert!(json.contains("\"conn_open\""), "telemetry survived: {json}");
        drop(clean);
        let report = server.shutdown();
        assert!(report.drained_clean, "drain after storm must be clean: {report:?}");
        eprintln!(
            "storm: {injected} faults injected, {io_errors} connection deaths, \
             {verified} acked writes verified, {} completed",
            report.completed
        );
    });
}

/// Satellite: graceful shutdown under load. Every in-flight request
/// completes or gets a typed `CANCELLED`; requests arriving mid-drain
/// are refused, not dropped; new connections are refused afterwards;
/// the store checkpoints on the way down.
#[test]
fn graceful_shutdown_completes_or_cancels_then_refuses_and_checkpoints() {
    with_deadline(Duration::from_mins(1), || {
        let mut cfg = ServiceConfig::default();
        // One worker so a backlog of big scans keeps the drain window
        // open while the cancel wave lands.
        cfg.set("workers", "1").expect("cfg");
        let store = testutil::served_store(2048, &cfg);
        let store_handle = Arc::clone(&store);
        let gen_before = store_handle.checkpoint_generation();
        let server = Server::spawn(store, cfg, "127.0.0.1:0").expect("spawn");
        let addr = server.local_addr();
        // Two connections: `backlog` carries the in-flight work and never
        // writes again once the drain starts (a late write to a closed
        // socket would RST away its still-buffered responses — a TCP
        // artifact, not a server property); `probe` sends closed-loop
        // puts into the drain window to catch the typed CANCELLEDs.
        let mut backlog = Client::connect(addr, Duration::from_secs(10)).expect("connect");
        let mut probe = Client::connect(addr, Duration::from_secs(10)).expect("connect");

        // Wave 1: a backlog of heavy scans for the single worker.
        let wave1: Vec<u64> = (0..64)
            .map(|_| {
                backlog.send(Command::Scan { lo: 0, hi: u64::MAX, limit: 2048 }, 0).expect("send")
            })
            .collect();
        li_sync::thread::sleep(Duration::from_millis(10));

        // Trigger the drain, then keep feeding requests into it: frames
        // read after the stop flag must come back typed CANCELLED (or
        // the connection dies cleanly), never vanish.
        let drain = li_sync::thread::spawn(move || server.shutdown());
        let mut cancelled = 0u64;
        let mut completed2 = 0u64;
        let mut probe_died = false;
        for i in 0..500u64 {
            let sent = probe.call(Command::Put { key: 5_000_000 + i, value: vec![1] }, 0);
            match sent {
                // Raced ahead of the stop flag — still a valid resolution.
                Ok(Body::Ok) => completed2 += 1,
                Ok(Body::Err { kind: ErrorKind::Cancelled, .. }) => {
                    cancelled += 1;
                    break;
                }
                Ok(other) => panic!("mid-drain put got unexpected {other:?}"),
                Err(_) => {
                    probe_died = true; // drain finished first — clean death
                    break;
                }
            }
        }
        assert!(
            cancelled > 0 || probe_died,
            "drain must refuse late frames (typed CANCELLED) or close cleanly; \
             got {completed2} completions on a live connection"
        );

        // Wave 1 was dispatched before the drain began: all of it must
        // complete with real results, delivered before the socket closes.
        for id in &wave1 {
            match backlog.recv_for(*id) {
                Ok(Body::Entries(e)) => assert!(!e.is_empty(), "scan {id} returned empty"),
                other => panic!("wave-1 scan {id} must complete through drain, got {other:?}"),
            }
        }

        let report = drain.join().expect("shutdown thread");
        assert!(report.drained_clean, "in-flight work must drain inside the timeout: {report:?}");
        assert!(report.completed >= wave1.len() as u64, "report undercounts: {report:?}");
        assert!(report.checkpointed, "durable store must checkpoint on drain: {report:?}");
        assert!(
            store_handle.checkpoint_generation() > gen_before,
            "drain must advance the checkpoint generation"
        );

        // New connections are refused once shutdown returns: connect
        // fails outright, or the socket yields EOF/error, never service.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                s.set_read_timeout(Some(Duration::from_millis(500))).expect("timeout");
                let mut buf = [0u8; 16];
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => {}
                    Ok(n) => panic!("post-shutdown connection served {n} bytes"),
                }
            }
        }
        eprintln!(
            "drain: {completed2} probe puts completed, {cancelled} cancelled, \
             probe_died={probe_died}"
        );
    });
}

/// Satellite: STATS is causal — the per-op counts the server reports
/// equal the completions this client has already observed, batch
/// sub-commands count as one `server_batch` (not inflated per-op), and
/// the STATS op itself is not yet in its own snapshot.
#[test]
fn stats_counters_match_client_observed_completions() {
    with_deadline(Duration::from_secs(30), || {
        let cfg = ServiceConfig::default();
        let store = testutil::served_store(128, &cfg);
        let server = Server::spawn(store, cfg, "127.0.0.1:0").expect("spawn");
        let mut c = Client::connect(server.local_addr(), Duration::from_secs(5)).expect("connect");

        const GETS: u64 = 13;
        const PUTS: u64 = 7;
        const DELETES: u64 = 3;
        const SCANS: u64 = 2;
        for i in 0..PUTS {
            let body = c.call(Command::Put { key: 9_000 + i, value: vec![i as u8] }, 0);
            assert_eq!(body.expect("put"), Body::Ok);
        }
        for i in 0..GETS {
            // Mix of hits (preloaded + just written) and misses; every
            // outcome is one completed server_get.
            let key = if i % 2 == 0 { 9_000 + (i % PUTS) } else { 2 + i };
            c.call(Command::Get { key }, 0).expect("get");
        }
        for i in 0..DELETES {
            let body = c.call(Command::Delete { key: 9_000 + i }, 0);
            assert_eq!(body.expect("delete"), Body::Deleted(true));
        }
        for _ in 0..SCANS {
            let body = c.call(Command::Scan { lo: 0, hi: 500, limit: 16 }, 0).expect("scan");
            assert!(matches!(body, Body::Entries(_)));
        }
        // One batch whose sub-commands must NOT inflate the per-kind
        // counters — shard-aware coalescing executes them inline.
        let batch = vec![
            Command::Put { key: 9_500, value: vec![9] },
            Command::Get { key: 9_500 },
            Command::Delete { key: 9_500 },
        ];
        match c.call(Command::Batch(batch), 0).expect("batch") {
            Body::Batch(bodies) => assert_eq!(bodies.len(), 3),
            other => panic!("unexpected {other:?}"),
        }

        let json = c.stats().expect("stats");
        let count = |name: &str| -> u64 {
            let pat = format!("\"{name}\":{{\"count\":");
            let at = json.find(&pat).unwrap_or_else(|| panic!("{name} missing from {json}"));
            let digits: String =
                json[at + pat.len()..].chars().take_while(char::is_ascii_digit).collect();
            digits.parse().expect("count digits")
        };
        assert_eq!(count("server_get"), GETS, "gets: {json}");
        assert_eq!(count("server_put"), PUTS, "puts: {json}");
        assert_eq!(count("server_delete"), DELETES, "deletes: {json}");
        assert_eq!(count("server_scan"), SCANS, "scans: {json}");
        assert_eq!(count("server_batch"), 1, "batch: {json}");
        // Causality: the snapshot is taken *inside* the STATS op, so the
        // op cannot appear in its own report (zero-count ops are
        // omitted from the JSON entirely).
        assert!(!json.contains("\"server_stats\""), "stats counted itself: {json}");
        assert!(json.contains("\"conn_open\":1"), "one connection: {json}");

        server.shutdown();
    });
}
