//! Integration: every index of the paper's lineup serving YCSB workloads
//! inside the Viper store, checked against an in-memory oracle.

use std::collections::BTreeMap;

use lip::viper::{StoreConfig, ViperStore};
use lip::workloads::{generate_keys, generate_ops, split_load_insert, Dataset, Op, WorkloadSpec};
use lip::{AnyIndex, IndexKind};

fn value_of(key: u64, buf: &mut [u8]) {
    let b = (key % 251) as u8;
    buf.fill(b);
}

fn expected_value(key: u64, val: Option<u64>, len: usize) -> Vec<u8> {
    match val {
        // Updated records carry the op value in every byte.
        Some(v) => vec![v as u8; len],
        None => {
            let mut buf = vec![0u8; len];
            value_of(key, &mut buf);
            buf
        }
    }
}

/// Runs `spec` over a freshly loaded store with index `kind`, comparing
/// every operation against a BTreeMap oracle.
fn run_workload(kind: IndexKind, spec: WorkloadSpec, n: usize, dataset: Dataset) {
    let keys = generate_keys(dataset, n, 11);
    let (loaded, pool) = split_load_insert(&keys, 0.25);
    let ops = generate_ops(&spec, &loaded, &pool, n, 13);

    let config = StoreConfig::test(keys.len());
    let vs = config.layout.value_size;
    let mut store =
        ViperStore::bulk_load_with(config, &loaded, value_of, |pairs| AnyIndex::build(kind, pairs));

    // Oracle: key -> Some(latest op value) or None for the loaded default.
    let mut oracle: BTreeMap<u64, Option<u64>> = loaded.iter().map(|&k| (k, None)).collect();
    let mut buf = vec![0u8; vs];

    for op in &ops {
        match *op {
            Op::Read(k) => {
                let hit = store.get(k, &mut buf);
                match oracle.get(&k) {
                    Some(&val) => {
                        assert!(hit, "{}: lost key {k}", kind.name());
                        assert_eq!(
                            buf,
                            expected_value(k, val, vs),
                            "{}: wrong value for {k}",
                            kind.name()
                        );
                    }
                    None => assert!(!hit, "{}: ghost key {k}", kind.name()),
                }
            }
            Op::Insert(k, v) | Op::Update(k, v) => {
                store.put(k, &vec![v as u8; vs]).unwrap();
                oracle.insert(k, Some(v));
            }
            Op::ReadModifyWrite(k, v) => {
                store.get(k, &mut buf);
                store.put(k, &vec![v as u8; vs]).unwrap();
                oracle.insert(k, Some(v));
            }
            Op::Scan(k, len) => {
                let mut got = Vec::new();
                store.scan(k, u64::MAX, len, &mut |key, _| got.push(key));
                if kind.supports_range() {
                    let expect: Vec<u64> =
                        oracle.range(k..).take(len).map(|(&key, _)| key).collect();
                    assert_eq!(got, expect, "{}: scan from {k}", kind.name());
                }
            }
        }
    }
    assert_eq!(store.len(), oracle.len(), "{}", kind.name());
}

#[test]
fn read_only_all_indexes() {
    for kind in IndexKind::ALL {
        run_workload(kind, WorkloadSpec::read_only_uniform(), 20_000, Dataset::YcsbNormal);
    }
}

#[test]
fn write_only_updatable_indexes() {
    for kind in IndexKind::UPDATABLE {
        run_workload(kind, WorkloadSpec::write_only(), 20_000, Dataset::YcsbNormal);
    }
}

#[test]
fn ycsb_a_updatable_indexes() {
    for kind in IndexKind::UPDATABLE {
        run_workload(kind, WorkloadSpec::ycsb_a(), 15_000, Dataset::YcsbNormal);
    }
}

#[test]
fn ycsb_d_insert_heavy() {
    for kind in IndexKind::UPDATABLE {
        run_workload(kind, WorkloadSpec::ycsb_d(), 15_000, Dataset::YcsbNormal);
    }
}

#[test]
fn osm_like_hard_cdf() {
    for kind in [IndexKind::Alex, IndexKind::Pgm, IndexKind::FitingBuf, IndexKind::XIndex] {
        run_workload(kind, WorkloadSpec::ycsb_b(), 15_000, Dataset::OsmLike);
    }
}

#[test]
fn face_like_skew() {
    for kind in [IndexKind::Rs, IndexKind::Rmi, IndexKind::Alex, IndexKind::BTree] {
        run_workload(kind, WorkloadSpec::read_only_uniform(), 15_000, Dataset::FaceLike);
    }
}

#[test]
fn deletes_roundtrip_through_store() {
    let keys = generate_keys(Dataset::Uniform, 5_000, 3);
    for kind in IndexKind::UPDATABLE {
        let config = StoreConfig::test(keys.len());
        let vs = config.layout.value_size;
        let mut store = ViperStore::bulk_load_with(config, &keys, value_of, |pairs| {
            AnyIndex::build(kind, pairs)
        });
        let mut buf = vec![0u8; vs];
        for &k in keys.iter().step_by(3) {
            assert!(store.delete(k).unwrap(), "{}: delete {k}", kind.name());
            assert!(!store.delete(k).unwrap());
            assert!(!store.get(k, &mut buf));
        }
        // Reinsert a deleted key.
        store.put(keys[0], &vec![9u8; vs]).unwrap();
        assert!(store.get(keys[0], &mut buf));
        assert_eq!(buf, vec![9u8; vs], "{}", kind.name());
    }
}
