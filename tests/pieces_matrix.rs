//! Integration: the full §IV design-space matrix — every approximation
//! algorithm × inner structure × leaf kind × retraining policy assembled
//! into a working index and validated against an oracle under churn.

use std::collections::BTreeMap;

use lip::core::approx::ApproxAlgorithm;
use lip::core::pieces::assembled::{PiecewiseConfig, PiecewiseIndex};
use lip::core::pieces::insertion::LeafKind;
use lip::core::pieces::retrain::RetrainPolicy;
use lip::core::pieces::structure::StructureKind;
use lip::core::traits::{Index, OrderedIndex, UpdatableIndex};
use lip::workloads::{generate_keys, Dataset};
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn all_configs() -> Vec<PiecewiseConfig> {
    let mut out = Vec::new();
    for algo in [
        ApproxAlgorithm::Lsa { seg_size: 128 },
        ApproxAlgorithm::OptPla { epsilon: 16 },
        ApproxAlgorithm::Fsw { epsilon: 16 },
    ] {
        for structure in StructureKind::ALL {
            for leaf in [
                LeafKind::Inplace { reserve: 24 },
                LeafKind::Buffer { reserve: 24 },
                LeafKind::Gapped { density: 0.7, max_density: 0.85 },
            ] {
                for policy in [
                    RetrainPolicy::ResegmentLeaf,
                    RetrainPolicy::ExpandOrSplit { expand_factor: 1.5, split_error_threshold: 8.0 },
                ] {
                    out.push(PiecewiseConfig { algo, structure, leaf, policy });
                }
            }
        }
    }
    out
}

#[test]
fn all_72_combinations_survive_churn() {
    let keys = generate_keys(Dataset::OsmLike, 4_000, 33);
    let data: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let configs = all_configs();
    assert_eq!(configs.len(), 72);

    for cfg in configs {
        let mut idx = PiecewiseIndex::build_with(cfg, &data);
        let mut oracle: BTreeMap<u64, u64> = data.iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..4_000u64 {
            match rng.random_range(0..10) {
                0..=5 => {
                    let k: u64 = rng.random();
                    assert_eq!(idx.insert(k, i), oracle.insert(k, i), "{cfg:?}");
                }
                6..=7 => {
                    let k = *keys.get(rng.random_range(0..keys.len())).unwrap();
                    assert_eq!(idx.get(k), oracle.get(&k).copied(), "{cfg:?}");
                }
                _ => {
                    let k = *keys.get(rng.random_range(0..keys.len())).unwrap();
                    assert_eq!(idx.remove(k), oracle.remove(&k), "{cfg:?}");
                }
            }
        }
        assert_eq!(idx.len(), oracle.len(), "{cfg:?}");
        let got = idx.range_vec(0, u64::MAX);
        let expect: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, expect, "{cfg:?}");
    }
}

#[test]
fn bounded_algos_beat_lsa_on_max_error() {
    // The core claim of Fig. 17 (a): Opt-PLA/FSW guarantee max error,
    // LSA does not.
    let keys = generate_keys(Dataset::OsmLike, 100_000, 44);
    let eps = 32u64;
    for algo in [ApproxAlgorithm::OptPla { epsilon: eps }, ApproxAlgorithm::Fsw { epsilon: eps }] {
        for seg in algo.segment(&keys) {
            assert!(seg.max_error <= eps + 1, "{}: {}", algo.name(), seg.max_error);
        }
    }
    let lsa = ApproxAlgorithm::Lsa { seg_size: 4096 }.segment(&keys);
    let worst = lsa.iter().map(|s| s.max_error).max().unwrap();
    assert!(worst > eps, "LSA should exceed the bound somewhere, worst {worst}");
}

#[test]
fn optpla_fewest_segments_per_error_budget() {
    // Fig. 17 (b): under the same max-error budget, Opt-PLA needs the
    // fewest segments.
    let keys = generate_keys(Dataset::OsmLike, 100_000, 55);
    for eps in [16u64, 64, 256] {
        let opt = ApproxAlgorithm::OptPla { epsilon: eps }.segment(&keys).len();
        let fsw = ApproxAlgorithm::Fsw { epsilon: eps }.segment(&keys).len();
        assert!(opt <= fsw, "eps {eps}: opt {opt} > fsw {fsw}");
    }
}
