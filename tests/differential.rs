//! Differential testing: every index kind runs the same randomized op
//! sequence over every dataset distribution; all must agree with the
//! oracle (and therefore with each other). This is the cross-cutting net
//! under the paper's "same environment, fair comparison" premise — if two
//! indexes ever disagreed, the whole benchmark would be comparing apples
//! to broken oranges.

use std::collections::BTreeMap;

use lip::core::traits::{ConcurrentIndex, Index, OrderedIndex, UpdatableIndex};
use lip::workloads::{generate_keys, Dataset};
use lip::{AnyConcurrentIndex, AnyIndex, ConcurrentKind, IndexKind};
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn churn(kind: IndexKind, dataset: Dataset, seed: u64, ops: usize) {
    let keys = generate_keys(dataset, 3_000, seed);
    let data: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let mut idx = AnyIndex::build(kind, &data);
    let mut oracle: BTreeMap<u64, u64> = data.iter().copied().collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
    for i in 0..ops as u64 {
        // Mix of loaded keys, near-misses and fresh keys across the whole
        // distribution's range.
        let k = match rng.random_range(0..4) {
            0 => keys[rng.random_range(0..keys.len())],
            1 => keys[rng.random_range(0..keys.len())].wrapping_add(1),
            2 => rng.random(),
            _ => rng.random::<u64>() >> rng.random_range(0..48u32),
        };
        match rng.random_range(0..10) {
            0..=3 => {
                assert_eq!(
                    idx.get(k),
                    oracle.get(&k).copied(),
                    "{} on {:?}: get({k}) diverged at op {i}",
                    kind.name(),
                    dataset
                );
            }
            4..=7 => {
                assert_eq!(
                    idx.insert(k, i),
                    oracle.insert(k, i),
                    "{} on {:?}: insert({k}) diverged at op {i}",
                    kind.name(),
                    dataset
                );
            }
            8 => {
                assert_eq!(
                    idx.remove(k),
                    oracle.remove(&k),
                    "{} on {:?}: remove({k}) diverged at op {i}",
                    kind.name(),
                    dataset
                );
            }
            _ => {
                if kind.supports_range() {
                    let hi = k.saturating_add(rng.random::<u64>() >> 40);
                    let got = idx.range_vec(k, hi);
                    let expect: Vec<(u64, u64)> =
                        oracle.range(k..=hi).map(|(&a, &b)| (a, b)).collect();
                    assert_eq!(
                        got,
                        expect,
                        "{} on {:?}: range({k}..={hi}) diverged at op {i}",
                        kind.name(),
                        dataset
                    );
                }
            }
        }
    }
    assert_eq!(idx.len(), oracle.len(), "{} on {:?}", kind.name(), dataset);
}

#[test]
fn updatable_indexes_agree_on_every_distribution() {
    for dataset in Dataset::ALL {
        for kind in IndexKind::UPDATABLE {
            churn(kind, dataset, 0xC0FFEE ^ dataset as u64, 3_000);
        }
    }
}

#[test]
fn read_only_indexes_agree_on_every_distribution() {
    for dataset in Dataset::ALL {
        let keys = generate_keys(dataset, 20_000, 77);
        let data: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let oracle: BTreeMap<u64, u64> = data.iter().copied().collect();
        let indexes: Vec<AnyIndex> =
            IndexKind::ALL.iter().map(|&kind| AnyIndex::build(kind, &data)).collect();
        let mut rng = StdRng::seed_from_u64(78);
        for _ in 0..20_000 {
            let k: u64 = if rng.random_bool(0.5) {
                keys[rng.random_range(0..keys.len())]
            } else {
                rng.random()
            };
            let expect = oracle.get(&k).copied();
            for idx in &indexes {
                assert_eq!(idx.get(k), expect, "{} on {:?}: get({k})", idx.name(), dataset);
            }
        }
    }
}

/// Replays one seeded churn stream through a concurrent route (via
/// [`ConcurrentIndex`]'s shared-reference API) against the oracle.
fn churn_concurrent(kind: ConcurrentKind, seed: u64, ops: usize) {
    let keys = generate_keys(Dataset::OsmLike, 3_000, seed);
    let data: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let idx = AnyConcurrentIndex::build(kind, &data);
    let mut oracle: BTreeMap<u64, u64> = data.iter().copied().collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
    for i in 0..ops as u64 {
        let k = match rng.random_range(0..4) {
            0 => keys[rng.random_range(0..keys.len())],
            1 => keys[rng.random_range(0..keys.len())].wrapping_add(1),
            2 => rng.random(),
            _ => rng.random::<u64>() >> rng.random_range(0..48u32),
        };
        match rng.random_range(0..10) {
            0..=3 => {
                assert_eq!(
                    ConcurrentIndex::get(&idx, k),
                    oracle.get(&k).copied(),
                    "{}: get({k}) diverged at op {i}",
                    kind.name()
                );
            }
            4..=7 => {
                assert_eq!(
                    ConcurrentIndex::insert(&idx, k, i),
                    oracle.insert(k, i),
                    "{}: insert({k}) diverged at op {i}",
                    kind.name()
                );
            }
            _ => {
                assert_eq!(
                    ConcurrentIndex::remove(&idx, k),
                    oracle.remove(&k),
                    "{}: remove({k}) diverged at op {i}",
                    kind.name()
                );
            }
        }
    }
    assert_eq!(ConcurrentIndex::len(&idx), oracle.len(), "{}", kind.name());
}

#[test]
fn concurrent_routes_agree_with_oracle() {
    // All three routing strategies — Native (XIndex's own concurrency),
    // Sharded (range sharding over a single-writer index) and GlobalLock
    // (one shard) — must be behaviorally identical to the sequential
    // oracle; concurrency is a transport, never a semantic.
    let routes = [
        ConcurrentKind::of(IndexKind::XIndex).unwrap(), // Native
        ConcurrentKind::of(IndexKind::Alex).unwrap(),   // Sharded
        ConcurrentKind::of(IndexKind::Pgm).unwrap(),    // Sharded
        ConcurrentKind::of(IndexKind::FitingBuf).unwrap(), // Sharded
        ConcurrentKind::global_lock(IndexKind::BTree).unwrap(),
        ConcurrentKind::global_lock(IndexKind::FitingBuf).unwrap(),
    ];
    for kind in routes {
        churn_concurrent(kind, 0xBEEF, 4_000);
    }
}

#[test]
fn concurrent_routes_agree_under_parallel_disjoint_writers() {
    // Four writers insert disjoint key sets through a shared reference;
    // the end state must equal the sequentially-built oracle. Exercises
    // the actual locking of each route, not just its single-thread path.
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 2_000;
    let keys = generate_keys(Dataset::OsmLike, 3_000, 17);
    let data: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    for kind in [
        ConcurrentKind::of(IndexKind::XIndex).unwrap(),
        ConcurrentKind::of(IndexKind::BTree).unwrap(),
        ConcurrentKind::global_lock(IndexKind::Pgm).unwrap(),
    ] {
        let idx = AnyConcurrentIndex::build(kind, &data);
        li_sync::thread::scope(|s| {
            for t in 0..WRITERS {
                let idx = &idx;
                let keys = &keys;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + t);
                    for i in 0..PER_WRITER {
                        // Fresh keys land in writer-disjoint residue
                        // classes; loaded keys are only read.
                        let k = (rng.random::<u64>() / WRITERS) * WRITERS + t;
                        ConcurrentIndex::insert(idx, k, t * PER_WRITER + i);
                        let probe = keys[rng.random_range(0..keys.len())];
                        assert!(
                            ConcurrentIndex::get(idx, probe).is_some(),
                            "{}: loaded {probe} vanished",
                            kind.name()
                        );
                    }
                });
            }
        });
        // Sequential oracle replay of the same four deterministic streams.
        let mut oracle: BTreeMap<u64, u64> = data.iter().copied().collect();
        for t in 0..WRITERS {
            let mut rng = StdRng::seed_from_u64(100 + t);
            for i in 0..PER_WRITER {
                let k = (rng.random::<u64>() / WRITERS) * WRITERS + t;
                oracle.insert(k, t * PER_WRITER + i);
                let _ = rng.random_range(0..keys.len());
            }
        }
        assert_eq!(ConcurrentIndex::len(&idx), oracle.len(), "{}", kind.name());
        for (&k, &v) in &oracle {
            assert_eq!(
                ConcurrentIndex::get(&idx, k),
                Some(v),
                "{}: get({k}) after parallel load",
                kind.name()
            );
        }
    }
}

#[test]
fn lipp_and_apex_agree_with_alex_under_identical_churn() {
    // The two extension indexes replay the exact op stream given to ALEX.
    let keys = generate_keys(Dataset::OsmLike, 5_000, 5);
    let data: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let mut alex = lip::alex::Alex::build_with(lip::alex::AlexConfig::default(), &data);
    let mut lipp = lip::lipp::Lipp::build_with(lip::lipp::LippConfig::default(), &data);
    let dev = std::sync::Arc::new(lip::nvm::NvmDevice::new(lip::nvm::NvmConfig::fast(
        4_000 * lip::apex::NODE_BYTES,
    )));
    let mut apex = lip::apex::Apex::build(dev, &data);

    let mut rng = StdRng::seed_from_u64(6);
    for i in 0..20_000u64 {
        let k: u64 = rng.random();
        if rng.random_bool(0.8) {
            let a = alex.insert(k, i);
            assert_eq!(lipp.insert(k, i), a, "insert {k}");
            assert_eq!(apex.insert(k, i), a, "insert {k}");
        } else {
            let a = alex.remove(k);
            assert_eq!(lipp.remove(k), a, "remove {k}");
            assert_eq!(apex.remove(k), a, "remove {k}");
        }
    }
    assert_eq!(alex.len(), lipp.len());
    assert_eq!(alex.len(), apex.len());
    let a = alex.range_vec(0, u64::MAX);
    assert_eq!(a, lipp.range_vec(0, u64::MAX));
    assert_eq!(a, apex.range_vec(0, u64::MAX));
}
