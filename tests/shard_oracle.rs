//! Multi-threaded oracle test for the range-sharding lift (ISSUE
//! satellite): seeded concurrent op streams against `Sharded`
//! (and natively-concurrent XIndex) must end in exactly the state a
//! `BTreeMap` oracle predicts — full contents, point lookups, misses and
//! range scans.
//!
//! Threads own disjoint key sets (key ≡ t mod THREADS), so every
//! interleaving must produce the same final state; any divergence is a
//! lost/duplicated/misrouted update inside the shard router.

use std::collections::BTreeMap;
use std::sync::Arc;

use li_sync::sync::atomic::{AtomicBool, Ordering};

use lip::core::traits::{ConcurrentIndex, OrderedIndex};
use lip::{AdaptivePolicy, AnyConcurrentIndex, ConcurrentKind, IndexKind};

const THREADS: u64 = 8;
const OPS_PER_THREAD: usize = 4_000;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs one seeded concurrent session against `kind` and checks the final
/// state against the merged per-thread oracles.
fn oracle_session(kind: ConcurrentKind, seed: u64) {
    // Initial keys step by 3: gcd(3, 8) = 1, so the bulk load covers every
    // thread's residue class.
    let initial: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i * 3, i)).collect();
    let idx = Arc::new(AnyConcurrentIndex::build(kind, &initial));

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let idx = Arc::clone(&idx);
        let initial = initial.clone();
        handles.push(li_sync::thread::spawn(move || {
            // This thread's oracle starts from its residue slice of the
            // bulk load and mirrors every op it applies.
            let mut oracle: BTreeMap<u64, u64> =
                initial.into_iter().filter(|(k, _)| k % THREADS == t).collect();
            let mut s = seed ^ (t.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let key_span = 120_000u64 / THREADS;
            for i in 0..OPS_PER_THREAD {
                let r = splitmix64(&mut s);
                let key = (r % key_span) * THREADS + t; // key ≡ t (mod THREADS)
                match r >> 61 {
                    // ~5/8 inserts or updates, 1/8 removes, 2/8 reads.
                    0..=4 => {
                        let v = (i as u64) << 8 | t;
                        let prev = ConcurrentIndex::insert(&*idx, key, v);
                        assert_eq!(prev, oracle.insert(key, v), "t{t} insert {key}");
                    }
                    5 => {
                        let prev = ConcurrentIndex::remove(&*idx, key);
                        assert_eq!(prev, oracle.remove(&key), "t{t} remove {key}");
                    }
                    _ => {
                        let got = ConcurrentIndex::get(&*idx, key);
                        assert_eq!(got, oracle.get(&key).copied(), "t{t} get {key}");
                    }
                }
            }
            oracle
        }));
    }

    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for h in handles {
        oracle.extend(h.join().expect("oracle thread"));
    }

    // Final state: size, every live key, a sample of absent keys.
    assert_eq!(ConcurrentIndex::len(&*idx), oracle.len(), "{} len", kind.name());
    for (&k, &v) in &oracle {
        assert_eq!(ConcurrentIndex::get(&*idx, k), Some(v), "{} key {k}", kind.name());
    }
    let max_key = 120_000 * 3;
    for probe in (0..max_key).step_by(997) {
        assert_eq!(
            ConcurrentIndex::get(&*idx, probe),
            oracle.get(&probe).copied(),
            "{} probe {probe}",
            kind.name()
        );
    }

    // Range scans across shard boundaries must match the oracle exactly.
    let mut s = seed ^ 0xdead_beef;
    for _ in 0..50 {
        let lo = splitmix64(&mut s) % max_key;
        let hi = lo + 1 + splitmix64(&mut s) % 20_000;
        let got = idx.range_vec(lo, hi);
        let want: Vec<(u64, u64)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want, "{} range [{lo}, {hi}]", kind.name());
    }
}

#[test]
fn sharded_btree_matches_oracle() {
    oracle_session(ConcurrentKind::of(IndexKind::BTree).unwrap(), 0xb7ee);
}

#[test]
fn sharded_pgm_matches_oracle() {
    oracle_session(ConcurrentKind::of(IndexKind::Pgm).unwrap(), 0x96d1);
}

#[test]
fn sharded_alex_matches_oracle() {
    oracle_session(ConcurrentKind::of(IndexKind::Alex).unwrap(), 0xa1e);
}

#[test]
fn native_xindex_matches_oracle() {
    oracle_session(ConcurrentKind::of(IndexKind::XIndex).unwrap(), 0x71de);
}

#[test]
fn global_lock_route_matches_oracle() {
    oracle_session(ConcurrentKind::global_lock(IndexKind::SkipList).unwrap(), 0x10c);
}

/// 8-thread oracle session against the *adaptive* router while a
/// background thread forces shard splits, merges, and index-kind
/// hot-swaps mid-stream. Every op's return value and the full final
/// state must still match the oracle exactly: a cutover that lost a
/// side-logged write, replayed one twice, or mis-routed around a moving
/// boundary shows up as a divergence.
#[test]
fn adaptive_session_with_forced_adaptations_matches_oracle() {
    let seed = 0xada97_u64;
    let initial: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i * 3, i)).collect();
    let idx = Arc::new(AnyConcurrentIndex::build_adaptive(4, &initial, AdaptivePolicy::default()));
    let stop = Arc::new(AtomicBool::new(false));

    // Adaptation churn: rotate split / merge / kind-swap over the live
    // layout until the writers finish. Failures (Busy, CannotSplit,
    // Stale under concurrent layout changes) are expected and skipped —
    // what matters is that plenty of each commit mid-stream.
    let adapt = {
        let idx = Arc::clone(&idx);
        let stop = Arc::clone(&stop);
        li_sync::thread::spawn(move || {
            let (mut splits, mut merges, mut swaps) = (0u32, 0u32, 0u32);
            let mut step = 0usize;
            while !stop.load(Ordering::Acquire) {
                let kinds = idx.shard_kinds();
                let n = kinds.len();
                let s = step % n;
                match step % 3 {
                    0 if n < 12 => {
                        if idx.force_split(s).is_ok() {
                            splits += 1;
                        }
                    }
                    1 if n >= 3 => {
                        if idx.force_merge(step % (n - 1)).is_ok() {
                            merges += 1;
                        }
                    }
                    _ => {
                        // Swap to the *other* registered kind so the
                        // count only covers real hot-swaps, not no-ops.
                        if idx.force_swap(s, 1 - kinds[s]).is_ok() {
                            swaps += 1;
                        }
                    }
                }
                step += 1;
                li_sync::thread::sleep(std::time::Duration::from_micros(200));
            }
            (splits, merges, swaps)
        })
    };

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let idx = Arc::clone(&idx);
        let initial = initial.clone();
        handles.push(li_sync::thread::spawn(move || {
            let mut oracle: BTreeMap<u64, u64> =
                initial.into_iter().filter(|(k, _)| k % THREADS == t).collect();
            let mut s = seed ^ (t.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let key_span = 120_000u64 / THREADS;
            for i in 0..OPS_PER_THREAD {
                let r = splitmix64(&mut s);
                let key = (r % key_span) * THREADS + t;
                match r >> 61 {
                    0..=4 => {
                        let v = (i as u64) << 8 | t;
                        let prev = ConcurrentIndex::insert(&*idx, key, v);
                        assert_eq!(prev, oracle.insert(key, v), "t{t} insert {key}");
                    }
                    5 => {
                        let prev = ConcurrentIndex::remove(&*idx, key);
                        assert_eq!(prev, oracle.remove(&key), "t{t} remove {key}");
                    }
                    _ => {
                        let got = ConcurrentIndex::get(&*idx, key);
                        assert_eq!(got, oracle.get(&key).copied(), "t{t} get {key}");
                    }
                }
            }
            oracle
        }));
    }

    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for h in handles {
        oracle.extend(h.join().expect("oracle thread"));
    }
    stop.store(true, Ordering::Release);
    let (splits, merges, swaps) = adapt.join().expect("adaptation thread");
    assert!(splits >= 1, "no split committed mid-stream");
    assert!(merges >= 1, "no merge committed mid-stream");
    assert!(swaps >= 1, "no kind hot-swap committed mid-stream");

    // No lost, duplicated, or misrouted keys across all the cutovers.
    assert_eq!(ConcurrentIndex::len(&*idx), oracle.len(), "adaptive len");
    for (&k, &v) in &oracle {
        assert_eq!(ConcurrentIndex::get(&*idx, k), Some(v), "adaptive key {k}");
    }
    let max_key = 120_000 * 3;
    for probe in (0..max_key).step_by(997) {
        assert_eq!(
            ConcurrentIndex::get(&*idx, probe),
            oracle.get(&probe).copied(),
            "adaptive probe {probe}"
        );
    }
    let mut s = seed ^ 0xdead_beef;
    for _ in 0..50 {
        let lo = splitmix64(&mut s) % max_key;
        let hi = lo + 1 + splitmix64(&mut s) % 20_000;
        let got = idx.range_vec(lo, hi);
        let want: Vec<(u64, u64)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want, "adaptive range [{lo}, {hi}]");
    }
    // The full scan seen through the ordered face is the oracle, in order.
    let all = idx.range_vec(0, u64::MAX);
    let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(all, want, "adaptive full scan");
}
