//! Integration: device-level persistence semantics driven through the full
//! store stack — failure injection beyond the per-crate unit tests.

use std::sync::Arc;

use lip::nvm::{DurabilityTracking, LatencyModel, NvmConfig, NvmDevice};
use lip::viper::{RecordLayout, StoreConfig, ViperStore};
use lip::{AnyIndex, IndexKind};
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn crash_config(records: usize) -> StoreConfig {
    let layout = RecordLayout::small();
    let bytes = (records * 2 / layout.slots_per_page() + 16) * layout.page_size;
    StoreConfig {
        layout,
        nvm: NvmConfig {
            capacity: bytes,
            latency: LatencyModel::dram_like(),
            durability: DurabilityTracking::Shadow,
        },
    }
}

/// Randomised crash points: after every prefix of a random op stream, a
/// crash must recover exactly the operations applied so far (the store
/// persists synchronously, so nothing in flight can be lost).
#[test]
fn random_crash_points_recover_exact_state() {
    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..5 {
        let config = crash_config(4_000);
        let layout = config.layout;
        let mut store = ViperStore::bulk_load_with(config, &[], |_, _| {}, |pairs| {
            AnyIndex::build(IndexKind::BTree, pairs)
        });
        let mut oracle = std::collections::HashMap::new();
        let ops = 200 + round * 150;
        for i in 0..ops {
            let k = rng.random_range(0..500u64);
            if rng.random_bool(0.8) {
                let b = (i % 251) as u8;
                store.put(k, &vec![b; layout.value_size]);
                oracle.insert(k, b);
            } else {
                let existed = store.delete(k);
                assert_eq!(existed, oracle.remove(&k).is_some());
            }
        }
        // Crash.
        let dev = store.into_device();
        let mut dev = Arc::try_unwrap(dev).ok().expect("unique");
        dev.crash();
        let recovered = ViperStore::recover_with(Arc::new(dev), layout, |pairs| {
            AnyIndex::build(IndexKind::BTree, pairs)
        });
        assert_eq!(recovered.len(), oracle.len(), "round {round}");
        let mut buf = vec![0u8; layout.value_size];
        for (&k, &b) in &oracle {
            assert!(recovered.get(k, &mut buf), "round {round}: lost {k}");
            assert!(buf.iter().all(|&x| x == b), "round {round}: wrong value for {k}");
        }
    }
}

/// Unflushed writes straight to the device must vanish at a crash while
/// everything the store wrote (which always persists before publishing)
/// survives — i.e. the store's publish protocol really is what saves it.
#[test]
fn tampering_without_flush_is_lost() {
    let config = crash_config(1_000);
    let layout = config.layout;
    let keys: Vec<u64> = (0..500).map(|i| i * 7).collect();
    let store = ViperStore::bulk_load_with(config, &keys, |k, buf| buf.fill((k % 251) as u8), |p| {
        AnyIndex::build(IndexKind::Alex, p)
    });
    let dev = store.into_device();
    // Scribble over a region far past the allocated pages without flushing.
    let cap = dev.capacity();
    dev.write(cap - 64, &[0xFFu8; 64]);
    let mut dev = Arc::try_unwrap(dev).ok().expect("unique");
    dev.crash();
    let mut probe = [0u8; 64];
    dev.read_into(cap - 64, &mut probe);
    assert_eq!(probe, [0u8; 64], "unflushed scribble must be rolled back");
    let recovered: ViperStore<AnyIndex> =
        ViperStore::recover_with(Arc::new(dev), layout, |p| AnyIndex::build(IndexKind::Alex, p));
    assert_eq!(recovered.len(), keys.len());
}

/// The latency model must actually charge time: an Optane-like device is
/// measurably slower than a DRAM-like one for the same traffic.
#[test]
fn latency_model_is_enforced() {
    use std::time::Instant;
    let mk = |latency: LatencyModel| {
        NvmDevice::new(NvmConfig { capacity: 1 << 20, latency, durability: DurabilityTracking::Disabled })
    };
    let fast = mk(LatencyModel::dram_like());
    let slow = mk(LatencyModel::optane_like());
    let mut buf = [0u8; 256];
    let mut time = |dev: &NvmDevice| {
        let t0 = Instant::now();
        for i in 0..2_000usize {
            dev.read_into((i * 256) % (1 << 19), &mut buf);
        }
        t0.elapsed()
    };
    let t_fast = time(&fast);
    let t_slow = time(&slow);
    // The spin-based model guarantees an absolute floor: 2000 single-block
    // reads at 220 ns each. The relative check is kept loose because this
    // test may share a core with sibling test binaries.
    assert!(
        t_slow.as_micros() >= 440,
        "optane-like paid only {t_slow:?}, below the modelled floor"
    );
    assert!(
        t_slow > t_fast,
        "optane-like ({t_slow:?}) should be slower than dram-like ({t_fast:?})"
    );
}
