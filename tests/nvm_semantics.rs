//! Integration: device-level persistence semantics driven through the full
//! store stack — failure injection beyond the per-crate unit tests.

use std::sync::Arc;

use lip::nvm::{DurabilityTracking, LatencyModel, NvmConfig, NvmDevice};
use lip::viper::{RecordLayout, StoreConfig, ViperStore};
use lip::{AnyIndex, IndexKind};
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn crash_config(records: usize) -> StoreConfig {
    let layout = RecordLayout::small();
    let bytes = (records * 2 / layout.slots_per_page() + 16) * layout.page_size;
    StoreConfig {
        layout,
        nvm: NvmConfig {
            capacity: bytes,
            latency: LatencyModel::dram_like(),
            durability: DurabilityTracking::Shadow,
        },
        crash_safe_updates: false,
        durability: None,
    }
}

/// Randomised crash points: after every prefix of a random op stream, a
/// crash must recover exactly the operations applied so far (the store
/// persists synchronously, so nothing in flight can be lost).
#[test]
fn random_crash_points_recover_exact_state() {
    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..5 {
        let config = crash_config(4_000);
        let layout = config.layout;
        let mut store = ViperStore::bulk_load_with(
            config,
            &[],
            |_, _| {},
            |pairs| AnyIndex::build(IndexKind::BTree, pairs),
        );
        let mut oracle = std::collections::HashMap::new();
        let ops = 200 + round * 150;
        for i in 0..ops {
            let k = rng.random_range(0..500u64);
            if rng.random_bool(0.8) {
                let b = (i % 251) as u8;
                store.put(k, &vec![b; layout.value_size]).unwrap();
                oracle.insert(k, b);
            } else {
                let existed = store.delete(k).unwrap();
                assert_eq!(existed, oracle.remove(&k).is_some());
            }
        }
        // Crash.
        let dev = store.into_device();
        let mut dev = Arc::try_unwrap(dev).ok().expect("unique");
        dev.crash();
        let recovered = ViperStore::recover_with(Arc::new(dev), layout, |pairs| {
            AnyIndex::build(IndexKind::BTree, pairs)
        });
        assert_eq!(recovered.len(), oracle.len(), "round {round}");
        let mut buf = vec![0u8; layout.value_size];
        for (&k, &b) in &oracle {
            assert!(recovered.get(k, &mut buf), "round {round}: lost {k}");
            assert!(buf.iter().all(|&x| x == b), "round {round}: wrong value for {k}");
        }
    }
}

/// Unflushed writes straight to the device must vanish at a crash while
/// everything the store wrote (which always persists before publishing)
/// survives — i.e. the store's publish protocol really is what saves it.
#[test]
fn tampering_without_flush_is_lost() {
    let config = crash_config(1_000);
    let layout = config.layout;
    let keys: Vec<u64> = (0..500).map(|i| i * 7).collect();
    let store = ViperStore::bulk_load_with(
        config,
        &keys,
        |k, buf| buf.fill((k % 251) as u8),
        |p| AnyIndex::build(IndexKind::Alex, p),
    );
    let dev = store.into_device();
    // Scribble over a region far past the allocated pages without flushing.
    let cap = dev.capacity();
    dev.write(cap - 64, &[0xFFu8; 64]);
    let mut dev = Arc::try_unwrap(dev).ok().expect("unique");
    dev.crash();
    let mut probe = [0u8; 64];
    dev.read_into(cap - 64, &mut probe);
    assert_eq!(probe, [0u8; 64], "unflushed scribble must be rolled back");
    let recovered: ViperStore<AnyIndex> =
        ViperStore::recover_with(Arc::new(dev), layout, |p| AnyIndex::build(IndexKind::Alex, p));
    assert_eq!(recovered.len(), keys.len());
}

/// Shadow semantics, edge case 1: a flush alone only *stages* the range.
/// Until a fence promotes it, a crash discards it — and the staged copy
/// must not leak into a fence issued after power returns.
#[test]
fn flush_without_fence_is_not_durable() {
    let mut dev = NvmDevice::new(NvmConfig::fast_with_crash(4096));
    dev.write(128, b"staged-but-never-fenced");
    dev.flush(128, 23);
    // No fence. Power loss.
    dev.crash();
    let mut buf = [0xAAu8; 23];
    dev.read_into(128, &mut buf);
    assert_eq!(buf, [0u8; 23], "flushed-unfenced bytes must be rolled back");
    // The crash must also have cleared the pending queue: fencing now must
    // not promote the pre-crash flush.
    dev.fence();
    dev.read_into(128, &mut buf);
    assert_eq!(buf, [0u8; 23], "stale pending flush resurrected by post-crash fence");
}

/// Shadow semantics, edge case 2: overlapping flush ranges. Each flush
/// snapshots memory *at flush time*; the fence replays snapshots in issue
/// order, so a later overlapping flush wins on the overlap while both
/// ranges' non-overlapping parts stay durable.
#[test]
fn overlapping_flush_ranges_last_snapshot_wins() {
    let mut dev = NvmDevice::new(NvmConfig::fast_with_crash(4096));
    dev.write(0, &[0x11u8; 96]);
    dev.flush(0, 96); // snapshot: [0,96) = 0x11
    dev.write(64, &[0x22u8; 96]);
    dev.flush(64, 96); // snapshot: [64,160) = 0x22, overlaps [64,96)
    dev.fence();
    dev.crash();
    let mut buf = [0u8; 160];
    dev.read_into(0, &mut buf);
    assert!(buf[..64].iter().all(|&b| b == 0x11), "prefix from first flush lost");
    assert!(buf[64..160].iter().all(|&b| b == 0x22), "overlap must carry the later snapshot");
    // Reversed timing: a flush taken *before* an overlapping rewrite must
    // persist the old bytes, not the rewrite, if only the first flush was
    // issued.
    let mut dev = NvmDevice::new(NvmConfig::fast_with_crash(4096));
    dev.write(0, &[0x33u8; 64]);
    dev.flush(0, 64);
    dev.write(0, &[0x44u8; 64]); // dirty again, never re-flushed
    dev.fence();
    dev.crash();
    let mut buf = [0u8; 64];
    dev.read_into(0, &mut buf);
    assert!(
        buf.iter().all(|&b| b == 0x33),
        "fence must promote the flush-time snapshot, not the final memory"
    );
}

/// Shadow semantics, edge case 3: flushing a region that was never written
/// is a harmless no-op — it persists the zero bytes already there and must
/// not disturb neighbouring durable data.
#[test]
fn flush_of_unwritten_region_is_harmless() {
    let mut dev = NvmDevice::new(NvmConfig::fast_with_crash(4096));
    dev.write(0, b"neighbour");
    dev.persist(0, 9);
    // [1024,1088) was never written.
    dev.flush(1024, 64);
    dev.fence();
    dev.crash();
    let mut buf = [0xAAu8; 64];
    dev.read_into(1024, &mut buf);
    assert_eq!(buf, [0u8; 64], "unwritten region must read as zeros after crash");
    let mut n = [0u8; 9];
    dev.read_into(0, &mut n);
    assert_eq!(&n, b"neighbour", "neighbouring durable data disturbed");
}

/// Shadow semantics, edge case 4: crashes are idempotent and compose. A
/// second crash with no intervening durable work lands on the same image,
/// and work staged between the two crashes is lost just like before the
/// first one.
#[test]
fn double_crash_recovers_the_same_image() {
    let mut dev = NvmDevice::new(NvmConfig::fast_with_crash(4096));
    dev.write(256, b"durable");
    dev.persist(256, 7);
    dev.write(512, b"volatile");
    dev.crash();
    let mut buf = [0u8; 8];
    dev.read_into(512, &mut buf);
    assert_eq!(buf, [0u8; 8], "unflushed write survived the first crash");
    // Between crashes: write + flush but no fence, then crash again.
    dev.write(512, b"midflush");
    dev.flush(512, 8);
    dev.crash();
    dev.read_into(512, &mut buf);
    assert_eq!(buf, [0u8; 8], "unfenced write survived the second crash");
    let mut d = [0u8; 7];
    dev.read_into(256, &mut d);
    assert_eq!(&d, b"durable", "durable data lost across double crash");
    // And an immediate third crash is a no-op.
    dev.crash();
    dev.read_into(256, &mut d);
    assert_eq!(&d, b"durable");
}

/// The latency model must actually charge time: an Optane-like device is
/// measurably slower than a DRAM-like one for the same traffic.
#[test]
fn latency_model_is_enforced() {
    use std::time::Instant;
    let mk = |latency: LatencyModel| {
        NvmDevice::new(NvmConfig {
            capacity: 1 << 20,
            latency,
            durability: DurabilityTracking::Disabled,
        })
    };
    let fast = mk(LatencyModel::dram_like());
    let slow = mk(LatencyModel::optane_like());
    let mut buf = [0u8; 256];
    let mut time = |dev: &NvmDevice| {
        let t0 = Instant::now();
        for i in 0..2_000usize {
            dev.read_into((i * 256) % (1 << 19), &mut buf);
        }
        t0.elapsed()
    };
    let t_fast = time(&fast);
    let t_slow = time(&slow);
    // The spin-based model guarantees an absolute floor: 2000 single-block
    // reads at 220 ns each. The relative check is kept loose because this
    // test may share a core with sibling test binaries.
    assert!(
        t_slow.as_micros() >= 440,
        "optane-like paid only {t_slow:?}, below the modelled floor"
    );
    assert!(
        t_slow > t_fast,
        "optane-like ({t_slow:?}) should be slower than dram-like ({t_fast:?})"
    );
}
