//! Integration: crash-recovery round trips (the availability analysis of
//! §III-E2 / Fig. 16) for every index kind, including honest
//! loss-of-unpersisted-data semantics.

use std::sync::Arc;

use lip::nvm::{DurabilityTracking, LatencyModel, NvmConfig};
use lip::viper::{RecordLayout, StoreConfig, ViperStore};
use lip::workloads::{generate_keys, Dataset};
use lip::{AnyIndex, IndexKind};

fn crash_config(n: usize) -> StoreConfig {
    let layout = RecordLayout::small();
    let bytes = (n * 2 / layout.slots_per_page() + 16) * layout.page_size;
    StoreConfig {
        layout,
        nvm: NvmConfig {
            capacity: bytes,
            latency: LatencyModel::dram_like(),
            durability: DurabilityTracking::Shadow,
        },
        crash_safe_updates: false,
    }
}

fn value_of(key: u64, buf: &mut [u8]) {
    buf.fill((key % 251) as u8);
}

#[test]
fn recover_after_clean_shutdown_every_kind() {
    let keys = generate_keys(Dataset::YcsbNormal, 10_000, 5);
    for kind in IndexKind::ALL {
        let config = crash_config(keys.len());
        let layout = config.layout;
        let store = ViperStore::bulk_load_with(config, &keys, value_of, |pairs| {
            AnyIndex::build(kind, pairs)
        });
        let dev = store.into_device();
        let recovered = ViperStore::recover_with(dev, layout, |pairs| AnyIndex::build(kind, pairs));
        assert_eq!(recovered.len(), keys.len(), "{}", kind.name());
        let mut buf = vec![0u8; layout.value_size];
        let mut expect = vec![0u8; layout.value_size];
        for &k in keys.iter().step_by(37) {
            assert!(recovered.get(k, &mut buf), "{}: lost {k}", kind.name());
            value_of(k, &mut expect);
            assert_eq!(buf, expect, "{}", kind.name());
        }
    }
}

#[test]
fn crash_preserves_all_published_records() {
    let keys = generate_keys(Dataset::Uniform, 8_000, 6);
    for kind in [IndexKind::Alex, IndexKind::Pgm, IndexKind::BTree, IndexKind::Cceh] {
        let config = crash_config(keys.len() * 2);
        let layout = config.layout;
        let mut store = ViperStore::bulk_load_with(config, &keys, value_of, |pairs| {
            AnyIndex::build(kind, pairs)
        });
        // Post-load mutations: updates, deletes, fresh inserts.
        for &k in keys.iter().take(500) {
            store.put(k, &vec![0xBBu8; layout.value_size]).unwrap();
        }
        for &k in keys.iter().skip(500).take(250) {
            store.delete(k).unwrap();
        }
        for i in 0..500u64 {
            // Fresh keys far outside the loaded set.
            store.put(u64::MAX - 10_000 + i, &vec![0xCCu8; layout.value_size]).unwrap();
        }
        let live = store.len();

        let dev = store.into_device();
        let mut dev = Arc::try_unwrap(dev).ok().expect("unique device");
        dev.crash();
        let recovered =
            ViperStore::recover_with(Arc::new(dev), layout, |pairs| AnyIndex::build(kind, pairs));
        assert_eq!(recovered.len(), live, "{}", kind.name());

        let mut buf = vec![0u8; layout.value_size];
        assert!(recovered.get(keys[0], &mut buf), "{}", kind.name());
        assert_eq!(buf, vec![0xBB; layout.value_size], "{}: update lost", kind.name());
        assert!(!recovered.get(keys[600], &mut buf), "{}: delete lost", kind.name());
        assert!(recovered.get(u64::MAX - 10_000, &mut buf), "{}: insert lost", kind.name());
        assert_eq!(buf, vec![0xCC; layout.value_size], "{}", kind.name());
    }
}

#[test]
fn recovered_store_keeps_working() {
    let keys = generate_keys(Dataset::OsmLike, 5_000, 9);
    let config = crash_config(keys.len() * 2);
    let layout = config.layout;
    let store: ViperStore<lip::alex::Alex> = ViperStore::bulk_load(config, &keys, value_of);
    let dev = store.into_device();
    let mut recovered: ViperStore<lip::alex::Alex> = ViperStore::recover(dev, layout);

    // The recovered store accepts further writes and reads.
    let mut buf = vec![0u8; layout.value_size];
    for i in 0..2_000u64 {
        let k = u64::MAX / 2 + i * 3 + 1;
        recovered.put(k, &vec![7u8; layout.value_size]).unwrap();
        assert!(recovered.get(k, &mut buf));
    }
    assert_eq!(recovered.len(), keys.len() + 2_000);
}
