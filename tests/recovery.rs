//! Integration: crash-recovery round trips (the availability analysis of
//! §III-E2 / Fig. 16) for every index kind, including honest
//! loss-of-unpersisted-data semantics.

use std::sync::Arc;

use lip::nvm::{DurabilityTracking, LatencyModel, NvmConfig};
use lip::viper::{RecordLayout, StoreConfig, ViperStore};
use lip::workloads::{generate_keys, Dataset};
use lip::{AnyIndex, IndexKind};

fn crash_config(n: usize) -> StoreConfig {
    let layout = RecordLayout::small();
    let bytes = (n * 2 / layout.slots_per_page() + 16) * layout.page_size;
    StoreConfig {
        layout,
        nvm: NvmConfig {
            capacity: bytes,
            latency: LatencyModel::dram_like(),
            durability: DurabilityTracking::Shadow,
        },
        crash_safe_updates: false,
        durability: None,
    }
}

fn value_of(key: u64, buf: &mut [u8]) {
    buf.fill((key % 251) as u8);
}

#[test]
fn recover_after_clean_shutdown_every_kind() {
    let keys = generate_keys(Dataset::YcsbNormal, 10_000, 5);
    for kind in IndexKind::ALL {
        let config = crash_config(keys.len());
        let layout = config.layout;
        let store = ViperStore::bulk_load_with(config, &keys, value_of, |pairs| {
            AnyIndex::build(kind, pairs)
        });
        let dev = store.into_device();
        let recovered = ViperStore::recover_with(dev, layout, |pairs| AnyIndex::build(kind, pairs));
        assert_eq!(recovered.len(), keys.len(), "{}", kind.name());
        let mut buf = vec![0u8; layout.value_size];
        let mut expect = vec![0u8; layout.value_size];
        for &k in keys.iter().step_by(37) {
            assert!(recovered.get(k, &mut buf), "{}: lost {k}", kind.name());
            value_of(k, &mut expect);
            assert_eq!(buf, expect, "{}", kind.name());
        }
    }
}

#[test]
fn crash_preserves_all_published_records() {
    let keys = generate_keys(Dataset::Uniform, 8_000, 6);
    for kind in [IndexKind::Alex, IndexKind::Pgm, IndexKind::BTree, IndexKind::Cceh] {
        let config = crash_config(keys.len() * 2);
        let layout = config.layout;
        let mut store = ViperStore::bulk_load_with(config, &keys, value_of, |pairs| {
            AnyIndex::build(kind, pairs)
        });
        // Post-load mutations: updates, deletes, fresh inserts.
        for &k in keys.iter().take(500) {
            store.put(k, &vec![0xBBu8; layout.value_size]).unwrap();
        }
        for &k in keys.iter().skip(500).take(250) {
            store.delete(k).unwrap();
        }
        for i in 0..500u64 {
            // Fresh keys far outside the loaded set.
            store.put(u64::MAX - 10_000 + i, &vec![0xCCu8; layout.value_size]).unwrap();
        }
        let live = store.len();

        let dev = store.into_device();
        let mut dev = Arc::try_unwrap(dev).ok().expect("unique device");
        dev.crash();
        let recovered =
            ViperStore::recover_with(Arc::new(dev), layout, |pairs| AnyIndex::build(kind, pairs));
        assert_eq!(recovered.len(), live, "{}", kind.name());

        let mut buf = vec![0u8; layout.value_size];
        assert!(recovered.get(keys[0], &mut buf), "{}", kind.name());
        assert_eq!(buf, vec![0xBB; layout.value_size], "{}: update lost", kind.name());
        assert!(!recovered.get(keys[600], &mut buf), "{}: delete lost", kind.name());
        assert!(recovered.get(u64::MAX - 10_000, &mut buf), "{}: insert lost", kind.name());
        assert_eq!(buf, vec![0xCC; layout.value_size], "{}", kind.name());
    }
}

#[test]
fn recovered_store_keeps_working() {
    let keys = generate_keys(Dataset::OsmLike, 5_000, 9);
    let config = crash_config(keys.len() * 2);
    let layout = config.layout;
    let store: ViperStore<lip::alex::Alex> = ViperStore::bulk_load(config, &keys, value_of);
    let dev = store.into_device();
    let mut recovered: ViperStore<lip::alex::Alex> = ViperStore::recover(dev, layout);

    // The recovered store accepts further writes and reads.
    let mut buf = vec![0u8; layout.value_size];
    for i in 0..2_000u64 {
        let k = u64::MAX / 2 + i * 3 + 1;
        recovered.put(k, &vec![7u8; layout.value_size]).unwrap();
        assert!(recovered.get(k, &mut buf));
    }
    assert_eq!(recovered.len(), keys.len() + 2_000);
}

mod durable {
    //! Satellite (ISSUE 6b): recovery resilience when the durability
    //! artifacts themselves are damaged. A corrupt checkpoint blob or a
    //! truncated manifest must be *detected* (CRC), surfaced as
    //! quarantine-style telemetry, and degrade gracefully — previous
    //! generation first, full page rescan as the floor — never a panic,
    //! never silent data loss.

    use super::*;
    use lip::core::telemetry::{Event, Recorder};
    use lip::viper::checkpoint::Geometry;
    use lip::viper::{DurabilityConfig, RecoverOptions};
    use lip::IndexKind;

    const KIND: IndexKind = IndexKind::BTree;

    /// Loads a durable store, advances it two checkpoint generations,
    /// leaves a replayable WAL tail, and pulls the plug. Returns the
    /// crashed device, its geometry and the expected live count.
    fn crashed_durable_device(
    ) -> (lip::nvm::NvmDevice, Geometry, DurabilityConfig, RecordLayout, Vec<u64>, usize) {
        let keys = generate_keys(Dataset::Uniform, 2_000, 11);
        let durability = DurabilityConfig::sized_for(4_096, 512);
        let config = crash_config(keys.len() * 2).with_durability(durability);
        let layout = config.layout;
        let capacity = config.nvm.capacity;
        let mut store = ViperStore::bulk_load_with(config, &keys, value_of, |pairs| {
            AnyIndex::build(KIND, pairs)
        }); // bulk load → checkpoint generation 1
        for &k in keys.iter().take(100) {
            store.put(k, &vec![0xBBu8; layout.value_size]).unwrap();
        }
        store.checkpoint_now().unwrap(); // generation 2
                                         // Tail ops that only the WAL knows about.
        for &k in keys.iter().skip(100).take(50) {
            store.put(k, &vec![0xDDu8; layout.value_size]).unwrap();
        }
        for i in 0..20u64 {
            store.put(u64::MAX - 100 + i, &vec![0xEEu8; layout.value_size]).unwrap();
        }
        for &k in keys.iter().skip(1_900).take(10) {
            store.delete(k).unwrap();
        }
        let expected = store.len();
        assert_eq!(expected, 2_000 + 20 - 10);
        assert!(store.checkpoint_generation() >= 2);

        let geom = Geometry::compute(capacity, layout.page_size, &durability)
            .expect("store was built with this geometry");
        let mut dev = Arc::try_unwrap(store.into_device()).ok().expect("unique device");
        dev.crash();
        (dev, geom, durability, layout, keys, expected)
    }

    /// Recovers `dev` and checks every acked mutation survived.
    fn recover_and_verify(
        dev: lip::nvm::NvmDevice,
        durability: DurabilityConfig,
        layout: RecordLayout,
        keys: &[u64],
        expected: usize,
    ) -> (lip::viper::RecoveryReport, Recorder, u64) {
        let recorder = Recorder::enabled();
        let opts = RecoverOptions { durability: Some(durability), ..RecoverOptions::default() };
        let (store, report) =
            ViperStore::recover_recorded(Arc::new(dev), layout, opts, recorder.clone(), |pairs| {
                AnyIndex::build(KIND, pairs)
            });
        assert_eq!(store.len(), expected, "acked writes lost");
        let mut buf = vec![0u8; layout.value_size];
        assert!(store.get(keys[0], &mut buf));
        assert_eq!(buf, vec![0xBB; layout.value_size], "checkpointed update lost");
        assert!(store.get(keys[120], &mut buf));
        assert_eq!(buf, vec![0xDD; layout.value_size], "WAL-tail update lost");
        assert!(store.get(u64::MAX - 100, &mut buf), "WAL-tail insert lost");
        assert!(!store.get(keys[1_905], &mut buf), "WAL-tail delete resurrected");
        let generation = store.checkpoint_generation();
        (report, recorder, generation)
    }

    /// Persistently scribbles over `len` bytes at `offset`.
    fn corrupt(dev: &lip::nvm::NvmDevice, offset: usize, len: usize, byte: u8) {
        dev.write(offset, &vec![byte; len]);
        dev.persist(offset, len);
        dev.fence();
    }

    #[test]
    fn corrupted_checkpoint_blob_falls_back_one_generation() {
        let (dev, geom, durability, layout, keys, expected) = crashed_durable_device();
        // Generation 2 lives in slot 0 (gen % 2); shred its blob body.
        corrupt(&dev, geom.blob_base[0] + 8, 256, 0xA5);
        let (report, recorder, generation) =
            recover_and_verify(dev, durability, layout, &keys, expected);
        assert!(report.from_checkpoint, "previous generation must still be used");
        // Post-recovery checkpoint = loaded generation + 1; falling back
        // to generation 1 lands it on 2 (a verified generation 2 would
        // have produced 3).
        assert_eq!(generation, 2, "recovery did not fall back to generation 1");
        assert!(report.quarantined >= 1, "the rejected blob must be reported");
        assert!(recorder.snapshot().event(Event::QuarantineSlot) >= 1);
    }

    #[test]
    fn truncated_manifest_falls_back_one_generation() {
        let (dev, geom, durability, layout, keys, expected) = crashed_durable_device();
        // A torn manifest write: the tail of generation 2's manifest
        // (including its CRC) never made it out.
        corrupt(&dev, geom.manifest_base[0] + 16, 48, 0x00);
        let (report, _recorder, generation) =
            recover_and_verify(dev, durability, layout, &keys, expected);
        assert!(report.from_checkpoint);
        assert_eq!(generation, 2, "recovery did not fall back to generation 1");
    }

    #[test]
    fn all_checkpoint_artifacts_corrupt_degrades_to_full_rescan() {
        let (dev, geom, durability, layout, keys, expected) = crashed_durable_device();
        for slot in 0..2 {
            corrupt(&dev, geom.manifest_base[slot], 64, 0xFF);
            corrupt(&dev, geom.blob_base[slot], 512, 0xFF);
        }
        let (report, _recorder, generation) =
            recover_and_verify(dev, durability, layout, &keys, expected);
        assert!(!report.from_checkpoint, "no generation is loadable — must rescan");
        // The rescan floor still replays WAL deletes (else the 10
        // deleted keys would resurrect — checked in recover_and_verify)
        // and re-checkpoints so the *next* recovery is fast again.
        assert!(generation >= 1);
    }
}
