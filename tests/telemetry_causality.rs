//! Counter causality: telemetry is only trustworthy if every counter can
//! be traced back to the structural mechanism that claims to emit it.
//! These tests drive seeded workloads through the pieces matrix, the
//! concrete indexes, the concurrent routes and the crash-torture harness,
//! and assert the invariants that make snapshots assertable evidence:
//!
//! * no retraining ⇒ `Retrain == 0` (a read-only run emits *nothing*);
//! * delta-buffer insertion ⇒ `BufferFlush > 0`, and only there;
//! * every strategy's event fingerprint is distinguishable from the rest;
//! * the three concurrent routes are tellable apart from shard banks;
//! * every `QuarantineSlot` in crash torture has a matching injected
//!   fault (or an in-flight op cut by the crash) to blame;
//! * every injected transient write fault surfaces as exactly one `Retry`
//!   event (absent recovery healing, which bypasses the retrying path);
//! * every `RepairedSlot` traces back to a `QuarantineSlot`, and a full
//!   repair pass accounts for every quarantined record as superseded or
//!   lost.

use std::collections::BTreeMap;

use lip::core::approx::ApproxAlgorithm;
use lip::core::pieces::assembled::{PiecewiseConfig, PiecewiseIndex};
use lip::core::pieces::insertion::LeafKind;
use lip::core::pieces::retrain::RetrainPolicy;
use lip::core::pieces::structure::StructureKind;
use lip::core::telemetry::{Event, OpKind, Recorder};
use lip::core::traits::{ConcurrentIndex, Index, UpdatableIndex};
use lip::torture::{torture_run, TortureConfig};
use lip::workloads::{generate_keys, Dataset};
use lip::{AdaptivePolicy, AnyConcurrentIndex, AnyIndex, ConcurrentKind, IndexKind};
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn seed_data(n: usize, seed: u64) -> Vec<(u64, u64)> {
    let keys = generate_keys(Dataset::OsmLike, n, seed);
    keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect()
}

/// Builds a piecewise index with an attached enabled recorder and churns
/// `inserts` seeded random keys through it.
fn churned_pieces(
    leaf: LeafKind,
    policy: RetrainPolicy,
    inserts: usize,
) -> (PiecewiseIndex, Recorder) {
    let cfg = PiecewiseConfig {
        algo: ApproxAlgorithm::OptPla { epsilon: 16 },
        structure: StructureKind::BTree,
        leaf,
        policy,
    };
    let mut idx = PiecewiseIndex::build_with(cfg, &seed_data(4_000, 33));
    let rec = Recorder::enabled();
    idx.set_recorder(rec.clone());
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..inserts as u64 {
        idx.insert(rng.random(), i);
    }
    (idx, rec)
}

const LEAVES: [LeafKind; 3] = [
    LeafKind::Inplace { reserve: 24 },
    LeafKind::Buffer { reserve: 24 },
    LeafKind::Gapped { density: 0.7, max_density: 0.85 },
];

const POLICIES: [RetrainPolicy; 2] = [
    RetrainPolicy::ResegmentLeaf,
    RetrainPolicy::ExpandOrSplit { expand_factor: 1.5, split_error_threshold: 8.0 },
];

#[test]
fn pieces_matrix_retrain_counter_matches_stats() {
    // The telemetry Retrain counter and the index's own RetrainStats are
    // maintained at the same site; they must never drift apart.
    for leaf in LEAVES {
        for policy in POLICIES {
            let (idx, rec) = churned_pieces(leaf, policy, 4_000);
            let snap = rec.snapshot();
            assert_eq!(
                snap.event(Event::Retrain),
                idx.stats().count,
                "{leaf:?}/{policy:?}: telemetry vs stats retrain count"
            );
            assert_eq!(
                snap.op(OpKind::Retrain).count,
                idx.stats().count,
                "{leaf:?}/{policy:?}: every retrain must be timed"
            );
            assert!(idx.stats().count > 0, "{leaf:?}/{policy:?}: churn must retrain");
        }
    }
}

#[test]
fn buffer_flush_fires_iff_delta_buffer_leaf() {
    for leaf in LEAVES {
        for policy in POLICIES {
            let (_, rec) = churned_pieces(leaf, policy, 4_000);
            let flushes = rec.event_count(Event::BufferFlush);
            if matches!(leaf, LeafKind::Buffer { .. }) {
                assert!(flushes > 0, "{leaf:?}/{policy:?}: buffer leaf must flush");
            } else {
                assert_eq!(flushes, 0, "{leaf:?}/{policy:?}: no buffer, no flush");
            }
        }
    }
}

#[test]
fn expand_node_only_under_expand_or_split_policy() {
    for leaf in LEAVES {
        let (_, rec) = churned_pieces(leaf, RetrainPolicy::ResegmentLeaf, 4_000);
        assert_eq!(
            rec.event_count(Event::ExpandNode),
            0,
            "{leaf:?}: ResegmentLeaf never expands in place"
        );
    }
}

#[test]
fn read_only_run_emits_no_events() {
    // No retraining ⇒ Retrain == 0, and a pure-read run emits nothing on
    // any counter: the always-on layer must be silent when nothing moves.
    let cfg = PiecewiseConfig {
        algo: ApproxAlgorithm::OptPla { epsilon: 16 },
        structure: StructureKind::BTree,
        leaf: LeafKind::Buffer { reserve: 24 },
        policy: RetrainPolicy::ResegmentLeaf,
    };
    let data = seed_data(4_000, 33);
    let mut idx = PiecewiseIndex::build_with(cfg, &data);
    let rec = Recorder::enabled();
    idx.set_recorder(rec.clone());
    for &(k, v) in data.iter().step_by(7) {
        assert_eq!(idx.get(k), Some(v));
    }
    let snap = rec.snapshot();
    for e in Event::ALL {
        assert_eq!(snap.event(e), 0, "read-only run emitted {}", e.name());
    }
    assert_eq!(snap.op(OpKind::Insert).count, 0);
    assert_eq!(snap.op(OpKind::Retrain).count, 0);
}

#[test]
fn inplace_shifts_more_keys_than_gapped() {
    // Fig. 18 (a)'s mechanism, visible through KeyShift: inplace leaves
    // shift stored keys on every crowded insert, model-made gaps mostly
    // absorb them.
    let policy = RetrainPolicy::ResegmentLeaf;
    let (_, inp) = churned_pieces(LeafKind::Inplace { reserve: 24 }, policy, 4_000);
    let (_, gap) =
        churned_pieces(LeafKind::Gapped { density: 0.7, max_density: 0.85 }, policy, 4_000);
    let (mi, mg) = (inp.event_count(Event::KeyShift), gap.event_count(Event::KeyShift));
    assert!(mi > mg, "inplace shifts {mi} <= gapped shifts {mg}");
}

/// Churns seeded random inserts through one [`AnyIndex`] kind with an
/// attached recorder and returns the recorder.
fn churned_any(kind: IndexKind, inserts: usize) -> Recorder {
    let mut idx = AnyIndex::build(kind, &seed_data(4_000, 33));
    let rec = Recorder::enabled();
    idx.set_recorder(rec.clone());
    let mut rng = StdRng::seed_from_u64(9);
    for i in 0..inserts as u64 {
        idx.insert(rng.random(), i);
    }
    rec
}

#[test]
fn index_fingerprints_are_distinguishable() {
    // Each retraining/insertion strategy leaves a distinct event shape —
    // the property that lets a snapshot identify the strategy blind.
    let fiting = churned_any(IndexKind::FitingBuf, 8_000).snapshot();
    assert!(fiting.event(Event::Retrain) > 0);
    assert!(fiting.event(Event::BufferFlush) > 0, "FITing-buf flushes its leaf buffers");
    assert_eq!(fiting.event(Event::DeltaMerge), 0);

    let pgm = churned_any(IndexKind::Pgm, 8_000).snapshot();
    assert!(pgm.event(Event::Retrain) > 0);
    assert!(pgm.event(Event::DeltaMerge) > 0, "PGM's LSM levels must merge");
    assert_eq!(pgm.event(Event::BufferFlush), 0);
    assert_eq!(pgm.event(Event::SplitNode), 0);
    assert_eq!(pgm.event(Event::ExpandNode), 0);

    let alex = churned_any(IndexKind::Alex, 8_000).snapshot();
    assert!(alex.event(Event::Retrain) > 0);
    assert!(
        alex.event(Event::ExpandNode) + alex.event(Event::SplitNode) > 0,
        "ALEX retrains via expansion or splitting"
    );
    assert_eq!(alex.event(Event::DeltaMerge), 0);
    assert_eq!(alex.event(Event::BufferFlush), 0);

    let xindex = churned_any(IndexKind::XIndex, 8_000).snapshot();
    assert!(xindex.event(Event::Retrain) > 0);
    assert!(xindex.event(Event::BufferFlush) > 0, "XIndex compaction merges its delta buffer");
    assert_eq!(xindex.event(Event::DeltaMerge), 0);
    assert_eq!(xindex.event(Event::ExpandNode), 0);
}

#[test]
fn insert_latency_histograms_populate() {
    for kind in [IndexKind::FitingBuf, IndexKind::Alex] {
        let rec = churned_any(kind, 2_000);
        let snap = rec.snapshot();
        let h = snap.op(OpKind::Insert);
        assert_eq!(h.count, 2_000, "{}: every insert timed", kind.name());
        assert!(h.max >= h.p999 && h.p999 >= h.p50, "{}: ordered percentiles", kind.name());
    }
}

#[test]
fn concurrent_routes_are_distinguishable_from_shard_banks() {
    let data = seed_data(6_000, 11);
    let drive = |kind: ConcurrentKind| {
        let mut idx = AnyConcurrentIndex::build(kind, &data);
        let rec = Recorder::enabled();
        idx.set_recorder(rec.clone());
        let mut rng = StdRng::seed_from_u64(13);
        for i in 0..1_000u64 {
            let k: u64 = rng.random();
            idx.insert(k, i);
            ConcurrentIndex::get(&idx, k);
        }
        rec.snapshot()
    };

    // Native (XIndex): since the dyn-dispatch collapse this is one shard
    // cell whose writes go through the index's shared-reference surface —
    // one bank, and never any cell-lock contention.
    let native = drive(ConcurrentKind::of(IndexKind::XIndex).unwrap());
    assert_eq!(native.active_shards(), 1, "native route is a single cell");

    // GlobalLock: exactly one bank funnels everything.
    let lock = drive(ConcurrentKind::global_lock(IndexKind::BTree).unwrap());
    assert_eq!(lock.active_shards(), 1, "global lock is one shard");

    // Sharded: uniform random keys hit many banks.
    let shard = drive(ConcurrentKind::of(IndexKind::BTree).unwrap());
    assert!(shard.active_shards() > 1, "sharded route spreads over banks");

    // Single-threaded driving can never contend the shard locks.
    for (name, snap) in [("native", &native), ("lock", &lock), ("shard", &shard)] {
        assert_eq!(
            snap.event(Event::ShardLockWait),
            0,
            "{name}: single-threaded run saw lock contention"
        );
        assert_eq!(snap.total_lock_waits(), 0, "{name}");
    }
}

/// Tuner/adaptation causality: every committed structural change
/// (`ShardSplit`/`ShardMerge`/`KindSwap`) is preceded by exactly one
/// `TunerDecision`, so decisions can never undercount commits — a
/// decision whose cutover aborts leaves the decision count ahead. Forced
/// (operator-driven) adaptations bypass the tuner and must emit the
/// structural event *without* a decision.
#[test]
fn tuner_decisions_precede_every_committed_adaptation() {
    let data = seed_data(16_000, 21);
    let mut policy = AdaptivePolicy::default();
    // Aggressive hysteresis so a short test run crosses the thresholds.
    policy.tuner.min_dwell_epochs = 1;
    policy.tuner.cooldown_epochs = 0;
    policy.tuner.min_epoch_ops = 64;
    policy.tuner.min_swap_ops = 64;
    let mut idx = AnyConcurrentIndex::build_adaptive(2, &data, policy);
    let rec = Recorder::enabled();
    idx.set_recorder(rec.clone());

    // Write-heavy epochs over a narrow hot range until the tuner commits
    // at least one adaptation (kind swap toward the write-heavy kind
    // first, by rule priority).
    let lo_keys: Vec<u64> = {
        let mut sorted: Vec<u64> = data.iter().map(|&(k, _)| k).collect();
        sorted.sort_unstable();
        sorted.into_iter().take(1_000).collect()
    };
    let mut committed = 0usize;
    for epoch in 0..12u64 {
        for (i, &k) in lo_keys.iter().enumerate() {
            idx.insert(k.wrapping_add(1), epoch * 10_000 + i as u64);
        }
        committed += idx.run_adaptation();
        if committed >= 2 {
            break;
        }
    }
    assert!(committed >= 1, "tuner never committed an adaptation");

    let s = rec.snapshot();
    let structural =
        s.event(Event::ShardSplit) + s.event(Event::ShardMerge) + s.event(Event::KindSwap);
    assert!(s.event(Event::KindSwap) >= 1, "write-heavy drift must hot-swap a shard");
    assert_eq!(structural, committed as u64, "every committed action emits one structural event");
    assert!(
        s.event(Event::TunerDecision) >= structural,
        "decisions ({}) must cover every committed adaptation ({structural})",
        s.event(Event::TunerDecision)
    );

    // Forced adaptations are operator actions, not tuner decisions: the
    // structural counter moves, the decision counter must not.
    let decisions_before = rec.event_count(Event::TunerDecision);
    let splits_before = rec.event_count(Event::ShardSplit);
    idx.force_split(0).expect("forced split");
    assert_eq!(rec.event_count(Event::ShardSplit), splits_before + 1);
    assert_eq!(
        rec.event_count(Event::TunerDecision),
        decisions_before,
        "forced adaptation must not masquerade as a tuner decision"
    );
}

#[test]
fn viper_store_ops_and_recovery_are_counted() {
    let keys: Vec<u64> = (0..600u64).map(|i| i * 3 + 1).collect();
    let cfg = lip::viper::StoreConfig::test(1_000);
    let mut store = lip::viper::ViperStore::bulk_load_with(
        cfg,
        &keys,
        |k, buf| buf.fill((k % 251) as u8),
        |pairs| AnyIndex::build(IndexKind::BTree, pairs),
    );
    let rec = Recorder::enabled();
    store.set_recorder(rec.clone());

    let vs = cfg.layout.value_size;
    let val = vec![7u8; vs];
    let mut buf = vec![0u8; vs];
    for k in 0..100u64 {
        store.put(k * 5 + 2, &val).unwrap();
    }
    for k in 0..40u64 {
        store.get(k * 3 + 1, &mut buf);
    }
    for k in 0..10u64 {
        store.delete(k * 3 + 1).unwrap();
    }
    store.scan(0, 500, 64, &mut |_, _| {});

    let snap = rec.snapshot();
    assert_eq!(snap.op(OpKind::Put).count, 100);
    assert_eq!(snap.op(OpKind::Get).count, 40);
    assert_eq!(snap.op(OpKind::Delete).count, 10);
    assert_eq!(snap.op(OpKind::Scan).count, 1);

    // Clean-device recovery: timed once, zero quarantine events.
    let dev = store.into_device();
    let rec2 = Recorder::enabled();
    let (recovered, report) = lip::viper::ViperStore::recover_recorded(
        dev,
        cfg.layout,
        lip::viper::RecoverOptions::default(),
        rec2.clone(),
        |pairs| AnyIndex::build(IndexKind::BTree, pairs),
    );
    assert_eq!(report.quarantined, 0);
    let snap2 = rec2.snapshot();
    assert_eq!(snap2.op(OpKind::Recovery).count, 1);
    assert_eq!(snap2.event(Event::QuarantineSlot), 0);
    assert!(snap2.op(OpKind::Recovery).max > 0, "recovery latency recorded");
    // The recorder stays attached: post-recovery ops keep counting.
    let mut recovered = recovered;
    recovered.put(1, &val).unwrap();
    assert_eq!(rec2.op_count(OpKind::Put), 1);
}

#[test]
fn every_torture_quarantine_has_a_matching_fault() {
    // ~40 seeded schedules: the QuarantineSlot counter must equal the
    // recovery report exactly, and any quarantine must be attributable to
    // an injected fault or the op the crash cut mid-flight.
    let cfg = TortureConfig::quick(IndexKind::BTree);
    let mut quarantined_total = 0u64;
    for seed in 0..40u64 {
        let out = torture_run(seed, &cfg);
        assert!(out.passed(), "seed {seed}: {:?}", out.divergences);
        let q = out.telemetry.event(Event::QuarantineSlot);
        assert_eq!(
            q, out.report.quarantined as u64,
            "seed {seed}: telemetry vs report quarantine count"
        );
        if q > 0 {
            let injected = out.faults.torn_writes + out.faults.dropped_flushes;
            assert!(
                injected > 0 || out.crashed_mid_run,
                "seed {seed}: {q} quarantined slot(s) with no fault to blame"
            );
        }
        // Both recoveries (pre-run + post-crash) are always timed.
        assert_eq!(out.telemetry.op(OpKind::Recovery).count, 2, "seed {seed}");
        quarantined_total += q;
    }
    // The sweep must actually exercise the quarantine path somewhere;
    // otherwise this test proves nothing. Seeds are fixed, so this is
    // deterministic, not flaky.
    assert!(quarantined_total > 0, "no seed exercised quarantine — widen the sweep");
}

#[test]
fn injected_transient_faults_match_retry_events() {
    // With the store's retry armed, torture runs count causality both
    // ways: the heap emits one `Retry` per observed write failure, and a
    // store-level retry always records a backoff wait. `torture_run`
    // itself flags Retry/failed_writes drift as a divergence; here we also
    // prove the sweep actually exercised both mechanisms.
    let cfg = TortureConfig::quick_retrying(IndexKind::BTree);
    let mut injected_total = 0u64;
    let mut backoffs_total = 0u64;
    for seed in 0..32u64 {
        let out = torture_run(seed, &cfg);
        assert!(out.passed(), "seed {seed}: {:?}", out.divergences);
        if out.report.pages_healed == 0 {
            assert_eq!(
                out.telemetry.event(Event::Retry),
                out.faults.failed_writes,
                "seed {seed}: Retry events vs injected write failures"
            );
        }
        // Every backoff wait is both counted and timed at the same site.
        assert_eq!(
            out.telemetry.event(Event::BackoffWait),
            out.telemetry.op(OpKind::BackoffWait).count,
            "seed {seed}: BackoffWait event vs histogram"
        );
        // An op records at most one attempts sample but at least one
        // backoff per retry, so samples can never outnumber waits.
        assert!(
            out.telemetry.op(OpKind::RetryAttempts).count
                <= out.telemetry.event(Event::BackoffWait),
            "seed {seed}: more retried ops than backoff waits"
        );
        injected_total += out.faults.failed_writes;
        backoffs_total += out.telemetry.event(Event::BackoffWait);
    }
    assert!(injected_total > 0, "sweep injected no write failures — widen it");
    assert!(backoffs_total > 0, "sweep never exercised store-level backoff — widen it");
}

#[test]
fn every_repaired_slot_had_a_matching_quarantine() {
    use lip::viper::{RecoverOptions, StoreConfig, ViperStore};

    let keys: Vec<u64> = (0..200u64).map(|i| i * 3 + 1).collect();
    let cfg = StoreConfig::test(400);
    let store = ViperStore::bulk_load_with(
        cfg,
        &keys,
        |k, buf| buf.fill((k % 251) as u8),
        |pairs| AnyIndex::build(IndexKind::BTree, pairs),
    );
    // Corrupt a handful of published payloads behind the CRC's back.
    let corrupted: Vec<(u64, u64)> =
        keys.iter().step_by(40).map(|&k| (k, Index::get(store.index(), k).unwrap())).collect();
    let dev = store.into_device();
    for &(_, off) in &corrupted {
        let voff = cfg.layout.value_offset(off as usize);
        dev.write(voff, &vec![0xAA; cfg.layout.value_size]);
        dev.persist(voff, cfg.layout.value_size);
    }

    let rec = Recorder::enabled();
    let (store, report) = ViperStore::recover_recorded(
        dev,
        cfg.layout,
        RecoverOptions::default(),
        rec.clone(),
        |pairs| AnyIndex::build(IndexKind::BTree, pairs),
    );
    assert_eq!(report.quarantined, corrupted.len());

    let outcome = store.repair_quarantined();
    // No newer copy of these keys exists, so repair must report every one
    // of them as lost — and name the right keys.
    assert_eq!(outcome.superseded, 0);
    let mut lost = outcome.lost.clone();
    lost.sort_unstable();
    let mut expect: Vec<u64> = corrupted.iter().map(|&(k, _)| k).collect();
    expect.sort_unstable();
    assert_eq!(lost, expect);

    // Causality: exactly one RepairedSlot per QuarantineSlot, no phantoms.
    let snap = rec.snapshot();
    assert_eq!(snap.event(Event::QuarantineSlot), corrupted.len() as u64);
    assert_eq!(snap.event(Event::RepairedSlot), snap.event(Event::QuarantineSlot));
    // The quarantine list is drained; a second pass finds nothing.
    let again = store.repair_quarantined();
    assert_eq!(again.superseded + again.lost.len(), 0);
    assert_eq!(rec.snapshot().event(Event::RepairedSlot), corrupted.len() as u64);
}

#[test]
fn concurrent_routes_agree_with_oracle_and_record_writes() {
    // Differential + telemetry in one: each route replays the same seeded
    // stream against a BTreeMap oracle, and its write counters must equal
    // the number of mutations issued.
    let data = seed_data(3_000, 21);
    for kind in [
        ConcurrentKind::of(IndexKind::XIndex).unwrap(),
        ConcurrentKind::of(IndexKind::Alex).unwrap(),
        ConcurrentKind::global_lock(IndexKind::Pgm).unwrap(),
    ] {
        let mut idx = AnyConcurrentIndex::build(kind, &data);
        let rec = Recorder::enabled();
        idx.set_recorder(rec.clone());
        let mut oracle: BTreeMap<u64, u64> = data.iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(23);
        let mut writes = 0u64;
        for i in 0..2_000u64 {
            let k: u64 = rng.random::<u64>() >> rng.random_range(0..32u32);
            match rng.random_range(0..3) {
                0 => {
                    assert_eq!(
                        ConcurrentIndex::get(&idx, k),
                        oracle.get(&k).copied(),
                        "{}: get({k})",
                        kind.name()
                    );
                }
                1 => {
                    assert_eq!(
                        idx.insert(k, i),
                        oracle.insert(k, i),
                        "{}: insert({k})",
                        kind.name()
                    );
                    writes += 1;
                }
                _ => {
                    assert_eq!(idx.remove(k), oracle.remove(&k), "{}: remove({k})", kind.name());
                    writes += 1;
                }
            }
        }
        assert_eq!(ConcurrentIndex::len(&idx), oracle.len(), "{}", kind.name());
        let snap = rec.snapshot();
        let recorded: u64 = snap.shards.iter().map(|s| s.writes).sum();
        if !snap.shards.is_empty() {
            assert_eq!(recorded, writes, "{}: recorded writes vs issued mutations", kind.name());
        }
    }
}

#[test]
fn wal_events_are_causal_and_only_from_durable_stores() {
    // Satellite (ISSUE 6c): the WAL's event pair is causal — every
    // GroupCommit covers at least one WalAppend, so commits can never
    // outnumber appends — and a store without a durability region can
    // emit neither (nor checkpoint/replay events).
    use lip::viper::{DurabilityConfig, RecoverOptions, StoreConfig, ViperStore};

    let drive = |durable: bool| {
        let mut cfg = StoreConfig::test(2_000);
        if durable {
            cfg = cfg.with_durability(DurabilityConfig::sized_for(4_000, 256));
        }
        let keys: Vec<u64> = (0..500u64).map(|i| i * 3 + 1).collect();
        let mut store = ViperStore::bulk_load_with(
            cfg,
            &keys,
            |k, buf| buf.fill((k % 251) as u8),
            |pairs| AnyIndex::build(IndexKind::BTree, pairs),
        );
        let rec = Recorder::enabled();
        store.set_recorder(rec.clone());
        let val = vec![9u8; cfg.layout.value_size];
        for k in 0..200u64 {
            store.put(k * 7 + 2, &val).unwrap();
        }
        for k in 0..20u64 {
            store.delete(k * 3 + 1).unwrap();
        }
        (store, cfg, rec.snapshot())
    };

    let (_, _, plain) = drive(false);
    for e in [Event::WalAppend, Event::GroupCommit, Event::CheckpointWritten, Event::LogReplay] {
        assert_eq!(plain.event(e), 0, "log-free store emitted {}", e.name());
    }

    let (store, cfg, snap) = drive(true);
    // 200 puts + 20 deletes of present keys: every mutation logged once.
    assert_eq!(snap.event(Event::WalAppend), 220);
    assert!(snap.event(Event::GroupCommit) > 0);
    assert!(
        snap.event(Event::GroupCommit) <= snap.event(Event::WalAppend),
        "commits ({}) outnumber appends ({})",
        snap.event(Event::GroupCommit),
        snap.event(Event::WalAppend)
    );
    assert_eq!(snap.event(Event::LogReplay), 0, "no recovery ran");

    // Recovery causality: one LogReplay event per replayed record.
    let dev = store.into_device();
    let rec = Recorder::enabled();
    let opts = RecoverOptions {
        durability: Some(DurabilityConfig::sized_for(4_000, 256)),
        ..RecoverOptions::default()
    };
    let (_, report) = ViperStore::recover_recorded(dev, cfg.layout, opts, rec.clone(), |pairs| {
        AnyIndex::build(IndexKind::BTree, pairs)
    });
    assert!(report.from_checkpoint);
    assert_eq!(rec.snapshot().event(Event::LogReplay), report.replayed as u64);
}

#[test]
fn concurrent_wal_appends_share_flush_fences() {
    // Satellite (ISSUE 6c): group commit exists to amortize the fence.
    // Four threads hammering one WAL must produce strictly fewer device
    // fences than appends (batching is scheduling-dependent, so the
    // check retries a few times — one batched run proves the mechanism).
    use lip::nvm::{NvmConfig, NvmDevice};
    use lip::viper::Wal;
    use std::sync::Arc;

    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 256;
    let total = THREADS * PER_THREAD;

    let mut batched = false;
    for _attempt in 0..5 {
        // Realistic flush/fence costs (rather than the free dram_like
        // model) keep the leader inside its commit section long enough to
        // be preempted even on a single-CPU runner — otherwise each
        // append+commit finishes within one timeslice and the threads
        // never actually contend.
        let mut nvm_cfg = NvmConfig::fast(2 * total as usize * 32 + 4096);
        nvm_cfg.latency.flush_ns = 2_000;
        nvm_cfg.latency.fence_ns = 20_000;
        let dev = Arc::new(NvmDevice::new(nvm_cfg));
        let mut wal = Wal::new(Arc::clone(&dev), 0, 2 * total, 1);
        let rec = Recorder::enabled();
        wal.set_recorder(rec.clone());
        let wal = Arc::new(wal);
        let fences_before = dev.stats_snapshot().fences;

        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let wal = Arc::clone(&wal);
                li_sync::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        wal.append(t * PER_THREAD + i, i, 1)
                            .expect("fault-free device")
                            .expect("ring sized for the run");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let snap = rec.snapshot();
        let fences = dev.stats_snapshot().fences - fences_before;
        // Unconditional invariants, batched or not.
        assert_eq!(snap.event(Event::WalAppend), total, "every append counted");
        assert!(snap.event(Event::GroupCommit) >= 1);
        assert!(snap.event(Event::GroupCommit) <= snap.event(Event::WalAppend));
        assert!(fences <= total, "more fences than appends");
        assert_eq!(wal.next_lsn(), total + 1, "LSNs stay dense under contention");
        if fences < total && snap.event(Event::GroupCommit) < total {
            batched = true;
            break;
        }
    }
    assert!(batched, "4 contending appenders never shared a single fence in 5 runs");
}
