//! Runtime-selected index wrappers used by the end-to-end harness.

use li_core::pieces::retrain::RetrainStats;
use li_core::traits::{
    BulkBuildIndex, Capabilities, ConcurrentIndex, DepthStats, Index, OrderedIndex, UpdatableIndex,
};
use li_core::{Key, KeyValue, Value};

/// Every index the paper evaluates (§III-A1), selectable at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    // Traditional
    BTree,
    SkipList,
    Cceh,
    Art,
    Wormhole,
    BwTree,
    // Learned, read-only
    Rmi,
    Rs,
    // Learned, updatable
    FitingInp,
    FitingBuf,
    Pgm,
    Alex,
    XIndex,
    /// Bonus index: LIPP (§V-B1, not evaluable by the paper).
    Lipp,
}

impl IndexKind {
    pub const ALL: [IndexKind; 14] = [
        IndexKind::BTree,
        IndexKind::SkipList,
        IndexKind::Cceh,
        IndexKind::Art,
        IndexKind::Wormhole,
        IndexKind::BwTree,
        IndexKind::Rmi,
        IndexKind::Rs,
        IndexKind::FitingInp,
        IndexKind::FitingBuf,
        IndexKind::Pgm,
        IndexKind::Alex,
        IndexKind::XIndex,
        IndexKind::Lipp,
    ];

    /// The learned indexes only.
    pub const LEARNED: [IndexKind; 8] = [
        IndexKind::Rmi,
        IndexKind::Rs,
        IndexKind::FitingInp,
        IndexKind::FitingBuf,
        IndexKind::Pgm,
        IndexKind::Alex,
        IndexKind::XIndex,
        IndexKind::Lipp,
    ];

    /// Indexes that accept inserts (write-capable lineup of Fig. 13/15).
    pub const UPDATABLE: [IndexKind; 12] = [
        IndexKind::BTree,
        IndexKind::SkipList,
        IndexKind::Cceh,
        IndexKind::Art,
        IndexKind::Wormhole,
        IndexKind::BwTree,
        IndexKind::FitingInp,
        IndexKind::FitingBuf,
        IndexKind::Pgm,
        IndexKind::Alex,
        IndexKind::XIndex,
        IndexKind::Lipp,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::BTree => "BTree",
            IndexKind::SkipList => "SkipList",
            IndexKind::Cceh => "CCEH",
            IndexKind::Art => "ART",
            IndexKind::Wormhole => "Wormhole",
            IndexKind::BwTree => "BwTree",
            IndexKind::Rmi => "RMI",
            IndexKind::Rs => "RS",
            IndexKind::FitingInp => "FITing-tree-inp",
            IndexKind::FitingBuf => "FITing-tree-buf",
            IndexKind::Pgm => "PGM",
            IndexKind::Alex => "ALEX",
            IndexKind::XIndex => "XIndex",
            IndexKind::Lipp => "LIPP",
        }
    }

    pub fn is_learned(&self) -> bool {
        IndexKind::LEARNED.contains(self)
    }

    pub fn supports_insert(&self) -> bool {
        IndexKind::UPDATABLE.contains(self)
    }

    pub fn supports_range(&self) -> bool {
        !matches!(self, IndexKind::Cceh)
    }

    /// Whether the index takes concurrent writes natively (`&self`
    /// mutation, Table I's "concurrent writes" column) rather than needing
    /// the range-sharding lift.
    pub fn concurrent_native(&self) -> bool {
        matches!(self, IndexKind::XIndex)
    }

    /// The paper's Table I row for this index (learned indexes only).
    pub fn capabilities(&self) -> Option<Capabilities> {
        let cap = match self {
            IndexKind::Rmi => Capabilities {
                name: "RMI",
                inner_node: "Linear models",
                leaf_node: "Linear",
                bounded_error: false,
                approx_algorithm: "Machine learning (two-stage models)",
                insertion: "-",
                retraining: "-",
                concurrent_writes: false,
            },
            IndexKind::Rs => Capabilities {
                name: "RS",
                inner_node: "Radix tab.",
                leaf_node: "Spline",
                bounded_error: false,
                approx_algorithm: "One-pass spline",
                insertion: "-",
                retraining: "-",
                concurrent_writes: false,
            },
            IndexKind::FitingInp => Capabilities {
                name: "FITing-tree (inp)",
                inner_node: "B+tree",
                leaf_node: "Linear",
                bounded_error: true,
                approx_algorithm: "Opt-PLA (paper's substitution for greedy)",
                insertion: "Inplace",
                retraining: "Retrain one node",
                concurrent_writes: false,
            },
            IndexKind::FitingBuf => Capabilities {
                name: "FITing-tree (buf)",
                inner_node: "B+tree",
                leaf_node: "Linear",
                bounded_error: true,
                approx_algorithm: "Opt-PLA (paper's substitution for greedy)",
                insertion: "Offsite",
                retraining: "Retrain one node",
                concurrent_writes: false,
            },
            IndexKind::Pgm => Capabilities {
                name: "PGM-Index",
                inner_node: "Recursive",
                leaf_node: "Linear",
                bounded_error: true,
                approx_algorithm: "Optimal-PLA",
                insertion: "Offsite",
                retraining: "LSM-Tree",
                concurrent_writes: false,
            },
            IndexKind::Alex => Capabilities {
                name: "ALEX",
                inner_node: "Asymmetric",
                leaf_node: "Linear",
                bounded_error: false,
                approx_algorithm: "LSA+gap",
                insertion: "Inplace (gapped)",
                retraining: "Expand + retrain",
                concurrent_writes: false,
            },
            IndexKind::Lipp => Capabilities {
                name: "LIPP (bonus)",
                inner_node: "Precise models",
                leaf_node: "Precise",
                bounded_error: true,
                approx_algorithm: "Model-based precise placement (no search)",
                insertion: "Inplace (precise)",
                retraining: "Subtree adjust",
                concurrent_writes: false,
            },
            IndexKind::XIndex => Capabilities {
                name: "XIndex",
                inner_node: "RMI",
                leaf_node: "Linear",
                bounded_error: false,
                approx_algorithm: "LSA",
                insertion: "Offsite",
                retraining: "Retrain one node",
                concurrent_writes: true,
            },
            _ => return None,
        };
        Some(cap)
    }
}

/// A runtime-selected index instance.
///
/// Variant sizes differ widely by design — one instance exists per store,
/// so boxing the large variants would only add a pointer chase.
#[allow(clippy::large_enum_variant)]
pub enum AnyIndex {
    BTree(li_traditional::BPlusTree),
    SkipList(li_traditional::SkipList),
    Cceh(li_traditional::Cceh),
    Art(li_traditional::Art),
    Wormhole(li_traditional::Wormhole),
    BwTree(li_traditional::BwTree),
    Rmi(li_rmi::Rmi),
    Rs(li_rs::RadixSpline),
    Fiting(li_fiting::FitingTree),
    Pgm(li_pgm::DynamicPgm),
    Alex(li_alex::Alex),
    XIndex(li_xindex::XIndex),
    Lipp(li_lipp::Lipp),
}

macro_rules! dispatch {
    ($self:ident, $i:ident => $body:expr) => {
        match $self {
            AnyIndex::BTree($i) => $body,
            AnyIndex::SkipList($i) => $body,
            AnyIndex::Cceh($i) => $body,
            AnyIndex::Art($i) => $body,
            AnyIndex::Wormhole($i) => $body,
            AnyIndex::BwTree($i) => $body,
            AnyIndex::Rmi($i) => $body,
            AnyIndex::Rs($i) => $body,
            AnyIndex::Fiting($i) => $body,
            AnyIndex::Pgm($i) => $body,
            AnyIndex::Alex($i) => $body,
            AnyIndex::XIndex($i) => $body,
            AnyIndex::Lipp($i) => $body,
        }
    };
}

impl AnyIndex {
    /// Bulk-builds an index of the given kind over sorted pairs.
    pub fn build(kind: IndexKind, data: &[KeyValue]) -> Self {
        match kind {
            IndexKind::BTree => AnyIndex::BTree(li_traditional::BPlusTree::build(data)),
            IndexKind::SkipList => AnyIndex::SkipList(li_traditional::SkipList::build(data)),
            IndexKind::Cceh => AnyIndex::Cceh(li_traditional::Cceh::build(data)),
            IndexKind::Art => AnyIndex::Art(li_traditional::Art::build(data)),
            IndexKind::Wormhole => AnyIndex::Wormhole(li_traditional::Wormhole::build(data)),
            IndexKind::BwTree => AnyIndex::BwTree(li_traditional::BwTree::build(data)),
            IndexKind::Rmi => AnyIndex::Rmi(li_rmi::Rmi::build(data)),
            IndexKind::Rs => AnyIndex::Rs(li_rs::RadixSpline::build(data)),
            IndexKind::FitingInp => AnyIndex::Fiting(li_fiting::FitingTree::new_inplace(data)),
            IndexKind::FitingBuf => AnyIndex::Fiting(li_fiting::FitingTree::new_buffered(data)),
            IndexKind::Pgm => AnyIndex::Pgm(li_pgm::DynamicPgm::build(data)),
            IndexKind::Alex => AnyIndex::Alex(li_alex::Alex::build(data)),
            IndexKind::XIndex => AnyIndex::XIndex(li_xindex::XIndex::build(data)),
            IndexKind::Lipp => AnyIndex::Lipp(li_lipp::Lipp::build(data)),
        }
    }

    /// Mean root-to-leaf depth (Table II); None for indexes without the
    /// notion (hash, skip list).
    pub fn avg_depth(&self) -> Option<f64> {
        match self {
            AnyIndex::BTree(i) => Some(i.avg_depth()),
            AnyIndex::Rmi(i) => Some(i.avg_depth()),
            AnyIndex::Rs(i) => Some(i.avg_depth()),
            AnyIndex::Fiting(i) => Some(i.avg_depth()),
            AnyIndex::Pgm(i) => Some(i.avg_depth()),
            AnyIndex::Alex(i) => Some(i.avg_depth()),
            AnyIndex::XIndex(i) => Some(i.avg_depth()),
            AnyIndex::Lipp(i) => Some(i.avg_depth()),
            _ => None,
        }
    }

    /// Leaf/segment/group count (Table II context).
    pub fn leaf_count(&self) -> Option<usize> {
        match self {
            AnyIndex::BTree(i) => Some(i.leaf_count()),
            AnyIndex::Rmi(i) => Some(i.leaf_count()),
            AnyIndex::Rs(i) => Some(i.leaf_count()),
            AnyIndex::Fiting(i) => Some(i.leaf_count()),
            AnyIndex::Pgm(i) => Some(i.leaf_count()),
            AnyIndex::Alex(i) => Some(i.leaf_count()),
            AnyIndex::XIndex(i) => Some(i.leaf_count()),
            AnyIndex::Lipp(i) => Some(i.leaf_count()),
            _ => None,
        }
    }

    /// Retrain counters where the index keeps them (Fig. 18).
    pub fn retrain_stats(&self) -> Option<RetrainStats> {
        match self {
            AnyIndex::Fiting(i) => Some(i.stats()),
            AnyIndex::Pgm(i) => Some(i.stats()),
            AnyIndex::Alex(i) => Some(i.stats()),
            AnyIndex::XIndex(i) => Some(i.stats()),
            AnyIndex::Lipp(i) => Some(i.stats()),
            _ => None,
        }
    }
}

impl Index for AnyIndex {
    fn name(&self) -> &'static str {
        dispatch!(self, i => i.name())
    }

    fn len(&self) -> usize {
        dispatch!(self, i => Index::len(i))
    }

    fn get(&self, key: Key) -> Option<Value> {
        dispatch!(self, i => Index::get(i, key))
    }

    fn index_size_bytes(&self) -> usize {
        dispatch!(self, i => i.index_size_bytes())
    }

    fn data_size_bytes(&self) -> usize {
        dispatch!(self, i => i.data_size_bytes())
    }

    /// Forwards the recorder to the selected index. Kinds that are not
    /// instrumented (traditional, read-only learned, LIPP) keep the
    /// default drop-it behaviour.
    fn set_recorder(&mut self, recorder: li_core::telemetry::Recorder) {
        dispatch!(self, i => i.set_recorder(recorder));
    }

    /// XIndex is the only kind with a shared-reference write surface
    /// (Table I); for it the sharded router can write under its cell
    /// *read* lock instead of the exclusive path.
    fn native_writer(&self) -> Option<&dyn li_core::traits::NativeWriter> {
        match self {
            AnyIndex::XIndex(i) => Index::native_writer(i),
            _ => None,
        }
    }
}

impl OrderedIndex for AnyIndex {
    /// Range scan; the hash index (CCEH) cannot scan and yields nothing —
    /// callers should gate on [`IndexKind::supports_range`].
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        match self {
            AnyIndex::BTree(i) => i.range(lo, hi, out),
            AnyIndex::SkipList(i) => i.range(lo, hi, out),
            AnyIndex::Cceh(_) => {}
            AnyIndex::Art(i) => i.range(lo, hi, out),
            AnyIndex::Wormhole(i) => i.range(lo, hi, out),
            AnyIndex::BwTree(i) => i.range(lo, hi, out),
            AnyIndex::Rmi(i) => i.range(lo, hi, out),
            AnyIndex::Rs(i) => i.range(lo, hi, out),
            AnyIndex::Fiting(i) => i.range(lo, hi, out),
            AnyIndex::Pgm(i) => i.range(lo, hi, out),
            AnyIndex::Alex(i) => i.range(lo, hi, out),
            AnyIndex::XIndex(i) => i.range(lo, hi, out),
            AnyIndex::Lipp(i) => i.range(lo, hi, out),
        }
    }
}

impl UpdatableIndex for AnyIndex {
    /// Inserts; panics for the read-only indexes (RMI, RS) — gate on
    /// [`IndexKind::supports_insert`].
    fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        match self {
            AnyIndex::BTree(i) => i.insert(key, value),
            AnyIndex::SkipList(i) => i.insert(key, value),
            AnyIndex::Cceh(i) => i.insert(key, value),
            AnyIndex::Art(i) => i.insert(key, value),
            AnyIndex::Wormhole(i) => i.insert(key, value),
            AnyIndex::BwTree(i) => i.insert(key, value),
            AnyIndex::Rmi(_) => panic!("RMI is read-only (paper Table I)"),
            AnyIndex::Rs(_) => panic!("RadixSpline is read-only (paper Table I)"),
            AnyIndex::Fiting(i) => i.insert(key, value),
            AnyIndex::Pgm(i) => i.insert(key, value),
            AnyIndex::Alex(i) => i.insert(key, value),
            AnyIndex::XIndex(i) => UpdatableIndex::insert(i, key, value),
            AnyIndex::Lipp(i) => i.insert(key, value),
        }
    }

    fn remove(&mut self, key: Key) -> Option<Value> {
        match self {
            AnyIndex::BTree(i) => i.remove(key),
            AnyIndex::SkipList(i) => i.remove(key),
            AnyIndex::Cceh(i) => i.remove(key),
            AnyIndex::Art(i) => i.remove(key),
            AnyIndex::Wormhole(i) => i.remove(key),
            AnyIndex::BwTree(i) => i.remove(key),
            AnyIndex::Rmi(_) => panic!("RMI is read-only (paper Table I)"),
            AnyIndex::Rs(_) => panic!("RadixSpline is read-only (paper Table I)"),
            AnyIndex::Fiting(i) => i.remove(key),
            AnyIndex::Pgm(i) => i.remove(key),
            AnyIndex::Alex(i) => i.remove(key),
            AnyIndex::XIndex(i) => UpdatableIndex::remove(i, key),
            AnyIndex::Lipp(i) => i.remove(key),
        }
    }

    fn set_defer_retrains(&mut self, on: bool) -> bool {
        // Read-only kinds have no retraining to defer; everything else
        // forwards (most inherit the no-op default).
        match self {
            AnyIndex::Rmi(_) | AnyIndex::Rs(_) => false,
            AnyIndex::BTree(i) => i.set_defer_retrains(on),
            AnyIndex::SkipList(i) => i.set_defer_retrains(on),
            AnyIndex::Cceh(i) => i.set_defer_retrains(on),
            AnyIndex::Art(i) => i.set_defer_retrains(on),
            AnyIndex::Wormhole(i) => i.set_defer_retrains(on),
            AnyIndex::BwTree(i) => i.set_defer_retrains(on),
            AnyIndex::Fiting(i) => i.set_defer_retrains(on),
            AnyIndex::Pgm(i) => i.set_defer_retrains(on),
            AnyIndex::Alex(i) => i.set_defer_retrains(on),
            AnyIndex::XIndex(i) => UpdatableIndex::set_defer_retrains(i, on),
            AnyIndex::Lipp(i) => i.set_defer_retrains(on),
        }
    }

    fn pending_retrains(&self) -> usize {
        match self {
            AnyIndex::Rmi(_) | AnyIndex::Rs(_) => 0,
            AnyIndex::BTree(i) => i.pending_retrains(),
            AnyIndex::SkipList(i) => i.pending_retrains(),
            AnyIndex::Cceh(i) => i.pending_retrains(),
            AnyIndex::Art(i) => i.pending_retrains(),
            AnyIndex::Wormhole(i) => i.pending_retrains(),
            AnyIndex::BwTree(i) => i.pending_retrains(),
            AnyIndex::Fiting(i) => i.pending_retrains(),
            AnyIndex::Pgm(i) => i.pending_retrains(),
            AnyIndex::Alex(i) => i.pending_retrains(),
            AnyIndex::XIndex(i) => UpdatableIndex::pending_retrains(i),
            AnyIndex::Lipp(i) => i.pending_retrains(),
        }
    }

    fn run_pending_retrains(&mut self, budget: usize) -> usize {
        match self {
            AnyIndex::Rmi(_) | AnyIndex::Rs(_) => 0,
            AnyIndex::BTree(i) => i.run_pending_retrains(budget),
            AnyIndex::SkipList(i) => i.run_pending_retrains(budget),
            AnyIndex::Cceh(i) => i.run_pending_retrains(budget),
            AnyIndex::Art(i) => i.run_pending_retrains(budget),
            AnyIndex::Wormhole(i) => i.run_pending_retrains(budget),
            AnyIndex::BwTree(i) => i.run_pending_retrains(budget),
            AnyIndex::Fiting(i) => i.run_pending_retrains(budget),
            AnyIndex::Pgm(i) => i.run_pending_retrains(budget),
            AnyIndex::Alex(i) => i.run_pending_retrains(budget),
            AnyIndex::XIndex(i) => UpdatableIndex::run_pending_retrains(i, budget),
            AnyIndex::Lipp(i) => i.run_pending_retrains(budget),
        }
    }
}

/// How an [`IndexKind`] reaches write-concurrent service (Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcurrentVia {
    /// The index is internally thread-safe (`&self` writes): XIndex.
    Native,
    /// Range-sharded behind per-shard RwLocks (`li_core::shard::Sharded`).
    Sharded,
    /// One shard — every operation funnels through a single global latch.
    /// The degenerate sharding the paper's latch-based baselines model.
    GlobalLock,
}

/// A write-concurrent configuration of one updatable index: which index,
/// and how it is lifted into concurrent service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrentKind {
    pub index: IndexKind,
    pub via: ConcurrentVia,
}

impl ConcurrentKind {
    /// Default shard count for the sharded route (≥ the largest thread
    /// count the harness drives, so disjoint writers rarely collide).
    pub const DEFAULT_SHARDS: usize = 16;

    /// The preferred concurrent route for `kind`: native where the index
    /// supports `&self` writes, range sharding for every other updatable
    /// index, `None` for read-only indexes (RMI, RS).
    pub fn of(kind: IndexKind) -> Option<Self> {
        if !kind.supports_insert() {
            return None;
        }
        let via =
            if kind.concurrent_native() { ConcurrentVia::Native } else { ConcurrentVia::Sharded };
        Some(ConcurrentKind { index: kind, via })
    }

    /// The full write-concurrent lineup: every updatable index, each by
    /// its preferred route.
    pub fn all() -> Vec<ConcurrentKind> {
        IndexKind::UPDATABLE.iter().filter_map(|&k| ConcurrentKind::of(k)).collect()
    }

    /// `kind` behind one global latch (the lock-coupling baseline).
    pub fn global_lock(kind: IndexKind) -> Option<Self> {
        if !kind.supports_insert() {
            return None;
        }
        Some(ConcurrentKind { index: kind, via: ConcurrentVia::GlobalLock })
    }

    pub fn name(&self) -> String {
        match self.via {
            ConcurrentVia::Native => self.index.name().to_string(),
            ConcurrentVia::Sharded => format!("{}(shard)", self.index.name()),
            ConcurrentVia::GlobalLock => format!("{}(lock)", self.index.name()),
        }
    }
}

/// Policy table for the self-tuning route: which [`IndexKind`]s the tuner
/// may rebuild shards under as the observed workload regime shifts.
///
/// The defaults encode the regime findings of "Are Updatable Learned
/// Indexes Ready?" (PAPERS.md): gapped-ALEX wins insert-heavy phases, PGM
/// wins read-mostly phases.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    /// Kind every shard starts as.
    pub initial: IndexKind,
    /// Rebuild target for shards whose write fraction crosses the tuner's
    /// write-heavy threshold.
    pub write_heavy: IndexKind,
    /// Rebuild target for shards whose write fraction drops below the
    /// tuner's read-mostly threshold.
    pub read_mostly: IndexKind,
    /// Hysteresis and thresholds; kind targets are filled in by
    /// [`AnyConcurrentIndex::build_adaptive`].
    pub tuner: li_core::TunerConfig,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            initial: IndexKind::Pgm,
            write_heavy: IndexKind::Alex,
            read_mostly: IndexKind::Pgm,
            tuner: li_core::TunerConfig::default(),
        }
    }
}

/// A runtime-selected write-concurrent index: the heterogeneous
/// [`li_core::Sharded`] router specialised to [`AnyIndex`] shards.
///
/// All three of the paper's concurrency routes collapse onto the one
/// router: the native route (XIndex) is a single shard with the
/// shared-reference write path enabled, the global-lock baseline is a
/// single shard without it, and the sharded route is N exclusive shards.
/// [`AnyConcurrentIndex::build_adaptive`] additionally arms online shard
/// split/merge and kind hot-swap.
pub struct AnyConcurrentIndex(li_core::Sharded);

impl AnyConcurrentIndex {
    /// Bulk-builds a concurrent index over sorted pairs with the default
    /// shard count.
    pub fn build(kind: ConcurrentKind, data: &[KeyValue]) -> Self {
        Self::build_with_shards(kind, ConcurrentKind::DEFAULT_SHARDS, data)
    }

    /// Bulk-builds with an explicit shard count (forced to 1 by the
    /// native and global-lock routes).
    pub fn build_with_shards(kind: ConcurrentKind, shards: usize, data: &[KeyValue]) -> Self {
        let shards = match kind.via {
            ConcurrentVia::Native | ConcurrentVia::GlobalLock => 1,
            ConcurrentVia::Sharded => shards,
        };
        let mut inner =
            li_core::Sharded::build_with(shards, data, |chunk| AnyIndex::build(kind.index, chunk));
        if kind.via == ConcurrentVia::Native {
            debug_assert_eq!(kind.index, IndexKind::XIndex);
            inner.set_allow_native(true);
        }
        AnyConcurrentIndex(inner)
    }

    /// Bulk-builds a self-tuning router: shards start as `policy.initial`
    /// and the maintenance-driven tuner may split/merge them and hot-swap
    /// them among the policy's kinds as the workload drifts.
    pub fn build_adaptive(shards: usize, data: &[KeyValue], policy: AdaptivePolicy) -> Self {
        let AdaptivePolicy { initial, write_heavy, read_mostly, mut tuner } = policy;
        let mut lineup: Vec<IndexKind> = Vec::new();
        let id_of = |k: IndexKind, lineup: &mut Vec<IndexKind>| -> li_core::KindId {
            match lineup.iter().position(|&have| have == k) {
                Some(i) => i as li_core::KindId,
                None => {
                    lineup.push(k);
                    (lineup.len() - 1) as li_core::KindId
                }
            }
        };
        let initial_id = id_of(initial, &mut lineup);
        tuner.write_heavy_kind = Some(id_of(write_heavy, &mut lineup));
        tuner.read_mostly_kind = Some(id_of(read_mostly, &mut lineup));
        let kinds = lineup
            .into_iter()
            .map(|k| {
                li_core::KindSpec::new(k.name(), move |chunk| Box::new(AnyIndex::build(k, chunk)))
            })
            .collect();
        let mut cfg = li_core::AdaptiveConfig::new(kinds, initial_id);
        cfg.tuner = tuner;
        AnyConcurrentIndex(li_core::Sharded::build_adaptive(shards, data, cfg))
    }

    /// Shard count backing this instance (1 for the native route).
    pub fn shard_count(&self) -> usize {
        self.0.shard_count()
    }
}

/// Exposes the router's introspection and adaptation surface
/// (`shard_kinds`, `force_split`, `run_adaptation`, …) without
/// re-wrapping each method.
impl core::ops::Deref for AnyConcurrentIndex {
    type Target = li_core::Sharded;
    fn deref(&self) -> &li_core::Sharded {
        &self.0
    }
}

impl Index for AnyConcurrentIndex {
    fn name(&self) -> &'static str {
        Index::name(&self.0)
    }

    fn len(&self) -> usize {
        Index::len(&self.0)
    }

    fn get(&self, key: Key) -> Option<Value> {
        Index::get(&self.0, key)
    }

    fn index_size_bytes(&self) -> usize {
        self.0.index_size_bytes()
    }

    fn data_size_bytes(&self) -> usize {
        self.0.data_size_bytes()
    }

    /// Forwards the recorder through the router, which clones it into
    /// every shard (so per-shard routing counters share one sink).
    fn set_recorder(&mut self, recorder: li_core::telemetry::Recorder) {
        self.0.set_recorder(recorder);
    }
}

impl OrderedIndex for AnyConcurrentIndex {
    /// Range scan; a sharded CCEH still cannot scan (the underlying
    /// [`AnyIndex`] yields nothing) — gate on [`IndexKind::supports_range`].
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        self.0.range(lo, hi, out);
    }
}

impl ConcurrentIndex for AnyConcurrentIndex {
    fn get(&self, key: Key) -> Option<Value> {
        ConcurrentIndex::get(&self.0, key)
    }

    fn insert(&self, key: Key, value: Value) -> Option<Value> {
        ConcurrentIndex::insert(&self.0, key, value)
    }

    fn remove(&self, key: Key) -> Option<Value> {
        ConcurrentIndex::remove(&self.0, key)
    }

    fn len(&self) -> usize {
        ConcurrentIndex::len(&self.0)
    }

    fn set_defer_retrains(&self, on: bool) -> bool {
        ConcurrentIndex::set_defer_retrains(&self.0, on)
    }

    fn pending_retrains(&self) -> usize {
        ConcurrentIndex::pending_retrains(&self.0)
    }

    fn run_pending_retrains(&self, budget: usize) -> usize {
        ConcurrentIndex::run_pending_retrains(&self.0, budget)
    }

    fn run_adaptation(&self) -> usize {
        ConcurrentIndex::run_adaptation(&self.0)
    }

    fn shard_hint(&self, key: Key) -> usize {
        ConcurrentIndex::shard_hint(&self.0, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: u64) -> Vec<KeyValue> {
        (0..n).map(|i| (i * 7 + 1, i)).collect()
    }

    #[test]
    fn build_and_get_every_kind() {
        let d = data(20_000);
        for kind in IndexKind::ALL {
            let idx = AnyIndex::build(kind, &d);
            assert_eq!(idx.len(), d.len(), "{}", kind.name());
            for &(k, v) in d.iter().step_by(173) {
                assert_eq!(idx.get(k), Some(v), "{} key {k}", kind.name());
                assert_eq!(idx.get(k + 1), None, "{} miss {}", kind.name(), k + 1);
            }
        }
    }

    #[test]
    fn updatable_kinds_insert_remove() {
        let d = data(5_000);
        for kind in IndexKind::UPDATABLE {
            let mut idx = AnyIndex::build(kind, &d);
            assert_eq!(idx.insert(3, 999), None, "{}", kind.name());
            assert_eq!(idx.get(3), Some(999));
            assert_eq!(idx.insert(3, 1000), Some(999));
            assert_eq!(idx.remove(3), Some(1000));
            assert_eq!(idx.remove(3), None);
            assert_eq!(idx.len(), d.len());
        }
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn rmi_insert_panics() {
        let mut idx = AnyIndex::build(IndexKind::Rmi, &data(100));
        idx.insert(1, 1);
    }

    #[test]
    fn range_capable_kinds() {
        let d = data(5_000);
        for kind in IndexKind::ALL {
            let idx = AnyIndex::build(kind, &d);
            let got = idx.range_vec(8, 29);
            if kind.supports_range() {
                assert_eq!(got, vec![(8, 1), (15, 2), (22, 3), (29, 4)], "{}", kind.name());
            } else {
                assert!(got.is_empty());
            }
        }
    }

    #[test]
    fn learned_have_depth_stats() {
        let d = data(50_000);
        for kind in IndexKind::LEARNED {
            let idx = AnyIndex::build(kind, &d);
            assert!(idx.avg_depth().unwrap() >= 1.0, "{}", kind.name());
            assert!(idx.leaf_count().unwrap() >= 1, "{}", kind.name());
        }
    }

    #[test]
    fn capabilities_table_rows() {
        let learned: Vec<_> =
            IndexKind::LEARNED.iter().filter_map(super::IndexKind::capabilities).collect();
        assert_eq!(learned.len(), 8);
        assert!(learned.iter().any(|c| c.concurrent_writes), "XIndex row");
        assert!(IndexKind::BTree.capabilities().is_none());
    }

    #[test]
    fn concurrent_kinds_build_and_operate() {
        let d = data(10_000);
        let lineup = ConcurrentKind::all();
        assert_eq!(lineup.len(), IndexKind::UPDATABLE.len());
        for kind in lineup {
            let idx = AnyConcurrentIndex::build(kind, &d);
            assert_eq!(ConcurrentIndex::len(&idx), d.len(), "{}", kind.name());
            assert_eq!(ConcurrentIndex::get(&idx, 8), Some(1), "{}", kind.name());
            assert_eq!(idx.insert(2, 42), None, "{}", kind.name());
            assert_eq!(ConcurrentIndex::get(&idx, 2), Some(42));
            assert_eq!(idx.remove(2), Some(42));
        }
    }

    #[test]
    fn concurrent_routes() {
        assert_eq!(ConcurrentKind::of(IndexKind::XIndex).unwrap().via, ConcurrentVia::Native);
        assert_eq!(ConcurrentKind::of(IndexKind::Alex).unwrap().via, ConcurrentVia::Sharded);
        assert!(ConcurrentKind::of(IndexKind::Rmi).is_none());
        assert!(ConcurrentKind::of(IndexKind::Rs).is_none());
        assert_eq!(ConcurrentKind::of(IndexKind::Pgm).unwrap().name(), "PGM(shard)");
        assert_eq!(ConcurrentKind::global_lock(IndexKind::BTree).unwrap().name(), "BTree(lock)");
        assert_eq!(ConcurrentKind::of(IndexKind::XIndex).unwrap().name(), "XIndex");

        let d = data(4_000);
        let lock =
            AnyConcurrentIndex::build(ConcurrentKind::global_lock(IndexKind::BTree).unwrap(), &d);
        assert_eq!(lock.shard_count(), 1);
        let shard = AnyConcurrentIndex::build_with_shards(
            ConcurrentKind::of(IndexKind::Pgm).unwrap(),
            8,
            &d,
        );
        assert_eq!(shard.shard_count(), 8);
        let native = AnyConcurrentIndex::build(ConcurrentKind::of(IndexKind::XIndex).unwrap(), &d);
        assert_eq!(native.shard_count(), 1);
    }

    #[test]
    fn adaptive_route_swaps_kinds_and_preserves_contents() {
        let d = data(6_000);
        let idx = AnyConcurrentIndex::build_adaptive(4, &d, AdaptivePolicy::default());
        assert!(idx.is_adaptive());
        assert_eq!(idx.shard_count(), 4);
        assert_eq!(ConcurrentIndex::len(&idx), d.len());
        // The policy's kinds registered in lineup order, deduplicated
        // (default policy: PGM initial + read-mostly, ALEX write-heavy).
        assert_eq!(idx.kind_label(0), "PGM");
        assert_eq!(idx.kind_label(1), "ALEX");
        assert_eq!(idx.shard_kinds(), vec![0, 0, 0, 0]);

        idx.force_swap(0, 1).unwrap();
        assert_eq!(idx.shard_kinds()[0], 1);
        idx.force_split(1).unwrap();
        assert_eq!(idx.shard_count(), 5);
        for &(k, v) in d.iter().step_by(101) {
            assert_eq!(ConcurrentIndex::get(&idx, k), Some(v), "key {k} after adaptation");
        }
        assert_eq!(idx.insert(2, 42), None);
        assert_eq!(ConcurrentIndex::get(&idx, 2), Some(42));
        assert_eq!(idx.range_vec(0, u64::MAX).len(), d.len() + 1);
    }

    #[test]
    fn concurrent_index_scans_through_shards() {
        let d = data(5_000);
        for kind in [
            ConcurrentKind::of(IndexKind::BTree).unwrap(),
            ConcurrentKind::of(IndexKind::XIndex).unwrap(),
        ] {
            let idx = AnyConcurrentIndex::build(kind, &d);
            let mut out = Vec::new();
            idx.range(8, 29, &mut out);
            assert_eq!(out, vec![(8, 1), (15, 2), (22, 3), (29, 4)], "{}", kind.name());
        }
    }
}
