//! # lip — learned-index-pieces
//!
//! Rust reproduction of *"Cutting Learned Index into Pieces: An In-depth
//! Inquiry into Updatable Learned Indexes"* (Ge et al., ICDE 2023).
//!
//! This facade re-exports every crate in the workspace and provides
//! [`AnyIndex`] / [`AnyConcurrentIndex`], runtime-selected wrappers over
//! all eleven evaluated indexes, so the end-to-end harness (and your own
//! experiments) can iterate over the whole lineup with one loop:
//!
//! ```
//! use lip::{AnyIndex, IndexKind};
//! use lip::core::traits::Index;
//!
//! let data: Vec<(u64, u64)> = (0..1000).map(|i| (i * 3, i)).collect();
//! for kind in IndexKind::ALL {
//!     let idx = AnyIndex::build(kind, &data);
//!     assert_eq!(idx.get(30), Some(10), "{}", idx.name());
//! }
//! ```
//!
//! Crate map (see DESIGN.md for the full inventory):
//!
//! * [`core`] — traits, approximation algorithms, the §IV pieces framework
//! * [`nvm`] / [`viper`] — simulated persistent memory + the Viper-style
//!   KV store used for the end-to-end evaluation (§III)
//! * [`workloads`] — datasets + YCSB operation streams
//! * [`traditional`] — B+Tree, SkipList, CCEH, ART baselines
//! * [`rmi`], [`rs`], [`fiting`], [`pgm`], [`alex`], [`xindex`] — the six
//!   learned indexes
//! * [`lipp`] — bonus: LIPP, which the paper could not evaluate (§V-B1)
//! * [`apex`] — bonus: APEX-style persistent learned index on the NVM device

pub use li_alex as alex;
pub use li_apex as apex;
pub use li_core as core;
pub use li_fiting as fiting;
pub use li_lipp as lipp;
pub use li_nvm as nvm;
pub use li_pgm as pgm;
pub use li_rmi as rmi;
pub use li_rs as rs;
pub use li_traditional as traditional;
pub use li_viper as viper;
pub use li_workloads as workloads;
pub use li_xindex as xindex;

pub mod any;
pub mod torture;

pub use any::{
    AdaptivePolicy, AnyConcurrentIndex, AnyIndex, ConcurrentKind, ConcurrentVia, IndexKind,
};
