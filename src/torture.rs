//! Randomized crash-torture harness for the Viper recovery path.
//!
//! Each run derives everything — the operation stream *and* the injected
//! device faults — from one `u64` seed, so a failing run is replayable
//! from a single number. The flow:
//!
//! 1. Build an empty [`ViperStore`] over a fault-injected device
//!    ([`FaultPlan::random`]): a scheduled crash point plus a few torn
//!    writes, dropped flushes, transient write failures and device-full
//!    windows.
//! 2. Apply a seeded stream of puts/deletes, mirroring every *acked*
//!    (fenced) operation into an in-DRAM oracle.
//! 3. Pull the virtual power plug ([`li_nvm::NvmDevice::crash`]), recover
//!    with checksum verification, and compare against the oracle.
//!
//! The oracle's contract (what "crash consistency" means here):
//!
//! * **No torn value ever surfaces.** Every recovered value must be
//!   byte-identical to some value the workload actually wrote for that
//!   key. This holds unconditionally — it is what the per-record CRC
//!   buys — and a violation is always a hard failure.
//! * **No unacked write surfaces.** A put/delete that returned an error
//!   must not have its *new* state visible unless the operation provably
//!   reached its publish point (tracked per in-flight op).
//! * **Every acked write is present**, *except* that a device which
//!   dropped flushes or tore writes may have lost the payload behind an
//!   acked publish; such records are quarantined by recovery. The number
//!   of missing/stale acked keys is therefore bounded by the injected
//!   dropped-flush + torn-write counts plus the quarantine count — a
//!   budget of zero means byte-exact recovery is required.
//! * **A deleted key may resurrect only under a dropped flush** (the
//!   state-byte retirement never became durable), bounded by the
//!   dropped-flush count.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use li_core::telemetry::{Recorder, TelemetrySnapshot};
use li_core::Sharded;
use li_nvm::{FaultCountersSnapshot, FaultPlan, NvmConfig, NvmDevice, NvmError};
use li_viper::{
    ConcurrentViperStore, DurabilityConfig, RecordLayout, RecoverOptions, RecoveryReport,
    RetryPolicy, ViperError, ViperStore,
};

use crate::{AnyIndex, IndexKind};

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const VALUE_SALT: u64 = 0x7e57_da7a_0dd5_eed5;

/// Fills `buf` with the canonical value for `(key, version)`: the version
/// in the first 8 bytes, a key/version-keyed pseudo-random pattern after.
/// Self-describing, so the verifier can recover the version from bytes and
/// detect any mix of two writes (a torn value matches no version).
pub fn value_pattern(key: u64, version: u64, buf: &mut [u8]) {
    assert!(buf.len() >= 8, "value too small to embed a version");
    buf[..8].copy_from_slice(&version.to_le_bytes());
    let mut s = key ^ version.rotate_left(32) ^ VALUE_SALT;
    for chunk in buf[8..].chunks_mut(8) {
        let x = splitmix64(&mut s).to_le_bytes();
        chunk.copy_from_slice(&x[..chunk.len()]);
    }
}

/// Inverse of [`value_pattern`]: the version iff `buf` is byte-exact for
/// it, `None` for anything torn or foreign.
pub fn decode_version(key: u64, buf: &[u8]) -> Option<u64> {
    let version = u64::from_le_bytes(buf[..8].try_into().ok()?);
    let mut expect = vec![0u8; buf.len()];
    value_pattern(key, version, &mut expect);
    (expect == buf).then_some(version)
}

/// Parameters of one torture run (the seed comes separately).
#[derive(Debug, Clone, Copy)]
pub struct TortureConfig {
    /// DRAM index rebuilt at recovery.
    pub kind: IndexKind,
    /// Mutation attempts before the plug is pulled (a scheduled crash
    /// point usually fires earlier).
    pub ops: usize,
    /// Keys are drawn uniformly from `[0, key_space)`.
    pub key_space: u64,
    /// Use crash-safe (out-of-place) updates instead of in-place ones.
    pub crash_safe_updates: bool,
    /// Verify checksums at recovery. Disabling reproduces the
    /// pre-hardening store and makes injected payload corruption surface —
    /// the harness exists to prove that happens.
    pub verify_checksums: bool,
    /// `0` tortures the single-writer store; any other value drives the
    /// shared-writer store over a range-sharded index with this many
    /// shards, so crash schedules also cover the concurrent publish path.
    pub shards: usize,
    /// Arm the store's transient-fault retry (seeded from the run seed).
    /// Off, each transient fault surfaces as an op-level error the harness
    /// counts as "not applied"; on, the store rides out short device-full
    /// windows and write-failure bursts, and the oracle must still hold.
    pub retry: bool,
    /// Carve a WAL + checkpoint region and log every mutation; recovery
    /// then prefers checkpoint + replay, and the oracle must hold across
    /// crash points inside WAL appends, group-commit flushes and
    /// checkpoint writes alike. `None` keeps the log-free store.
    pub durability: Option<DurabilityConfig>,
    /// With durability: write a checkpoint after every this-many acked
    /// ops (0 = only the recovery-time checkpoints), putting the
    /// checkpoint writer itself inside the crash schedule.
    pub checkpoint_every: usize,
}

impl TortureConfig {
    /// A fast configuration suitable for running hundreds of seeds in CI.
    pub fn quick(kind: IndexKind) -> Self {
        TortureConfig {
            kind,
            ops: 400,
            key_space: 160,
            crash_safe_updates: true,
            verify_checksums: true,
            shards: 0,
            retry: false,
            durability: None,
            checkpoint_every: 0,
        }
    }

    /// [`TortureConfig::quick`] against the shared-writer sharded store.
    pub fn quick_sharded(kind: IndexKind) -> Self {
        TortureConfig { shards: 4, ..TortureConfig::quick(kind) }
    }

    /// [`TortureConfig::quick`] with the self-healing retry path armed.
    pub fn quick_retrying(kind: IndexKind) -> Self {
        TortureConfig { retry: true, ..TortureConfig::quick(kind) }
    }

    /// [`TortureConfig::quick`] with WAL + checkpoint durability: the
    /// ring is sized so a 400-op run can never legitimately fill it
    /// (WalFull would mask the crash schedule with inline checkpoints),
    /// and a checkpoint lands every 64 acked ops so crash points hit the
    /// checkpoint writer too.
    pub fn quick_durable(kind: IndexKind) -> Self {
        TortureConfig {
            durability: Some(DurabilityConfig::sized_for(512, 1024)),
            checkpoint_every: 64,
            ..TortureConfig::quick(kind)
        }
    }

    /// [`TortureConfig::quick_durable`] against the shared-writer store.
    pub fn quick_durable_sharded(kind: IndexKind) -> Self {
        TortureConfig { shards: 4, ..TortureConfig::quick_durable(kind) }
    }
}

/// The store under torture: the one [`ViperStore`] in either write model,
/// so a crash schedule can target a `Sharded` backend as easily
/// as the single-writer paper configuration.
#[allow(clippy::large_enum_variant)] // one driver per run; no point boxing
enum Driver {
    Single(ViperStore<AnyIndex>),
    Sharded(ConcurrentViperStore<Sharded>),
}

impl Driver {
    fn recover(
        cfg: &TortureConfig,
        dev: Arc<NvmDevice>,
        layout: RecordLayout,
        opts: RecoverOptions,
        recorder: Recorder,
    ) -> (Self, RecoveryReport) {
        let kind = cfg.kind;
        if cfg.shards == 0 {
            let (store, report) =
                ViperStore::recover_recorded(dev, layout, opts, recorder, |pairs| {
                    AnyIndex::build(kind, pairs)
                });
            (Driver::Single(store), report)
        } else {
            let shards = cfg.shards;
            let (store, report) = ConcurrentViperStore::recover_shared_recorded(
                dev,
                layout,
                opts,
                recorder,
                |pairs| Sharded::build_with(shards, pairs, |chunk| AnyIndex::build(kind, chunk)),
            );
            (Driver::Sharded(store), report)
        }
    }

    fn set_crash_safe_updates(&mut self, on: bool) {
        match self {
            Driver::Single(s) => s.set_crash_safe_updates(on),
            Driver::Sharded(s) => s.set_crash_safe_updates(on),
        }
    }

    fn set_retry_policy(&mut self, policy: RetryPolicy) {
        match self {
            Driver::Single(s) => s.set_retry_policy(policy),
            Driver::Sharded(s) => s.set_retry_policy(policy),
        }
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), ViperError> {
        match self {
            Driver::Single(s) => s.put(key, value),
            Driver::Sharded(s) => s.put(key, value),
        }
    }

    fn delete(&mut self, key: u64) -> Result<bool, ViperError> {
        match self {
            Driver::Single(s) => s.delete(key),
            Driver::Sharded(s) => s.delete(key),
        }
    }

    fn get(&self, key: u64, buf: &mut [u8]) -> bool {
        match self {
            Driver::Single(s) => s.get(key, buf),
            Driver::Sharded(s) => s.get(key, buf),
        }
    }

    fn len(&self) -> usize {
        match self {
            Driver::Single(s) => s.len(),
            Driver::Sharded(s) => s.len(),
        }
    }

    fn checkpoint_now(&mut self) -> Result<bool, ViperError> {
        match self {
            Driver::Single(s) => s.checkpoint_now(),
            Driver::Sharded(s) => s.checkpoint_now(),
        }
    }

    fn into_device(self) -> Arc<NvmDevice> {
        match self {
            Driver::Single(s) => s.into_device(),
            Driver::Sharded(s) => s.into_device(),
        }
    }
}

/// What one torture run observed.
#[derive(Debug)]
pub struct TortureOutcome {
    pub seed: u64,
    pub kind: IndexKind,
    /// Operations the store acknowledged (fenced) before the crash.
    pub ops_acked: usize,
    /// Whether a scheduled crash point fired mid-run.
    pub crashed_mid_run: bool,
    pub report: RecoveryReport,
    pub faults: FaultCountersSnapshot,
    /// Telemetry captured across the whole run (workload + recovery): op
    /// latency histograms, index structural events, the recovery's
    /// `QuarantineSlot` count, and the device traffic counters as of the
    /// crash point. Crash tests assert causality against `faults` — every
    /// quarantined slot must trace back to an injected fault.
    pub telemetry: TelemetrySnapshot,
    /// Oracle violations; an empty list is a pass.
    pub divergences: Vec<String>,
}

impl TortureOutcome {
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// The op that was in flight when the device froze; its effects may be
/// partially durable, so both its before- and after-state are legal.
enum InFlight {
    Put { key: u64, version: u64 },
    Delete { key: u64 },
}

/// Runs one seeded crash schedule and checks recovery against the oracle.
pub fn torture_run(seed: u64, cfg: &TortureConfig) -> TortureOutcome {
    let layout = RecordLayout::small();
    let spp = layout.slots_per_page();
    // Capacity: live set + out-of-place churn + headroom. Quarantined
    // slots are never reused, but a single run recovers only once.
    let pages = (cfg.key_space as usize * 3) / spp + 8;
    // The durability region stacks on top of the heap's sizing.
    let region = cfg.durability.map_or(0, |d| {
        d.region_bytes().div_ceil(layout.page_size) * layout.page_size + layout.page_size
    });
    let nvm = NvmConfig::fast_with_crash(pages * layout.page_size + region);
    // Horizon ≈ device ops the workload will issue (≤ 9 per put).
    let plan = FaultPlan::random(seed, cfg.ops as u64 * 7);
    let dev = Arc::new(NvmDevice::with_faults(nvm, &plan));

    // One always-on recorder spans the whole run: workload put/delete
    // latencies, index structural events, and the recovery scan. The
    // initial recover scans a blank device, so every `QuarantineSlot` it
    // accumulates comes from the post-crash recovery alone.
    let recorder = Recorder::enabled();
    let opts = RecoverOptions { durability: cfg.durability, ..RecoverOptions::default() };
    let (mut store, _) = Driver::recover(cfg, Arc::clone(&dev), layout, opts, recorder.clone());
    store.set_crash_safe_updates(cfg.crash_safe_updates);
    if cfg.retry {
        store.set_retry_policy(RetryPolicy::standard(seed));
    }
    drop(dev); // store's clone is now unique again after into_device()

    // Oracle state.
    let mut acked: HashMap<u64, u64> = HashMap::new(); // key -> latest acked version
    let mut history: HashMap<u64, HashSet<u64>> = HashMap::new(); // key -> every acked version
    let mut touched: HashSet<u64> = HashSet::new();
    let mut in_flight: Option<InFlight> = None;
    let mut ops_acked = 0usize;
    let mut crashed_mid_run = false;

    let mut s = seed ^ 0x0b5e_55ed_0b5e_55ed;
    let mut val = vec![0u8; layout.value_size];
    for i in 0..cfg.ops {
        let r = splitmix64(&mut s);
        let key = r % cfg.key_space;
        touched.insert(key);
        if r >> 61 != 0 {
            // ~7/8 puts, 1/8 deletes.
            let version = (i + 1) as u64;
            value_pattern(key, version, &mut val);
            match store.put(key, &val) {
                Ok(()) => {
                    acked.insert(key, version);
                    history.entry(key).or_default().insert(version);
                    ops_acked += 1;
                }
                Err(ViperError::Nvm(NvmError::Crashed)) => {
                    // Partial effects legal; record both possibilities.
                    history.entry(key).or_default().insert(version);
                    in_flight = Some(InFlight::Put { key, version });
                    crashed_mid_run = true;
                    break;
                }
                // Device-full windows / exhausted retries: op not applied.
                Err(_) => {}
            }
        } else {
            match store.delete(key) {
                Ok(existed) => {
                    if existed {
                        acked.remove(&key);
                    }
                    ops_acked += 1;
                }
                Err(ViperError::Nvm(NvmError::Crashed)) => {
                    in_flight = Some(InFlight::Delete { key });
                    crashed_mid_run = true;
                    break;
                }
                Err(_) => {}
            }
        }
        if cfg.checkpoint_every > 0
            && ops_acked > 0
            && ops_acked.is_multiple_of(cfg.checkpoint_every)
        {
            // The checkpoint writer runs inside the crash schedule: a
            // crash point firing mid-blob or mid-manifest must leave the
            // previous generation (or the rescan) recoverable. Transient
            // checkpoint faults just leave the lag for later.
            if let Err(ViperError::Nvm(NvmError::Crashed)) = store.checkpoint_now() {
                crashed_mid_run = true;
                break;
            }
        }
    }

    // Pull the plug: unpersisted state vanishes, the device un-freezes.
    let dev = store.into_device();
    let mut dev = Arc::try_unwrap(dev).ok().expect("store torn down, device unique");
    dev.crash();
    let faults = dev.fault_counters();
    let nvm_at_crash = dev.stats_snapshot();
    let dev = Arc::new(dev);

    let (recovered, report) = Driver::recover(
        cfg,
        dev,
        layout,
        RecoverOptions {
            verify_checksums: cfg.verify_checksums,
            durability: cfg.durability,
            ..RecoverOptions::default()
        },
        recorder.clone(),
    );

    // --- Verify against the oracle -------------------------------------
    let mut divergences = Vec::new();
    let mut missing_or_stale = 0u64;
    let mut resurrected = 0u64;
    let mut present = 0usize;
    let mut buf = vec![0u8; layout.value_size];
    for &key in &touched {
        // Legal versions for this key; None in `expected` marks "absent is
        // legal".
        let mut legal: HashSet<u64> = HashSet::new();
        let mut absent_ok = !acked.contains_key(&key);
        if let Some(&v) = acked.get(&key) {
            legal.insert(v);
        }
        match &in_flight {
            Some(InFlight::Put { key: k, version }) if *k == key => {
                // The crashed put may have published (out-of-place update
                // appends before retiring) or not; an in-place update torn
                // mid-write is quarantined, so absence is legal too.
                legal.insert(*version);
                absent_ok = true;
            }
            Some(InFlight::Delete { key: k }) if *k == key => {
                // The crashed delete may or may not have retired the slot.
                absent_ok = true;
            }
            _ => {}
        }

        if recovered.get(key, &mut buf) {
            present += 1;
            match decode_version(key, &buf) {
                None => divergences.push(format!(
                    "key {key}: TORN value surfaced ({} bytes match no version)",
                    buf.len()
                )),
                Some(v) if legal.contains(&v) => {}
                Some(v) => {
                    let ever_acked = history.get(&key).is_some_and(|h| h.contains(&v));
                    if !ever_acked {
                        divergences.push(format!("key {key}: UNACKED version {v} surfaced"));
                    } else if absent_ok && legal.is_empty() {
                        resurrected += 1; // deleted key came back with an old value
                    } else {
                        missing_or_stale += 1; // acked update lost, older value survived
                    }
                }
            }
        } else if !absent_ok {
            missing_or_stale += 1; // acked key vanished
        }
    }
    if recovered.len() > present {
        divergences.push(format!(
            "{} record(s) under keys the workload never wrote",
            recovered.len() - present
        ));
    }

    // Lost/stale acked writes are legal only up to the byzantine-fault
    // budget; a fault-free schedule must recover byte-exactly.
    let budget = faults.dropped_flushes + faults.torn_writes + report.quarantined as u64;
    if missing_or_stale > budget {
        divergences.push(format!(
            "{missing_or_stale} acked key(s) missing/stale exceeds fault budget {budget}"
        ));
    }
    if resurrected > faults.dropped_flushes {
        divergences.push(format!(
            "{resurrected} deleted key(s) resurrected exceeds dropped-flush count {}",
            faults.dropped_flushes
        ));
    }

    let mut telemetry = recorder.snapshot();
    telemetry.nvm = nvm_at_crash.to_telemetry();

    // Retry causality: the heap emits one `Event::Retry` per write failure
    // it observes, so with no recovery healing (healing writes bypass the
    // retrying path and fire post-snapshot faults) the two counts must
    // agree exactly — every injected transient write fault was seen, and
    // no phantom retry happened.
    if report.pages_healed == 0 {
        let retries = telemetry.event(li_core::telemetry::Event::Retry);
        if retries != faults.failed_writes {
            divergences.push(format!(
                "retry causality broken: {retries} Retry event(s) vs {} injected write failure(s)",
                faults.failed_writes
            ));
        }
    }

    TortureOutcome {
        seed,
        kind: cfg.kind,
        ops_acked,
        crashed_mid_run,
        report,
        faults,
        telemetry,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_pattern_roundtrip_and_tear_detection() {
        let mut buf = vec![0u8; 16];
        value_pattern(42, 7, &mut buf);
        assert_eq!(decode_version(42, &buf), Some(7));
        // Wrong key: same bytes are not a valid value for another key.
        assert_eq!(decode_version(43, &buf), None);
        // A torn mix of two versions matches neither.
        let mut newer = vec![0u8; 16];
        value_pattern(42, 8, &mut newer);
        let mut torn = newer.clone();
        torn[12..].copy_from_slice(&buf[12..]);
        assert_eq!(decode_version(42, &torn), None);
    }

    #[test]
    fn fault_free_seed_recovers_exactly() {
        // ops small enough that the crash point (scheduled in the back
        // half of the horizon) fires after the workload finished: every
        // acked op must then be recovered byte-exactly.
        let mut cfg = TortureConfig::quick(IndexKind::BTree);
        cfg.ops = 30;
        let out = torture_run(3, &cfg);
        assert!(out.passed(), "divergences: {:?}", out.divergences);
        assert!(out.ops_acked > 0);
        // Telemetry causality: quarantine events mirror the report, both
        // recoveries were timed, and the workload's puts have latencies.
        use li_core::telemetry::{Event, OpKind};
        assert_eq!(out.telemetry.event(Event::QuarantineSlot), out.report.quarantined as u64);
        assert_eq!(out.telemetry.op(OpKind::Recovery).count, 2);
        assert!(out.telemetry.op(OpKind::Put).count > 0);
        assert!(out.telemetry.nvm.writes > 0);
    }

    #[test]
    fn retrying_store_satisfies_oracle() {
        // With retry armed the store absorbs transient fault windows
        // instead of erroring; the oracle and the Retry/failed_writes
        // causality invariant must hold across many seeds.
        for seed in 0..24u64 {
            let out = torture_run(seed, &TortureConfig::quick_retrying(IndexKind::BTree));
            assert!(out.passed(), "seed {seed}: {:?}", out.divergences);
        }
    }

    #[test]
    fn durable_fault_free_seed_recovers_via_checkpoint() {
        // Durable twin of fault_free_seed_recovers_exactly: the post-crash
        // recovery must come from checkpoint + WAL replay, not a rescan,
        // and the log must drain on every acked mutation.
        let mut cfg = TortureConfig::quick_durable(IndexKind::BTree);
        cfg.ops = 30;
        let out = torture_run(3, &cfg);
        assert!(out.passed(), "divergences: {:?}", out.divergences);
        assert!(out.ops_acked > 0);
        assert!(out.report.from_checkpoint, "expected checkpoint-based recovery");
        use li_core::telemetry::{Event, OpKind};
        // Puts may error before reaching the log (fault windows), and
        // absent-key deletes ack without logging, so the workload only
        // bounds appends loosely; commits can never outnumber appends.
        assert!(out.telemetry.event(Event::WalAppend) > 0);
        assert!(out.telemetry.event(Event::GroupCommit) <= out.telemetry.event(Event::WalAppend));
        assert!(out.telemetry.event(Event::GroupCommit) > 0);
        assert!(out.telemetry.event(Event::CheckpointWritten) >= 1);
        assert_eq!(out.telemetry.event(Event::QuarantineSlot), out.report.quarantined as u64);
        assert_eq!(out.telemetry.op(OpKind::Recovery).count, 2);
    }

    #[test]
    fn durable_store_satisfies_oracle_across_seeds() {
        // Crash points now land inside WAL appends, group-commit flushes
        // and mid-run checkpoint writes; acked writes must still never be
        // lost beyond the dropped-flush/torn-write budget.
        for seed in 0..12u64 {
            let out = torture_run(seed, &TortureConfig::quick_durable(IndexKind::BTree));
            assert!(out.passed(), "seed {seed}: {:?}", out.divergences);
        }
    }

    #[test]
    fn sharded_driver_satisfies_oracle() {
        // Same schedule, but through the shared-writer store over a
        // range-sharded index.
        let mut cfg = TortureConfig::quick_sharded(IndexKind::BTree);
        cfg.ops = 30;
        let out = torture_run(3, &cfg);
        assert!(out.passed(), "divergences: {:?}", out.divergences);
        assert!(out.ops_acked > 0);
    }
}
