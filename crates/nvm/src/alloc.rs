//! Fixed-size page allocation over a device range.
//!
//! Viper organises NVM into fixed-size value pages; this allocator hands
//! out page slots (bump allocation + free list) without touching the
//! device itself — allocation metadata is volatile, and Viper's recovery
//! re-derives it from page headers.

use li_sync::sync::atomic::{AtomicUsize, Ordering};

use li_sync::sync::Mutex;

/// Allocates fixed-size pages within `[0, capacity)` of a device.
pub struct PageAllocator {
    page_size: usize,
    total_pages: usize,
    next: AtomicUsize,
    free: Mutex<Vec<usize>>,
}

impl PageAllocator {
    /// Creates an allocator for `capacity / page_size` pages.
    pub fn new(capacity: usize, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        PageAllocator {
            page_size,
            total_pages: capacity / page_size,
            next: AtomicUsize::new(0),
            free: Mutex::with_class(li_sync::lock_class!("nvm-alloc"), Vec::new()),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total pages managed.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Number of pages currently handed out.
    pub fn allocated_pages(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.total_pages) - self.free.lock().len()
    }

    /// Allocates a page, returning its id, or `None` when the device is
    /// full.
    pub fn alloc(&self) -> Option<usize> {
        if let Some(id) = self.free.lock().pop() {
            return Some(id);
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if id < self.total_pages {
            Some(id)
        } else {
            // Undo overshoot so allocated_pages stays meaningful.
            self.next.fetch_sub(1, Ordering::Relaxed);
            None
        }
    }

    /// Returns a page to the free list.
    pub fn free(&self, page: usize) {
        debug_assert!(page < self.total_pages);
        self.free.lock().push(page);
    }

    /// Whether another [`PageAllocator::alloc`] would currently succeed
    /// (bump headroom remains or a freed page awaits reuse).
    pub fn has_capacity(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.total_pages || !self.free.lock().is_empty()
    }

    /// Byte offset of a page on the device.
    #[inline]
    pub fn page_offset(&self, page: usize) -> usize {
        page * self.page_size
    }

    /// Marks pages `0..count` as allocated — used by recovery, which
    /// re-discovers live pages by scanning the device.
    pub fn assume_allocated(&self, count: usize) {
        assert!(count <= self.total_pages);
        self.next.store(count, Ordering::Relaxed);
        self.free.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuse() {
        let a = PageAllocator::new(4096, 1024);
        assert_eq!(a.total_pages(), 4);
        let p0 = a.alloc().unwrap();
        let p1 = a.alloc().unwrap();
        assert_ne!(p0, p1);
        assert_eq!(a.allocated_pages(), 2);
        a.free(p0);
        assert_eq!(a.allocated_pages(), 1);
        assert_eq!(a.alloc().unwrap(), p0, "free list reused first");
    }

    #[test]
    fn exhaustion_returns_none() {
        let a = PageAllocator::new(2048, 1024);
        assert!(a.has_capacity());
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_some());
        assert!(!a.has_capacity());
        assert!(a.alloc().is_none());
        assert!(a.alloc().is_none());
        assert_eq!(a.allocated_pages(), 2);
        a.free(0);
        assert!(a.has_capacity(), "freed page restores capacity");
        assert_eq!(a.alloc(), Some(0));
    }

    #[test]
    fn offsets() {
        let a = PageAllocator::new(1 << 20, 4096);
        assert_eq!(a.page_offset(0), 0);
        assert_eq!(a.page_offset(3), 12288);
    }

    #[test]
    fn assume_allocated_for_recovery() {
        let a = PageAllocator::new(8192, 1024);
        a.assume_allocated(5);
        assert_eq!(a.allocated_pages(), 5);
        assert_eq!(a.alloc().unwrap(), 5);
    }

    #[test]
    fn concurrent_allocs_unique() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let a = Arc::new(PageAllocator::new(1 << 20, 64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = Arc::clone(&a);
            handles.push(li_sync::thread::spawn(move || {
                (0..1000).map(|_| a.alloc().unwrap()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "page {id} allocated twice");
            }
        }
        assert_eq!(seen.len(), 8000);
    }
}
