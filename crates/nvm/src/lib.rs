//! # li-nvm — simulated persistent memory
//!
//! The paper's end-to-end evaluation (§III) runs inside Viper, a KV store
//! that keeps records on Intel Optane persistent memory while the index
//! stays in DRAM. This crate substitutes the Optane hardware with a
//! DRAM-backed simulation that preserves the properties the evaluation
//! depends on:
//!
//! * **Asymmetric, higher-than-DRAM access latency** — every read/write
//!   pays a configurable busy-wait per 256-byte block ([`LatencyModel`]),
//!   so the record-store "drag" on end-to-end throughput is reproduced.
//! * **Shared bandwidth** — an optional global token-bucket limiter makes
//!   many threads contend for device bandwidth, reproducing the saturation
//!   ALEX hits at high thread counts (Fig. 12).
//! * **Persistence semantics** — writes are volatile until a `flush` of
//!   their range plus a `fence`; [`NvmDevice::crash`] discards everything
//!   not yet durable, letting recovery tests (Fig. 16) verify honest
//!   crash-consistency.
//! * **Deterministic fault injection** — a seeded [`FaultPlan`] schedules
//!   crash points, torn writes, dropped flushes, transient write failures
//!   and device-full windows on the device's op counter ([`fault`]),
//!   which is what the crash-torture harness replays.
//!
//! See DESIGN.md for why this substitution preserves the paper's
//! conclusions.

mod alloc;
mod device;
pub mod fault;
mod latency;
mod stats;

pub use alloc::PageAllocator;
pub use device::{DurabilityTracking, NvmConfig, NvmDevice};
pub use fault::{Fault, FaultCountersSnapshot, FaultInjector, FaultPlan, NvmError};
pub use latency::LatencyModel;
pub use stats::{NvmStats, NvmStatsSnapshot};
