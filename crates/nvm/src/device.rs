//! The simulated NVM device.

use li_sync::sync::Mutex;

use crate::fault::{FaultCountersSnapshot, FaultInjector, FaultPlan, FlushOutcome, WriteOutcome};
use crate::latency::{spin_ns, BandwidthLimiter, LatencyModel};
use crate::stats::NvmStats;
use crate::NvmError;

/// Whether the device keeps a shadow image for crash simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityTracking {
    /// No shadow; `crash` is unavailable. Zero overhead — the right choice
    /// for throughput benchmarks.
    Disabled,
    /// Keep a durable shadow image updated on flush+fence; `crash` resets
    /// the device to it. Doubles memory; meant for crash-consistency tests.
    Shadow,
}

/// Device construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct NvmConfig {
    /// Device capacity in bytes.
    pub capacity: usize,
    pub latency: LatencyModel,
    pub durability: DurabilityTracking,
}

impl NvmConfig {
    /// Optane-like device of `capacity` bytes without crash tracking.
    pub fn optane(capacity: usize) -> Self {
        NvmConfig {
            capacity,
            latency: LatencyModel::optane_like(),
            durability: DurabilityTracking::Disabled,
        }
    }

    /// Latency-free device (useful for unit tests).
    pub fn fast(capacity: usize) -> Self {
        NvmConfig {
            capacity,
            latency: LatencyModel::dram_like(),
            durability: DurabilityTracking::Disabled,
        }
    }

    /// Latency-free device with crash tracking (for recovery tests).
    pub fn fast_with_crash(capacity: usize) -> Self {
        NvmConfig {
            capacity,
            latency: LatencyModel::dram_like(),
            durability: DurabilityTracking::Shadow,
        }
    }
}

/// Byte-addressable storage written through raw pointers so that readers
/// and writers can proceed concurrently through `&self`, like a real
/// memory-mapped device.
struct Arena {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: `Arena` owns its allocation outright (the raw pointer came from
// `Box::into_raw` in `Arena::new` and is freed exactly once in `Drop`), so
// moving the struct to another thread moves nothing but the pointer value;
// there is no thread-affine state (no TLS, no interior `Rc`).
unsafe impl Send for Arena {}
// SAFETY: sharing `&Arena` across threads exposes only the raw pointer and
// length. All dereferences happen in `NvmDevice::{read_into, write,
// snapshot_range, crash}`, each of which bounds-checks first and relies on
// the caller contract documented on `NvmDevice` ("# Concurrency contract"):
// no overlapping concurrent accesses where at least one is a write. Under
// that contract concurrent `&self` access is data-race-free.
unsafe impl Sync for Arena {}

impl Arena {
    fn new(len: usize) -> Self {
        let boxed: Box<[u8]> = vec![0u8; len].into_boxed_slice();
        Arena { ptr: Box::into_raw(boxed).cast::<u8>(), len }
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from Box::into_raw of a boxed slice.
        unsafe {
            drop(Box::from_raw(core::ptr::slice_from_raw_parts_mut(self.ptr, self.len)));
        }
    }
}

/// Shadow state for crash simulation.
struct Shadow {
    /// Last durable image of the device.
    image: Vec<u8>,
    /// Ranges flushed (content captured at flush time) but not yet fenced.
    pending: Vec<(usize, Vec<u8>)>,
}

/// The simulated persistent-memory device.
///
/// # Concurrency contract
///
/// `read_into`/`write` take `&self` and may be called from many threads,
/// but — exactly like a real memory mapping — concurrent accesses to
/// *overlapping* byte ranges where at least one is a write are not
/// allowed. The Viper store upholds this by giving each record slot a
/// single owner until it is published.
pub struct NvmDevice {
    mem: Arena,
    latency: LatencyModel,
    limiter: Option<BandwidthLimiter>,
    stats: NvmStats,
    shadow: Option<Mutex<Shadow>>,
    injector: Option<FaultInjector>,
}

impl NvmDevice {
    pub fn new(config: NvmConfig) -> Self {
        let shadow = match config.durability {
            DurabilityTracking::Disabled => None,
            DurabilityTracking::Shadow => Some(Mutex::with_class(
                li_sync::lock_class!("nvm-shadow"),
                Shadow { image: vec![0u8; config.capacity], pending: Vec::new() },
            )),
        };
        NvmDevice {
            mem: Arena::new(config.capacity),
            latency: config.latency,
            limiter: BandwidthLimiter::new(config.latency.bandwidth_bytes_per_us),
            stats: NvmStats::default(),
            shadow,
            injector: None,
        }
    }

    /// A device that executes `plan` against its operation stream. Torn
    /// writes and crash points only have observable effect with
    /// [`DurabilityTracking::Shadow`] (there is no durable image to tear
    /// or revert to otherwise).
    pub fn with_faults(config: NvmConfig, plan: &FaultPlan) -> Self {
        let mut dev = NvmDevice::new(config);
        dev.injector = Some(FaultInjector::new(plan));
        dev
    }

    /// The fault injector, if one was installed.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Injected-fault counters (zeros when no injector is installed).
    pub fn fault_counters(&self) -> FaultCountersSnapshot {
        self.injector.as_ref().map(|i| i.counters().snapshot()).unwrap_or_default()
    }

    /// True once a scheduled crash point has fired; the device rejects all
    /// writes/flushes/fences until [`NvmDevice::crash`] is called.
    pub fn has_crashed(&self) -> bool {
        self.injector.as_ref().is_some_and(super::fault::FaultInjector::crashed)
    }

    /// True while the injector schedules a device-full window; callers
    /// performing allocation should surface [`NvmError::DeviceFull`].
    pub fn injected_device_full(&self) -> bool {
        self.injector.as_ref().is_some_and(super::fault::FaultInjector::device_full_now)
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.mem.len
    }

    /// Traffic counters.
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// Traffic counters plus injected-fault counters in one snapshot.
    pub fn stats_snapshot(&self) -> crate::stats::NvmStatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.faults = self.fault_counters();
        snap
    }

    #[inline]
    fn charge(&self, offset: usize, len: usize, ns_per_block: u64) {
        let blocks = LatencyModel::blocks(offset, len) as u64;
        spin_ns(blocks * ns_per_block);
        if let Some(l) = &self.limiter {
            l.consume(len as u64);
        }
    }

    #[inline]
    fn check_range(&self, offset: usize, len: usize) {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.mem.len),
            "NVM access out of range: offset {offset} len {len} capacity {}",
            self.mem.len
        );
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    #[inline]
    pub fn read_into(&self, offset: usize, buf: &mut [u8]) {
        self.check_range(offset, buf.len());
        self.charge(offset, buf.len(), self.latency.read_ns_per_block);
        self.stats.on_read(buf.len());
        // SAFETY: `check_range` proved `offset + buf.len() <= mem.len`, so
        // the source range lies inside the live Arena allocation; `buf` is a
        // distinct `&mut [u8]`, so source and destination cannot overlap.
        // Freedom from concurrent writes to this range is the documented
        // caller contract ("# Concurrency contract").
        unsafe {
            core::ptr::copy_nonoverlapping(self.mem.ptr.add(offset), buf.as_mut_ptr(), buf.len());
        }
    }

    /// Writes `data` starting at `offset`. Volatile until flushed+fenced.
    ///
    /// Infallible wrapper over [`NvmDevice::try_write`]; panics if a fault
    /// plan injects a failure, so fault-injected workloads must use the
    /// fallible API.
    #[inline]
    pub fn write(&self, offset: usize, data: &[u8]) {
        self.try_write(offset, data).expect("injected NVM write fault; use try_write");
    }

    /// Writes `data` starting at `offset`, observing any installed fault
    /// plan. Volatile until flushed+fenced. On [`NvmError::WriteFailed`]
    /// nothing was applied and a retry may succeed; on
    /// [`NvmError::Crashed`] the device is frozen until
    /// [`NvmDevice::crash`].
    #[inline]
    pub fn try_write(&self, offset: usize, data: &[u8]) -> Result<(), NvmError> {
        self.check_range(offset, data.len());
        let outcome = match &self.injector {
            Some(inj) => inj.on_write(data.len()),
            None => WriteOutcome::Proceed,
        };
        match outcome {
            WriteOutcome::Crashed => return Err(NvmError::Crashed),
            WriteOutcome::Fail => {
                // Latency is charged — the program issued the stores even
                // though the medium rejected them.
                self.charge(offset, data.len(), self.latency.write_ns_per_block);
                return Err(NvmError::WriteFailed);
            }
            WriteOutcome::Proceed | WriteOutcome::Torn { .. } => {}
        }
        self.charge(offset, data.len(), self.latency.write_ns_per_block);
        self.stats.on_write(data.len());
        // SAFETY: `check_range` proved `offset + data.len() <= mem.len`, so
        // the destination lies inside the live Arena allocation; `data` is a
        // caller-owned `&[u8]`, disjoint from the arena. Exclusive access to
        // this range is the documented caller contract.
        unsafe {
            core::ptr::copy_nonoverlapping(data.as_ptr(), self.mem.ptr.add(offset), data.len());
        }
        if let WriteOutcome::Torn { prefix_len } = outcome {
            // Model an unrequested cache-line eviction: an aligned prefix
            // of the write becomes durable *now*, without flush or fence.
            if let Some(shadow) = &self.shadow {
                let mut s = shadow.lock();
                s.image[offset..offset + prefix_len].copy_from_slice(&data[..prefix_len]);
            }
        }
        Ok(())
    }

    /// Convenience: reads a little-endian u64.
    #[inline]
    pub fn read_u64(&self, offset: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read_into(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Convenience: writes a little-endian u64.
    #[inline]
    pub fn write_u64(&self, offset: usize, v: u64) {
        self.write(offset, &v.to_le_bytes());
    }

    /// Flushes a written range toward persistence (clwb-like). The content
    /// captured *now* becomes durable at the next [`NvmDevice::fence`].
    ///
    /// Infallible wrapper over [`NvmDevice::try_flush`]; panics if the
    /// fault plan has frozen the device.
    pub fn flush(&self, offset: usize, len: usize) {
        self.try_flush(offset, len).expect("injected NVM flush fault; use try_flush");
    }

    /// Fallible flush observing any installed fault plan. A *dropped*
    /// flush still returns `Ok` — the hardware acknowledged it — but the
    /// range was not captured; that is precisely the fault the CRC path in
    /// `li-viper` exists to catch.
    pub fn try_flush(&self, offset: usize, len: usize) -> Result<(), NvmError> {
        self.check_range(offset, len);
        let outcome = match &self.injector {
            Some(inj) => inj.on_flush(),
            None => FlushOutcome::Proceed,
        };
        if outcome == FlushOutcome::Crashed {
            return Err(NvmError::Crashed);
        }
        let lines = len.div_ceil(64).max(1) as u64;
        spin_ns(lines * self.latency.flush_ns);
        self.stats.flushes.fetch_add(1, li_sync::sync::atomic::Ordering::Relaxed);
        if outcome == FlushOutcome::Drop {
            return Ok(());
        }
        if let Some(shadow) = &self.shadow {
            let mut data = vec![0u8; len];
            // SAFETY: `check_range` proved `offset + len <= mem.len`; `data`
            // is a fresh local Vec, so the copy cannot overlap the arena.
            // Exclusive access to the flushed range is the documented caller
            // contract, same as `read_into`.
            unsafe {
                core::ptr::copy_nonoverlapping(self.mem.ptr.add(offset), data.as_mut_ptr(), len);
            }
            shadow.lock().pending.push((offset, data));
        }
        Ok(())
    }

    /// Store fence: all previously flushed ranges become durable.
    ///
    /// Infallible wrapper over [`NvmDevice::try_fence`]; panics if the
    /// fault plan has frozen the device.
    pub fn fence(&self) {
        self.try_fence().expect("injected NVM fence fault; use try_fence");
    }

    /// Fallible fence observing any installed fault plan.
    pub fn try_fence(&self) -> Result<(), NvmError> {
        if let Some(inj) = &self.injector {
            inj.on_fence()?;
        }
        spin_ns(self.latency.fence_ns);
        self.stats.fences.fetch_add(1, li_sync::sync::atomic::Ordering::Relaxed);
        if let Some(shadow) = &self.shadow {
            let mut s = shadow.lock();
            let pending = std::mem::take(&mut s.pending);
            for (offset, data) in pending {
                s.image[offset..offset + data.len()].copy_from_slice(&data);
            }
        }
        Ok(())
    }

    /// Flush + fence in one call.
    pub fn persist(&self, offset: usize, len: usize) {
        self.flush(offset, len);
        self.fence();
    }

    /// Fallible flush + fence in one call.
    pub fn try_persist(&self, offset: usize, len: usize) -> Result<(), NvmError> {
        self.try_flush(offset, len)?;
        self.try_fence()
    }

    /// Simulates a power failure: the device content reverts to the last
    /// durable image (writes that were not flushed+fenced are lost).
    /// Requires [`DurabilityTracking::Shadow`].
    ///
    /// Takes `&mut self` so the borrow checker enforces quiescence.
    pub fn crash(&mut self) {
        let shadow = self.shadow.as_ref().expect("crash() requires DurabilityTracking::Shadow");
        let mut s = shadow.lock();
        s.pending.clear();
        // SAFETY: `&mut self` gives exclusive access to the whole device, so
        // no reader or writer can race this restore; `s.image` has length
        // `mem.len` by construction (allocated together in `new`) and is a
        // separate Vec, so the ranges cannot overlap.
        unsafe {
            core::ptr::copy_nonoverlapping(s.image.as_ptr(), self.mem.ptr, self.mem.len);
        }
        drop(s);
        // Power is back: un-freeze the injector so recovery can write.
        if let Some(inj) = &self.injector {
            inj.reset_crash();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let dev = NvmDevice::new(NvmConfig::fast(4096));
        dev.write(100, b"hello world");
        let mut buf = [0u8; 11];
        dev.read_into(100, &mut buf);
        assert_eq!(&buf, b"hello world");
        dev.write_u64(200, 0xdead_beef);
        assert_eq!(dev.read_u64(200), 0xdead_beef);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let dev = NvmDevice::new(NvmConfig::fast(64));
        let mut b = [0u8; 8];
        dev.read_into(60, &mut b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let dev = NvmDevice::new(NvmConfig::fast(64));
        dev.write(64, &[1]);
    }

    #[test]
    fn stats_counted() {
        let dev = NvmDevice::new(NvmConfig::fast(4096));
        dev.write(0, &[0u8; 300]);
        let mut b = [0u8; 100];
        dev.read_into(0, &mut b);
        dev.persist(0, 300);
        let s = dev.stats().snapshot();
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_written, 300);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_read, 100);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.fences, 1);
    }

    #[test]
    fn crash_discards_unflushed() {
        let mut dev = NvmDevice::new(NvmConfig::fast_with_crash(4096));
        dev.write_u64(0, 11);
        dev.persist(0, 8);
        dev.write_u64(8, 22); // never flushed
        dev.write_u64(16, 33);
        dev.flush(16, 8); // flushed but not fenced
        dev.crash();
        assert_eq!(dev.read_u64(0), 11, "durable data survives");
        assert_eq!(dev.read_u64(8), 0, "unflushed write lost");
        assert_eq!(dev.read_u64(16), 0, "flush without fence lost");
    }

    #[test]
    fn crash_respects_flush_time_content() {
        let mut dev = NvmDevice::new(NvmConfig::fast_with_crash(4096));
        dev.write_u64(0, 1);
        dev.flush(0, 8);
        dev.write_u64(0, 2); // after the flush, before the fence
        dev.fence();
        dev.crash();
        // The flush captured value 1; the overwrite was never re-flushed.
        assert_eq!(dev.read_u64(0), 1);
    }

    #[test]
    fn repeated_crash_idempotent() {
        let mut dev = NvmDevice::new(NvmConfig::fast_with_crash(1024));
        dev.write_u64(0, 7);
        dev.persist(0, 8);
        dev.crash();
        dev.crash();
        assert_eq!(dev.read_u64(0), 7);
    }

    // Naive byte counting is fine for a 64-byte test buffer; the
    // suggested bytecount crate is not vendored.
    #[allow(clippy::naive_bytecount)]
    #[test]
    fn torn_write_persists_prefix_only() {
        use crate::fault::Fault;
        let plan = FaultPlan { seed: 3, faults: vec![Fault::TornWrite { op: 0, granularity: 8 }] };
        let mut dev = NvmDevice::with_faults(NvmConfig::fast_with_crash(4096), &plan);
        let data = [0xabu8; 64];
        dev.try_write(0, &data).unwrap();
        // Program-visible immediately, in full.
        let mut buf = [0u8; 64];
        dev.read_into(0, &mut buf);
        assert_eq!(buf, data);
        assert_eq!(dev.fault_counters().torn_writes, 1);
        // After a crash (never flushed), exactly the torn prefix survives.
        dev.crash();
        dev.read_into(0, &mut buf);
        let torn = buf.iter().filter(|&&b| b == 0xab).count();
        assert!(torn < 64, "entire write survived an un-flushed crash");
        assert_eq!(torn % 8, 0, "prefix not aligned to granularity");
        assert!(buf[..torn].iter().all(|&b| b == 0xab));
        assert!(buf[torn..].iter().all(|&b| b == 0));
    }

    #[test]
    fn dropped_flush_is_not_durable() {
        use crate::fault::Fault;
        let plan = FaultPlan { seed: 1, faults: vec![Fault::DroppedFlush { op: 1 }] };
        let mut dev = NvmDevice::with_faults(NvmConfig::fast_with_crash(4096), &plan);
        dev.try_write(0, &[7u8; 8]).unwrap(); // op 0
        dev.try_flush(0, 8).unwrap(); // op 1: dropped, but acknowledged
        dev.try_fence().unwrap(); // op 2
        assert_eq!(dev.fault_counters().dropped_flushes, 1);
        dev.crash();
        assert_eq!(dev.read_u64(0), 0, "dropped flush must not persist");
    }

    #[test]
    fn crash_point_freezes_then_crash_unfreezes() {
        let plan = FaultPlan::crash_at(3);
        let mut dev = NvmDevice::with_faults(NvmConfig::fast_with_crash(4096), &plan);
        dev.try_write(0, &[1u8; 8]).unwrap(); // op 0
        dev.try_persist(0, 8).unwrap(); // ops 1 (flush) + 2 (fence)
        let err = dev.try_write(8, &[2u8; 8]).unwrap_err(); // op 3: crash
        assert_eq!(err, NvmError::Crashed);
        assert!(dev.has_crashed());
        assert_eq!(dev.fault_counters().crash_triggers, 1);
        dev.crash();
        assert!(!dev.has_crashed());
        // The fenced write survived; the rejected one never happened.
        assert_eq!(dev.read_u64(0), u64::from_le_bytes([1; 8]));
        assert_eq!(dev.read_u64(8), 0);
        // The device accepts writes again.
        dev.try_write(8, &[3u8; 8]).unwrap();
        dev.try_persist(8, 8).unwrap();
        assert_eq!(dev.read_u64(8), u64::from_le_bytes([3; 8]));
    }

    #[test]
    #[should_panic(expected = "injected NVM fence fault")]
    fn infallible_api_panics_on_injected_fault() {
        let plan = FaultPlan::crash_at(0);
        let dev = NvmDevice::with_faults(NvmConfig::fast_with_crash(64), &plan);
        dev.fence();
    }

    #[test]
    fn transient_write_failure_retry_succeeds() {
        use crate::fault::Fault;
        let plan = FaultPlan { seed: 0, faults: vec![Fault::FailedWrite { op: 0 }] };
        let dev = NvmDevice::with_faults(NvmConfig::fast(4096), &plan);
        assert_eq!(dev.try_write(0, &[9u8; 8]), Err(NvmError::WriteFailed));
        assert_eq!(dev.read_u64(0), 0, "failed write must not apply");
        dev.try_write(0, &[9u8; 8]).unwrap();
        assert_eq!(dev.read_u64(0), u64::from_le_bytes([9; 8]));
        assert_eq!(dev.fault_counters().failed_writes, 1);
    }

    #[test]
    fn try_persist_on_crash_point_via_flush() {
        let plan = FaultPlan::crash_at(1);
        let dev = NvmDevice::with_faults(NvmConfig::fast_with_crash(4096), &plan);
        dev.try_write(0, &[1u8; 8]).unwrap(); // op 0
        assert_eq!(dev.try_persist(0, 8), Err(NvmError::Crashed));
    }

    // Wall-clock latency accounting is meaningless under Miri.
    #[cfg_attr(miri, ignore)]
    #[test]
    fn latency_charged() {
        use std::time::Instant;
        let mut cfg = NvmConfig::fast(1 << 20);
        cfg.latency.read_ns_per_block = 1_000;
        let dev = NvmDevice::new(cfg);
        let mut buf = [0u8; 256];
        let t0 = Instant::now();
        for i in 0..100 {
            dev.read_into(i * 256, &mut buf);
        }
        // 100 block reads * 1 µs each.
        assert!(t0.elapsed().as_micros() >= 100, "latency not charged");
    }

    // 8 threads x 1000 ops takes minutes under Miri; the raw-pointer
    // paths are still covered by the single-threaded tests and proptests.
    #[cfg_attr(miri, ignore)]
    #[test]
    fn concurrent_disjoint_writes() {
        use std::sync::Arc;
        let dev = Arc::new(NvmDevice::new(NvmConfig::fast(1 << 20)));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let dev = Arc::clone(&dev);
            handles.push(li_sync::thread::spawn(move || {
                for i in 0..1_000u64 {
                    let off = (t * 1_000 + i) as usize * 8;
                    dev.write_u64(off, t * 1_000_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u64 {
            for i in (0..1_000u64).step_by(97) {
                let off = (t * 1_000 + i) as usize * 8;
                assert_eq!(dev.read_u64(off), t * 1_000_000 + i);
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn crash_preserves_exactly_the_persisted_writes(
            ops in proptest::collection::vec((0usize..120, 0u8..255, proptest::bool::ANY), 1..80),
        ) {
            let mut dev = NvmDevice::new(NvmConfig::fast_with_crash(1024));
            // Durable oracle: what a crash must restore.
            let mut durable = vec![0u8; 1024];
            let mut pending: Vec<(usize, u8)> = Vec::new();
            for &(off, byte, persist) in &ops {
                let off = off * 8;
                dev.write(off, &[byte; 8]);
                if persist {
                    dev.flush(off, 8);
                    pending.push((off, byte));
                    dev.fence();
                    for &(o, b) in &pending {
                        durable[o..o + 8].fill(b);
                    }
                    pending.clear();
                }
            }
            dev.crash();
            let mut buf = vec![0u8; 1024];
            dev.read_into(0, &mut buf);
            prop_assert_eq!(buf, durable);
        }
    }
}
