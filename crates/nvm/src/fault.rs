//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] is a replayable schedule of device faults, derived
//! entirely from a `u64` seed and positioned on the device's *operation
//! counter* (writes, flushes and fences each advance it by one; reads do
//! not). Driving the same workload against the same plan therefore
//! injects byte-identical faults every time — which is what lets the
//! crash-torture harness shrink a failure to "seed 17, op 2931".
//!
//! Supported faults (ISSUE 1 tentpole):
//!
//! * **Crash points** — at op N the device freezes: every subsequent
//!   write/flush/fence is rejected with [`NvmError::Crashed`] and has no
//!   effect. The driver then calls [`crate::NvmDevice::crash`] and
//!   recovers.
//! * **Torn writes** — a write is applied to (volatile) device memory as
//!   usual, but an aligned *prefix* of it is also spuriously persisted
//!   into the durable shadow image, modelling an unrequested cache-line
//!   eviction. Only a crash can make the tear observable, exactly like
//!   real persistent memory.
//! * **Dropped flushes** — the flush is acknowledged (latency charged,
//!   counters ticked) but the range is *not* captured for persistence
//!   until some later flush covers it again. This models a lost clwb, the
//!   byzantine fault CRC quarantine exists for.
//! * **Transient write failures** — the write returns
//!   [`NvmError::WriteFailed`] and has no effect; a retry succeeds.
//! * **Device-full windows** — [`crate::NvmDevice::injected_device_full`]
//!   reports the device as full for all ops in `[from, until)`, letting
//!   callers exercise their exhaustion paths without filling the device.

use li_sync::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::collections::HashMap;

/// Errors surfaced by the fallible device operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmError {
    /// A scheduled crash point was reached; the device is frozen until
    /// [`crate::NvmDevice::crash`] resets it to the durable image.
    Crashed,
    /// Transient write failure; retrying may succeed.
    WriteFailed,
    /// The device (or a scheduled full window) has no room left.
    DeviceFull,
}

impl std::fmt::Display for NvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvmError::Crashed => write!(f, "device crashed (injected crash point)"),
            NvmError::WriteFailed => write!(f, "transient NVM write failure"),
            NvmError::DeviceFull => write!(f, "NVM device full"),
        }
    }
}

impl std::error::Error for NvmError {}

impl NvmError {
    /// Fault-class taxonomy: transient errors are worth a bounded retry
    /// (the fault may pass on its own — a failed write line, a device-full
    /// window — or be cleared by maintenance); `Crashed` is terminal until
    /// the driver calls [`crate::NvmDevice::crash`] and recovers.
    pub const fn is_transient(self) -> bool {
        match self {
            NvmError::WriteFailed | NvmError::DeviceFull => true,
            NvmError::Crashed => false,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Freeze the device when the op counter reaches `op`.
    CrashAt { op: u64 },
    /// On write op `op`, also persist a `granularity`-aligned prefix of
    /// the data directly into the durable image.
    TornWrite { op: u64, granularity: usize },
    /// On flush op `op`, acknowledge without capturing the range.
    DroppedFlush { op: u64 },
    /// On write op `op`, fail transiently without applying the data.
    FailedWrite { op: u64 },
    /// Report the device full for every op in `[from, until)`.
    FullWindow { from: u64, until: u64 },
}

/// SplitMix64 step — the only PRNG this module needs, kept local so the
/// crate stays dependency-free.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A replayable schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the plan was derived from (also salts torn-prefix lengths).
    pub seed: u64,
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single crash point.
    pub fn crash_at(op: u64) -> Self {
        FaultPlan { seed: op, faults: vec![Fault::CrashAt { op }] }
    }

    /// Builder-style addition of one fault.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Derives a randomized plan from `seed`, scheduled over roughly
    /// `horizon` device ops: a handful of torn writes, dropped flushes and
    /// transient failures before a crash point in the back half of the
    /// horizon, plus (sometimes) a device-full window. Identical
    /// `(seed, horizon)` always yields the identical plan.
    pub fn random(seed: u64, horizon: u64) -> Self {
        let horizon = horizon.max(8);
        let mut s = seed ^ 0x5afe_c0de_5afe_c0de;
        let crash_op = horizon / 2 + splitmix64(&mut s) % (horizon / 2).max(1);
        let mut faults = vec![Fault::CrashAt { op: crash_op }];
        let n_torn = (splitmix64(&mut s) % 3) as usize;
        for _ in 0..n_torn {
            faults.push(Fault::TornWrite {
                op: splitmix64(&mut s) % crash_op,
                granularity: [8, 64][(splitmix64(&mut s) % 2) as usize],
            });
        }
        let n_dropped = (splitmix64(&mut s) % 3) as usize;
        for _ in 0..n_dropped {
            faults.push(Fault::DroppedFlush { op: splitmix64(&mut s) % crash_op });
        }
        let n_failed = (splitmix64(&mut s) % 2) as usize;
        for _ in 0..n_failed {
            faults.push(Fault::FailedWrite { op: splitmix64(&mut s) % crash_op });
        }
        if splitmix64(&mut s).is_multiple_of(4) {
            let from = splitmix64(&mut s) % crash_op;
            faults.push(Fault::FullWindow { from, until: from + 1 + splitmix64(&mut s) % 16 });
        }
        FaultPlan { seed, faults }
    }

    /// Derives a crash-free "transient storm" plan from `seed`: bursts of
    /// *consecutive* failed writes (long enough that some bursts exhaust
    /// the heap's immediate retry budget and surface to the store's
    /// backoff layer) plus one or two device-full windows. Because there
    /// is no crash point, volatile state stays trustworthy — a store
    /// driven under this plan must match its oracle exactly once every op
    /// has either been acked or returned an error.
    pub fn transient_storm(seed: u64, horizon: u64) -> Self {
        let horizon = horizon.max(64);
        let mut s = seed ^ 0xdead_beef_0bad_f00d;
        let mut faults = Vec::new();
        let n_bursts = 2 + (splitmix64(&mut s) % 3) as usize;
        for _ in 0..n_bursts {
            let start = splitmix64(&mut s) % horizon;
            let len = 4 + splitmix64(&mut s) % 20;
            for op in start..start + len {
                faults.push(Fault::FailedWrite { op });
            }
        }
        let n_windows = 1 + (splitmix64(&mut s) % 2) as usize;
        for _ in 0..n_windows {
            let from = splitmix64(&mut s) % horizon;
            faults.push(Fault::FullWindow { from, until: from + 8 + splitmix64(&mut s) % 32 });
        }
        FaultPlan { seed, faults }
    }
}

/// Outcome the device must apply to a write op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteOutcome {
    Proceed,
    /// Apply the write, then spuriously persist `prefix_len` bytes.
    Torn {
        prefix_len: usize,
    },
    Fail,
    Crashed,
}

/// Outcome the device must apply to a flush op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlushOutcome {
    Proceed,
    Drop,
    Crashed,
}

/// Counters of injected faults, readable while the device is shared.
#[derive(Debug, Default)]
pub struct FaultCounters {
    pub torn_writes: AtomicU64,
    pub dropped_flushes: AtomicU64,
    pub failed_writes: AtomicU64,
    pub crash_triggers: AtomicU64,
    pub full_rejections: AtomicU64,
}

/// Plain snapshot of [`FaultCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCountersSnapshot {
    pub torn_writes: u64,
    pub dropped_flushes: u64,
    pub failed_writes: u64,
    pub crash_triggers: u64,
    pub full_rejections: u64,
}

impl FaultCounters {
    pub fn snapshot(&self) -> FaultCountersSnapshot {
        FaultCountersSnapshot {
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            dropped_flushes: self.dropped_flushes.load(Ordering::Relaxed),
            failed_writes: self.failed_writes.load(Ordering::Relaxed),
            crash_triggers: self.crash_triggers.load(Ordering::Relaxed),
            full_rejections: self.full_rejections.load(Ordering::Relaxed),
        }
    }
}

/// Executes a [`FaultPlan`] against the device's op stream.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    /// Next scheduled crash op; `u64::MAX` means none.
    crash_at: AtomicU64,
    torn: HashMap<u64, usize>,
    dropped: Vec<u64>,
    failed: Vec<u64>,
    full_windows: Vec<(u64, u64)>,
    op: AtomicU64,
    crashed: AtomicBool,
    counters: FaultCounters,
}

impl FaultInjector {
    pub fn new(plan: &FaultPlan) -> Self {
        let mut crash_at: Option<u64> = None;
        let mut torn = HashMap::new();
        let mut dropped = Vec::new();
        let mut failed = Vec::new();
        let mut full_windows = Vec::new();
        for fault in &plan.faults {
            match *fault {
                Fault::CrashAt { op } => {
                    crash_at = Some(crash_at.map_or(op, |c: u64| c.min(op)));
                }
                Fault::TornWrite { op, granularity } => {
                    torn.insert(op, granularity.max(1));
                }
                Fault::DroppedFlush { op } => dropped.push(op),
                Fault::FailedWrite { op } => failed.push(op),
                Fault::FullWindow { from, until } => full_windows.push((from, until)),
            }
        }
        FaultInjector {
            seed: plan.seed,
            crash_at: AtomicU64::new(crash_at.unwrap_or(u64::MAX)),
            torn,
            dropped,
            failed,
            full_windows,
            op: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            counters: FaultCounters::default(),
        }
    }

    /// Ops observed so far.
    pub fn ops(&self) -> u64 {
        self.op.load(Ordering::Relaxed)
    }

    /// Whether a crash point has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Injected-fault counters.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Re-arms the injector after a simulated crash so the recovered store
    /// can keep running. Crash points are one-shot: the pending point is
    /// cleared, so no second crash fires unless a new plan is installed.
    pub fn reset_crash(&self) {
        self.crashed.store(false, Ordering::Relaxed);
        self.crash_at.store(u64::MAX, Ordering::Relaxed);
    }

    #[inline]
    fn advance(&self) -> Result<u64, ()> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(());
        }
        let op = self.op.fetch_add(1, Ordering::Relaxed);
        if op >= self.crash_at.load(Ordering::Relaxed) {
            if !self.crashed.swap(true, Ordering::Relaxed) {
                self.counters.crash_triggers.fetch_add(1, Ordering::Relaxed);
            }
            return Err(());
        }
        Ok(op)
    }

    pub(crate) fn on_write(&self, len: usize) -> WriteOutcome {
        let Ok(op) = self.advance() else {
            return WriteOutcome::Crashed;
        };
        if self.failed.contains(&op) {
            self.counters.failed_writes.fetch_add(1, Ordering::Relaxed);
            return WriteOutcome::Fail;
        }
        if let Some(&granularity) = self.torn.get(&op) {
            // Deterministic prefix length: aligned, strictly shorter than
            // the write (a full-length "tear" would not be a tear).
            let mut s = self.seed ^ op.wrapping_mul(0x2545_f491_4f6c_dd1d);
            let units = len / granularity;
            if units > 0 {
                let prefix_len = (splitmix64(&mut s) % units as u64) as usize * granularity;
                self.counters.torn_writes.fetch_add(1, Ordering::Relaxed);
                return WriteOutcome::Torn { prefix_len };
            }
        }
        WriteOutcome::Proceed
    }

    pub(crate) fn on_flush(&self) -> FlushOutcome {
        let Ok(op) = self.advance() else {
            return FlushOutcome::Crashed;
        };
        if self.dropped.contains(&op) {
            self.counters.dropped_flushes.fetch_add(1, Ordering::Relaxed);
            return FlushOutcome::Drop;
        }
        FlushOutcome::Proceed
    }

    pub(crate) fn on_fence(&self) -> Result<(), NvmError> {
        match self.advance() {
            Ok(_) => Ok(()),
            Err(()) => Err(NvmError::Crashed),
        }
    }

    /// Whether the current op falls inside a scheduled device-full window.
    /// Does not advance the op counter.
    pub fn device_full_now(&self) -> bool {
        let op = self.op.load(Ordering::Relaxed);
        let full = self.full_windows.iter().any(|&(from, until)| op >= from && op < until);
        if full {
            self.counters.full_rejections.fetch_add(1, Ordering::Relaxed);
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_from_seed_is_replayable() {
        let a = FaultPlan::random(99, 1_000);
        let b = FaultPlan::random(99, 1_000);
        assert_eq!(a, b);
        let c = FaultPlan::random(100, 1_000);
        assert_ne!(a, c, "different seed, different plan (overwhelmingly)");
        assert!(a.faults.iter().any(|f| matches!(f, Fault::CrashAt { .. })));
    }

    #[test]
    fn crash_point_freezes() {
        let plan = FaultPlan::crash_at(2);
        let inj = FaultInjector::new(&plan);
        assert_eq!(inj.on_write(8), WriteOutcome::Proceed); // op 0
        assert_eq!(inj.on_flush(), FlushOutcome::Proceed); // op 1
        assert_eq!(inj.on_fence(), Err(NvmError::Crashed)); // op 2: crash
        assert!(inj.crashed());
        assert_eq!(inj.on_write(8), WriteOutcome::Crashed);
        assert_eq!(inj.on_flush(), FlushOutcome::Crashed);
        assert_eq!(inj.counters().snapshot().crash_triggers, 1);
    }

    #[test]
    fn torn_write_prefix_is_aligned_and_shorter() {
        for seed in 0..50u64 {
            let plan = FaultPlan { seed, faults: vec![Fault::TornWrite { op: 0, granularity: 8 }] };
            let inj = FaultInjector::new(&plan);
            match inj.on_write(100) {
                WriteOutcome::Torn { prefix_len } => {
                    assert_eq!(prefix_len % 8, 0);
                    assert!(prefix_len < 100);
                }
                other => panic!("expected torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn torn_write_deterministic_per_seed() {
        let plan = FaultPlan { seed: 7, faults: vec![Fault::TornWrite { op: 0, granularity: 8 }] };
        let a = FaultInjector::new(&plan).on_write(64);
        let b = FaultInjector::new(&plan).on_write(64);
        assert_eq!(a, b);
    }

    #[test]
    fn dropped_flush_and_failed_write_counted() {
        let plan = FaultPlan {
            seed: 1,
            faults: vec![Fault::DroppedFlush { op: 1 }, Fault::FailedWrite { op: 0 }],
        };
        let inj = FaultInjector::new(&plan);
        assert_eq!(inj.on_write(8), WriteOutcome::Fail); // op 0
        assert_eq!(inj.on_flush(), FlushOutcome::Drop); // op 1
        let snap = inj.counters().snapshot();
        assert_eq!(snap.failed_writes, 1);
        assert_eq!(snap.dropped_flushes, 1);
    }

    #[test]
    fn transient_storm_is_crash_free_and_bursty() {
        for seed in 0..20u64 {
            let p = FaultPlan::transient_storm(seed, 1_000);
            assert_eq!(p, FaultPlan::transient_storm(seed, 1_000), "replayable");
            assert!(!p.faults.iter().any(|f| matches!(f, Fault::CrashAt { .. })));
            assert!(p.faults.iter().any(|f| matches!(f, Fault::FullWindow { .. })));
            let mut failed: Vec<u64> = p
                .faults
                .iter()
                .filter_map(|f| match f {
                    Fault::FailedWrite { op } => Some(*op),
                    _ => None,
                })
                .collect();
            failed.sort_unstable();
            failed.dedup();
            // At least one run of >= 4 consecutive failed writes.
            let mut best = 1;
            let mut run = 1;
            for w in failed.windows(2) {
                run = if w[1] == w[0] + 1 { run + 1 } else { 1 };
                best = best.max(run);
            }
            assert!(best >= 4, "seed {seed}: longest burst {best}");
        }
        assert!(NvmError::WriteFailed.is_transient());
        assert!(NvmError::DeviceFull.is_transient());
        assert!(!NvmError::Crashed.is_transient());
    }

    #[test]
    fn full_window_covers_range() {
        let plan = FaultPlan { seed: 0, faults: vec![Fault::FullWindow { from: 1, until: 3 }] };
        let inj = FaultInjector::new(&plan);
        assert!(!inj.device_full_now()); // op 0
        let _ = inj.on_write(8);
        assert!(inj.device_full_now()); // op 1
        let _ = inj.on_write(8);
        assert!(inj.device_full_now()); // op 2
        let _ = inj.on_write(8);
        assert!(!inj.device_full_now()); // op 3
        assert!(inj.counters().snapshot().full_rejections >= 2);
    }
}
