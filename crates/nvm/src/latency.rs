//! Latency and bandwidth model of the simulated device.

use li_sync::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Access-cost model. All costs are *additional* nanoseconds paid on top of
/// the underlying DRAM access, charged per [`LatencyModel::BLOCK`]-byte
/// block touched (256 B is Optane's internal access granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Extra nanoseconds per block read.
    pub read_ns_per_block: u64,
    /// Extra nanoseconds per block written.
    pub write_ns_per_block: u64,
    /// Extra nanoseconds for a flush (clwb-like) of one cache line.
    pub flush_ns: u64,
    /// Extra nanoseconds for a store fence.
    pub fence_ns: u64,
    /// Global bandwidth cap in bytes per microsecond (0 = unlimited).
    /// Shared by all threads, which is what makes high-thread-count
    /// workloads contend (Fig. 12).
    pub bandwidth_bytes_per_us: u64,
}

impl LatencyModel {
    /// Internal device access granularity (bytes).
    pub const BLOCK: usize = 256;

    /// Calibrated against published Optane DC PMem measurements
    /// (Yang et al., FAST'20): ~300 ns random read, ~100 ns write into the
    /// buffer, flush+fence ~ tens of ns, per-DIMM bandwidth a few GB/s.
    pub fn optane_like() -> Self {
        LatencyModel {
            read_ns_per_block: 220,
            write_ns_per_block: 90,
            flush_ns: 40,
            fence_ns: 30,
            bandwidth_bytes_per_us: 8_000, // ~8 GB/s shared
        }
    }

    /// No added latency: the device behaves like DRAM. Useful for unit
    /// tests and for isolating index cost from device cost.
    pub fn dram_like() -> Self {
        LatencyModel {
            read_ns_per_block: 0,
            write_ns_per_block: 0,
            flush_ns: 0,
            fence_ns: 0,
            bandwidth_bytes_per_us: 0,
        }
    }

    /// Number of blocks an access of `len` bytes at `offset` touches.
    #[inline]
    pub fn blocks(offset: usize, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let first = offset / Self::BLOCK;
        let last = (offset + len - 1) / Self::BLOCK;
        last - first + 1
    }
}

/// Busy-waits for approximately `ns` nanoseconds. Spinning (rather than
/// sleeping) matches how a blocked memory access behaves and stays accurate
/// at the sub-microsecond scale the model needs.
#[inline]
pub(crate) fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        li_sync::hint::spin_loop();
    }
}

/// A coarse token-bucket bandwidth limiter shared by all threads.
///
/// Time is divided into 64 µs windows; each window grants
/// `bandwidth_bytes_per_us * 64` bytes. A thread that overdraws the current
/// window spins until the next one. Simple, lock-free, and sufficient to
/// create the cross-thread contention the multi-threaded experiments need.
pub(crate) struct BandwidthLimiter {
    bytes_per_window: u64,
    /// Packed state: upper 32 bits = window id, lower 32 = bytes used.
    state: AtomicU64,
    epoch: Instant,
}

const WINDOW_US: u64 = 64;

impl BandwidthLimiter {
    pub fn new(bandwidth_bytes_per_us: u64) -> Option<Self> {
        if bandwidth_bytes_per_us == 0 {
            return None;
        }
        Some(BandwidthLimiter {
            bytes_per_window: bandwidth_bytes_per_us * WINDOW_US,
            state: AtomicU64::new(0),
            epoch: Instant::now(),
        })
    }

    #[inline]
    fn window_now(&self) -> u64 {
        (self.epoch.elapsed().as_micros() as u64) / WINDOW_US
    }

    /// Accounts `bytes` of traffic, spinning into future windows when the
    /// current one is exhausted.
    pub fn consume(&self, bytes: u64) {
        let mut remaining = bytes;
        loop {
            let now = self.window_now();
            let cur = self.state.load(Ordering::Relaxed);
            let (win, used) = (cur >> 32, cur & 0xffff_ffff);
            let (win, used) = if win < now { (now, 0) } else { (win, used) };
            let grant = (self.bytes_per_window.saturating_sub(used)).min(remaining);
            let next = (win << 32) | (used + grant).min(0xffff_ffff);
            if self
                .state
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            remaining -= grant;
            if remaining == 0 {
                return;
            }
            // Window exhausted: wait for the next one.
            while self.window_now() <= win {
                li_sync::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_counting() {
        assert_eq!(LatencyModel::blocks(0, 0), 0);
        assert_eq!(LatencyModel::blocks(0, 1), 1);
        assert_eq!(LatencyModel::blocks(0, 256), 1);
        assert_eq!(LatencyModel::blocks(0, 257), 2);
        assert_eq!(LatencyModel::blocks(255, 2), 2);
        assert_eq!(LatencyModel::blocks(256, 256), 1);
        assert_eq!(LatencyModel::blocks(100, 400), 2);
    }

    // Wall-clock spin timing is meaningless under Miri's interpreter.
    #[cfg_attr(miri, ignore)]
    #[test]
    fn spin_roughly_accurate() {
        let t0 = Instant::now();
        spin_ns(200_000); // 200 µs
        let took = t0.elapsed().as_nanos() as u64;
        assert!(took >= 200_000, "spun only {took} ns");
        assert!(took < 5_000_000, "spun way too long: {took} ns");
    }

    #[test]
    fn limiter_disabled_when_zero() {
        assert!(BandwidthLimiter::new(0).is_none());
    }

    // Wall-clock throttle timing is meaningless under Miri's interpreter.
    #[cfg_attr(miri, ignore)]
    #[test]
    fn limiter_throttles() {
        // 1 byte/µs => 1 MB should take ~1 s; use 10 KB => ~10 ms.
        let l = BandwidthLimiter::new(1).unwrap();
        let t0 = Instant::now();
        l.consume(10_000);
        let took = t0.elapsed().as_micros();
        assert!(took >= 5_000, "took only {took} µs");
    }

    #[test]
    fn limiter_fast_under_budget() {
        let l = BandwidthLimiter::new(10_000).unwrap();
        let t0 = Instant::now();
        l.consume(1_000);
        assert!(t0.elapsed().as_micros() < 1_000);
    }
}
