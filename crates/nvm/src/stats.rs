//! Device traffic counters.

use li_sync::sync::atomic::{AtomicU64, Ordering};

use crate::fault::FaultCountersSnapshot;

/// Atomic counters of device traffic; cheap enough to stay enabled during
/// benchmarks (one relaxed add per access).
#[derive(Debug, Default)]
pub struct NvmStats {
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
    pub flushes: AtomicU64,
    pub fences: AtomicU64,
}

/// Plain snapshot of [`NvmStats`].
///
/// `faults` is zero when taken through [`NvmStats::snapshot`]; use
/// [`crate::NvmDevice::stats_snapshot`] to include the injected-fault
/// counters of a fault-injected device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NvmStatsSnapshot {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub flushes: u64,
    pub fences: u64,
    /// Counters of injected faults (torn writes, dropped flushes, …).
    pub faults: FaultCountersSnapshot,
}

impl NvmStatsSnapshot {
    /// Total faults of all kinds injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.torn_writes
            + self.faults.dropped_flushes
            + self.faults.failed_writes
            + self.faults.crash_triggers
            + self.faults.full_rejections
    }

    /// Folds the device counters into the telemetry snapshot format, so
    /// stores and benches report NVM traffic and index events together.
    pub fn to_telemetry(&self) -> li_telemetry::NvmCounters {
        li_telemetry::NvmCounters {
            reads: self.reads,
            writes: self.writes,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            flushes: self.flushes,
            fences: self.fences,
            faults_injected: self.faults_injected(),
        }
    }
}

impl NvmStats {
    pub fn snapshot(&self) -> NvmStatsSnapshot {
        // A single acquire fence orders every load below after all device
        // ops whose counter updates were visible when the snapshot began.
        // Concurrent torture readers thus observe a consistent frontier
        // instead of six independently torn loads.
        li_sync::sync::atomic::fence(Ordering::Acquire);
        // Byte totals are loaded BEFORE their op counters: `on_read` /
        // `on_write` bump the op counter first and the byte counter
        // second, so reading in the reverse order guarantees a snapshot
        // never shows byte traffic leading its op count. (The original
        // op-counter-first order could — found by the
        // `nvm_stats_snapshot_frontier` loom model.)
        let bytes_read = self.bytes_read.load(Ordering::Relaxed);
        let bytes_written = self.bytes_written.load(Ordering::Relaxed);
        NvmStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read,
            bytes_written,
            flushes: self.flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            faults: FaultCountersSnapshot::default(),
        }
    }

    #[inline]
    pub(crate) fn on_read(&self, bytes: usize) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn on_write(&self, bytes: usize) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let s = NvmStats::default();
        s.on_read(100);
        s.on_read(28);
        s.on_write(8);
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.bytes_read, 128);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.bytes_written, 8);
        assert_eq!(snap.flushes, 0);
    }
}
