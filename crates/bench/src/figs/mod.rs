//! One module per reproduced table/figure.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod hyper;
pub mod scale;
pub mod scan;
pub mod table1;
pub mod table2;
pub mod table3;
