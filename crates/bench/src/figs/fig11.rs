//! Fig. 11 — read-only comparison on the FACE(-like) dataset.
//!
//! The headline: RadixSpline collapses because the skewed key space makes
//! its fixed r-bit radix prefixes useless (§III-B1). The harness also
//! prints RS's radix-cell width to show the mechanism directly.

use crate::harness::{self, BenchConfig};
use li_core::traits::BulkBuildIndex;
use li_workloads::Dataset;
use lip::IndexKind;

pub fn run(cfg: &BenchConfig) {
    println!("== Fig. 11: read-only on FACE-like skew ==\n");
    let keys = harness::dataset(Dataset::FaceLike, cfg.n, cfg.seed);
    let ops = harness::read_ops(&keys, cfg.ops, cfg.seed + 1);

    harness::header(&["index", "Mops/s", "p99.9 us"]);
    for kind in IndexKind::ALL {
        let mut store = harness::build_store(kind, &keys);
        let m = harness::run_ops(kind.name(), &mut store, &ops);
        harness::row(kind.name(), &[format!("{:.3}", m.mops()), format!("{:.2}", m.p999_us())]);
    }

    // Mechanism probe: how many spline points must RS's segment search
    // consider per lookup on FACE vs YCSB?
    let data: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let rs = li_rs::RadixSpline::build(&data);
    let face_width: usize = keys
        .iter()
        .step_by(keys.len() / 200)
        .map(|&k| li_rs::radix_cell_width(&rs, k))
        .max()
        .unwrap_or(0);
    let ycsb_keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let ycsb_data: Vec<(u64, u64)> =
        ycsb_keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let rs_y = li_rs::RadixSpline::build(&ycsb_data);
    let ycsb_width: usize = ycsb_keys
        .iter()
        .step_by(ycsb_keys.len() / 200)
        .map(|&k| li_rs::radix_cell_width(&rs_y, k))
        .max()
        .unwrap_or(0);
    println!("\nRS radix-cell width (spline points per segment search, max over probes):");
    println!("  YCSB: {ycsb_width:>6}    FACE: {face_width:>6}");
    println!("(the FACE blow-up is why RS degrades in this figure)\n");
}
