//! Ablations of the reproduction's own design choices (beyond the paper's
//! figures):
//!
//! 1. **In-leaf search routine** — bounded binary vs interpolation vs
//!    exponential search over the same Opt-PLA segmentation (§VI-A lists
//!    these as the leaf-search options).
//! 2. **§V's suggested combination** — the paper predicts that pairing the
//!    asymmetric tree with a bounded-error / distribution-changing
//!    approximation would beat the shipped designs; the pieces framework
//!    lets us test exactly that (and LIPP realises it).
//! 3. **NVM drag** — the same workload on a DRAM-like vs Optane-like
//!    device, quantifying how much of end-to-end cost is the record store
//!    (the paper's motivating question: "the bottleneck may be the NVM or
//!    the index").

use std::time::Instant;

use crate::harness::{self, BenchConfig};
use li_core::approx::ApproxAlgorithm;
use li_core::pieces::assembled::{PiecewiseConfig, PiecewiseIndex};
use li_core::pieces::insertion::LeafKind;
use li_core::pieces::retrain::RetrainPolicy;
use li_core::pieces::structure::StructureKind;
use li_core::search::{bounded_last_le, exponential_lower_bound, interpolation_lower_bound};
use li_core::traits::{Index, UpdatableIndex};
use li_core::Key;
use li_nvm::{LatencyModel, NvmConfig};
use li_viper::{RecordLayout, StoreConfig, ViperStore};
use li_workloads::Dataset;
use lip::{AnyIndex, IndexKind};
use rand::{rngs::StdRng, RngExt, SeedableRng};

pub fn run(cfg: &BenchConfig) {
    println!("== Ablations of reproduction design choices ==\n");
    leaf_search(cfg);
    suggested_combination(cfg);
    hot_cache(cfg);
    nvm_drag(cfg);
}

fn hot_cache(cfg: &BenchConfig) {
    println!("--- (2b) hot-key cache in front of an index (§V-B1) ---");
    use li_core::hot::HotCache;
    use li_core::traits::BulkBuildIndex;
    use li_workloads::ZipfGen;
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let pairs: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let mut zipf = ZipfGen::new(keys.len(), cfg.seed);
    let probes: Vec<Key> = (0..cfg.ops.max(50_000)).map(|_| keys[zipf.next_scrambled()]).collect();

    harness::header(&["config", "get ns", "hit rate"]);
    let plain = li_alex::Alex::build(&pairs);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for &k in &probes {
        acc ^= plain.get(k).unwrap_or(1);
    }
    std::hint::black_box(acc);
    harness::row(
        "ALEX",
        &[format!("{:.0}", t0.elapsed().as_nanos() as f64 / probes.len() as f64), "-".into()],
    );
    let mut cached = HotCache::new(li_alex::Alex::build(&pairs), 4096);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for &k in &probes {
        acc ^= cached.get_mut(k).unwrap_or(1);
    }
    std::hint::black_box(acc);
    let (h, m) = cached.stats();
    harness::row(
        "ALEX+HotCache",
        &[
            format!("{:.0}", t0.elapsed().as_nanos() as f64 / probes.len() as f64),
            format!("{:.0}%", 100.0 * h as f64 / (h + m) as f64),
        ],
    );
    println!("(Zipfian reads; hot keys resolve at depth 0)\n");
}

fn leaf_search(cfg: &BenchConfig) {
    println!("--- (1) in-leaf search routine, same Opt-PLA segments ---");
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let segs = ApproxAlgorithm::OptPla { epsilon: 64 }.segment(&keys);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let probes: Vec<(usize, Key)> = (0..(cfg.ops / 2).max(20_000))
        .map(|_| {
            let i = rng.random_range(0..keys.len());
            (i, keys[i])
        })
        .collect();
    let seg_of = |i: usize| segs.partition_point(|s| s.start <= i) - 1;

    harness::header(&["search", "ns/lookup"]);
    // Bounded binary around the prediction (what PGM/FITing do).
    let t0 = Instant::now();
    let mut acc = 0usize;
    for &(i, k) in &probes {
        let s = &segs[seg_of(i)];
        let p = s.model.predict_clamped(k, keys.len()).clamp(s.start, s.start + s.len - 1);
        acc ^= bounded_last_le(&keys, k, p, s.max_error as usize + 1);
    }
    std::hint::black_box(acc);
    harness::row(
        "bounded-binary",
        &[format!("{:.0}", t0.elapsed().as_nanos() as f64 / probes.len() as f64)],
    );

    // Exponential search outward from the prediction (ALEX's choice).
    let t0 = Instant::now();
    let mut acc = 0usize;
    for &(i, k) in &probes {
        let s = &segs[seg_of(i)];
        let p = s.model.predict_clamped(k, keys.len()).clamp(s.start, s.start + s.len - 1);
        acc ^= exponential_lower_bound(&keys, k, p);
    }
    std::hint::black_box(acc);
    harness::row(
        "exponential",
        &[format!("{:.0}", t0.elapsed().as_nanos() as f64 / probes.len() as f64)],
    );

    // Interpolation within the segment window (§VI-A's alternative).
    let t0 = Instant::now();
    let mut acc = 0usize;
    for &(i, k) in &probes {
        let s = &segs[seg_of(i)];
        let lo = s.start;
        let hi = s.start + s.len;
        acc ^= lo + interpolation_lower_bound(&keys[lo..hi], k);
    }
    std::hint::black_box(acc);
    harness::row(
        "interpolation",
        &[format!("{:.0}", t0.elapsed().as_nanos() as f64 / probes.len() as f64)],
    );
    println!();
}

fn suggested_combination(cfg: &BenchConfig) {
    println!("--- (2) §V's suggested combination vs shipped designs ---");
    let keys = harness::dataset(Dataset::OsmLike, cfg.n, cfg.seed);
    let (loaded, pool) = li_workloads::split_load_insert(&keys, 0.3);
    let pairs: Vec<(u64, u64)> = loaded.iter().map(|&k| (k, 0)).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed + 4);
    let probes: Vec<Key> =
        (0..(cfg.ops / 2).max(20_000)).map(|_| loaded[rng.random_range(0..loaded.len())]).collect();

    harness::header(&["design", "get ns", "ins ns"]);
    let combos: [(&str, PiecewiseConfig); 3] = [
        (
            "FIT (OptPLA+BTREE+buf)",
            PiecewiseConfig {
                algo: ApproxAlgorithm::OptPla { epsilon: 64 },
                structure: StructureKind::BTree,
                leaf: LeafKind::Buffer { reserve: 256 },
                policy: RetrainPolicy::ResegmentLeaf,
            },
        ),
        (
            "ALEX-ish (LSA+ATS+gap)",
            PiecewiseConfig {
                algo: ApproxAlgorithm::Lsa { seg_size: 1024 },
                structure: StructureKind::Ats,
                leaf: LeafKind::Gapped { density: 0.7, max_density: 0.85 },
                policy: RetrainPolicy::ExpandOrSplit {
                    expand_factor: 1.5,
                    split_error_threshold: 8.0,
                },
            },
        ),
        (
            "SecV (OptPLA+ATS+gap)",
            PiecewiseConfig {
                algo: ApproxAlgorithm::OptPla { epsilon: 64 },
                structure: StructureKind::Ats,
                leaf: LeafKind::Gapped { density: 0.7, max_density: 0.85 },
                policy: RetrainPolicy::ExpandOrSplit {
                    expand_factor: 1.5,
                    split_error_threshold: 8.0,
                },
            },
        ),
    ];
    for (name, c) in combos {
        let mut idx = PiecewiseIndex::build_with(c, &pairs);
        let t0 = Instant::now();
        let mut acc = 0u64;
        for &k in &probes {
            acc ^= idx.get(k).unwrap_or(1);
        }
        std::hint::black_box(acc);
        let get_ns = t0.elapsed().as_nanos() as f64 / probes.len() as f64;
        let t0 = Instant::now();
        for (i, &k) in pool.iter().enumerate() {
            idx.insert(k, i as u64);
        }
        let ins_ns = t0.elapsed().as_nanos() as f64 / pool.len() as f64;
        harness::row(name, &[format!("{get_ns:.0}"), format!("{ins_ns:.0}")]);
    }
    // LIPP: the published realisation of §V's advice.
    {
        let mut idx = li_lipp::Lipp::build_with(li_lipp::LippConfig::default(), &pairs);
        let t0 = Instant::now();
        let mut acc = 0u64;
        for &k in &probes {
            acc ^= Index::get(&idx, k).unwrap_or(1);
        }
        std::hint::black_box(acc);
        let get_ns = t0.elapsed().as_nanos() as f64 / probes.len() as f64;
        let t0 = Instant::now();
        for (i, &k) in pool.iter().enumerate() {
            idx.insert(k, i as u64);
        }
        let ins_ns = t0.elapsed().as_nanos() as f64 / pool.len() as f64;
        harness::row("LIPP (precise pos.)", &[format!("{get_ns:.0}"), format!("{ins_ns:.0}")]);
    }
    println!();
}

fn nvm_drag(cfg: &BenchConfig) {
    println!("--- (3) NVM drag: same workload, DRAM-like vs Optane-like device ---");
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let ops = harness::read_ops(&keys, cfg.ops, cfg.seed + 1);
    harness::header(&["index", "DRAM Mops/s", "NVM Mops/s", "drag"]);
    for kind in [IndexKind::BTree, IndexKind::Alex, IndexKind::Pgm, IndexKind::Cceh] {
        let mut mops = Vec::new();
        for latency in [LatencyModel::dram_like(), LatencyModel::optane_like()] {
            let layout = RecordLayout::paper_default();
            let bytes = (keys.len() * 2 / layout.slots_per_page() + 64) * layout.page_size;
            let config = StoreConfig {
                layout,
                nvm: NvmConfig {
                    capacity: bytes,
                    latency,
                    durability: li_nvm::DurabilityTracking::Disabled,
                },
                crash_safe_updates: false,
                durability: None,
            };
            let mut store = ViperStore::bulk_load_with(config, &keys, harness::value_of, |p| {
                AnyIndex::build(kind, p)
            });
            let m = harness::run_ops(kind.name(), &mut store, &ops);
            mops.push(m.mops());
        }
        harness::row(
            kind.name(),
            &[
                format!("{:.3}", mops[0]),
                format!("{:.3}", mops[1]),
                format!("{:.1}x", mops[0] / mops[1]),
            ],
        );
    }
    println!(
        "(the paper's premise: index speed still matters under NVM drag, \
         but the gap narrows)\n"
    );
}
