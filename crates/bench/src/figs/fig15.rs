//! Fig. 15 — read-write-mixed evaluation (YCSB A/B/D/F).
//!
//! YCSB-D is the interesting column: its writes are *insertions* of fresh
//! keys (not updates), continuously forcing retraining — the robustness
//! test most learned indexes fail in the paper.

use crate::harness::{self, BenchConfig};
use li_workloads::{generate_ops, split_load_insert, Dataset, WorkloadSpec};
use lip::IndexKind;

pub fn run(cfg: &BenchConfig) {
    println!("== Fig. 15: read-write-mixed (YCSB-A/B/D/F) ==\n");
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let (loaded, pool) = split_load_insert(&keys, 0.2);

    let specs = [
        WorkloadSpec::ycsb_a(),
        WorkloadSpec::ycsb_b(),
        WorkloadSpec::ycsb_d(),
        WorkloadSpec::ycsb_f(),
    ];
    for spec in specs {
        let ops = generate_ops(&spec, &loaded, &pool, cfg.ops, cfg.seed + 3);
        println!("--- {} ---", spec.name);
        harness::header(&["index", "Mops/s", "p99.9 us"]);
        for kind in IndexKind::UPDATABLE {
            let mut store = harness::build_store(kind, &loaded);
            let m = harness::run_ops(kind.name(), &mut store, &ops);
            harness::row(kind.name(), &[format!("{:.3}", m.mops()), format!("{:.2}", m.p999_us())]);
        }
        println!();
    }
}
