//! Fig. 12 — multi-threaded read-only evaluation.
//!
//! Every index supports concurrent reads; the store is shared via `Arc`
//! and each thread runs its own slice of the op stream. The simulated
//! NVM's shared bandwidth limiter reproduces the saturation the paper
//! observed at high thread counts.

use std::sync::Arc;
use std::time::Instant;

use crate::harness::{self, BenchConfig, Measurement};
use li_core::hist::LatencyHistogram;
use li_workloads::{Dataset, Op};
use lip::IndexKind;

pub fn run(cfg: &BenchConfig) {
    println!("== Fig. 12: read-only, multi-threaded ==\n");
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let ops = harness::read_ops(&keys, cfg.ops, cfg.seed + 1);

    for threads in cfg.thread_counts() {
        println!("--- {threads} thread(s) ---");
        harness::header(&["index", "Mops/s", "p99.9 us"]);
        for kind in IndexKind::ALL {
            let store = Arc::new(harness::build_store(kind, &keys));
            let vs = store.heap().layout().value_size;
            let chunk = ops.len() / threads;
            let start = Instant::now();
            let mut handles = Vec::new();
            for t in 0..threads {
                let store = Arc::clone(&store);
                let slice: Vec<Op> = ops[t * chunk..(t + 1) * chunk].to_vec();
                handles.push(li_sync::thread::spawn(move || {
                    let mut hist = LatencyHistogram::new();
                    let mut buf = vec![0u8; vs];
                    for op in &slice {
                        if let Op::Read(k) = op {
                            let t0 = Instant::now();
                            std::hint::black_box(store.get(*k, &mut buf));
                            hist.record(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    hist
                }));
            }
            let mut hist = LatencyHistogram::new();
            for h in handles {
                hist.merge(&h.join().expect("reader thread"));
            }
            let secs = start.elapsed().as_secs_f64();
            let m = Measurement { name: kind.name().into(), ops: chunk * threads, secs, hist };
            harness::row(kind.name(), &[format!("{:.3}", m.mops()), format!("{:.2}", m.p999_us())]);
        }
        println!();
    }
}
