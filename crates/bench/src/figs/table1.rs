//! Table I — technology comparison of the learned indexes.
//!
//! Printed from code metadata so the table always reflects what is
//! actually implemented.

use crate::harness::BenchConfig;
use lip::IndexKind;

pub fn run(_cfg: &BenchConfig) {
    println!("== Table I: technology comparison of learned indexes ==\n");
    println!(
        "{:<20} {:<14} {:<8} {:<9} {:<40} {:<18} {:<18} {:<6}",
        "Learned index",
        "Inner node",
        "Leaf",
        "Error",
        "Approximation algorithm",
        "Insertion",
        "Retraining",
        "Conc."
    );
    println!("{}", "-".repeat(136));
    for kind in IndexKind::LEARNED {
        let Some(c) = kind.capabilities() else { continue };
        println!(
            "{:<20} {:<14} {:<8} {:<9} {:<40} {:<18} {:<18} {:<6}",
            c.name,
            c.inner_node,
            c.leaf_node,
            if c.bounded_error { "Maximum" } else { "Unfixed" },
            c.approx_algorithm,
            c.insertion,
            c.retraining,
            if c.concurrent_writes { "yes" } else { "no" },
        );
    }
    println!();
}
