//! Fig. 10 — end-to-end read-only evaluation (single thread).
//!
//! Throughput and p99.9 tail latency of every index inside the Viper
//! store under uniform point lookups, on the YCSB and OSM datasets at
//! 1×/2×/4× the base size (the paper's 200M/400M/800M, scaled).

use crate::harness::{self, BenchConfig};
use li_workloads::Dataset;
use lip::IndexKind;

pub fn run(cfg: &BenchConfig) {
    println!("== Fig. 10: read-only end-to-end (single thread) ==");
    println!("(uniform point lookups through the NVM-backed store)\n");
    for dataset in [Dataset::YcsbNormal, Dataset::OsmLike] {
        for mult in [1usize, 2, 4] {
            let n = cfg.n * mult;
            let keys = harness::dataset(dataset, n, cfg.seed);
            let ops = harness::read_ops(&keys, cfg.ops, cfg.seed + 1);
            println!("--- {} / {}k keys ---", dataset.name(), n / 1000);
            harness::header(&["index", "Mops/s", "p50 us", "p99.9 us"]);
            for kind in IndexKind::ALL {
                let mut store = harness::build_store(kind, &keys);
                let m = harness::run_ops(kind.name(), &mut store, &ops);
                harness::row(
                    kind.name(),
                    &[
                        format!("{:.3}", m.mops()),
                        format!("{:.2}", m.p50_us()),
                        format!("{:.2}", m.p999_us()),
                    ],
                );
            }
            println!();
        }
    }
}
