//! Shard-count sweep — beyond the paper.
//!
//! How many range shards does a single-writer index need before its lifted
//! concurrent throughput stops improving? Sweeps shard counts for a few
//! representative sharded indexes at the maximum thread count, with
//! natively-concurrent XIndex as the lock-free reference line.

use std::sync::Arc;

use crate::figs::fig14;
use crate::harness::{self, BenchConfig};
use li_workloads::{split_load_insert, Dataset};
use lip::{ConcurrentKind, IndexKind};

/// Shard counts swept (1 = the global-latch degenerate case).
pub const SHARD_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The sharded indexes swept: a traditional baseline, the paper's two
/// best-updating learned indexes, and a buffered learned index.
pub const SWEPT: [IndexKind; 4] =
    [IndexKind::BTree, IndexKind::Pgm, IndexKind::Alex, IndexKind::FitingBuf];

pub fn run(cfg: &BenchConfig) {
    println!("== Shard scaling: write-only at {} thread(s) ==\n", cfg.max_threads);
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let (loaded, pool) = split_load_insert(&keys, 0.2);
    let threads = cfg.max_threads.max(1);
    let per_thread = (cfg.ops / threads).min(pool.len() / threads);

    let mut cols: Vec<String> = vec!["index".into()];
    cols.extend(SHARD_COUNTS.iter().map(|s| format!("{s} shard")));
    harness::header(&cols.iter().map(String::as_str).collect::<Vec<_>>());

    for kind in SWEPT {
        let kind = ConcurrentKind::of(kind).expect("swept kinds are updatable");
        let mut cells = Vec::new();
        for shards in SHARD_COUNTS {
            let store = Arc::new(harness::build_concurrent_store_sharded(kind, shards, &loaded));
            let m = fig14::measure(kind, store, &pool, threads, per_thread);
            cells.push(format!("{:.3}", m.mops()));
        }
        harness::row(&kind.name(), &cells);
    }

    // Reference: XIndex takes concurrent writes natively — no shards at all.
    let xkind = ConcurrentKind::of(IndexKind::XIndex).expect("XIndex is updatable");
    let store = Arc::new(harness::build_concurrent_store(xkind, &loaded));
    let m = fig14::measure(xkind, store, &pool, threads, per_thread);
    let mut cells = vec!["-".to_string(); SHARD_COUNTS.len() - 1];
    cells.push(format!("{:.3}", m.mops()));
    harness::row("XIndex(native)", &cells);
}
