//! Fig. 13 — end-to-end write-only evaluation (single thread).
//!
//! Inserts of fresh keys spread across the key space (the hard case for
//! learned indexes) on YCSB and OSM at 1×/2×/4× the base size.

use crate::harness::{self, BenchConfig};
use li_workloads::Dataset;
use lip::IndexKind;

pub fn run(cfg: &BenchConfig) {
    println!("== Fig. 13: write-only end-to-end (single thread) ==\n");
    for dataset in [Dataset::YcsbNormal, Dataset::OsmLike] {
        for mult in [1usize, 2, 4] {
            let n = cfg.n * mult;
            let keys = harness::dataset(dataset, n, cfg.seed);
            let (loaded, ops) = harness::write_setup(&keys, cfg.ops, cfg.seed + 2);
            println!(
                "--- {} / {}k keys loaded, {}k inserts ---",
                dataset.name(),
                loaded.len() / 1000,
                ops.len() / 1000
            );
            harness::header(&["index", "Mops/s", "p50 us", "p99.9 us"]);
            for kind in IndexKind::UPDATABLE {
                let mut store = harness::build_store(kind, &loaded);
                let m = harness::run_ops(kind.name(), &mut store, &ops);
                harness::row(
                    kind.name(),
                    &[
                        format!("{:.3}", m.mops()),
                        format!("{:.2}", m.p50_us()),
                        format!("{:.2}", m.p999_us()),
                    ],
                );
            }
            println!();
        }
    }
}
