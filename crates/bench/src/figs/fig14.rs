//! Fig. 14 — multi-threaded write-only evaluation.
//!
//! The paper could only run XIndex here (the sole learned index with
//! concurrent writes, Table I). The unified store lifts *every* updatable
//! index into concurrent service — natively for XIndex, by range sharding
//! for the rest — so the full write-capable lineup runs at every thread
//! count, each thread inserting a disjoint slice of fresh keys through the
//! shared store.

use std::sync::Arc;
use std::time::Instant;

use crate::harness::{self, BenchConfig, Measurement};
use li_core::hist::LatencyHistogram;
use li_viper::ConcurrentViperStore;
use li_workloads::{split_load_insert, Dataset};
use lip::{AnyConcurrentIndex, ConcurrentKind};

/// One measured cell: `threads` writers insert disjoint slices of `pool`
/// into a store pre-loaded with `loaded`.
pub fn measure(
    kind: ConcurrentKind,
    store: Arc<ConcurrentViperStore<AnyConcurrentIndex>>,
    pool: &[u64],
    threads: usize,
    per_thread: usize,
) -> Measurement {
    let vs = store.heap().layout().value_size;
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = Arc::clone(&store);
        let mine: Vec<u64> =
            pool.iter().skip(t).step_by(threads).take(per_thread).copied().collect();
        handles.push(li_sync::thread::spawn(move || {
            let mut hist = LatencyHistogram::new();
            let mut val = vec![0u8; vs];
            for k in mine {
                harness::value_of(k, &mut val);
                let t0 = Instant::now();
                store.put(k, &val).expect("bench store put failed");
                hist.record(t0.elapsed().as_nanos() as u64);
            }
            hist
        }));
    }
    let mut hist = LatencyHistogram::new();
    for h in handles {
        hist.merge(&h.join().expect("writer thread"));
    }
    let secs = start.elapsed().as_secs_f64();
    Measurement { name: kind.name(), ops: per_thread * threads, secs, hist }
}

pub fn run(cfg: &BenchConfig) {
    println!("== Fig. 14: write-only, multi-threaded (full updatable lineup) ==\n");
    let sink = harness::TelemetrySink::new(cfg, "fig14");
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let (loaded, pool) = split_load_insert(&keys, 0.2);

    for threads in cfg.thread_counts() {
        println!("--- {threads} thread(s) ---");
        harness::header(&["index", "Mops/s", "p99.9 us"]);
        let per_thread = (cfg.ops / threads).min(pool.len() / threads.max(1));
        for kind in ConcurrentKind::all() {
            // A fresh recorder per (threads, kind) cell: its `Put`
            // histogram, shard routing counters and structural events are
            // this cell's alone.
            let rec = sink.recorder();
            let mut store = harness::build_concurrent_store(kind, &loaded);
            if rec.is_enabled() {
                store.set_recorder(rec.clone());
            }
            let store = Arc::new(store);
            let m = measure(kind, Arc::clone(&store), &pool, threads, per_thread);
            if rec.is_enabled() {
                let mut snap = rec.snapshot();
                snap.nvm = store.heap().device().stats_snapshot().to_telemetry();
                sink.write(&format!("t{threads}_{}", kind.name()), &snap);
            }
            harness::row(&m.name, &[format!("{:.3}", m.mops()), format!("{:.2}", m.p999_us())]);
        }
        println!();
    }
}
