//! Fig. 14 — multi-threaded write-only evaluation.
//!
//! XIndex (the only learned index with concurrent writes, Table I) versus
//! the concurrent traditional baselines, each thread inserting a disjoint
//! slice of fresh keys through the shared store.

use std::sync::Arc;
use std::time::Instant;

use crate::harness::{self, BenchConfig, Measurement};
use li_core::hist::LatencyHistogram;
use li_viper::{ConcurrentViperStore, StoreConfig};
use li_workloads::{split_load_insert, Dataset};
use lip::{AnyConcurrentIndex, ConcurrentKind};

pub fn run(cfg: &BenchConfig) {
    println!("== Fig. 14: write-only, multi-threaded ==\n");
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let (loaded, pool) = split_load_insert(&keys, 0.2);
    let pairs: Vec<(u64, u64)> = loaded.iter().map(|&k| (k, 0)).collect();

    for threads in cfg.thread_counts() {
        println!("--- {threads} thread(s) ---");
        harness::header(&["index", "Mops/s", "p99.9 us"]);
        let per_thread = (cfg.ops / threads).min(pool.len() / threads.max(1));
        for kind in ConcurrentKind::ALL {
            let store_cfg = StoreConfig::paper(keys.len() * 2 + 1024);
            let store = Arc::new(ConcurrentViperStore::new(
                store_cfg,
                AnyConcurrentIndex::build(kind, &[]),
            ));
            // Pre-load sequentially (bulk load API is single-writer).
            {
                let vs = store.heap().layout().value_size;
                let mut val = vec![0u8; vs];
                for &(k, _) in &pairs {
                    harness::value_of(k, &mut val);
                    store.put(k, &val).expect("bench store put failed");
                }
            }
            let vs = store.heap().layout().value_size;
            let start = Instant::now();
            let mut handles = Vec::new();
            for t in 0..threads {
                let store = Arc::clone(&store);
                let mine: Vec<u64> =
                    pool.iter().skip(t).step_by(threads).take(per_thread).copied().collect();
                handles.push(std::thread::spawn(move || {
                    let mut hist = LatencyHistogram::new();
                    let mut val = vec![0u8; vs];
                    for k in mine {
                        harness::value_of(k, &mut val);
                        let t0 = Instant::now();
                        store.put(k, &val).expect("bench store put failed");
                        hist.record(t0.elapsed().as_nanos() as u64);
                    }
                    hist
                }));
            }
            let mut hist = LatencyHistogram::new();
            for h in handles {
                hist.merge(&h.join().expect("writer thread"));
            }
            let secs = start.elapsed().as_secs_f64();
            let m = Measurement { name: kind.name().into(), ops: per_thread * threads, secs, hist };
            harness::row(kind.name(), &[format!("{:.3}", m.mops()), format!("{:.2}", m.p999_us())]);
        }
        println!();
    }
}
