//! Appendix: range-query evaluation.
//!
//! §III-A3 notes the paper "evaluated the performance of a range query for
//! learned indexes and included the results in the appendix". This harness
//! reproduces it: scans of 10/100/1000 records through the store for every
//! range-capable index (the hash baseline cannot scan — exactly why §VII
//! excludes it from the sorted-index comparison).

use std::time::Instant;

use crate::harness::{self, BenchConfig};
use li_core::hist::LatencyHistogram;
use li_workloads::Dataset;
use lip::IndexKind;
use rand::{rngs::StdRng, RngExt, SeedableRng};

pub fn run(cfg: &BenchConfig) {
    println!("== Appendix: range scans through the store ==\n");
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    for scan_len in [10usize, 100, 1000] {
        let scans = (cfg.ops / scan_len.max(10)).clamp(200, 20_000);
        println!("--- scan length {scan_len} ({scans} scans) ---");
        harness::header(&["index", "scans/s", "p99.9 us"]);
        for kind in IndexKind::ALL {
            if !kind.supports_range() {
                continue;
            }
            let store = harness::build_store(kind, &keys);
            let mut rng = StdRng::seed_from_u64(cfg.seed + 7);
            let starts: Vec<u64> =
                (0..scans).map(|_| keys[rng.random_range(0..keys.len())]).collect();
            let mut hist = LatencyHistogram::new();
            let mut total = 0usize;
            let t0 = Instant::now();
            for &lo in &starts {
                let t1 = Instant::now();
                total += store.scan(lo, u64::MAX, scan_len, &mut |_, _| {});
                hist.record(t1.elapsed().as_nanos() as u64);
            }
            let secs = t0.elapsed().as_secs_f64();
            std::hint::black_box(total);
            harness::row(
                kind.name(),
                &[
                    format!("{:.0}", scans as f64 / secs),
                    format!("{:.1}", hist.percentile(0.999) as f64 / 1e3),
                ],
            );
        }
        println!();
    }
}
