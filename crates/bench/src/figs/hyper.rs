//! Hyperparameter sweeps (§III-A1: "We first separately evaluate the
//! performance of each index with different hyperparameters and choose
//! their configurations with the best performance").
//!
//! For each learned index, the main knob is swept and in-memory lookup /
//! insert costs are reported so a configuration can be chosen per dataset.

use std::time::Instant;

use crate::harness::{self, BenchConfig};
use li_core::traits::{Index, UpdatableIndex};
use li_core::{Key, KeyValue};
use li_workloads::Dataset;
use rand::{rngs::StdRng, RngExt, SeedableRng};

pub fn run(cfg: &BenchConfig) {
    println!("== Hyperparameter sweeps (§III-A1) ==\n");
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let pairs: Vec<KeyValue> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let (loaded, pool) = li_workloads::split_load_insert(&keys, 0.3);
    let loaded_pairs: Vec<KeyValue> = loaded.iter().map(|&k| (k, 0)).collect();
    let probes = probe_keys(&keys, (cfg.ops / 4).max(10_000), cfg.seed + 1);

    println!("--- RMI: keys per second-stage model ---");
    harness::header(&["keys/model", "get ns", "models"]);
    for kpm in [256usize, 1024, 4096, 16384] {
        let idx = li_rmi::Rmi::build_with(
            li_rmi::RmiConfig { keys_per_model: kpm, ..Default::default() },
            &pairs,
        );
        harness::row(
            &kpm.to_string(),
            &[format!("{:.0}", time_gets(&idx, &probes)), idx.model_count().to_string()],
        );
    }

    println!("\n--- RMI second stage: linear vs cubic (§V-A nonlinear models) ---");
    harness::header(&["stage", "keys/model", "get ns", "models"]);
    for (name, stage) in
        [("linear", li_rmi::SecondStage::Linear), ("cubic", li_rmi::SecondStage::Cubic)]
    {
        for kpm in [2048usize, 8192] {
            let idx = li_rmi::Rmi::build_with(
                li_rmi::RmiConfig { keys_per_model: kpm, second_stage: stage },
                &pairs,
            );
            harness::row(
                name,
                &[
                    kpm.to_string(),
                    format!("{:.0}", time_gets(&idx, &probes)),
                    idx.model_count().to_string(),
                ],
            );
        }
    }

    println!("\n--- RadixSpline: radix bits × epsilon ---");
    harness::header(&["radix bits", "epsilon", "get ns", "spline pts"]);
    for bits in [12u32, 18, 22] {
        for eps in [16u64, 64, 256] {
            let idx = li_rs::RadixSpline::build_with(
                li_rs::RsConfig { radix_bits: bits, epsilon: eps },
                &pairs,
            );
            harness::row(
                &bits.to_string(),
                &[
                    eps.to_string(),
                    format!("{:.0}", time_gets(&idx, &probes)),
                    idx.spline_points().to_string(),
                ],
            );
        }
    }

    println!("\n--- PGM: epsilon ---");
    harness::header(&["epsilon", "get ns", "segments", "height"]);
    for eps in [16u64, 64, 256, 1024] {
        let idx = li_pgm::StaticPgm::build_with(
            li_pgm::PgmConfig { epsilon: eps, epsilon_recursive: 4 },
            &pairs,
        );
        harness::row(
            &eps.to_string(),
            &[
                format!("{:.0}", time_gets(&idx, &probes)),
                idx.segment_count().to_string(),
                idx.height().to_string(),
            ],
        );
    }

    println!("\n--- FITing-tree: epsilon × reserve (buffered) ---");
    harness::header(&["epsilon", "reserve", "get ns", "ins ns"]);
    for eps in [32u64, 128, 512] {
        for reserve in [64usize, 256] {
            let mk = || {
                li_fiting::FitingTree::build_with(
                    li_fiting::FitingConfig {
                        epsilon: eps,
                        reserve,
                        strategy: li_fiting::InsertStrategy::Buffered,
                        use_greedy_fsw: false,
                    },
                    &loaded_pairs,
                )
            };
            let idx = mk();
            let get_ns = time_gets_loaded(&idx, &loaded, cfg);
            let ins_ns = time_inserts(mk(), &pool);
            harness::row(
                &eps.to_string(),
                &[reserve.to_string(), format!("{get_ns:.0}"), format!("{ins_ns:.0}")],
            );
        }
    }

    println!("\n--- ALEX: bulk leaf keys × initial density ---");
    harness::header(&["leaf keys", "density", "get ns", "ins ns"]);
    for leaf in [1024usize, 4096, 16384] {
        for density in [0.5f64, 0.6, 0.7] {
            let mk = || {
                li_alex::Alex::build_with(
                    li_alex::AlexConfig {
                        bulk_leaf_keys: leaf,
                        initial_density: density,
                        ..Default::default()
                    },
                    &loaded_pairs,
                )
            };
            let idx = mk();
            let get_ns = time_gets_loaded(&idx, &loaded, cfg);
            let ins_ns = time_inserts(mk(), &pool);
            harness::row(
                &leaf.to_string(),
                &[format!("{density}"), format!("{get_ns:.0}"), format!("{ins_ns:.0}")],
            );
        }
    }

    println!("\n--- XIndex: group size × buffer size ---");
    harness::header(&["group", "buffer", "get ns", "ins ns"]);
    for group in [512usize, 1024, 4096] {
        for buffer in [64usize, 256] {
            let mk = || {
                li_xindex::XIndex::build_with(
                    li_xindex::XIndexConfig {
                        group_size: group,
                        buffer_size: buffer,
                        max_group_size: group * 4,
                    },
                    &loaded_pairs,
                )
            };
            let idx = mk();
            let get_ns = time_gets_loaded(&idx, &loaded, cfg);
            let ins_ns = time_inserts(mk(), &pool);
            harness::row(
                &group.to_string(),
                &[buffer.to_string(), format!("{get_ns:.0}"), format!("{ins_ns:.0}")],
            );
        }
    }

    println!("\n--- LIPP (bonus): slots per key ---");
    harness::header(&["slots/key", "get ns", "ins ns", "max depth"]);
    for spk in [1.5f64, 2.0, 3.0] {
        let mk = || {
            li_lipp::Lipp::build_with(
                li_lipp::LippConfig { slots_per_key: spk, ..Default::default() },
                &loaded_pairs,
            )
        };
        let idx = mk();
        let get_ns = time_gets_loaded(&idx, &loaded, cfg);
        let ins_ns = time_inserts(mk(), &pool);
        harness::row(
            &format!("{spk}"),
            &[format!("{get_ns:.0}"), format!("{ins_ns:.0}"), idx.max_depth().to_string()],
        );
    }
    println!();
}

fn probe_keys(keys: &[Key], count: usize, seed: u64) -> Vec<Key> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| keys[rng.random_range(0..keys.len())]).collect()
}

fn time_gets<I: Index>(idx: &I, probes: &[Key]) -> f64 {
    let t0 = Instant::now();
    let mut acc = 0u64;
    for &k in probes {
        acc ^= idx.get(k).unwrap_or(1);
    }
    std::hint::black_box(acc);
    t0.elapsed().as_nanos() as f64 / probes.len() as f64
}

fn time_gets_loaded<I: Index>(idx: &I, loaded: &[Key], cfg: &BenchConfig) -> f64 {
    let probes = probe_keys(loaded, (cfg.ops / 4).max(10_000), cfg.seed + 2);
    time_gets(idx, &probes)
}

fn time_inserts<I: UpdatableIndex>(mut idx: I, pool: &[Key]) -> f64 {
    let t0 = Instant::now();
    for (i, &k) in pool.iter().enumerate() {
        idx.insert(k, i as u64);
    }
    t0.elapsed().as_nanos() as f64 / pool.len() as f64
}
