//! Fig. 16 — index recovery (rebuild) time.
//!
//! After a restart, Viper rebuilds its volatile DRAM index by scanning the
//! NVM record pages; this times the *index build* portion for every index
//! at 1×/2×/4× the base size.

use std::time::Instant;

use crate::harness::{self, BenchConfig};
use li_workloads::Dataset;
use lip::{AnyIndex, IndexKind};

pub fn run(cfg: &BenchConfig) {
    println!("== Fig. 16: index recovery/build time ==\n");
    for mult in [1usize, 2, 4] {
        let n = cfg.n * mult;
        let keys = harness::dataset(Dataset::YcsbNormal, n, cfg.seed);
        let pairs: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        println!("--- {}k records ---", n / 1000);
        harness::header(&["index", "build ms"]);
        for kind in IndexKind::ALL {
            // Time exactly what recovery does after the page scan: a bulk
            // index build over the recovered (key, offset) pairs.
            let t0 = Instant::now();
            let idx = AnyIndex::build(kind, &pairs);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(&idx);
            harness::row(kind.name(), &[format!("{ms:.1}")]);
        }
        println!();
    }

    // One full end-to-end recovery (page scan + build) for reference.
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let store = harness::build_store(IndexKind::Alex, &keys);
    let layout = store.heap().layout();
    let dev = store.into_device();
    let t0 = Instant::now();
    let recovered = li_viper::ViperStore::recover_with(dev, layout, |pairs| {
        AnyIndex::build(IndexKind::Alex, pairs)
    });
    println!(
        "full recovery (NVM page scan + ALEX build) of {}k records: {:.1} ms",
        recovered.len() / 1000,
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Extension: APEX keeps the index ON the persistent device, so its
    // recovery reads one header per node instead of every record — the
    // design answer to this figure's drawback (§VII (ii)).
    let pairs: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let pages = pairs.len() / 100 + 64;
    let apex_dev = std::sync::Arc::new(li_nvm::NvmDevice::new(li_nvm::NvmConfig::optane(
        pages * li_apex::NODE_BYTES,
    )));
    let apex = li_apex::Apex::build(std::sync::Arc::clone(&apex_dev), &pairs);
    drop(apex);
    let t0 = Instant::now();
    let apex = li_apex::Apex::recover(apex_dev);
    use li_core::traits::Index as _;
    println!(
        "APEX-style recovery (index resident on NVM, header scan only) of {}k records: {:.1} ms\n",
        apex.len() / 1000,
        t0.elapsed().as_secs_f64() * 1e3
    );
}
