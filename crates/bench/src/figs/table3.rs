//! Table III — space overhead of the indexes.
//!
//! Three storage scenarios from §III-E1: index structure alone, index +
//! sorted key array (key-value separation), and index + full KV pairs
//! (memory database).

use crate::harness::{self, BenchConfig};
use li_core::traits::Index as _;
use li_workloads::Dataset;
use lip::{AnyIndex, IndexKind};

fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1} KiB", b as f64 / 1024.0)
    }
}

pub fn run(cfg: &BenchConfig) {
    println!("== Table III: space overhead ==");
    println!("({}k records, 8-byte keys, 200-byte values)\n", cfg.n / 1000);
    harness::header(&["index", "index size", "index+key", "index+KV"]);
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let pairs: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let key_bytes = keys.len() * 8;
    let kv_bytes = keys.len() * (8 + 200);
    for kind in IndexKind::ALL {
        let idx = AnyIndex::build(kind, &pairs);
        // "Index size" is the structure (models/nodes/tables); the sorted
        // key/offset arrays owned by learned indexes count toward the
        // key-separated scenario, as in the paper's accounting.
        let structure = idx.index_size_bytes();
        let with_keys = structure + idx.data_size_bytes().max(key_bytes);
        let with_kv = structure + idx.data_size_bytes().max(key_bytes) + kv_bytes;
        harness::row(
            kind.name(),
            &[fmt_bytes(structure), fmt_bytes(with_keys), fmt_bytes(with_kv)],
        );
    }
    println!();
}
