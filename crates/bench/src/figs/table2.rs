//! Table II — average depth of the learned indexes on YCSB and OSM.

use crate::harness::{self, BenchConfig};
use li_workloads::Dataset;
use lip::{AnyIndex, IndexKind};

pub fn run(cfg: &BenchConfig) {
    println!("== Table II: average depth of learned indexes ==\n");
    harness::header(&[
        "dataset", "RMI", "RS", "FIT-inp", "FIT-buf", "PGM", "ALEX", "XIndex", "LIPP",
    ]);
    for dataset in [Dataset::YcsbNormal, Dataset::OsmLike] {
        let keys = harness::dataset(dataset, cfg.n, cfg.seed);
        let pairs: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let cells: Vec<String> = IndexKind::LEARNED
            .iter()
            .map(|&kind| {
                let idx = AnyIndex::build(kind, &pairs);
                format!("{:.2}", idx.avg_depth().unwrap_or(0.0))
            })
            .collect();
        harness::row(dataset.name(), &cells);
    }
    println!("\nleaf/segment counts for context:");
    harness::header(&[
        "dataset", "RMI", "RS", "FIT-inp", "FIT-buf", "PGM", "ALEX", "XIndex", "LIPP",
    ]);
    for dataset in [Dataset::YcsbNormal, Dataset::OsmLike] {
        let keys = harness::dataset(dataset, cfg.n, cfg.seed);
        let pairs: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let cells: Vec<String> = IndexKind::LEARNED
            .iter()
            .map(|&kind| {
                let idx = AnyIndex::build(kind, &pairs);
                format!("{}", idx.leaf_count().unwrap_or(0))
            })
            .collect();
        harness::row(dataset.name(), &cells);
    }
    println!();
}
