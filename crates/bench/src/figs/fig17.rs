//! Fig. 17 — in-depth inquiry: approximation algorithms and inner
//! structures (§IV-A/B/C).
//!
//! * (a) avg error ↔ in-leaf query time per approximation algorithm
//! * (b) avg error ↔ number of leaves per approximation algorithm
//! * (c) inner-structure query time vs number of leaves (RMI/ATS/BTREE/LRS)
//! * (d) per-index leaf cost vs structure cost scatter

use std::time::Instant;

use crate::harness::{self, BenchConfig};
use li_core::approx::lsa_gap::{lsa_gap_quality, GappedLayout};
use li_core::approx::{ApproxAlgorithm, Segment};
use li_core::cdf::segmentation_quality;
use li_core::pieces::structure::StructureKind;
use li_core::search::bounded_last_le;
use li_core::telemetry::{OpKind, Recorder};
use li_core::traits::{BulkBuildIndex, Index, TwoPhaseLookup};
use li_core::Key;
use li_workloads::Dataset;
use rand::{rngs::StdRng, RngExt, SeedableRng};

pub fn run(cfg: &BenchConfig) {
    println!("== Fig. 17: approximation algorithms & inner structures ==\n");
    // In telemetry mode parts (a)/(c)/(d) additionally record *per-probe*
    // `Get` latencies (p50/p99/p999 in the JSON). The extra clock reads
    // inflate the printed averages slightly, so compare printed numbers
    // only between runs with the same telemetry setting.
    let sink = harness::TelemetrySink::new(cfg, "fig17");
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    part_a(cfg, &keys, &sink);
    part_b(cfg, &keys);
    part_c(cfg, &keys, &sink);
    part_d(cfg, &keys, &sink);
}

/// Times bounded-search lookups *within* segments (leaf phase only — the
/// segment for each probe key is precomputed).
fn leaf_lookup_ns(
    keys: &[Key],
    segments: &[Segment],
    probes: usize,
    seed: u64,
    rec: &Recorder,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    // Precompute (key, segment) probe pairs.
    let pairs: Vec<(Key, usize)> = (0..probes)
        .map(|_| {
            let i = rng.random_range(0..keys.len());
            let s = segments.partition_point(|s| s.start <= i) - 1;
            (keys[i], s)
        })
        .collect();
    let t0 = Instant::now();
    let mut acc = 0usize;
    for &(k, s) in &pairs {
        let t = rec.start();
        let seg = &segments[s];
        let p = seg.model.predict_clamped(k, keys.len()).clamp(seg.start, seg.start + seg.len - 1);
        acc ^= bounded_last_le(keys, k, p, seg.max_error as usize + 1);
        rec.finish(OpKind::Get, t);
    }
    std::hint::black_box(acc);
    t0.elapsed().as_nanos() as f64 / probes as f64
}

/// Times lookups in model-based gapped layouts (LSA-gap's leaf phase).
fn gapped_lookup_ns(
    keys: &[Key],
    seg_size: usize,
    density: f64,
    probes: usize,
    seed: u64,
    rec: &Recorder,
) -> f64 {
    let layouts: Vec<GappedLayout> = keys
        .chunks(seg_size)
        .map(|c| {
            let data: Vec<(Key, u64)> = c.iter().map(|&k| (k, 0)).collect();
            GappedLayout::build(&data, density)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(Key, usize)> = (0..probes)
        .map(|_| {
            let i = rng.random_range(0..keys.len());
            (keys[i], i / seg_size)
        })
        .collect();
    let t0 = Instant::now();
    let mut acc = 0u64;
    for &(k, l) in &pairs {
        let t = rec.start();
        acc ^= layouts[l].get(k).unwrap_or(1);
        rec.finish(OpKind::Get, t);
    }
    std::hint::black_box(acc);
    t0.elapsed().as_nanos() as f64 / probes as f64
}

fn part_a(cfg: &BenchConfig, keys: &[Key], sink: &harness::TelemetrySink) {
    println!("--- (a) avg error vs in-leaf query time ---");
    harness::header(&["algorithm", "param", "avg err", "leaf ns"]);
    let probes = (cfg.ops / 4).max(10_000);
    for seg_size in [256usize, 1024, 4096] {
        let rec = sink.recorder();
        let segs = ApproxAlgorithm::Lsa { seg_size }.segment(keys);
        let q = segmentation_quality(keys, segs.iter().map(|s| (s.start, s.len, s.model)));
        let ns = leaf_lookup_ns(keys, &segs, probes, cfg.seed, &rec);
        sink.write(&format!("a_LSA_{seg_size}"), &rec.snapshot());
        harness::row(
            "LSA",
            &[seg_size.to_string(), format!("{:.1}", q.avg_error), format!("{ns:.0}")],
        );
    }
    for eps in [16u64, 64, 256] {
        let rec = sink.recorder();
        let segs = ApproxAlgorithm::OptPla { epsilon: eps }.segment(keys);
        let q = segmentation_quality(keys, segs.iter().map(|s| (s.start, s.len, s.model)));
        let ns = leaf_lookup_ns(keys, &segs, probes, cfg.seed, &rec);
        sink.write(&format!("a_OptPLA_eps{eps}"), &rec.snapshot());
        harness::row(
            "Opt-PLA",
            &[format!("eps={eps}"), format!("{:.1}", q.avg_error), format!("{ns:.0}")],
        );
    }
    for seg_size in [256usize, 1024, 4096] {
        let rec = sink.recorder();
        let q = lsa_gap_quality(keys, seg_size, 0.7);
        let ns = gapped_lookup_ns(keys, seg_size, 0.7, probes, cfg.seed, &rec);
        sink.write(&format!("a_LSAgap_{seg_size}"), &rec.snapshot());
        harness::row(
            "LSA-gap",
            &[seg_size.to_string(), format!("{:.2}", q.avg_error), format!("{ns:.0}")],
        );
    }
    println!();
}

fn part_b(cfg: &BenchConfig, keys: &[Key]) {
    let _ = cfg;
    println!("--- (b) avg error vs number of leaves ---");
    harness::header(&["algorithm", "param", "avg err", "leaves"]);
    for seg_size in [64usize, 256, 1024, 4096, 16384] {
        let segs = ApproxAlgorithm::Lsa { seg_size }.segment(keys);
        let q = segmentation_quality(keys, segs.iter().map(|s| (s.start, s.len, s.model)));
        harness::row(
            "LSA",
            &[seg_size.to_string(), format!("{:.1}", q.avg_error), q.segments.to_string()],
        );
    }
    for eps in [4u64, 16, 64, 256, 1024] {
        let segs = ApproxAlgorithm::OptPla { epsilon: eps }.segment(keys);
        let q = segmentation_quality(keys, segs.iter().map(|s| (s.start, s.len, s.model)));
        harness::row(
            "Opt-PLA",
            &[format!("eps={eps}"), format!("{:.1}", q.avg_error), q.segments.to_string()],
        );
    }
    for seg_size in [64usize, 256, 1024, 4096, 16384] {
        let q = lsa_gap_quality(keys, seg_size, 0.7);
        harness::row(
            "LSA-gap",
            &[seg_size.to_string(), format!("{:.2}", q.avg_error), q.segments.to_string()],
        );
    }
    println!("(LSA-gap: low error AND few leaves simultaneously — §IV-A's conclusion)\n");
}

fn part_c(cfg: &BenchConfig, keys: &[Key], sink: &harness::TelemetrySink) {
    println!("--- (c) inner-structure query time vs number of leaves ---");
    harness::header(&["#leaves", "BTREE ns", "RMI ns", "LRS ns", "ATS ns"]);
    let probes = (cfg.ops / 4).max(10_000);
    for leaves in [1_000usize, 5_000, 20_000, 100_000] {
        if leaves > keys.len() {
            continue;
        }
        // Leaf boundary keys sampled evenly from the dataset.
        let step = keys.len() / leaves;
        let first_keys: Vec<Key> = keys.iter().step_by(step).copied().collect();
        let mut cells = Vec::new();
        for kind in
            [StructureKind::BTree, StructureKind::Rmi, StructureKind::Lrs, StructureKind::Ats]
        {
            let rec = sink.recorder();
            let s = kind.build_dyn(&first_keys);
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let probe_keys: Vec<Key> =
                (0..probes).map(|_| keys[rng.random_range(0..keys.len())]).collect();
            let t0 = Instant::now();
            let mut acc = 0usize;
            for &k in &probe_keys {
                let t = rec.start();
                acc ^= s.locate(k);
                rec.finish(OpKind::Get, t);
            }
            std::hint::black_box(acc);
            cells.push(format!("{:.0}", t0.elapsed().as_nanos() as f64 / probes as f64));
            sink.write(&format!("c_{kind:?}_{}", first_keys.len()), &rec.snapshot());
        }
        harness::row(&first_keys.len().to_string(), &cells);
    }
    println!();
}

fn part_d(cfg: &BenchConfig, keys: &[Key], sink: &harness::TelemetrySink) {
    println!("--- (d) structure cost vs leaf cost per learned index ---");
    harness::header(&["index", "struct ns", "leaf ns", "total ns"]);
    let probes = (cfg.ops / 4).max(10_000);
    let pairs: Vec<(Key, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed + 9);
    let probe_keys: Vec<Key> = (0..probes).map(|_| keys[rng.random_range(0..keys.len())]).collect();

    // Indexes exposing the two-phase lookup: time phase 1, then total.
    // Per-probe `Get` latency of the total phase goes to the telemetry
    // sink, one snapshot per index.
    macro_rules! two_phase {
        ($name:expr, $idx:expr) => {{
            let idx = $idx;
            let rec = sink.recorder();
            let t0 = Instant::now();
            let mut acc = 0usize;
            for &k in &probe_keys {
                acc ^= idx.locate_leaf(k);
            }
            std::hint::black_box(acc);
            let struct_ns = t0.elapsed().as_nanos() as f64 / probes as f64;
            let t0 = Instant::now();
            let mut acc = 0u64;
            for &k in &probe_keys {
                let t = rec.start();
                acc ^= Index::get(&idx, k).unwrap_or(1);
                rec.finish(OpKind::Get, t);
            }
            std::hint::black_box(acc);
            let total_ns = t0.elapsed().as_nanos() as f64 / probes as f64;
            sink.write(&format!("d_{}", $name), &rec.snapshot());
            harness::row(
                $name,
                &[
                    format!("{struct_ns:.0}"),
                    format!("{:.0}", (total_ns - struct_ns).max(0.0)),
                    format!("{total_ns:.0}"),
                ],
            );
        }};
    }

    two_phase!("RMI", li_rmi::Rmi::build(&pairs));
    two_phase!("RS", li_rs::RadixSpline::build(&pairs));
    two_phase!("FITing-tree", li_fiting::FitingTree::new_buffered(&pairs));
    two_phase!("PGM", li_pgm::StaticPgm::build(&pairs));

    // ALEX and XIndex expose dedicated structure probes.
    {
        let alex = li_alex::Alex::build(&pairs);
        let rec = sink.recorder();
        let t0 = Instant::now();
        let mut acc = 0usize;
        for &k in &probe_keys {
            acc ^= alex.descend_only(k);
        }
        std::hint::black_box(acc);
        let struct_ns = t0.elapsed().as_nanos() as f64 / probes as f64;
        let t0 = Instant::now();
        let mut acc = 0u64;
        for &k in &probe_keys {
            let t = rec.start();
            acc ^= alex.get(k).unwrap_or(1);
            rec.finish(OpKind::Get, t);
        }
        std::hint::black_box(acc);
        let total_ns = t0.elapsed().as_nanos() as f64 / probes as f64;
        sink.write("d_ALEX", &rec.snapshot());
        harness::row(
            "ALEX",
            &[
                format!("{struct_ns:.0}"),
                format!("{:.0}", (total_ns - struct_ns).max(0.0)),
                format!("{total_ns:.0}"),
            ],
        );
    }
    {
        let x = li_xindex::XIndex::build(&pairs);
        let rec = sink.recorder();
        let t0 = Instant::now();
        let mut acc = 0usize;
        for &k in &probe_keys {
            acc ^= x.locate_group(k);
        }
        std::hint::black_box(acc);
        let struct_ns = t0.elapsed().as_nanos() as f64 / probes as f64;
        let t0 = Instant::now();
        let mut acc = 0u64;
        for &k in &probe_keys {
            let t = rec.start();
            acc ^= Index::get(&x, k).unwrap_or(1);
            rec.finish(OpKind::Get, t);
        }
        std::hint::black_box(acc);
        let total_ns = t0.elapsed().as_nanos() as f64 / probes as f64;
        sink.write("d_XIndex", &rec.snapshot());
        harness::row(
            "XIndex",
            &[
                format!("{struct_ns:.0}"),
                format!("{:.0}", (total_ns - struct_ns).max(0.0)),
                format!("{total_ns:.0}"),
            ],
        );
    }
    println!("(ALEX should sit closest to the origin — §IV-C)\n");
}
