//! # li-bench — the paper's evaluation harness
//!
//! One module per table/figure of *"Cutting Learned Index into Pieces"*
//! (ICDE 2023); each has a `run(&BenchConfig)` entry point and a thin
//! binary in `src/bin/`. `run_all` executes the lot.
//!
//! Dataset sizes are scaled from the paper's 200M–800M down to a default
//! of 200k–800k (set `LIP_BENCH_N` to change the base size); value size
//! (200 B), workload mixes, thread counts and every qualitative knob
//! match the paper. Shapes — who wins, by what factor, where crossovers
//! sit — are the reproduction target, not absolute numbers (see
//! EXPERIMENTS.md).

pub mod figs;
pub mod harness;

pub use harness::BenchConfig;
