//! Reproduces the paper's Fig. 13 (see crates/bench/src/figs/fig13.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::fig13::run(&cfg);
}
