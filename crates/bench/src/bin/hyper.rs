//! Reproduces the paper's hyper evaluation (see crates/bench/src/figs/hyper.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::hyper::run(&cfg);
}
