//! Checkpoint + WAL-replay recovery vs. full-rescan recovery (the
//! durability tentpole's acceptance benchmark).
//!
//! The paper's availability analysis (§III-E2 / Fig. 16) measures how
//! long a learned-index store is offline after a crash when recovery must
//! rescan every NVM page and retrain the model from scratch. This binary
//! quantifies what the WAL + model-checkpoint subsystem buys back: for
//! each key count, one durable store is loaded, mutated past its last
//! checkpoint, and crashed — then recovered twice from the same image:
//!
//! * **checkpoint_replay** — deserialize the newest checkpoint (live
//!   entries + serialized model parameters), replay the WAL tail, and
//!   validate checkpointed entries against their slots. No page scan, no
//!   retraining.
//! * **full_rescan** — the pre-durability path: scan every heap page,
//!   CRC-verify every slot, rebuild the model from scratch.
//!
//! One JSON document is written under `results/` so CI can assert the
//! headline claim: checkpoint + replay is strictly faster at every swept
//! key count.
//!
//! Flags: `--keys N[,N...]` (default `1000000,10000000`), `--tail N`
//! (mutations past the last checkpoint, default 10000), `--trials N`
//! (timed recoveries per path, best-of; default 2 — the store is rebuilt
//! per trial so both paths see a cold image, and the minimum discards
//! scheduler noise rather than flattering either side), `--out PATH`,
//! `--check` (exit non-zero unless the fast path wins every row).

use std::sync::Arc;
use std::time::Instant;

use li_core::approx::ApproxAlgorithm;
use li_core::pieces::assembled::{PiecewiseConfig, PiecewiseIndex};
use li_core::pieces::insertion::LeafKind;
use li_core::pieces::retrain::RetrainPolicy;
use li_core::pieces::structure::StructureKind;
use li_core::telemetry::Recorder;
use li_nvm::{DurabilityTracking, LatencyModel, NvmConfig};
use li_viper::{DurabilityConfig, RecordLayout, RecoverOptions, StoreConfig, ViperStore};
use li_workloads::{generate_keys, Dataset};

struct Args {
    keys: Vec<usize>,
    tail: usize,
    trials: usize,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        keys: vec![1_000_000, 10_000_000],
        tail: 10_000,
        trials: 2,
        out: "results/recovery.json".to_string(),
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--keys" => {
                let spec = it.next().expect("--keys N[,N...]");
                args.keys = spec
                    .split(',')
                    .map(|s| s.trim().parse().expect("--keys takes integers"))
                    .collect();
            }
            "--tail" => args.tail = it.next().and_then(|v| v.parse().ok()).expect("--tail N"),
            "--trials" => {
                args.trials = it.next().and_then(|v| v.parse().ok()).expect("--trials N");
                assert!(args.trials >= 1, "--trials must be >= 1");
            }
            "--out" => args.out = it.next().expect("--out PATH"),
            "--check" => args.check = true,
            "--telemetry" => {} // accepted for uniformity with other binaries
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn pieces_cfg() -> PiecewiseConfig {
    PiecewiseConfig {
        algo: ApproxAlgorithm::OptPla { epsilon: 64 },
        structure: StructureKind::BTree,
        leaf: LeafKind::Gapped { density: 0.7, max_density: 0.85 },
        policy: RetrainPolicy::ResegmentLeaf,
    }
}

fn value_of(key: u64, buf: &mut [u8]) {
    buf.fill((key % 251) as u8);
}

struct Row {
    keys: usize,
    live: usize,
    replayed: usize,
    fast_ms: f64,
    rescan_ms: f64,
}

/// Re-arms the WAL tail: `tail` updates past whatever checkpoint the store
/// last wrote, plus `tail / 10` deletes (no-ops after the first arming —
/// the keys are already gone — so the live count is stable across trials).
fn arm_tail(
    store: &mut ViperStore<PiecewiseIndex>,
    keys: &[u64],
    tail: usize,
    layout: &RecordLayout,
) {
    let mut val = vec![0u8; layout.value_size];
    for &k in keys.iter().take(tail) {
        value_of(k ^ 0x5a, &mut val);
        store.put(k, &val).expect("tail update");
    }
    for &k in keys.iter().rev().take(tail / 10) {
        store.delete(k).expect("tail delete");
    }
}

/// Crashes the store and times a checkpoint+replay recovery.
fn recover_fast(
    store: ViperStore<PiecewiseIndex>,
    layout: RecordLayout,
    opts: RecoverOptions,
    cfg: PiecewiseConfig,
    live: usize,
) -> (ViperStore<PiecewiseIndex>, f64, usize) {
    let mut dev = Arc::try_unwrap(store.into_device()).ok().expect("unique device");
    dev.crash();
    let t0 = Instant::now();
    let (store, report) = ViperStore::recover_with_model(
        Arc::new(dev),
        layout,
        opts,
        Recorder::disabled(),
        |pairs, model| match model {
            Some(bytes) => PiecewiseIndex::build_from_model(cfg, pairs, bytes),
            None => PiecewiseIndex::build_with(cfg, pairs),
        },
    );
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(report.from_checkpoint, "fast path fell back to a rescan");
    assert!(report.replayed > 0, "the WAL tail must be replayed");
    assert_eq!(store.len(), live, "checkpoint_replay lost acked writes");
    (store, ms, report.replayed)
}

/// Crashes the store and times a forced full-rescan recovery.
fn recover_rescan(
    store: ViperStore<PiecewiseIndex>,
    layout: RecordLayout,
    opts: RecoverOptions,
    cfg: PiecewiseConfig,
    live: usize,
) -> (ViperStore<PiecewiseIndex>, f64) {
    let mut dev = Arc::try_unwrap(store.into_device()).ok().expect("unique device");
    dev.crash();
    let t0 = Instant::now();
    let (store, report) = ViperStore::recover_with_options(Arc::new(dev), layout, opts, |pairs| {
        PiecewiseIndex::build_with(cfg, pairs)
    });
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(!report.from_checkpoint);
    assert_eq!(store.len(), live, "full_rescan lost acked writes");
    (store, ms)
}

/// Loads a durable store with `n` keys and a `tail` of un-checkpointed
/// mutations in the WAL, then crashes and recovers it `trials` times per
/// path, keeping each path's best time. One untimed warmup recovery runs
/// first (the process's first recovery pays one-off page-table/allocator
/// warming that would otherwise be billed to whichever path runs first)
/// and the timed trials alternate fast/rescan so slow environmental drift
/// lands on both paths equally. Every recovery re-arms the tail (the
/// recovery itself checkpoints, retiring the previous one), so both paths
/// always face a checkpointed image plus a live WAL tail; the minimum
/// discards scheduler noise without favouring either side.
fn run_one(n: usize, tail: usize, trials: usize) -> Row {
    let keys = generate_keys(Dataset::YcsbNormal, n, 7);
    let layout = RecordLayout::small();
    let heap_bytes = (n * 2 / layout.slots_per_page() + 16) * layout.page_size;
    let durability = DurabilityConfig::sized_for(n + tail, 64 * 1024);
    let config = StoreConfig {
        layout,
        nvm: NvmConfig {
            capacity: heap_bytes,
            latency: LatencyModel::dram_like(),
            durability: DurabilityTracking::Shadow,
        },
        crash_safe_updates: false,
        durability: None,
    }
    .with_durability(durability);

    eprintln!("[{n} keys] loading (checkpoint generation 1 at load)...");
    let cfg = pieces_cfg();
    let mut store = ViperStore::bulk_load_with(config, &keys, value_of, |pairs| {
        PiecewiseIndex::build_with(cfg, pairs)
    });
    arm_tail(&mut store, &keys, tail, &layout);
    let live = store.len();
    let opts = RecoverOptions { durability: Some(durability), ..RecoverOptions::default() };
    let rescan_opts = RecoverOptions { use_checkpoint: false, ..opts };

    eprintln!("[{n} keys] warmup recovery (untimed)...");
    let (warm, _, _) = recover_fast(store, layout, opts, cfg, live);
    store = warm;
    arm_tail(&mut store, &keys, tail, &layout);

    let mut fast_ms = f64::INFINITY;
    let mut rescan_ms = f64::INFINITY;
    let mut replayed = 0;
    for trial in 0..trials {
        eprintln!("[{n} keys] crash + checkpoint_replay recovery (trial {})...", trial + 1);
        let (s, ms, rep) = recover_fast(store, layout, opts, cfg, live);
        store = s;
        if ms < fast_ms {
            fast_ms = ms;
            replayed = rep;
        }
        arm_tail(&mut store, &keys, tail, &layout);
        assert_eq!(store.len(), live, "re-arming the tail must not change the live set");

        eprintln!("[{n} keys] crash + full_rescan recovery (trial {})...", trial + 1);
        let (s, ms) = recover_rescan(store, layout, rescan_opts, cfg, live);
        store = s;
        rescan_ms = rescan_ms.min(ms);
        arm_tail(&mut store, &keys, tail, &layout);
        assert_eq!(store.len(), live, "re-arming the tail must not change the live set");
    }

    Row { keys: n, live, replayed, fast_ms, rescan_ms }
}

fn main() {
    let args = parse_args();
    println!("== recovery: checkpoint+WAL-replay vs full-rescan ==\n");
    println!(
        "{:>12} {:>12} {:>10} {:>16} {:>14} {:>9}",
        "keys", "live", "replayed", "ckpt+replay ms", "rescan ms", "speedup"
    );

    let mut rows = Vec::new();
    for &n in &args.keys {
        let row = run_one(n, args.tail.min(n / 2), args.trials);
        println!(
            "{:>12} {:>12} {:>10} {:>16.1} {:>14.1} {:>8.1}x",
            row.keys,
            row.live,
            row.replayed,
            row.fast_ms,
            row.rescan_ms,
            row.rescan_ms / row.fast_ms
        );
        rows.push(row);
    }

    let fast_wins_all = rows.iter().all(|r| r.fast_ms < r.rescan_ms);
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"keys\":{},\"live\":{},\"replayed\":{},\
                 \"checkpoint_replay_ms\":{:.2},\"full_rescan_ms\":{:.2},\"speedup\":{:.2}}}",
                r.keys,
                r.live,
                r.replayed,
                r.fast_ms,
                r.rescan_ms,
                r.rescan_ms / r.fast_ms
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"recovery\",\"dataset\":\"YCSB\",\"index\":\"pieces-gapped-optpla\",\
         \"tail\":{},\"trials\":{},\"rows\":[{}],\"checkpoint_replay_wins_all\":{}}}\n",
        args.tail,
        args.trials,
        cells.join(","),
        fast_wins_all
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&args.out, &json).expect("write JSON");
    println!("\n[json] {}", args.out);

    if args.check && !fast_wins_all {
        eprintln!("CHECK FAILED: checkpoint+replay is not strictly faster at every key count");
        std::process::exit(1);
    }
}
