//! Reproduces the paper's scan evaluation (see crates/bench/src/figs/scan.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::scan::run(&cfg);
}
