//! Reproduces the paper's table3 (see crates/bench/src/figs/table3.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::table3::run(&cfg);
}
