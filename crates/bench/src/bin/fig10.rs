//! Reproduces the paper's Fig. 10 (see crates/bench/src/figs/fig10.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::fig10::run(&cfg);
}
