//! Crash-torture driver: replays many seeded fault schedules against the
//! Viper recovery path and reports oracle divergences (exit code 1 if any).
//!
//! ```text
//! cargo run --release -p li-bench --bin torture -- \
//!     [--seeds N] [--start-seed S] [--ops N] [--kinds btree,pgm,alex] \
//!     [--shards N] [--in-place] [--no-verify]
//! ```
//!
//! `--shards N` drives the shared-writer store over a range-sharded index
//! with N shards (0, the default, tortures the single-writer store);
//! `--in-place` tortures the paper-default in-place update path instead of
//! crash-safe out-of-place updates; `--no-verify` disables checksum
//! quarantine at recovery (expect failures — that is the point of it).

use std::process::ExitCode;

use lip::torture::{torture_run, TortureConfig};
use lip::IndexKind;

fn parse_kind(name: &str) -> Option<IndexKind> {
    IndexKind::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let mut seeds = 200u64;
    let mut start_seed = 0u64;
    let mut ops = 400usize;
    let mut kinds = vec![IndexKind::BTree, IndexKind::Pgm, IndexKind::Alex];
    let mut crash_safe = true;
    let mut verify = true;
    let mut shards = 0usize;

    fn die(msg: String) -> ! {
        eprintln!("{msg}");
        eprintln!("usage: torture [--seeds N] [--start-seed S] [--ops N] [--kinds btree,pgm,alex] [--shards N] [--in-place] [--no-verify]");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).unwrap_or_else(|| die(format!("{} needs a value", args[*i - 1]))).clone()
        };
        match args[i].as_str() {
            "--seeds" => {
                seeds =
                    value(&mut i).parse().unwrap_or_else(|_| die("--seeds needs a number".into()));
            }
            "--start-seed" => {
                start_seed = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| die("--start-seed needs a number".into()));
            }
            "--ops" => {
                ops = value(&mut i).parse().unwrap_or_else(|_| die("--ops needs a number".into()));
            }
            "--kinds" => {
                kinds = value(&mut i)
                    .split(',')
                    .map(|s| {
                        let kind = parse_kind(s.trim()).unwrap_or_else(|| {
                            die(format!(
                                "unknown kind {s:?}; known: {}",
                                IndexKind::UPDATABLE.map(|k| k.name()).join(", ")
                            ))
                        });
                        if !kind.supports_insert() {
                            die(format!(
                                "kind {} is read-only; torture needs an updatable index",
                                kind.name()
                            ));
                        }
                        kind
                    })
                    .collect();
            }
            "--shards" => {
                shards =
                    value(&mut i).parse().unwrap_or_else(|_| die("--shards needs a number".into()));
            }
            "--in-place" => crash_safe = false,
            "--no-verify" => verify = false,
            other => die(format!("unknown flag {other}")),
        }
        i += 1;
    }

    println!(
        "torture: {} seed(s) from {} x {} backend(s), {} ops each, store={}, updates={}, checksums={}",
        seeds,
        start_seed,
        kinds.len(),
        ops,
        if shards == 0 { "single-writer".to_string() } else { format!("sharded x{shards}") },
        if crash_safe { "out-of-place" } else { "in-place" },
        if verify { "verified" } else { "UNVERIFIED" },
    );

    let mut runs = 0u64;
    let mut failed = 0u64;
    let mut acked = 0u64;
    let mut crashes = 0u64;
    let mut torn = 0u64;
    let mut dropped = 0u64;
    let mut write_fails = 0u64;
    let mut full = 0u64;
    let mut quarantined = 0u64;
    let mut duplicates = 0u64;
    for &kind in &kinds {
        let mut cfg = TortureConfig::quick(kind);
        cfg.ops = ops;
        cfg.crash_safe_updates = crash_safe;
        cfg.verify_checksums = verify;
        cfg.shards = shards;
        for seed in start_seed..start_seed + seeds {
            let out = torture_run(seed, &cfg);
            runs += 1;
            acked += out.ops_acked as u64;
            crashes += out.faults.crash_triggers;
            torn += out.faults.torn_writes;
            dropped += out.faults.dropped_flushes;
            write_fails += out.faults.failed_writes;
            full += out.faults.full_rejections;
            quarantined += out.report.quarantined as u64;
            duplicates += out.report.duplicates_dropped as u64;
            if !out.passed() {
                failed += 1;
                println!("FAIL kind={} seed={}", kind.name(), out.seed);
                for d in &out.divergences {
                    println!("  - {d}");
                }
            }
        }
    }

    println!("----");
    println!("runs              {runs}");
    println!("acked ops         {acked}");
    println!("crash points      {crashes}");
    println!("torn writes       {torn}");
    println!("dropped flushes   {dropped}");
    println!("failed writes     {write_fails}");
    println!("full rejections   {full}");
    println!("quarantined       {quarantined}");
    println!("dup slots dropped {duplicates}");
    if failed == 0 {
        println!("all {runs} runs satisfied the oracle");
        ExitCode::SUCCESS
    } else {
        println!("{failed}/{runs} runs DIVERGED from the oracle");
        ExitCode::FAILURE
    }
}
