//! Reproduces the paper's Fig. 16 (see crates/bench/src/figs/fig16.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::fig16::run(&cfg);
}
