//! Reproduces the paper's Fig. 11 (see crates/bench/src/figs/fig11.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::fig11::run(&cfg);
}
