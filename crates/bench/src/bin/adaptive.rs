//! Self-tuning router vs. static single-kind configs under workload
//! drift (the adaptation follow-up to the paper's static Figs. 14/18).
//!
//! The paper benchmarks each updatable design under a *fixed* workload
//! and finds no overall winner: gapped in-place designs (ALEX) win
//! insert-heavy phases, while tighter layouts without model-made gaps
//! (FITing-tree inplace) scan faster but pay key shifts on every
//! crowded insert. This binary drives a workload that *drifts* — a
//! hotspot that migrates across the keyspace while the op mix flips
//! from insert-heavy to scan-mostly mid-run — and asks whether the
//! telemetry-driven tuner (index-kind hot-swap over a pinned shard
//! layout) tracks the regime shift.
//!
//! Three identical-shard configs face the same two-phase stream:
//!
//! * **adaptive** — starts as ALEX everywhere; a background thread runs
//!   tuner epochs the way Viper's maintenance worker does, so shards
//!   hot-swap to FITing-tree-inp as their observed mix turns read-mostly.
//! * **static-alex** / **static-fiting-inp** — the same router pinned to
//!   one of the policy's kinds; no adaptation.
//!
//! Phase A is insert-heavy (80% writes) with the hotspot over the low
//! third of the keyspace; phase B is scan-mostly (10% writes, reads are
//! short range scans) with the hotspot migrated to the high third.
//! Per-phase latency histograms are printed and written as one JSON row
//! under `results/` so CI can gate the headline claim: the adaptive
//! config's **worst-phase p99** is no worse than the best static
//! config's worst-phase p99 — i.e. adaptation beats every
//! pick-one-kind-up-front strategy on tail latency once the workload
//! refuses to sit still.
//!
//! Flags: `--ops N` (per phase), `--shards N`, `--out PATH`, `--check`
//! (exit non-zero unless the adaptive row wins). `LIP_BENCH_N` scales
//! the loaded key set as in every other binary.

use std::sync::Arc;

use li_sync::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use li_bench::harness::{self, BenchConfig};
use li_core::hist::LatencyHistogram;
use li_core::telemetry::{Event, Recorder};
use li_core::traits::{ConcurrentIndex, OrderedIndex};
use li_core::Key;
use lip::{AdaptivePolicy, AnyConcurrentIndex, ConcurrentKind, IndexKind};

/// Bulk-load stride: loaded keys sit on multiples of 16, so most
/// hotspot inserts create fresh keys instead of updating in place.
const STRIDE: u64 = 16;

/// Range-scan window for scan reads, in key units (256 loaded keys).
const SCAN_WINDOW: u64 = 256 * STRIDE;

struct Args {
    ops: usize,
    shards: usize,
    out: String,
    check: bool,
}

fn parse_args(default_ops: usize) -> Args {
    let mut args = Args {
        ops: default_ops,
        shards: 8,
        out: "results/adaptive.json".to_string(),
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ops" => args.ops = it.next().and_then(|v| v.parse().ok()).expect("--ops N"),
            "--shards" => args.shards = it.next().and_then(|v| v.parse().ok()).expect("--shards N"),
            "--out" => args.out = it.next().expect("--out PATH"),
            "--check" => args.check = true,
            "--telemetry" => {} // accepted for uniformity with other binaries
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// One drift regime: a read/write mix plus a hotspot window over the
/// keyspace `[0, span)`.
struct Phase {
    name: &'static str,
    /// Writes per mille of the op stream.
    write_per_mille: u64,
    /// Hotspot window as thousandths of the keyspace.
    hot_lo_per_mille: u64,
    hot_hi_per_mille: u64,
    /// Fraction (per mille) of ops aimed at the hotspot window; the
    /// rest scatter uniformly over the keyspace.
    hot_per_mille: u64,
    /// Reads are short range scans ([`SCAN_WINDOW`]) instead of point
    /// gets — the op shape that separates scan-friendly layouts from
    /// gapped ones.
    scan_reads: bool,
}

/// Phase A: insert-heavy, hotspot over the low third of the keyspace.
const PHASE_A: Phase = Phase {
    name: "write-heavy-low",
    write_per_mille: 800,
    hot_lo_per_mille: 0,
    hot_hi_per_mille: 333,
    hot_per_mille: 900,
    scan_reads: false,
};

/// Phase B: scan-mostly, hotspot migrated to the high third.
const PHASE_B: Phase = Phase {
    name: "scan-mostly-high",
    write_per_mille: 100,
    hot_lo_per_mille: 667,
    hot_hi_per_mille: 1000,
    hot_per_mille: 1000,
    scan_reads: true,
};

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Drives one phase single-threaded, recording per-op latency. The op
/// stream is fully determined by `seed`, so every config faces the
/// identical sequence of keys and op types.
fn drive(
    idx: &AnyConcurrentIndex,
    phase: &Phase,
    span: u64,
    ops: usize,
    seed: u64,
) -> LatencyHistogram {
    let hot_lo = span / 1000 * phase.hot_lo_per_mille;
    let hot_hi = span / 1000 * phase.hot_hi_per_mille;
    let mut s = seed;
    let mut hist = LatencyHistogram::new();
    for i in 0..ops {
        let r = splitmix64(&mut s);
        let key = if r % 1000 < phase.hot_per_mille {
            hot_lo + splitmix64(&mut s) % (hot_hi - hot_lo).max(1)
        } else {
            splitmix64(&mut s) % span
        };
        let is_write = splitmix64(&mut s) % 1000 < phase.write_per_mille;
        let t0 = Instant::now();
        if is_write {
            ConcurrentIndex::insert(idx, key, i as u64);
        } else if phase.scan_reads {
            let _ = idx.range_vec(key, key.saturating_add(SCAN_WINDOW));
        } else {
            let _ = ConcurrentIndex::get(idx, key);
        }
        hist.record(t0.elapsed().as_nanos() as u64);
    }
    hist
}

/// Per-config result: one histogram per phase plus the shard-kind layout
/// observed after each phase.
struct Run {
    name: String,
    a: LatencyHistogram,
    b: LatencyHistogram,
    kinds_after_a: String,
    kinds_after_b: String,
}

impl Run {
    /// Tail latency of the config's *worst* phase — the number a
    /// pick-one-kind-up-front strategy is stuck with under drift.
    fn worst_p99(&self) -> u64 {
        self.a.percentile(0.99).max(self.b.percentile(0.99))
    }
}

/// Counts shards per kind label, e.g. `"ALEX x3 + PGM x5"`.
fn kind_layout(idx: &AnyConcurrentIndex) -> String {
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for k in idx.shard_kinds() {
        let label = idx.kind_label(k);
        match counts.iter_mut().find(|(l, _)| *l == label) {
            Some((_, n)) => *n += 1,
            None => counts.push((label, 1)),
        }
    }
    counts.iter().map(|(l, n)| format!("{l} x{n}")).collect::<Vec<_>>().join(" + ")
}

/// Runs both phases over one config. When `adapt` is set, a background
/// thread runs tuner epochs for the whole session (the maintenance
/// worker's role); static configs take the identical code path, where
/// `run_adaptation` is a no-op.
fn run_config(name: &str, idx: AnyConcurrentIndex, span: u64, ops: usize, seed: u64) -> Run {
    let idx = Arc::new(idx);
    let stop = Arc::new(AtomicBool::new(false));
    let epochs = {
        let idx = Arc::clone(&idx);
        let stop = Arc::clone(&stop);
        li_sync::thread::spawn(move || {
            let mut committed = 0usize;
            while !stop.load(Ordering::Acquire) {
                committed += idx.run_adaptation();
                li_sync::thread::sleep(Duration::from_millis(4));
            }
            committed
        })
    };
    let a = drive(&idx, &PHASE_A, span, ops, seed ^ 0xa);
    let kinds_after_a = kind_layout(&idx);
    let b = drive(&idx, &PHASE_B, span, ops, seed ^ 0xb);
    let kinds_after_b = kind_layout(&idx);
    stop.store(true, Ordering::Release);
    let committed = epochs.join().expect("epoch thread");
    Run { name: format!("{name} ({committed} adaptations)"), a, b, kinds_after_a, kinds_after_b }
}

fn print_run(run: &Run) {
    for (phase, hist) in [(&PHASE_A, &run.a), (&PHASE_B, &run.b)] {
        harness::row(
            &format!("{} / {}", run.name, phase.name),
            &[
                format!("{:.2}", hist.percentile(0.5) as f64 / 1e3),
                format!("{:.2}", hist.percentile(0.99) as f64 / 1e3),
                format!("{:.2}", hist.percentile(0.999) as f64 / 1e3),
            ],
        );
    }
}

fn phase_cell(hist: &LatencyHistogram) -> String {
    format!(
        "{{\"p50_us\":{:.3},\"p99_us\":{:.3},\"p999_us\":{:.3}}}",
        hist.percentile(0.5) as f64 / 1e3,
        hist.percentile(0.99) as f64 / 1e3,
        hist.percentile(0.999) as f64 / 1e3,
    )
}

fn run_cell(run: &Run) -> String {
    format!(
        "{{\"write_heavy\":{},\"scan_mostly\":{},\"worst_p99_us\":{:.3},\
         \"kinds_after_write_phase\":\"{}\",\"kinds_after_read_phase\":\"{}\"}}",
        phase_cell(&run.a),
        phase_cell(&run.b),
        run.worst_p99() as f64 / 1e3,
        run.kinds_after_a,
        run.kinds_after_b,
    )
}

fn main() {
    let cfg = BenchConfig::from_env();
    let args = parse_args(cfg.ops);
    println!("== adaptive: self-tuning router vs. static kinds under drift ==\n");

    // Loaded keys on a stride leave gaps for the hotspot inserts; the
    // keyspace span is what the phase hotspot windows carve up.
    let span = cfg.n as u64 * STRIDE;
    let loaded: Vec<(Key, u64)> = (0..cfg.n as u64).map(|i| (i * STRIDE, i)).collect();
    println!(
        "loaded {} keys (span {span}), {} ops/phase x 2 phases, {} shards",
        loaded.len(),
        args.ops,
        args.shards
    );
    println!(
        "phase A: {}% writes, hotspot low third; phase B: {}% writes, hotspot high third\n",
        PHASE_A.write_per_mille / 10,
        PHASE_B.write_per_mille / 10
    );

    harness::header(&["config / phase", "p50 us", "p99 us", "p999 us"]);

    // Adaptive: PGM everywhere, ALEX as the write-heavy rebuild target
    // (the AdaptivePolicy default). The recorder counts its structural
    // actions for the JSON row.
    let rec = Recorder::enabled();
    let adaptive = {
        // Short benches see few epochs, so the hysteresis floors come
        // down accordingly; the thresholds and targets are the policy's.
        let mut policy = AdaptivePolicy {
            initial: IndexKind::Alex,
            write_heavy: IndexKind::Alex,
            read_mostly: IndexKind::FitingInp,
            ..AdaptivePolicy::default()
        };
        policy.tuner.min_dwell_epochs = 2;
        policy.tuner.cooldown_epochs = 1;
        policy.tuner.min_epoch_ops = 128;
        policy.tuner.min_swap_ops = 256;
        policy.tuner.max_actions_per_epoch = 4;
        // Pin the shard count: a single-threaded driver gains nothing
        // from finer lock granularity, and every extra boundary is one
        // more cell a scan must cross — this bench isolates the
        // kind-swap claim. The oracle and chaos tests cover split/merge.
        policy.tuner.max_shards = args.shards;
        policy.tuner.min_shards = args.shards;
        let mut idx = AnyConcurrentIndex::build_adaptive(args.shards, &loaded, policy);
        li_core::traits::Index::set_recorder(&mut idx, rec.clone());
        run_config("adaptive", idx, span, args.ops, cfg.seed)
    };
    print_run(&adaptive);

    let statics: Vec<Run> = [IndexKind::Alex, IndexKind::FitingInp]
        .into_iter()
        .map(|kind| {
            let route = ConcurrentKind::of(kind).expect("sharded route");
            let idx = AnyConcurrentIndex::build_with_shards(route, args.shards, &loaded);
            let run = run_config(&format!("static-{}", kind.name()), idx, span, args.ops, cfg.seed);
            print_run(&run);
            run
        })
        .collect();

    let snap = rec.snapshot();
    println!(
        "\nadaptive structural actions: {} splits, {} merges, {} kind swaps ({} tuner decisions)",
        snap.event(Event::ShardSplit),
        snap.event(Event::ShardMerge),
        snap.event(Event::KindSwap),
        snap.event(Event::TunerDecision),
    );
    println!(
        "adaptive layout after write phase: [{}]; after read phase: [{}]",
        adaptive.kinds_after_a, adaptive.kinds_after_b
    );

    // The drift claim: every static kind has a phase it is wrong for;
    // the adaptive row must match or beat the best static config's
    // worst-phase tail.
    let static_best_worst =
        statics.iter().map(Run::worst_p99).min().expect("at least one static config");
    let wins = adaptive.worst_p99() <= static_best_worst;
    println!(
        "\nworst-phase p99: adaptive {:.2} us vs best static {:.2} us — adaptive {}",
        adaptive.worst_p99() as f64 / 1e3,
        static_best_worst as f64 / 1e3,
        if wins { "wins" } else { "does NOT win" }
    );

    let json = format!(
        "{{\"bench\":\"adaptive\",\"loaded\":{},\"ops_per_phase\":{},\"shards\":{},\"seed\":{},\
         \"adaptive\":{},\"static_alex\":{},\"static_fiting_inp\":{},\
         \"splits\":{},\"merges\":{},\"kind_swaps\":{},\"tuner_decisions\":{},\
         \"adaptive_beats_every_static_worst_phase\":{}}}\n",
        cfg.n,
        args.ops,
        args.shards,
        cfg.seed,
        run_cell(&adaptive),
        run_cell(&statics[0]),
        run_cell(&statics[1]),
        snap.event(Event::ShardSplit),
        snap.event(Event::ShardMerge),
        snap.event(Event::KindSwap),
        snap.event(Event::TunerDecision),
        wins
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&args.out, &json).expect("write JSON row");
    println!("[json] {}", args.out);

    if args.check && !wins {
        eprintln!("CHECK FAILED: adaptive worst-phase p99 exceeds the best static config's");
        std::process::exit(1);
    }
}
