//! Reproduces the paper's Fig. 18 (see crates/bench/src/figs/fig18.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::fig18::run(&cfg);
}
