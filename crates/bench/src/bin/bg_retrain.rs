//! Foreground vs. background retraining under the Fig. 18 insert
//! workload (§IV-E).
//!
//! The paper measures how much of an updatable learned index's insert
//! cost is retraining (Fig. 18 (b)/(d)). This binary asks the follow-up
//! service question: what happens to *tail* insert latency when that
//! retraining is moved off the foreground path onto the
//! [`li_viper::MaintenanceWorker`]?
//!
//! Two identical stores are loaded with the YCSB key set and driven with
//! the same insert stream:
//!
//! * **fg** — retrains run inline in the insert path (the default).
//! * **bg** — a maintenance worker owns retraining; inserts that would
//!   retrain park their key and return immediately.
//!
//! The per-insert latency histograms are printed and written as one JSON
//! row under `results/` so CI can assert the headline claim: background
//! retraining strictly lowers p999 insert latency.
//!
//! Flags: `--inserts N`, `--shards N`, `--out PATH`,
//! `--check` (exit non-zero unless bg p999 < fg p999).
//! `LIP_BENCH_N` scales the loaded key set as in every other binary.

use std::sync::Arc;
use std::time::Instant;

use li_bench::harness::{self, BenchConfig};
use li_core::hist::LatencyHistogram;
use li_core::telemetry::{Event, Recorder};
use li_core::{Key, Sharded};
use li_viper::{ConcurrentViperStore, MaintenanceConfig, MaintenanceWorker, StoreConfig};
use li_workloads::Dataset;
use lip::{AnyIndex, IndexKind};

struct Args {
    inserts: usize,
    shards: usize,
    out: String,
    check: bool,
}

fn parse_args(default_inserts: usize) -> Args {
    let mut args = Args {
        inserts: default_inserts,
        shards: 8,
        out: "results/bg_retrain.json".to_string(),
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--inserts" => {
                args.inserts = it.next().and_then(|v| v.parse().ok()).expect("--inserts N");
            }
            "--shards" => args.shards = it.next().and_then(|v| v.parse().ok()).expect("--shards N"),
            "--out" => args.out = it.next().expect("--out PATH"),
            "--check" => args.check = true,
            "--telemetry" => {} // accepted for uniformity with other binaries
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn build(loaded: &[Key], shards: usize) -> ConcurrentViperStore<Sharded> {
    let config = StoreConfig::paper(loaded.len() * 4 + 1024);
    ConcurrentViperStore::bulk_load_shared(config, loaded, harness::value_of, |pairs| {
        Sharded::build_with(shards, pairs, |chunk| AnyIndex::build(IndexKind::FitingBuf, chunk))
    })
}

/// Drives the insert stream single-threaded, recording per-op latency.
fn drive(store: &ConcurrentViperStore<Sharded>, inserts: &[Key]) -> LatencyHistogram {
    let vs = store.heap().layout().value_size;
    let mut val = vec![0u8; vs];
    let mut hist = LatencyHistogram::new();
    for &k in inserts {
        harness::value_of(k, &mut val);
        let t0 = Instant::now();
        store.put(k, &val).expect("bench insert failed");
        hist.record(t0.elapsed().as_nanos() as u64);
    }
    hist
}

fn cell(hist: &LatencyHistogram, secs: f64) -> String {
    format!(
        "{{\"mops\":{:.4},\"p50_us\":{:.3},\"p99_us\":{:.3},\"p999_us\":{:.3},\"max_us\":{:.3}}}",
        hist.count() as f64 / secs / 1e6,
        hist.percentile(0.5) as f64 / 1e3,
        hist.percentile(0.99) as f64 / 1e3,
        hist.percentile(0.999) as f64 / 1e3,
        hist.max() as f64 / 1e3,
    )
}

fn print_row(name: &str, hist: &LatencyHistogram, secs: f64) {
    harness::row(
        name,
        &[
            format!("{:.3}", hist.count() as f64 / secs / 1e6),
            format!("{:.1}", hist.percentile(0.5) as f64 / 1e3),
            format!("{:.1}", hist.percentile(0.99) as f64 / 1e3),
            format!("{:.1}", hist.percentile(0.999) as f64 / 1e3),
            format!("{:.1}", hist.max() as f64 / 1e3),
        ],
    );
}

fn main() {
    let cfg = BenchConfig::from_env();
    let args = parse_args(cfg.ops);
    println!("== bg_retrain: foreground vs. background retraining ==\n");

    // Fig. 18 insert stream: load half the YCSB key set, insert the rest.
    let keys = harness::dataset(Dataset::YcsbNormal, cfg.n, cfg.seed);
    let (loaded, pool) = li_workloads::split_load_insert(&keys, 0.5);
    let inserts: Vec<Key> = pool.iter().copied().take(args.inserts).collect();
    println!(
        "dataset YCSB, loaded {} keys, inserting {} (FITing-tree-buf x {} shards)\n",
        loaded.len(),
        inserts.len(),
        args.shards
    );

    harness::header(&["mode", "Mops", "p50 us", "p99 us", "p999 us", "max us"]);

    // Foreground: retrains run inline in the insert path. Both stores
    // carry an enabled recorder so per-op overhead is identical.
    let mut fg_store = build(&loaded, args.shards);
    fg_store.set_recorder(Recorder::enabled());
    let t0 = Instant::now();
    let fg = drive(&fg_store, &inserts);
    let fg_secs = t0.elapsed().as_secs_f64();
    print_row("foreground", &fg, fg_secs);

    // Background: the maintenance worker owns retraining. A coarse tick
    // keeps the worker's drains bursty, so on small machines it preempts
    // as few measured inserts as possible.
    let mut bg_store = build(&loaded, args.shards);
    let rec = Recorder::enabled();
    bg_store.set_recorder(rec.clone());
    let bg_store = Arc::new(bg_store);
    let worker = MaintenanceWorker::spawn(
        Arc::clone(&bg_store),
        MaintenanceConfig { interval: std::time::Duration::from_millis(10), ..Default::default() },
    );
    let t0 = Instant::now();
    let bg = drive(&bg_store, &inserts);
    let bg_secs = t0.elapsed().as_secs_f64();
    let stats = worker.shutdown();
    print_row("background", &bg, bg_secs);

    let deferred = rec.snapshot().event(Event::RetrainDeferred);
    println!(
        "\nworker: {} ticks, {} retrains drained, {} deferrals parked by inserts",
        stats.ticks, stats.retrains, deferred
    );
    let improved = bg.percentile(0.999) < fg.percentile(0.999);
    println!(
        "p999 insert latency: fg {:.1} us vs bg {:.1} us — background {}",
        fg.percentile(0.999) as f64 / 1e3,
        bg.percentile(0.999) as f64 / 1e3,
        if improved { "wins" } else { "does NOT win" }
    );

    let json = format!(
        "{{\"bench\":\"bg_retrain\",\"dataset\":\"YCSB\",\"index\":\"FITing-tree-buf\",\
         \"loaded\":{},\"inserts\":{},\"shards\":{},\"seed\":{},\
         \"fg\":{},\"bg\":{},\
         \"worker_retrains\":{},\"deferred\":{},\"bg_p999_lt_fg\":{}}}\n",
        loaded.len(),
        inserts.len(),
        args.shards,
        cfg.seed,
        cell(&fg, fg_secs),
        cell(&bg, bg_secs),
        stats.retrains,
        deferred,
        improved
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&args.out, &json).expect("write JSON row");
    println!("[json] {}", args.out);

    if args.check && !improved {
        eprintln!("CHECK FAILED: background p999 is not lower than foreground p999");
        std::process::exit(1);
    }
}
