//! Reproduces the paper's table1 (see crates/bench/src/figs/table1.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::table1::run(&cfg);
}
