//! Ablations of the reproduction's design choices (see
//! crates/bench/src/figs/ablation.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::ablation::run(&cfg);
}
