//! Runs every table and figure reproduction in sequence.
//!
//! Scale with env vars: `LIP_BENCH_N` (base dataset size, default 200k),
//! `LIP_BENCH_OPS`, `LIP_BENCH_THREADS`.

use li_bench::figs;

fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    println!(
        "learned-index-pieces: full evaluation (n={}k, ops={}k, threads<= {})\n",
        cfg.n / 1000,
        cfg.ops / 1000,
        cfg.max_threads
    );
    figs::table1::run(&cfg);
    figs::fig10::run(&cfg);
    figs::fig11::run(&cfg);
    figs::fig12::run(&cfg);
    figs::fig13::run(&cfg);
    figs::fig14::run(&cfg);
    figs::fig15::run(&cfg);
    figs::table2::run(&cfg);
    figs::table3::run(&cfg);
    figs::fig16::run(&cfg);
    figs::fig17::run(&cfg);
    figs::fig18::run(&cfg);
    figs::hyper::run(&cfg);
    figs::scan::run(&cfg);
    figs::ablation::run(&cfg);
    println!("all experiments complete.");
}
