//! Reproduces the paper's table2 (see crates/bench/src/figs/table2.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::table2::run(&cfg);
}
