//! Closed- and open-loop load generation against the `li-server` TCP
//! front-end, plus a seeded overload storm that asserts the degradation
//! ladder engages **in order**: transparent retry first, admission-gate
//! backpressure second, circuit-breaker shedding last.
//!
//! Three parts, all over real loopback sockets:
//!
//! 1. **Closed-loop sweep** — 8..64 clients, one in-flight request each,
//!    mixed GET/PUT; p50/p99/p999 per client count.
//! 2. **Open loop** — 16 clients each keeping a pipelined window of 16
//!    requests in flight, latency measured from send to response.
//! 3. **Ladder storm** — a store on a fault-injected device: write-failure
//!    bursts are absorbed by the retry policy (rung 1, invisible to
//!    clients), a 32-client put stampede saturates the admission gate
//!    (rung 2, typed `RETRY_AFTER`), then the breaker is tripped (rung 3,
//!    typed `OVERLOADED`, shed before the store is touched). Every request
//!    must resolve — success or typed error, never a hang or a dropped
//!    connection — and the three rungs must first engage in ladder order.
//!
//! Flags: `--ops N` (total ops per sweep point), `--out PATH`,
//! `--check` (exit non-zero unless the storm invariants hold).
//! `LIP_BENCH_N` scales the preloaded key set as in every other binary.

use std::time::{Duration, Instant};

use li_bench::harness::{self, BenchConfig};
use li_core::hist::LatencyHistogram;
use li_core::telemetry::{Event, Recorder};
use li_core::Sharded;
use li_nvm::{Fault, FaultPlan, NvmDevice};
use li_proto::{Body, Command, ErrorKind};
use li_server::{testutil, Client, Server, ServiceConfig};
use li_sync::sync::atomic::{AtomicBool, Ordering};
use li_sync::sync::Arc;
use li_viper::{BreakerConfig, ConcurrentViperStore, RecoverOptions, RetryPolicy, StoreConfig};
use lip::{AnyIndex, IndexKind};

struct Args {
    ops: usize,
    out: String,
    check: bool,
}

fn parse_args(default_ops: usize) -> Args {
    let mut args =
        Args { ops: default_ops, out: "results/serve_load.json".to_string(), check: false };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ops" => args.ops = it.next().and_then(|v| v.parse().ok()).expect("--ops N"),
            "--out" => args.out = it.next().expect("--out PATH"),
            "--check" => args.check = true,
            "--telemetry" => {} // accepted for uniformity with other binaries
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What one load-generating client observed: every request it sent either
/// resolved (success or typed error) or is unaccounted — the storm check
/// demands the latter stays zero.
#[derive(Default)]
struct ClientTally {
    sent: u64,
    resolved: u64,
    ok: u64,
    retry_after: u64,
    overloaded: u64,
    other_errors: u64,
    first_retry_after: Option<Instant>,
    first_overloaded: Option<Instant>,
    hist: LatencyHistogram,
}

impl ClientTally {
    fn absorb(&mut self, at: Instant, body: &Body) {
        self.resolved += 1;
        match body {
            Body::Err { kind: ErrorKind::RetryAfter, .. } => {
                self.retry_after += 1;
                self.first_retry_after.get_or_insert(at);
            }
            Body::Err { kind: ErrorKind::Overloaded, .. } => {
                self.overloaded += 1;
                self.first_overloaded.get_or_insert(at);
            }
            Body::Err { .. } => self.other_errors += 1,
            _ => self.ok += 1,
        }
    }

    fn merge(&mut self, other: &ClientTally) {
        self.sent += other.sent;
        self.resolved += other.resolved;
        self.ok += other.ok;
        self.retry_after += other.retry_after;
        self.overloaded += other.overloaded;
        self.other_errors += other.other_errors;
        self.first_retry_after = earliest(self.first_retry_after, other.first_retry_after);
        self.first_overloaded = earliest(self.first_overloaded, other.first_overloaded);
        self.hist.merge(&other.hist);
    }
}

fn earliest(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

/// Closed loop: each client keeps exactly one request in flight.
fn closed_loop_client(
    addr: std::net::SocketAddr,
    ops: usize,
    preload: u64,
    seed: u64,
) -> ClientTally {
    let mut c = Client::connect(addr, Duration::from_secs(10)).expect("connect");
    let mut s = seed;
    let mut tally = ClientTally::default();
    for _ in 0..ops {
        let r = splitmix64(&mut s);
        let key = (r % preload) * 7 + 1;
        let cmd = if r & 1 == 0 {
            Command::Get { key }
        } else {
            Command::Put { key, value: (r >> 8).to_le_bytes().to_vec() }
        };
        let t0 = Instant::now();
        tally.sent += 1;
        let body = c.call(cmd, 0).expect("closed-loop call");
        tally.hist.record(t0.elapsed().as_nanos() as u64);
        tally.absorb(Instant::now(), &body);
    }
    tally
}

/// Open loop: each client keeps a pipelined window of `window` requests in
/// flight; latency runs from send to matching response.
fn open_loop_client(
    addr: std::net::SocketAddr,
    ops: usize,
    window: usize,
    preload: u64,
    seed: u64,
) -> ClientTally {
    let mut c = Client::connect(addr, Duration::from_secs(10)).expect("connect");
    let mut s = seed;
    let mut tally = ClientTally::default();
    let mut in_flight: std::collections::HashMap<u64, Instant> = std::collections::HashMap::new();
    let send_one = |c: &mut Client<std::net::TcpStream>,
                    s: &mut u64,
                    in_flight: &mut std::collections::HashMap<u64, Instant>,
                    tally: &mut ClientTally| {
        let r = splitmix64(s);
        let key = (r % preload) * 7 + 1;
        let cmd = if r & 1 == 0 {
            Command::Get { key }
        } else {
            Command::Put { key, value: (r >> 8).to_le_bytes().to_vec() }
        };
        let id = c.send(cmd, 0).expect("open-loop send");
        in_flight.insert(id, Instant::now());
        tally.sent += 1;
    };
    for _ in 0..window.min(ops) {
        send_one(&mut c, &mut s, &mut in_flight, &mut tally);
    }
    while tally.resolved < ops as u64 {
        let resp = c.recv().expect("open-loop recv");
        let now = Instant::now();
        if let Some(t0) = in_flight.remove(&resp.id) {
            tally.hist.record(now.duration_since(t0).as_nanos() as u64);
        }
        tally.absorb(now, &resp.body);
        if tally.sent < ops as u64 {
            send_one(&mut c, &mut s, &mut in_flight, &mut tally);
        }
    }
    tally
}

fn fan_out<F>(clients: usize, run: F) -> ClientTally
where
    F: Fn(usize) -> ClientTally + Send + Sync + 'static,
{
    let run = Arc::new(run);
    let mut handles = Vec::new();
    for i in 0..clients {
        let run = Arc::clone(&run);
        handles.push(li_sync::thread::spawn(move || run(i)));
    }
    let mut total = ClientTally::default();
    for h in handles {
        total.merge(&h.join().expect("client thread panicked"));
    }
    total
}

fn latency_cells(t: &ClientTally, secs: f64) -> Vec<String> {
    vec![
        format!("{:.3}", t.resolved as f64 / secs / 1e6),
        format!("{:.1}", t.hist.percentile(0.5) as f64 / 1e3),
        format!("{:.1}", t.hist.percentile(0.99) as f64 / 1e3),
        format!("{:.1}", t.hist.percentile(0.999) as f64 / 1e3),
        format!("{:.1}", t.hist.max() as f64 / 1e3),
    ]
}

fn latency_json(t: &ClientTally, secs: f64) -> String {
    format!(
        "{{\"mops\":{:.4},\"p50_us\":{:.3},\"p99_us\":{:.3},\"p999_us\":{:.3},\"max_us\":{:.3}}}",
        t.resolved as f64 / secs / 1e6,
        t.hist.percentile(0.5) as f64 / 1e3,
        t.hist.percentile(0.99) as f64 / 1e3,
        t.hist.percentile(0.999) as f64 / 1e3,
        t.hist.max() as f64 / 1e3,
    )
}

/// One sweep point: a fresh preloaded server, `clients` closed-loop
/// clients splitting `total_ops`.
fn sweep_point(clients: usize, total_ops: usize, preload: usize, seed: u64) -> (ClientTally, f64) {
    let cfg = ServiceConfig::default();
    let store = testutil::served_store(preload, &cfg);
    let server = Server::spawn(store, cfg, "127.0.0.1:0").expect("spawn server");
    let addr = server.local_addr();
    let per_client = total_ops.div_ceil(clients);
    let preload = preload as u64;
    let t0 = Instant::now();
    let tally = fan_out(clients, move |i| {
        closed_loop_client(addr, per_client, preload, seed ^ (i as u64).wrapping_mul(0x9e37))
    });
    let secs = t0.elapsed().as_secs_f64();
    server.shutdown();
    (tally, secs)
}

struct StormOutcome {
    retries: u64,
    retry_after: u64,
    overloaded: u64,
    sent: u64,
    resolved: u64,
    other_errors: u64,
    ladder_ok: bool,
    shed_p999_us: f64,
    breaker_opens: u64,
    drained_clean: bool,
    recovered: bool,
}

/// Keys the storm store serves: 4096 spread keys, so the recovered
/// `Sharded` index gets real shard boundaries and the server's
/// shard-affinity routing actually fans requests across workers.
const STORM_KEYS: u64 = 4096;

fn storm_key(i: u64) -> u64 {
    (i % STORM_KEYS) * 13 + 5
}

/// Device op at which the scheduled write-failure bursts start — padded
/// to exactly after preload, so phase 1 deterministically runs into them.
const BURSTS_AT: u64 = 50_000;

/// The seeded overload storm: one server whose store sits on a device with
/// scheduled write-failure bursts, driven through the three rungs in
/// sequence. Returns every counter the `--check` gate needs.
fn storm(seed: u64) -> StormOutcome {
    // Write-failure bursts of 4 consecutive device ops across phase 1's
    // op window — short enough that RetryPolicy::standard (6 attempts)
    // absorbs each burst without surfacing an error.
    let mut plan = FaultPlan::none();
    for burst in 0..12u64 {
        let start = BURSTS_AT + 20 + burst * 40;
        for op in start..start + 4 {
            plan = plan.with(Fault::FailedWrite { op });
        }
    }
    let store_cfg = StoreConfig::test(50_000);
    let dev = Arc::new(NvmDevice::with_faults(store_cfg.nvm, &plan));

    // Preload through a throwaway single-shard store on the same device
    // (single-threaded, so the device op sequence stays deterministic and
    // well below BURSTS_AT), then re-recover: the heap scan hands the
    // live pairs to an 8-shard build with real boundaries.
    {
        let (pre, _) = ConcurrentViperStore::<Sharded>::recover_shared_with_options(
            Arc::clone(&dev),
            store_cfg.layout,
            RecoverOptions::default(),
            |pairs| Sharded::build_with(1, pairs, |c| AnyIndex::build(IndexKind::BTree, c)),
        );
        let vs = store_cfg.layout.value_size;
        let mut val = vec![0u8; vs];
        for i in 0..STORM_KEYS {
            val[..8].copy_from_slice(&i.to_le_bytes());
            pre.put(storm_key(i), &val).expect("storm preload put");
        }
    }
    // Pad the device op counter up to the burst window, so phase 1 starts
    // exactly where the fault plan expects it.
    let injector = dev.fault_injector().expect("device has a fault plan");
    while injector.ops() < BURSTS_AT {
        dev.try_flush(0, 64).expect("padding flush");
    }

    let (mut store, _) = ConcurrentViperStore::<Sharded>::recover_shared_with_options(
        Arc::clone(&dev),
        store_cfg.layout,
        RecoverOptions::default(),
        |pairs| Sharded::build_with(8, pairs, |c| AnyIndex::build(IndexKind::BTree, c)),
    );
    store.set_recorder(Recorder::enabled());
    let rec = store.recorder().clone();

    // Ladder wiring: a slim worker pool with shallow queues so a
    // pipelined stampede saturates dispatch (typed RETRY_AFTER) on any
    // core count; the store-level admission gate backs it up, and a
    // hair-trigger breaker the storm trips by hand (in production the
    // maintenance worker feeds it).
    let scfg = ServiceConfig {
        workers: 2,
        queue_depth: 4,
        retry: RetryPolicy::standard(seed),
        admission_limit: 1,
        admission_wait: Duration::ZERO,
        breaker: Some(BreakerConfig {
            depth_open: 4,
            depth_close: 1,
            sustain_ticks: 1,
            p999_open_ns: 0,
        }),
        ..ServiceConfig::default()
    };
    let breaker = scfg.install(&mut store).expect("breaker configured");
    let server = Server::spawn(Arc::new(store), scfg, "127.0.0.1:0").expect("spawn server");
    let addr = server.local_addr();

    // Rung-1 sentinel: the moment the store first rides out an injected
    // write failure (Event::Retry), sampled while phase 1 runs.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let rec = rec.clone();
        let stop = Arc::clone(&stop);
        li_sync::thread::spawn(move || loop {
            if rec.snapshot().event(Event::Retry) > 0 {
                return Some(Instant::now());
            }
            if stop.load(Ordering::Acquire) {
                return None;
            }
            li_sync::thread::sleep(Duration::from_micros(200));
        })
    };

    // Phase 1 — retry: a single sequential client stays under the
    // admission limit; the scheduled bursts hit its puts and the retry
    // policy absorbs them.
    let mut total = ClientTally::default();
    let p1 = fan_out(1, move |_| {
        let mut c = Client::connect(addr, Duration::from_secs(10)).expect("connect");
        let mut tally = ClientTally::default();
        for i in 0..400u64 {
            tally.sent += 1;
            let t0 = Instant::now();
            let body = c
                .call(Command::Put { key: storm_key(i), value: i.to_le_bytes().to_vec() }, 0)
                .expect("phase-1 put");
            tally.hist.record(t0.elapsed().as_nanos() as u64);
            tally.absorb(Instant::now(), &body);
        }
        tally
    });
    stop.store(true, Ordering::Release);
    let t_retry = monitor.join().expect("monitor panicked");
    let retries = rec.snapshot().event(Event::Retry);
    total.merge(&p1);

    // Phase 2 — backpressure: 32 clients each pipeline 150 puts without
    // reading, overwhelming two workers with depth-4 queues; dispatch
    // sheds the overflow as typed RETRY_AFTER (and on multicore hosts the
    // single-entrant admission gate sheds more). Every frame still gets
    // an answer.
    let p2 = fan_out(32, move |i| {
        let mut c = Client::connect(addr, Duration::from_secs(10)).expect("connect");
        let mut tally = ClientTally::default();
        let mut s = seed ^ 0xbac4_0000 ^ i as u64;
        for j in 0..150u64 {
            tally.sent += 1;
            let key = storm_key(splitmix64(&mut s));
            c.send(Command::Put { key, value: j.to_le_bytes().to_vec() }, 0).expect("phase-2 send");
        }
        for _ in 0..150u64 {
            let resp = c.recv().expect("phase-2 recv");
            tally.absorb(Instant::now(), &resp.body);
        }
        tally
    });
    let t_retry_after = p2.first_retry_after;
    total.merge(&p2);

    // Phase 3 — breaker: one overloaded observation opens it
    // (sustain_ticks = 1); every put is now shed as typed OVERLOADED
    // before touching the store.
    breaker.observe(999, 0);
    let p3 = fan_out(8, move |i| {
        let mut c = Client::connect(addr, Duration::from_secs(10)).expect("connect");
        let mut tally = ClientTally::default();
        let mut s = seed ^ 0xb4ea_c000 ^ i as u64;
        for j in 0..100u64 {
            tally.sent += 1;
            let key = storm_key(splitmix64(&mut s));
            let t0 = Instant::now();
            let body = c
                .call(Command::Put { key, value: j.to_le_bytes().to_vec() }, 0)
                .expect("phase-3 put");
            tally.hist.record(t0.elapsed().as_nanos() as u64);
            tally.absorb(Instant::now(), &body);
        }
        tally
    });
    let t_overloaded = p3.first_overloaded;
    let shed_p999_us = p3.hist.percentile(0.999) as f64 / 1e3;
    total.merge(&p3);

    // Close the breaker and prove the ladder is fully reversible: the
    // same server serves writes again.
    breaker.observe(0, 0);
    let p4 = fan_out(1, move |_| {
        let mut c = Client::connect(addr, Duration::from_secs(10)).expect("connect");
        let mut tally = ClientTally::default();
        tally.sent += 2;
        let key = storm_key(7);
        let put = c.call(Command::Put { key, value: vec![42] }, 0).expect("put");
        tally.absorb(Instant::now(), &put);
        let get = c.call(Command::Get { key }, 0).expect("get");
        tally.absorb(Instant::now(), &get);
        tally
    });
    let recovered = p4.ok == 2;
    total.merge(&p4);

    let report = server.shutdown();

    // Ladder order: the first retry strictly precedes the first typed
    // RETRY_AFTER, which strictly precedes the first typed OVERLOADED.
    let ladder_ok = match (t_retry, t_retry_after, t_overloaded) {
        (Some(a), Some(b), Some(c)) => a < b && b < c,
        _ => false,
    };

    StormOutcome {
        retries,
        retry_after: total.retry_after,
        overloaded: total.overloaded,
        sent: total.sent,
        resolved: total.resolved,
        other_errors: total.other_errors,
        ladder_ok,
        shed_p999_us,
        breaker_opens: breaker.times_opened(),
        drained_clean: report.drained_clean,
        recovered,
    }
}

fn main() {
    let cfg = BenchConfig::from_env();
    let args = parse_args(cfg.ops.min(20_000));
    let preload = cfg.n.clamp(1_024, 25_000);
    println!("== serve_load: li-server under closed/open-loop load + ladder storm ==\n");
    println!("preload {preload} keys, {} ops per sweep point, seed {}\n", args.ops, cfg.seed);

    // Part 1: closed-loop client sweep.
    harness::header(&["clients", "Mops", "p50 us", "p99 us", "p999 us", "max us"]);
    let mut sweep_rows = Vec::new();
    for clients in [8usize, 16, 32, 64] {
        let (tally, secs) = sweep_point(clients, args.ops, preload, cfg.seed);
        assert_eq!(tally.sent, tally.resolved, "closed loop lost responses");
        assert_eq!(tally.other_errors + tally.retry_after + tally.overloaded, 0);
        harness::row(&format!("closed/{clients}"), &latency_cells(&tally, secs));
        sweep_rows.push(format!("{{\"clients\":{clients},{}", &latency_json(&tally, secs)[1..]));
    }

    // Part 2: open loop, 16 clients x window 16.
    let (open_tally, open_secs) = {
        let scfg = ServiceConfig::default();
        let store = testutil::served_store(preload, &scfg);
        let server = Server::spawn(store, scfg, "127.0.0.1:0").expect("spawn server");
        let addr = server.local_addr();
        let per_client = args.ops.div_ceil(16);
        let preload = preload as u64;
        let seed = cfg.seed;
        let t0 = Instant::now();
        let tally = fan_out(16, move |i| {
            open_loop_client(addr, per_client, 16, preload, seed ^ (i as u64) << 17)
        });
        let secs = t0.elapsed().as_secs_f64();
        server.shutdown();
        (tally, secs)
    };
    assert_eq!(open_tally.sent, open_tally.resolved, "open loop lost responses");
    harness::row("open/16x16", &latency_cells(&open_tally, open_secs));

    // Part 3: the seeded ladder storm.
    println!("\n-- overload storm (seeded ladder) --");
    let s = storm(cfg.seed);
    println!(
        "rung 1 retry: {} absorbed | rung 2 backpressure: {} RETRY_AFTER | rung 3 breaker: {} OVERLOADED ({} open)",
        s.retries, s.retry_after, s.overloaded, s.breaker_opens
    );
    println!(
        "sent {} resolved {} (other errors {}) | shed-path p999 {:.1} us | ladder order {} | recovered {} | drained clean {}",
        s.sent,
        s.resolved,
        s.other_errors,
        s.shed_p999_us,
        if s.ladder_ok { "OK" } else { "VIOLATED" },
        s.recovered,
        s.drained_clean
    );

    let json = format!(
        "{{\"bench\":\"serve_load\",\"preload\":{},\"ops\":{},\"seed\":{},\
         \"sweep\":[{}],\"open_loop\":{{\"clients\":16,\"window\":16,{}}},\
         \"storm\":{{\"retries\":{},\"retry_after\":{},\"overloaded\":{},\
         \"sent\":{},\"resolved\":{},\"other_errors\":{},\"ladder_ok\":{},\
         \"shed_p999_us\":{:.3},\"breaker_opens\":{},\"drained_clean\":{},\"recovered\":{}}}}}\n",
        preload,
        args.ops,
        cfg.seed,
        sweep_rows.join(","),
        &latency_json(&open_tally, open_secs)[1..],
        s.retries,
        s.retry_after,
        s.overloaded,
        s.sent,
        s.resolved,
        s.other_errors,
        s.ladder_ok,
        s.shed_p999_us,
        s.breaker_opens,
        s.drained_clean,
        s.recovered,
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&args.out, &json).expect("write JSON row");
    println!("[json] {}", args.out);

    if args.check {
        let mut failures = Vec::new();
        if s.retries == 0 {
            failures.push("rung 1 never engaged (no retries recorded)");
        }
        if s.retry_after == 0 {
            failures.push("rung 2 never engaged (no RETRY_AFTER responses)");
        }
        if s.overloaded == 0 {
            failures.push("rung 3 never engaged (no OVERLOADED responses)");
        }
        if !s.ladder_ok {
            failures.push("ladder rungs did not engage in order");
        }
        if s.sent != s.resolved {
            failures.push("a request was sent but never resolved");
        }
        if s.shed_p999_us >= 50_000.0 {
            failures.push("shed-path p999 above 50ms — shedding is not cheap");
        }
        if !s.recovered {
            failures.push("server did not serve writes after the breaker closed");
        }
        if !s.drained_clean {
            failures.push("shutdown drain left in-flight requests behind");
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        println!("CHECK OK: ladder order, full resolution, cheap shedding, clean drain");
    }
}
