//! Reproduces the paper's Fig. 15 (see crates/bench/src/figs/fig15.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::fig15::run(&cfg);
}
