//! Reproduces the paper's Fig. 14 (see crates/bench/src/figs/fig14.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::fig14::run(&cfg);
}
