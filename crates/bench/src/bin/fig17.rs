//! Reproduces the paper's Fig. 17 (see crates/bench/src/figs/fig17.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::fig17::run(&cfg);
}
