//! Reproduces the paper's Fig. 12 (see crates/bench/src/figs/fig12.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::fig12::run(&cfg);
}
