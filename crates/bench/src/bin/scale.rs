//! Shard-count scaling sweep (see crates/bench/src/figs/scale.rs).
fn main() {
    let cfg = li_bench::BenchConfig::from_env();
    li_bench::figs::scale::run(&cfg);
}
