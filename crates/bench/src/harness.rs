//! Shared measurement machinery for the figure/table binaries.

use std::fmt::Write as _;
use std::time::Instant;

use li_core::hist::LatencyHistogram;
use li_core::telemetry::{Recorder, TelemetrySnapshot};
use li_core::Key;
use li_viper::{ConcurrentViperStore, StoreConfig, ViperStore};
use li_workloads::{generate_ops, split_load_insert, Dataset, Op, WorkloadSpec};
use lip::{AnyConcurrentIndex, AnyIndex, ConcurrentKind, IndexKind};

/// Scale and repetition knobs, read from the environment so every binary
/// accepts the same controls:
///
/// * `LIP_BENCH_N` — base dataset size (default 200 000; the paper used
///   200 000 000).
/// * `LIP_BENCH_OPS` — operations per measurement (default `N / 2`).
/// * `LIP_BENCH_THREADS` — max thread count for Figs. 12/14 (default 8).
/// * `--telemetry` (any binary) or `LIP_BENCH_TELEMETRY=1` — attach an
///   always-on recorder per phase and write JSON snapshots under
///   `results/telemetry/<fig>/`.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    pub n: usize,
    pub ops: usize,
    pub max_threads: usize,
    pub seed: u64,
    /// Emit per-phase telemetry snapshots (latency histograms, structural
    /// events, NVM counters) next to the printed tables.
    pub telemetry: bool,
}

impl BenchConfig {
    pub fn from_env() -> Self {
        let n = std::env::var("LIP_BENCH_N").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000);
        let ops = std::env::var("LIP_BENCH_OPS").ok().and_then(|v| v.parse().ok()).unwrap_or(n / 2);
        let max_threads =
            std::env::var("LIP_BENCH_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
        let telemetry = std::env::args().any(|a| a == "--telemetry")
            || std::env::var("LIP_BENCH_TELEMETRY").is_ok_and(|v| v != "0" && !v.is_empty());
        BenchConfig { n, ops, max_threads, seed: 42, telemetry }
    }

    /// Thread counts swept by the multi-threaded figures.
    pub fn thread_counts(&self) -> Vec<usize> {
        [1usize, 2, 4, 8, 16, 32].into_iter().filter(|&t| t <= self.max_threads).collect()
    }
}

/// Default record value: every byte is `key % 251`.
pub fn value_of(key: Key, buf: &mut [u8]) {
    buf.fill((key % 251) as u8);
}

/// Per-figure telemetry output: one JSON file per measurement phase under
/// `results/telemetry/<fig>/`, written only when the config asked for it.
/// Each phase uses a *fresh* [`Recorder`], so snapshots are per-phase
/// absolutes — no delta bookkeeping for consumers.
pub struct TelemetrySink {
    dir: Option<std::path::PathBuf>,
}

impl TelemetrySink {
    pub fn new(cfg: &BenchConfig, fig: &str) -> Self {
        if !cfg.telemetry {
            return TelemetrySink { dir: None };
        }
        let dir = std::path::Path::new("results").join("telemetry").join(fig);
        match std::fs::create_dir_all(&dir) {
            Ok(()) => TelemetrySink { dir: Some(dir) },
            Err(e) => {
                eprintln!("telemetry: cannot create {}: {e} (snapshots disabled)", dir.display());
                TelemetrySink { dir: None }
            }
        }
    }

    /// Whether snapshots will actually be written — gate per-op recording
    /// overhead on this, not on `BenchConfig::telemetry` alone.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// A recorder for one phase: enabled when the sink is, inert otherwise
    /// (so call sites thread it unconditionally).
    pub fn recorder(&self) -> Recorder {
        if self.enabled() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    /// Writes one phase snapshot as `<phase>.json` (non-path characters in
    /// the phase name become `_`). No-op when disabled.
    pub fn write(&self, phase: &str, snap: &TelemetrySnapshot) {
        let Some(dir) = &self.dir else { return };
        let file: String = phase
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
            .collect();
        let path = dir.join(format!("{file}.json"));
        if let Err(e) = std::fs::write(&path, snap.to_json()) {
            eprintln!("telemetry: cannot write {}: {e}", path.display());
        } else {
            println!("[telemetry] {}", path.display());
        }
    }
}

/// One measured cell: throughput + latency distribution.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub name: String,
    pub ops: usize,
    pub secs: f64,
    pub hist: LatencyHistogram,
}

impl Measurement {
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.secs / 1e6
    }

    pub fn p999_us(&self) -> f64 {
        self.hist.percentile(0.999) as f64 / 1e3
    }

    pub fn p50_us(&self) -> f64 {
        self.hist.percentile(0.5) as f64 / 1e3
    }
}

/// Builds a loaded store for `kind` over `keys`.
pub fn build_store(kind: IndexKind, keys: &[Key]) -> ViperStore<AnyIndex> {
    let config = StoreConfig::paper(keys.len() * 2 + 1024);
    ViperStore::bulk_load_with(config, keys, value_of, |pairs| AnyIndex::build(kind, pairs))
}

/// Builds a loaded shared-writer store for a concurrent kind over `keys`
/// (the default shard count) — the one construction path every
/// multi-threaded figure uses.
pub fn build_concurrent_store(
    kind: ConcurrentKind,
    keys: &[Key],
) -> ConcurrentViperStore<AnyConcurrentIndex> {
    build_concurrent_store_sharded(kind, ConcurrentKind::DEFAULT_SHARDS, keys)
}

/// [`build_concurrent_store`] with an explicit shard count (the `scale`
/// binary's sweep knob).
pub fn build_concurrent_store_sharded(
    kind: ConcurrentKind,
    shards: usize,
    keys: &[Key],
) -> ConcurrentViperStore<AnyConcurrentIndex> {
    let config = StoreConfig::paper(keys.len() * 2 + 1024);
    ConcurrentViperStore::bulk_load_shared(config, keys, value_of, |pairs| {
        AnyConcurrentIndex::build_with_shards(kind, shards, pairs)
    })
}

/// Executes an op stream against a store, recording per-op latency.
/// Returns the measurement; panics if a read of a supposedly-live key
/// misses (correctness backstop inside the benchmark itself).
pub fn run_ops(
    name: impl Into<String>,
    store: &mut ViperStore<AnyIndex>,
    ops: &[Op],
) -> Measurement {
    let vs = store.heap().layout().value_size;
    let mut buf = vec![0u8; vs];
    let mut val = vec![0u8; vs];
    let mut hist = LatencyHistogram::new();
    let start = Instant::now();
    for op in ops {
        let t0 = Instant::now();
        match *op {
            Op::Read(k) => {
                std::hint::black_box(store.get(k, &mut buf));
            }
            Op::Insert(k, v) | Op::Update(k, v) => {
                val.fill(v as u8);
                store.put(k, &val).expect("bench store put failed");
            }
            Op::ReadModifyWrite(k, v) => {
                store.get(k, &mut buf);
                val.fill(v as u8);
                store.put(k, &val).expect("bench store put failed");
            }
            Op::Scan(k, len) => {
                store.scan(k, u64::MAX, len, &mut |_, _| {});
            }
        }
        hist.record(t0.elapsed().as_nanos() as u64);
    }
    let secs = start.elapsed().as_secs_f64();
    Measurement { name: name.into(), ops: ops.len(), secs, hist }
}

/// Builds the standard read-only op stream of Fig. 10.
pub fn read_ops(keys: &[Key], count: usize, seed: u64) -> Vec<Op> {
    generate_ops(&WorkloadSpec::read_only_uniform(), keys, &[], count, seed)
}

/// Splits keys and builds the write-only stream of Fig. 13: the loaded
/// store keeps 80% of keys, the stream inserts the withheld 20% (and
/// falls back to updates once exhausted).
pub fn write_setup(keys: &[Key], count: usize, seed: u64) -> (Vec<Key>, Vec<Op>) {
    let (loaded, pool) = split_load_insert(keys, 0.2);
    let ops =
        generate_ops(&WorkloadSpec::write_only(), &loaded, &pool, count.min(pool.len()), seed);
    (loaded, ops)
}

/// Generates the base dataset for a figure.
pub fn dataset(d: Dataset, n: usize, seed: u64) -> Vec<Key> {
    li_workloads::generate_keys(d, n, seed)
}

/// Prints a table header.
pub fn header(cols: &[&str]) {
    let mut line = String::new();
    for (i, c) in cols.iter().enumerate() {
        if i == 0 {
            let _ = write!(line, "{c:<18}");
        } else {
            let _ = write!(line, "{c:>14}");
        }
    }
    println!("{line}");
    println!("{}", "-".repeat(18 + 14 * (cols.len() - 1)));
}

/// Prints one row: a name plus formatted numeric cells.
pub fn row(name: &str, cells: &[String]) {
    let mut line = format!("{name:<18}");
    for c in cells {
        let _ = write!(line, "{c:>14}");
    }
    println!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_from_env_defaults() {
        // The env vars may be set by an outer harness; just check sanity.
        let c = BenchConfig::from_env();
        assert!(c.n > 0);
        assert!(c.ops > 0);
        assert!(c.max_threads >= 1);
    }

    #[test]
    fn run_ops_measures() {
        let keys: Vec<Key> = (0..5_000u64).map(|i| i * 3).collect();
        let mut store = build_store(IndexKind::BTree, &keys);
        let ops = read_ops(&keys, 2_000, 1);
        let m = run_ops("smoke", &mut store, &ops);
        assert_eq!(m.ops, 2_000);
        assert!(m.secs > 0.0);
        assert!(m.mops() > 0.0);
        assert!(m.hist.count() == 2_000);
    }

    #[test]
    fn concurrent_store_builds_loaded() {
        let keys: Vec<Key> = (0..4_000u64).map(|i| i * 3).collect();
        let kind = ConcurrentKind::of(IndexKind::Pgm).unwrap();
        let store = build_concurrent_store(kind, &keys);
        assert_eq!(store.len(), keys.len());
        let vs = store.heap().layout().value_size;
        let mut buf = vec![0u8; vs];
        assert!(store.get(300, &mut buf));
        store.put(301, &vec![9u8; vs]).unwrap();
        assert!(store.get(301, &mut buf));
        assert_eq!(buf, vec![9u8; vs]);
    }

    #[test]
    fn write_setup_splits() {
        let keys: Vec<Key> = (0..10_000u64).collect();
        let (loaded, ops) = write_setup(&keys, 5_000, 2);
        assert!(loaded.len() == 8_000);
        assert!(ops.iter().all(|o| matches!(o, Op::Insert(..))));
        assert_eq!(ops.len(), 2_000);
    }
}
