//! Criterion microbenchmark: inserts per updatable index (in-memory).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use li_workloads::{generate_keys, split_load_insert, Dataset};
use lip::core::traits::UpdatableIndex;
use lip::{AnyIndex, IndexKind};

fn bench_insert(c: &mut Criterion) {
    let n = 100_000;
    let keys = generate_keys(Dataset::YcsbNormal, n, 3);
    let (loaded, pool) = split_load_insert(&keys, 0.5);
    let pairs: Vec<(u64, u64)> = loaded.iter().map(|&k| (k, 0)).collect();

    let mut group = c.benchmark_group("insert_batch_ycsb");
    group.sample_size(10);
    for kind in IndexKind::UPDATABLE {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter_batched(
                || AnyIndex::build(kind, &pairs),
                |mut idx| {
                    for (i, &k) in pool.iter().enumerate() {
                        idx.insert(k, i as u64);
                    }
                    idx
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
