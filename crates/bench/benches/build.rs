//! Criterion microbenchmark: bulk build time per index (Fig. 16's core).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use li_workloads::{generate_keys, Dataset};
use lip::{AnyIndex, IndexKind};

fn bench_build(c: &mut Criterion) {
    let n = 200_000;
    let keys = generate_keys(Dataset::YcsbNormal, n, 5);
    let pairs: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();

    let mut group = c.benchmark_group("bulk_build_200k");
    group.sample_size(10);
    for kind in IndexKind::ALL {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| std::hint::black_box(AnyIndex::build(kind, &pairs)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
