//! Criterion microbenchmark: segmentation speed of the approximation
//! algorithms (§IV-A) plus the gapped layout build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use li_core::approx::lsa_gap::GappedLayout;
use li_core::approx::ApproxAlgorithm;
use li_workloads::{generate_keys, Dataset};

fn bench_approx(c: &mut Criterion) {
    let n = 500_000;
    for dataset in [Dataset::YcsbNormal, Dataset::OsmLike] {
        let keys = generate_keys(dataset, n, 7);
        let mut group = c.benchmark_group(format!("segment_{}_500k", dataset.name()));
        group.sample_size(10);
        for algo in [
            ApproxAlgorithm::Lsa { seg_size: 1024 },
            ApproxAlgorithm::OptPla { epsilon: 64 },
            ApproxAlgorithm::Fsw { epsilon: 64 },
        ] {
            group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
                b.iter(|| std::hint::black_box(algo.segment(&keys)));
            });
        }
        let data: Vec<(u64, u64)> = keys.iter().map(|&k| (k, 0)).collect();
        group.bench_function(BenchmarkId::from_parameter("LSA-gap"), |b| {
            b.iter(|| std::hint::black_box(GappedLayout::build(&data, 0.7)));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
