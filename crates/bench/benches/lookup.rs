//! Criterion microbenchmark: point lookups per index (in-memory, no NVM),
//! isolating index cost from record-store cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use li_workloads::{generate_keys, Dataset};
use lip::core::traits::Index;
use lip::{AnyIndex, IndexKind};
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn bench_lookup(c: &mut Criterion) {
    let n = 200_000;
    let keys = generate_keys(Dataset::YcsbNormal, n, 1);
    let pairs: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let mut rng = StdRng::seed_from_u64(2);
    let probes: Vec<u64> = (0..4096).map(|_| keys[rng.random_range(0..n)]).collect();

    let mut group = c.benchmark_group("lookup_ycsb_200k");
    for kind in IndexKind::ALL {
        let idx = AnyIndex::build(kind, &pairs);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &idx, |b, idx| {
            let mut i = 0usize;
            b.iter(|| {
                let k = probes[i & 4095];
                i += 1;
                std::hint::black_box(idx.get(std::hint::black_box(k)))
            });
        });
    }
    group.finish();

    // The hard CDF: OSM-like.
    let keys = generate_keys(Dataset::OsmLike, n, 1);
    let pairs: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
    let probes: Vec<u64> = (0..4096).map(|_| keys[rng.random_range(0..n)]).collect();
    let mut group = c.benchmark_group("lookup_osm_200k");
    for kind in [IndexKind::BTree, IndexKind::Rmi, IndexKind::Pgm, IndexKind::Alex] {
        let idx = AnyIndex::build(kind, &pairs);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &idx, |b, idx| {
            let mut i = 0usize;
            b.iter(|| {
                let k = probes[i & 4095];
                i += 1;
                std::hint::black_box(idx.get(std::hint::black_box(k)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
