//! `li-telemetry`: lock-free, always-on observability for the index →
//! pieces → store stack.
//!
//! The paper's §IV decomposition measures every design dimension in
//! isolation; this crate gives the reproduction the same visibility at
//! runtime. It provides:
//!
//! - [`AtomicHistogram`]: fixed-bucket log₂ latency histograms
//!   (p50/p99/p999/max) recorded with relaxed atomics — wait-free on the
//!   hot path, no allocation after construction.
//! - [`Event`]: a typed structural-event taxonomy (`Retrain`,
//!   `SplitNode`, `BufferFlush`, `DeltaMerge`, `QuarantineSlot`,
//!   `ShardLockWait`, …) backed by per-event atomic counters.
//! - Per-shard operation/lock-wait counter banks for the concurrent
//!   routing layer.
//! - [`Recorder`]: a cloneable handle threaded through `li-core` traits.
//!   A default (disabled) recorder is a `None` — every recording method
//!   is a single branch and no clock is read, so uninstrumented runs pay
//!   nothing measurable.
//! - [`TelemetrySnapshot`]: a plain-data snapshot of everything above,
//!   with `NvmStats` device counters folded in ([`NvmCounters`]) and a
//!   dependency-free JSON serializer for `li-bench --telemetry`.
//!
//! The crate depends only on `li-sync` (the workspace concurrency shim,
//! which is what lets the histogram/snapshot protocol be loom
//! model-checked), so every other crate can use it without layering
//! concerns.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

use li_sync::sync::atomic::{AtomicU64, Ordering};
use li_sync::sync::Arc;

/// Structural events emitted by indexes and stores.
///
/// Each variant is a monotonically increasing counter. The taxonomy is
/// chosen so that every retraining/insertion strategy in the pieces
/// matrix — and every index crate built on it — leaves a distinguishable
/// fingerprint (asserted by `tests/telemetry_causality.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A model (leaf or node) was retrained/rebuilt.
    Retrain,
    /// A retrain split one node into two or more (structural growth).
    SplitNode,
    /// A retrain expanded a node in place (gapped/ALEX-style expansion).
    ExpandNode,
    /// An insert buffer (delta buffer) was merged into its base model.
    BufferFlush,
    /// An LSM-style level/delta merge combined sorted runs.
    DeltaMerge,
    /// Recovery quarantined a corrupt slot instead of replaying it.
    QuarantineSlot,
    /// A shard lock was contended (fast try-acquire failed).
    ShardLockWait,
    /// Keys physically moved to make room for an insert (shift count).
    KeyShift,
    /// A transient write failure was observed and the write re-attempted
    /// (one event per injected `WriteFailed` consumed by the store).
    Retry,
    /// A store-level retry slept through a seeded exponential backoff.
    BackoffWait,
    /// The overload circuit breaker tripped open (writes shed).
    CircuitOpen,
    /// The overload circuit breaker closed again (writes admitted).
    CircuitClose,
    /// Maintenance re-resolved a quarantined slot that a later write had
    /// superseded; the slot was reclaimed with no data loss.
    RepairedSlot,
    /// Page GC returned a fully-dead page to the allocator.
    PageReclaimed,
    /// A retrain trigger was queued for background maintenance instead
    /// of blocking the foreground insert.
    RetrainDeferred,
    /// A record was appended to the write-ahead log (one per logged
    /// put/delete, before the heap write).
    WalAppend,
    /// One group-commit flush/fence batch made a range of WAL appends
    /// durable (≤ WalAppend: a batch covers one or more appends).
    GroupCommit,
    /// A checkpoint (heap snapshot + serialized index model + manifest
    /// swap) was written durably.
    CheckpointWritten,
    /// Recovery replayed WAL records past the checkpoint watermark
    /// (counted per record applied).
    LogReplay,
    /// An online shard split committed: one hot shard range was cut into
    /// two at its median key behind an atomic boundary-table swap.
    ShardSplit,
    /// An online shard merge committed: two cold adjacent shard ranges
    /// were combined into one.
    ShardMerge,
    /// A shard's inner index kind was hot-swapped (background rebuild +
    /// side-buffer replay + atomic cutover).
    KindSwap,
    /// The adaptation tuner issued a decision (split/merge/swap). Every
    /// `ShardSplit`/`ShardMerge`/`KindSwap` is preceded by exactly one of
    /// these; a decision whose cutover aborts leaves the count ahead.
    TunerDecision,
    /// A server accepted one client connection.
    ConnOpen,
    /// A server connection closed (clean or not; one per `ConnOpen`).
    ConnClose,
    /// A request's deadline expired before the store was touched; the
    /// work was shed with a typed `DEADLINE_EXCEEDED` response.
    DeadlineShed,
    /// A connection was dropped for slow-client protection (bounded
    /// write queue overflowed, or read/write stalled past the timeout).
    SlowClientDrop,
    /// An inbound frame failed to decode (corrupt length, bad opcode,
    /// truncated body) and was answered/closed with a typed error.
    FrameReject,
    /// A request was refused with typed `CANCELLED` because the server
    /// was draining for shutdown.
    RequestCancelled,
}

impl Event {
    /// All variants, in counter-array order.
    pub const ALL: [Event; 29] = [
        Event::Retrain,
        Event::SplitNode,
        Event::ExpandNode,
        Event::BufferFlush,
        Event::DeltaMerge,
        Event::QuarantineSlot,
        Event::ShardLockWait,
        Event::KeyShift,
        Event::Retry,
        Event::BackoffWait,
        Event::CircuitOpen,
        Event::CircuitClose,
        Event::RepairedSlot,
        Event::PageReclaimed,
        Event::RetrainDeferred,
        Event::WalAppend,
        Event::GroupCommit,
        Event::CheckpointWritten,
        Event::LogReplay,
        Event::ShardSplit,
        Event::ShardMerge,
        Event::KindSwap,
        Event::TunerDecision,
        Event::ConnOpen,
        Event::ConnClose,
        Event::DeadlineShed,
        Event::SlowClientDrop,
        Event::FrameReject,
        Event::RequestCancelled,
    ];

    pub const COUNT: usize = Self::ALL.len();

    #[inline]
    pub const fn idx(self) -> usize {
        self as usize
    }

    pub const fn name(self) -> &'static str {
        match self {
            Event::Retrain => "retrain",
            Event::SplitNode => "split_node",
            Event::ExpandNode => "expand_node",
            Event::BufferFlush => "buffer_flush",
            Event::DeltaMerge => "delta_merge",
            Event::QuarantineSlot => "quarantine_slot",
            Event::ShardLockWait => "shard_lock_wait",
            Event::KeyShift => "key_shift",
            Event::Retry => "retry",
            Event::BackoffWait => "backoff_wait",
            Event::CircuitOpen => "circuit_open",
            Event::CircuitClose => "circuit_close",
            Event::RepairedSlot => "repaired_slot",
            Event::PageReclaimed => "page_reclaimed",
            Event::RetrainDeferred => "retrain_deferred",
            Event::WalAppend => "wal_append",
            Event::GroupCommit => "group_commit",
            Event::CheckpointWritten => "checkpoint_written",
            Event::LogReplay => "log_replay",
            Event::ShardSplit => "shard_split",
            Event::ShardMerge => "shard_merge",
            Event::KindSwap => "kind_swap",
            Event::TunerDecision => "tuner_decision",
            Event::ConnOpen => "conn_open",
            Event::ConnClose => "conn_close",
            Event::DeadlineShed => "deadline_shed",
            Event::SlowClientDrop => "slow_client_drop",
            Event::FrameReject => "frame_reject",
            Event::RequestCancelled => "request_cancelled",
        }
    }
}

/// Operation classes with their own latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    Get,
    Insert,
    Remove,
    Scan,
    Put,
    Delete,
    Recovery,
    Retrain,
    LockWait,
    /// One background maintenance pass (retrain drain + repair + GC).
    Maintenance,
    /// Attempts-per-retried-op histogram (unit: attempts, not ns).
    RetryAttempts,
    /// Time spent sleeping in retry backoff (ns).
    BackoffWait,
    /// End-to-end server GET (decode → store → response queued).
    ServerGet,
    /// End-to-end server PUT.
    ServerPut,
    /// End-to-end server DELETE.
    ServerDelete,
    /// End-to-end server SCAN.
    ServerScan,
    /// End-to-end server BATCH (whole batch, not per sub-command).
    ServerBatch,
    /// End-to-end server STATS.
    ServerStats,
    /// Time a request waited in a worker queue before executing (ns).
    ServerQueue,
}

impl OpKind {
    pub const ALL: [OpKind; 19] = [
        OpKind::Get,
        OpKind::Insert,
        OpKind::Remove,
        OpKind::Scan,
        OpKind::Put,
        OpKind::Delete,
        OpKind::Recovery,
        OpKind::Retrain,
        OpKind::LockWait,
        OpKind::Maintenance,
        OpKind::RetryAttempts,
        OpKind::BackoffWait,
        OpKind::ServerGet,
        OpKind::ServerPut,
        OpKind::ServerDelete,
        OpKind::ServerScan,
        OpKind::ServerBatch,
        OpKind::ServerStats,
        OpKind::ServerQueue,
    ];

    pub const COUNT: usize = Self::ALL.len();

    #[inline]
    pub const fn idx(self) -> usize {
        self as usize
    }

    pub const fn name(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Insert => "insert",
            OpKind::Remove => "remove",
            OpKind::Scan => "scan",
            OpKind::Put => "put",
            OpKind::Delete => "delete",
            OpKind::Recovery => "recovery",
            OpKind::Retrain => "retrain",
            OpKind::LockWait => "lock_wait",
            OpKind::Maintenance => "maintenance",
            OpKind::RetryAttempts => "retry_attempts",
            OpKind::BackoffWait => "backoff_wait",
            OpKind::ServerGet => "server_get",
            OpKind::ServerPut => "server_put",
            OpKind::ServerDelete => "server_delete",
            OpKind::ServerScan => "server_scan",
            OpKind::ServerBatch => "server_batch",
            OpKind::ServerStats => "server_stats",
            OpKind::ServerQueue => "server_queue",
        }
    }
}

/// Bucket count: bucket `b` holds values whose bit-length is `b`, i.e.
/// value 0 → bucket 0, value `v > 0` → bucket `64 - v.leading_zeros()`.
/// Nanosecond latencies up to `u64::MAX` land in buckets 0..=64.
///
/// Under `--cfg loom` the array shrinks so a histogram snapshot is a
/// handful of scheduling points instead of 65 — the record/snapshot
/// protocol being model-checked is bucket-count independent.
#[cfg(not(loom))]
pub const HIST_BUCKETS: usize = 65;
#[cfg(loom)]
pub const HIST_BUCKETS: usize = 8;

/// Lock-free fixed-bucket log₂ histogram.
///
/// `record` is three relaxed atomic RMWs plus two bounded CAS loops for
/// min/max — no locks, no allocation. Relative bucket error is at most
/// 2× which is far below run-to-run latency variance; percentile
/// estimates interpolate inside the winning bucket.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Inclusive upper edge of a bucket.
    fn bucket_high(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        // Order this snapshot after everything published before it began
        // (same discipline as `NvmStats::snapshot`).
        li_sync::sync::atomic::fence(Ordering::Acquire);
        let buckets: [u64; HIST_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count: u64 = buckets.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        // Percentile estimate: upper edge of the bucket containing the
        // target rank, clamped to the observed max.
        let pct_edge = |q_num: u64, q_den: u64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (count * q_num).div_ceil(q_den).max(1);
            let mut seen = 0u64;
            for (b, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return Self::bucket_high(b).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max,
            p50: pct_edge(50, 100),
            p90: pct_edge(90, 100),
            p99: pct_edge(99, 100),
            p999: pct_edge(999, 1000),
        }
    }
}

/// Plain-data view of one histogram. All values in the recorded unit
/// (nanoseconds for latency histograms).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Number of individually tracked shards; shards beyond this fold into
/// the last bank so the structure stays fixed-size and allocation-free.
pub const MAX_TRACKED_SHARDS: usize = 64;

#[derive(Debug, Default)]
struct ShardBank {
    reads: AtomicU64,
    writes: AtomicU64,
    lock_waits: AtomicU64,
}

/// Per-shard counters as captured in a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    pub shard: usize,
    pub reads: u64,
    pub writes: u64,
    pub lock_waits: u64,
}

impl ShardCounters {
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }
}

/// The shared metric store behind an enabled [`Recorder`].
#[derive(Debug)]
pub struct Metrics {
    events: [AtomicU64; Event::COUNT],
    ops: [AtomicHistogram; OpKind::COUNT],
    shards: [ShardBank; MAX_TRACKED_SHARDS],
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            events: std::array::from_fn(|_| AtomicU64::new(0)),
            ops: std::array::from_fn(|_| AtomicHistogram::new()),
            shards: std::array::from_fn(|_| ShardBank::default()),
        }
    }
}

/// A started latency measurement. Holds a clock reading only when the
/// recorder that produced it was enabled, so `Recorder::start` on a
/// disabled recorder never touches the clock.
#[derive(Debug, Clone, Copy)]
#[must_use = "pass the timer back to Recorder::finish"]
pub struct OpTimer(Option<Instant>);

impl OpTimer {
    pub const fn disabled() -> Self {
        OpTimer(None)
    }
}

/// Cloneable handle used by instrumented code.
///
/// `Recorder::default()` (or [`Recorder::disabled`]) is a no-op handle:
/// every method is one branch on a `None`. [`Recorder::enabled`]
/// allocates the shared [`Metrics`] store; clones share it.
#[derive(Debug, Clone, Default)]
pub struct Recorder(Option<Arc<Metrics>>);

impl Recorder {
    /// The no-op recorder (same as `Recorder::default()`).
    pub const fn disabled() -> Self {
        Recorder(None)
    }

    /// A live recorder with a fresh metric store.
    pub fn enabled() -> Self {
        Recorder(Some(Arc::new(Metrics::new())))
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Count one occurrence of `event`.
    #[inline]
    pub fn event(&self, event: Event) {
        if let Some(m) = &self.0 {
            m.events[event.idx()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count `n` occurrences of `event` (e.g. keys shifted).
    #[inline]
    pub fn event_n(&self, event: Event, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(m) = &self.0 {
            m.events[event.idx()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count for `event` (0 when disabled).
    pub fn event_count(&self, event: Event) -> u64 {
        match &self.0 {
            Some(m) => m.events[event.idx()].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Begin timing an operation. Reads the clock only when enabled.
    #[inline]
    pub fn start(&self) -> OpTimer {
        if self.0.is_some() {
            OpTimer(Some(Instant::now()))
        } else {
            OpTimer(None)
        }
    }

    /// Finish timing and record into `kind`'s histogram.
    #[inline]
    pub fn finish(&self, kind: OpKind, timer: OpTimer) {
        if let (Some(m), Some(t0)) = (&self.0, timer.0) {
            let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            m.ops[kind.idx()].record(ns);
        }
    }

    /// Record a pre-measured duration (nanoseconds) into `kind`.
    #[inline]
    pub fn record_ns(&self, kind: OpKind, ns: u64) {
        if let Some(m) = &self.0 {
            m.ops[kind.idx()].record(ns);
        }
    }

    /// Histogram count for `kind` (0 when disabled).
    pub fn op_count(&self, kind: OpKind) -> u64 {
        match &self.0 {
            Some(m) => m.ops[kind.idx()].count(),
            None => 0,
        }
    }

    #[inline]
    fn bank(m: &Metrics, shard: usize) -> &ShardBank {
        &m.shards[shard.min(MAX_TRACKED_SHARDS - 1)]
    }

    /// Count a read routed to `shard`.
    #[inline]
    pub fn shard_read(&self, shard: usize) {
        if let Some(m) = &self.0 {
            Self::bank(m, shard).reads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count a write routed to `shard`.
    #[inline]
    pub fn shard_write(&self, shard: usize) {
        if let Some(m) = &self.0 {
            Self::bank(m, shard).writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a contended shard-lock acquisition: bumps the per-shard
    /// wait counter, the [`Event::ShardLockWait`] event, and the
    /// `LockWait` latency histogram.
    #[inline]
    pub fn shard_lock_wait(&self, shard: usize, waited_ns: u64) {
        if let Some(m) = &self.0 {
            Self::bank(m, shard).lock_waits.fetch_add(1, Ordering::Relaxed);
            m.events[Event::ShardLockWait.idx()].fetch_add(1, Ordering::Relaxed);
            m.ops[OpKind::LockWait.idx()].record(waited_ns);
        }
    }

    /// Capture everything recorded so far. On a disabled recorder this
    /// returns an all-zero snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(m) = &self.0 else {
            return TelemetrySnapshot::default();
        };
        li_sync::sync::atomic::fence(Ordering::Acquire);
        let events: [u64; Event::COUNT] =
            std::array::from_fn(|i| m.events[i].load(Ordering::Relaxed));
        let ops: [HistogramSnapshot; OpKind::COUNT] = std::array::from_fn(|i| m.ops[i].snapshot());
        let shards = m
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = ShardCounters {
                    shard: i,
                    reads: b.reads.load(Ordering::Relaxed),
                    writes: b.writes.load(Ordering::Relaxed),
                    lock_waits: b.lock_waits.load(Ordering::Relaxed),
                };
                (c.reads | c.writes | c.lock_waits != 0).then_some(c)
            })
            .collect();
        TelemetrySnapshot { events, ops, shards, nvm: NvmCounters::default() }
    }
}

/// Device-level counters folded into a [`TelemetrySnapshot`]. Mirrors
/// `li-nvm`'s `NvmStatsSnapshot` as plain data so this crate stays
/// dependency-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NvmCounters {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub flushes: u64,
    pub fences: u64,
    pub faults_injected: u64,
}

/// Plain-data capture of a [`Recorder`]'s state, plus NVM device
/// counters when the caller has them.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    events: [u64; Event::COUNT],
    ops: [HistogramSnapshot; OpKind::COUNT],
    pub shards: Vec<ShardCounters>,
    pub nvm: NvmCounters,
}

impl TelemetrySnapshot {
    pub fn event(&self, event: Event) -> u64 {
        self.events[event.idx()]
    }

    pub fn op(&self, kind: OpKind) -> &HistogramSnapshot {
        &self.ops[kind.idx()]
    }

    /// Shard banks that saw at least one op or lock wait.
    pub fn active_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.ops() > 0).count()
    }

    pub fn total_lock_waits(&self) -> u64 {
        self.shards.iter().map(|s| s.lock_waits).sum()
    }

    /// Serialize to a self-contained JSON object (no external deps).
    /// Zero-count op histograms and inactive shard banks are omitted.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"events\":{");
        for (i, e) in Event::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", e.name(), self.events[e.idx()]);
        }
        out.push_str("},\"ops\":{");
        let mut first = true;
        for k in OpKind::ALL {
            let h = &self.ops[k.idx()];
            if h.count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out,
                "\"{}\":{{\"count\":{},\"mean_ns\":{:.1},\"min_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
                k.name(),
                h.count,
                h.mean(),
                h.min,
                h.p50,
                h.p90,
                h.p99,
                h.p999,
                h.max
            );
        }
        out.push_str("},\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":{},\"reads\":{},\"writes\":{},\"lock_waits\":{}}}",
                s.shard, s.reads, s.writes, s.lock_waits
            );
        }
        let _ = write!(out,
            "],\"nvm\":{{\"reads\":{},\"writes\":{},\"bytes_read\":{},\"bytes_written\":{},\"flushes\":{},\"fences\":{},\"faults_injected\":{}}}}}",
            self.nvm.reads,
            self.nvm.writes,
            self.nvm.bytes_read,
            self.nvm.bytes_written,
            self.nvm.flushes,
            self.nvm.fences,
            self.nvm.faults_injected
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = AtomicHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // log₂ buckets: each estimate is within 2× of the true quantile.
        assert!(s.p50 >= 500 && s.p50 <= 1023, "p50={}", s.p50);
        assert!(s.p99 >= 990 / 2 && s.p99 <= 1000, "p99={}", s.p99);
        assert!(s.p999 >= 999 / 2 && s.p999 <= 1000, "p999={}", s.p999);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
        assert!((s.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn histogram_empty_and_zero() {
        let h = AtomicHistogram::new();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        h.record(0);
        let s = h.snapshot();
        assert_eq!((s.count, s.min, s.max, s.p999), (1, 0, 0, 0));
    }

    #[test]
    fn recorder_events_and_ops() {
        let r = Recorder::enabled();
        r.event(Event::Retrain);
        r.event_n(Event::KeyShift, 41);
        r.event_n(Event::KeyShift, 0); // no-op
        let t = r.start();
        r.finish(OpKind::Get, t);
        r.record_ns(OpKind::Insert, 123);
        r.shard_read(2);
        r.shard_write(2);
        r.shard_write(70); // folds into the last bank
        r.shard_lock_wait(2, 55);
        let s = r.snapshot();
        assert_eq!(s.event(Event::Retrain), 1);
        assert_eq!(s.event(Event::KeyShift), 41);
        assert_eq!(s.event(Event::ShardLockWait), 1);
        assert_eq!(s.op(OpKind::Get).count, 1);
        assert_eq!(s.op(OpKind::Insert).count, 1);
        assert_eq!(s.op(OpKind::LockWait).count, 1);
        assert_eq!(s.total_lock_waits(), 1);
        let bank2 = s.shards.iter().find(|b| b.shard == 2).unwrap();
        assert_eq!((bank2.reads, bank2.writes, bank2.lock_waits), (1, 1, 1));
        let last = s.shards.iter().find(|b| b.shard == MAX_TRACKED_SHARDS - 1).unwrap();
        assert_eq!(last.writes, 1);
        assert_eq!(s.active_shards(), 2);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.event(Event::Retrain);
        r.record_ns(OpKind::Get, 10);
        let t = r.start();
        r.finish(OpKind::Get, t);
        r.shard_lock_wait(0, 99);
        let s = r.snapshot();
        assert_eq!(s.event(Event::Retrain), 0);
        assert_eq!(s.op(OpKind::Get).count, 0);
        assert!(s.shards.is_empty());
    }

    #[test]
    fn clones_share_metrics() {
        let r = Recorder::enabled();
        let r2 = r.clone();
        r2.event(Event::BufferFlush);
        assert_eq!(r.event_count(Event::BufferFlush), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = Recorder::enabled();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let r = r.clone();
                li_sync::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        r.event(Event::Retrain);
                        r.record_ns(OpKind::Insert, i);
                        r.shard_write(t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.event(Event::Retrain), 40_000);
        assert_eq!(s.op(OpKind::Insert).count, 40_000);
        assert_eq!(s.shards.iter().map(|b| b.writes).sum::<u64>(), 40_000);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = Recorder::enabled();
        r.event(Event::DeltaMerge);
        r.record_ns(OpKind::Put, 100);
        r.shard_write(0);
        let mut s = r.snapshot();
        s.nvm.writes = 7;
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"delta_merge\":1"));
        assert!(j.contains("\"put\":{\"count\":1"));
        assert!(j.contains("\"writes\":7"));
        // Zero-count histograms are omitted.
        assert!(!j.contains("\"scan\""));
    }

    /// CI smoke assertion: the disabled recorder adds no measurable
    /// overhead. 20M no-op recordings must finish in well under a
    /// second; with a real branch-free-ish `None` check this is ~10ms
    /// even unoptimized, so the bound only trips if the no-op path
    /// starts doing real work (clock reads, allocation, locking).
    #[test]
    fn noop_overhead_smoke() {
        let r = Recorder::disabled();
        let t0 = Instant::now();
        for i in 0..20_000_000u64 {
            r.event(Event::Retrain);
            r.record_ns(OpKind::Get, i);
            let t = r.start();
            r.finish(OpKind::Get, t);
        }
        let dt = t0.elapsed();
        assert!(
            dt < std::time::Duration::from_secs(2),
            "no-op recorder too slow: {dt:?} for 20M iterations"
        );
    }
}
