//! # li-rs — RadixSpline (Kipf et al., aiDM'20; §II-A2)
//!
//! A single-pass, error-bounded learned index: a greedy spline corridor
//! over the CDF produces spline points such that linear interpolation
//! between consecutive points predicts any *stored* key's position within
//! ±ε; an `r`-bit radix table over key prefixes narrows the binary search
//! for the surrounding spline segment to a handful of candidates.
//!
//! Read-only (Table I). The fixed `r`-bit prefix table is exactly what
//! collapses on FACE-like skew (Fig. 11): when 99% of keys share their top
//! bits, most radix cells are empty and one giant cell covers almost every
//! spline point, degenerating the segment search.

#![forbid(unsafe_code)]

use li_core::search::lower_bound_kv;
use li_core::traits::{BulkBuildIndex, DepthStats, Index, OrderedIndex, TwoPhaseLookup};
use li_core::{Key, KeyValue, Value};

/// Build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsConfig {
    /// Number of radix bits (the paper found 18 best for their setup).
    pub radix_bits: u32,
    /// Spline error bound on positions.
    pub epsilon: u64,
}

impl Default for RsConfig {
    fn default() -> Self {
        RsConfig { radix_bits: 18, epsilon: 32 }
    }
}

/// One spline point: `(key, position)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SplinePoint {
    key: Key,
    pos: u64,
}

/// The RadixSpline index.
pub struct RadixSpline {
    data: Vec<KeyValue>,
    spline: Vec<SplinePoint>,
    /// radix[p] = index of the first spline point whose shifted prefix is
    /// >= p; length 2^radix_bits + 1.
    radix: Vec<u32>,
    /// Right shift applied to `key - min_key` to obtain its radix cell.
    shift: u32,
    min_key: Key,
    /// Measured max |interpolated − actual| over stored keys. The greedy
    /// corridor guarantees ~2ε for the chord between knots; measuring makes
    /// the search window exact regardless.
    max_err: u64,
}

impl RadixSpline {
    pub fn build_with(config: RsConfig, data: &[KeyValue]) -> Self {
        let min_key = data.first().map_or(0, |kv| kv.0);
        let spline = Self::build_spline(data, config.epsilon);
        let shift = 64 - config.radix_bits;
        let cells = 1usize << config.radix_bits;

        // Radix table over (key - min_key) prefixes, as RS does after
        // removing the common prefix.
        let mut radix = vec![0u32; cells + 1];
        {
            let mut cell = 0usize;
            for (i, sp) in spline.iter().enumerate() {
                let p = ((sp.key - min_key) >> shift) as usize;
                while cell <= p {
                    radix[cell] = i as u32;
                    cell += 1;
                }
            }
            while cell <= cells {
                radix[cell] = spline.len() as u32;
                cell += 1;
            }
        }

        let mut rs = RadixSpline { data: data.to_vec(), spline, radix, shift, min_key, max_err: 0 };
        // Measure the true interpolation error with the exact lookup code
        // path, so bounded search windows are always correct.
        let mut max = 0u64;
        for (i, kv) in rs.data.iter().enumerate() {
            max = max.max(rs.predict(kv.0).abs_diff(i) as u64);
        }
        rs.max_err = max;
        rs
    }

    /// Greedy spline corridor (one-pass): keep extending the current
    /// segment while a line from the last spline point can pass within ±ε
    /// of every intermediate point; emit a new spline point otherwise.
    fn build_spline(data: &[KeyValue], epsilon: u64) -> Vec<SplinePoint> {
        let n = data.len();
        let mut spline = Vec::new();
        if n == 0 {
            return spline;
        }
        let eps = epsilon.max(1) as f64;
        spline.push(SplinePoint { key: data[0].0, pos: 0 });
        if n == 1 {
            return spline;
        }
        let mut base = SplinePoint { key: data[0].0, pos: 0 };
        let mut slope_lo = f64::NEG_INFINITY;
        let mut slope_hi = f64::INFINITY;
        let mut prev = base;
        for (i, &(k, _)) in data.iter().enumerate().skip(1) {
            let dx = (k - base.key) as f64;
            let dy = i as f64 - base.pos as f64;
            let lo = (dy - eps) / dx;
            let hi = (dy + eps) / dx;
            if slope_lo.max(lo) > slope_hi.min(hi) {
                // Corridor collapsed: previous point becomes a spline
                // point and the corridor restarts from it.
                spline.push(prev);
                base = prev;
                let dx = (k - base.key) as f64;
                let dy = i as f64 - base.pos as f64;
                slope_lo = (dy - eps) / dx;
                slope_hi = (dy + eps) / dx;
            } else {
                slope_lo = slope_lo.max(lo);
                slope_hi = slope_hi.min(hi);
            }
            prev = SplinePoint { key: k, pos: i as u64 };
        }
        // Final point anchors the last segment.
        let last = SplinePoint { key: data[n - 1].0, pos: (n - 1) as u64 };
        if spline.last() != Some(&last) {
            spline.push(last);
        }
        spline
    }

    /// Index of the spline segment `[spline[i], spline[i+1]]` containing
    /// `key` (clamped to valid segments).
    #[inline]
    fn segment_of(&self, key: Key) -> usize {
        let k = key.max(self.min_key);
        let cell = ((k - self.min_key) >> self.shift) as usize;
        let cell = cell.min(self.radix.len() - 2);
        let lo = self.radix[cell] as usize;
        let hi = (self.radix[cell + 1] as usize + 1).min(self.spline.len());
        // Binary search within the cell for the first spline point with
        // key > target; the containing segment starts one before it. The
        // cell may not bracket foreign keys, so clamp into valid range.
        let cell_points = &self.spline[lo.min(hi)..hi];
        let idx = lo + cell_points.partition_point(|sp| sp.key <= key);
        idx.saturating_sub(1).min(self.spline.len().saturating_sub(2))
    }

    /// Predicted position by interpolating the containing segment.
    #[inline]
    fn predict(&self, key: Key) -> usize {
        if self.spline.len() < 2 {
            return 0;
        }
        let s = self.segment_of(key);
        let a = self.spline[s];
        let b = self.spline[s + 1];
        if key <= a.key {
            return a.pos as usize;
        }
        if key >= b.key {
            return b.pos as usize;
        }
        let frac = (key - a.key) as f64 / (b.key - a.key) as f64;
        (a.pos as f64 + frac * (b.pos - a.pos) as f64) as usize
    }

    /// Number of spline points (diagnostics).
    pub fn spline_points(&self) -> usize {
        self.spline.len()
    }

    #[inline]
    fn window(&self, key: Key) -> (usize, usize) {
        let p = self.predict(key);
        let e = self.max_err as usize + 1;
        let lo = p.saturating_sub(e);
        let hi = (p + e + 1).min(self.data.len());
        (lo, hi)
    }
}

impl Index for RadixSpline {
    fn name(&self) -> &'static str {
        "RS"
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn get(&self, key: Key) -> Option<Value> {
        if self.data.is_empty() {
            return None;
        }
        let (lo, hi) = self.window(key);
        let i = lo + lower_bound_kv(&self.data[lo..hi], key);
        match self.data.get(i) {
            Some(&(k, v)) if k == key => Some(v),
            _ => None,
        }
    }

    fn index_size_bytes(&self) -> usize {
        self.spline.len() * core::mem::size_of::<SplinePoint>()
            + self.radix.len() * core::mem::size_of::<u32>()
    }

    fn data_size_bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<KeyValue>()
    }
}

impl OrderedIndex for RadixSpline {
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        if self.data.is_empty() || lo > hi {
            return;
        }
        let (wlo, whi) = self.window(lo);
        let mut i = wlo + lower_bound_kv(&self.data[wlo..whi], lo);
        while let Some(&(k, v)) = self.data.get(i) {
            if k > hi {
                break;
            }
            out.push((k, v));
            i += 1;
        }
    }
}

impl BulkBuildIndex for RadixSpline {
    fn build(data: &[KeyValue]) -> Self {
        Self::build_with(RsConfig::default(), data)
    }
}

impl DepthStats for RadixSpline {
    fn avg_depth(&self) -> f64 {
        // Radix table hop + spline segment = 2 conceptual levels.
        2.0
    }

    fn leaf_count(&self) -> usize {
        self.spline.len().saturating_sub(1)
    }
}

impl TwoPhaseLookup for RadixSpline {
    fn locate_leaf(&self, key: Key) -> usize {
        self.segment_of(key)
    }

    fn search_leaf(&self, _leaf: usize, key: Key) -> Option<Value> {
        self.get(key)
    }
}

/// How many spline points the radix cell for `key` forces the segment
/// search to consider. Fig. 11's FACE collapse is directly visible through
/// this counter.
pub fn radix_cell_width(rs: &RadixSpline, key: Key) -> usize {
    let k = key.max(rs.min_key);
    let cell = (((k - rs.min_key) >> rs.shift) as usize).min(rs.radix.len() - 2);
    (rs.radix[cell + 1] - rs.radix[cell]) as usize
}

/// Largest |predicted − actual| over all stored keys (test/diagnostic).
pub fn spline_max_error(rs: &RadixSpline) -> u64 {
    let mut max = 0u64;
    for (i, kv) in rs.data.iter().enumerate() {
        let p = rs.predict(kv.0);
        max = max.max(p.abs_diff(i) as u64);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn dataset(n: usize, seed: u64, shift: u32) -> Vec<KeyValue> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keys: Vec<Key> =
            (0..n * 11 / 10 + 8).map(|_| rng.random::<u64>() >> shift).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.truncate(n);
        keys.into_iter().enumerate().map(|(i, k)| (k, i as u64)).collect()
    }

    #[test]
    fn build_and_get_all() {
        let data = dataset(100_000, 1, 0);
        let rs = RadixSpline::build(&data);
        for &(k, v) in data.iter().step_by(41) {
            assert_eq!(rs.get(k), Some(v), "key {k}");
        }
    }

    #[test]
    fn spline_error_bounded() {
        let data = dataset(50_000, 2, 8);
        for eps in [4u64, 32, 256] {
            let rs = RadixSpline::build_with(RsConfig { radix_bits: 16, epsilon: eps }, &data);
            let max = spline_max_error(&rs);
            // The greedy corridor bounds the chord error by ~2ε.
            assert!(max <= 2 * eps + 2, "eps {eps}: max error {max}");
        }
    }

    #[test]
    fn fewer_points_with_larger_epsilon() {
        let data = dataset(50_000, 3, 4);
        let fine = RadixSpline::build_with(RsConfig { radix_bits: 16, epsilon: 4 }, &data);
        let coarse = RadixSpline::build_with(RsConfig { radix_bits: 16, epsilon: 256 }, &data);
        assert!(coarse.spline_points() < fine.spline_points());
    }

    #[test]
    fn misses_return_none() {
        let data: Vec<KeyValue> = (0..30_000u64).map(|i| (i * 6 + 3, i)).collect();
        let rs = RadixSpline::build(&data);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20_000 {
            let k: Key = rng.random::<u64>() % 200_000;
            let expect = data.binary_search_by_key(&k, |kv| kv.0).ok().map(|i| data[i].1);
            assert_eq!(rs.get(k), expect, "key {k}");
        }
    }

    #[test]
    fn face_like_skew_inflates_cell_width() {
        // 99% of keys below 2^50 with a *lumpy* CDF (exponentially varying
        // gaps force many spline knots), a few keys near the top: the
        // default radix bits cram almost all knots into a handful of cells.
        let mut rng = StdRng::seed_from_u64(77);
        let mut acc = 0u64;
        let mut keys: Vec<Key> = (0..50_000u64)
            .map(|_| {
                acc += 1u64 << rng.random_range(0..26u32);
                acc
            })
            .collect();
        keys.extend((0..50u64).map(|i| (1 << 60) + i * (1 << 40)));
        keys.sort_unstable();
        keys.dedup();
        let data: Vec<KeyValue> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let rs = RadixSpline::build(&data);
        // Lookups still correct...
        for &(k, v) in data.iter().step_by(379) {
            assert_eq!(rs.get(k), Some(v));
        }
        // ...but the bulk cell is enormous compared to a uniform dataset.
        let skew_width: usize =
            (0..100).map(|i| radix_cell_width(&rs, data[i * 499].0)).max().unwrap();
        let uniform = dataset(50_000, 9, 0);
        let rs_u = RadixSpline::build(&uniform);
        let uni_width: usize =
            (0..100).map(|i| radix_cell_width(&rs_u, uniform[i * 499].0)).max().unwrap();
        assert!(skew_width > uni_width.max(1) * 20, "skew {skew_width} vs uniform {uni_width}");
    }

    #[test]
    fn range_scan() {
        let data: Vec<KeyValue> = (0..20_000u64).map(|i| (i * 3, i)).collect();
        let rs = RadixSpline::build(&data);
        assert_eq!(
            rs.range_vec(10, 31),
            vec![(12, 4), (15, 5), (18, 6), (21, 7), (24, 8), (27, 9), (30, 10)]
        );
        assert!(rs.range_vec(70_000, u64::MAX).is_empty());
    }

    #[test]
    fn empty_single_dual() {
        let rs = RadixSpline::build(&[]);
        assert_eq!(rs.get(1), None);
        let rs = RadixSpline::build(&[(5, 1)]);
        assert_eq!(rs.get(5), Some(1));
        assert_eq!(rs.get(6), None);
        let rs = RadixSpline::build(&[(5, 1), (9, 2)]);
        assert_eq!(rs.get(9), Some(2));
        assert_eq!(rs.get(7), None);
    }

    #[test]
    fn sequential_dense_keys() {
        let data: Vec<KeyValue> = (0..100_000u64).map(|i| (i, i * 2)).collect();
        let rs = RadixSpline::build(&data);
        // Perfectly linear: very few spline points.
        assert!(rs.spline_points() < 10, "{} points", rs.spline_points());
        for &(k, v) in data.iter().step_by(9_973) {
            assert_eq!(rs.get(k), Some(v));
        }
    }

    #[test]
    fn keys_below_min_and_above_max() {
        let data: Vec<KeyValue> = (100..200u64).map(|k| (k * 100, k)).collect();
        let rs = RadixSpline::build(&data);
        assert_eq!(rs.get(0), None);
        assert_eq!(rs.get(5_000), None);
        assert_eq!(rs.get(u64::MAX), None);
        assert_eq!(rs.get(10_000), Some(100));
        assert_eq!(rs.get(19_900), Some(199));
    }
}
