//! # li-pgm — PGM-Index (Ferragina & Vinciguerra, VLDB'20; §II-B2)
//!
//! * [`StaticPgm`] — the static index: optimal PLA (Opt-PLA) segments over
//!   the data, then Opt-PLA applied recursively to the segments' first
//!   keys until a single root segment remains (the "linear recursive
//!   structure", LRS). Every level guarantees a maximum error, so lookups
//!   are `O(log)` bounded binary searches with tight tail latency.
//! * [`DynamicPgm`] — updatable PGM via the logarithmic method
//!   (LSM-style, §II-B2): levels `S_0..S_b` of doubling capacity, each an
//!   independent [`StaticPgm`]; an insert rebuilds the first level that
//!   can absorb the merged prefix. Amortised `O(log n)` per insert,
//!   exactly the retraining profile Fig. 18 (b) measures (many cheap
//!   retrains).

#![forbid(unsafe_code)]

pub mod dynamic;
pub mod statik;

pub use dynamic::DynamicPgm;
pub use statik::{PgmConfig, StaticPgm};
