//! Dynamic PGM-Index: the logarithmic method (Overmars; §II-B2).
//!
//! Levels `S_0, S_1, …` hold `0` or up to `BASE·2^i` pairs, each level an
//! independent [`StaticPgm`]. An insert finds the first level whose
//! capacity can absorb all smaller levels plus the new pair, merges them
//! (newest version wins, like an LSM compaction) and rebuilds that one
//! level — PGM's "retrain" operation, counted in [`DynamicPgm::stats`].
//! Deletes insert tombstones that are dropped when they reach the top
//! occupied level.

use std::time::Instant;

use li_core::pieces::retrain::RetrainStats;
use li_core::telemetry::{Event, OpKind, Recorder};
use li_core::traits::{BulkBuildIndex, DepthStats, Index, OrderedIndex, UpdatableIndex};
use li_core::{Key, KeyValue, Value};

use crate::statik::{PgmConfig, StaticPgm};

/// Capacity of level 0.
const BASE: usize = 128;

/// An entry: live value or tombstone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    Live(Value),
    Dead,
}

struct DynLevel {
    pgm: StaticPgm,
    /// Parallel to the level's data: live/tombstone markers.
    entries: Vec<Entry>,
}

impl DynLevel {
    fn lookup(&self, key: Key) -> Option<Entry> {
        // The static PGM stores positions as values.
        let pos = self.pgm.get(key)?;
        Some(self.entries[pos as usize])
    }
}

/// The updatable PGM-Index.
pub struct DynamicPgm {
    /// levels[i] holds up to BASE << i pairs; None = empty.
    levels: Vec<Option<DynLevel>>,
    config: PgmConfig,
    len: usize,
    stats: RetrainStats,
    recorder: Recorder,
}

impl Default for DynamicPgm {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicPgm {
    pub fn new() -> Self {
        Self::with_config(PgmConfig::default())
    }

    pub fn with_config(config: PgmConfig) -> Self {
        DynamicPgm {
            levels: Vec::new(),
            config,
            len: 0,
            stats: RetrainStats::default(),
            recorder: Recorder::disabled(),
        }
    }

    /// Retrain counters (Fig. 18 (b)).
    pub fn stats(&self) -> RetrainStats {
        self.stats
    }

    fn cap(i: usize) -> usize {
        BASE << i
    }

    fn build_level(&self, pairs: Vec<(Key, Entry)>) -> DynLevel {
        let keyed: Vec<KeyValue> =
            pairs.iter().enumerate().map(|(i, &(k, _))| (k, i as u64)).collect();
        let entries: Vec<Entry> = pairs.iter().map(|&(_, e)| e).collect();
        DynLevel { pgm: StaticPgm::build_with(self.config, &keyed), entries }
    }

    /// Inserts an entry (live or tombstone) via the logarithmic method.
    fn push_entry(&mut self, key: Key, entry: Entry) {
        let t0 = Instant::now();
        // Gather levels 0..j (inclusive of the first level that fits).
        let mut carry: Vec<(Key, Entry)> = vec![(key, entry)];
        let mut total = 1usize;
        let mut target = 0usize;
        loop {
            if target >= self.levels.len() {
                self.levels.push(None);
            }
            match &self.levels[target] {
                None if total <= Self::cap(target) => break,
                None => {
                    target += 1;
                }
                Some(level) => {
                    total += level.entries.len();
                    target += 1;
                }
            }
        }
        // Merge levels 0..target (newest = lowest level wins) with carry
        // (the brand-new entry, newest of all).
        let mut merged: Vec<(Key, Entry)> = std::mem::take(&mut carry);
        let mut keys_retrained = 1u64;
        for i in 0..target {
            if let Some(level) = self.levels[i].take() {
                keys_retrained += level.entries.len() as u64;
                let older: Vec<(Key, Entry)> =
                    level.pgm.iter().map(|(k, pos)| (k, level.entries[pos as usize])).collect();
                merged = merge_newest_wins(&merged, &older);
            }
        }
        // At the top occupied level, tombstones can be dropped iff nothing
        // older remains below... here "older" means deeper levels; drop
        // tombstones only when no deeper occupied level exists.
        let deepest_occupied = self.levels[target + 1..].iter().any(std::option::Option::is_some);
        if !deepest_occupied {
            merged.retain(|&(_, e)| e != Entry::Dead);
        }
        if !merged.is_empty() {
            self.levels[target] = Some(self.build_level(merged));
        }
        let elapsed = t0.elapsed();
        self.stats.record_retrain(elapsed, keys_retrained);
        self.recorder.event(Event::Retrain);
        self.recorder
            .record_ns(OpKind::Retrain, elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
        if keys_retrained > 1 {
            // Existing levels were combined LSM-style, not just placed.
            self.recorder.event(Event::DeltaMerge);
        }
    }

    fn lookup_entry(&self, key: Key) -> Option<Entry> {
        for level in self.levels.iter().flatten() {
            if let Some(e) = level.lookup(key) {
                return Some(e);
            }
        }
        None
    }
}

/// Merges two sorted runs; on duplicate keys `newer` wins.
fn merge_newest_wins(newer: &[(Key, Entry)], older: &[(Key, Entry)]) -> Vec<(Key, Entry)> {
    let mut out = Vec::with_capacity(newer.len() + older.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < newer.len() || j < older.len() {
        match (newer.get(i), older.get(j)) {
            (Some(&(nk, ne)), Some(&(ok, _))) if nk < ok => {
                out.push((nk, ne));
                i += 1;
            }
            (Some(&(nk, ne)), Some(&(ok, _))) if nk == ok => {
                out.push((nk, ne));
                i += 1;
                j += 1;
            }
            (Some(_), Some(&(ok, oe))) => {
                out.push((ok, oe));
                j += 1;
            }
            (Some(&(nk, ne)), None) => {
                out.push((nk, ne));
                i += 1;
            }
            (None, Some(&(ok, oe))) => {
                out.push((ok, oe));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

impl Index for DynamicPgm {
    fn name(&self) -> &'static str {
        "PGM"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, key: Key) -> Option<Value> {
        match self.lookup_entry(key)? {
            Entry::Live(v) => Some(v),
            Entry::Dead => None,
        }
    }

    fn index_size_bytes(&self) -> usize {
        self.levels.iter().flatten().map(|l| l.pgm.index_size_bytes()).sum()
    }

    fn data_size_bytes(&self) -> usize {
        self.levels
            .iter()
            .flatten()
            .map(|l| l.pgm.data_size_bytes() + l.entries.len() * core::mem::size_of::<Entry>())
            .sum()
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }
}

impl UpdatableIndex for DynamicPgm {
    fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        self.stats.inserts += 1;
        let old = self.get(key);
        self.push_entry(key, Entry::Live(value));
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn remove(&mut self, key: Key) -> Option<Value> {
        let old = self.get(key)?;
        self.push_entry(key, Entry::Dead);
        self.len -= 1;
        Some(old)
    }
}

impl OrderedIndex for DynamicPgm {
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        if lo > hi {
            return;
        }
        // Merge all levels, newest wins, tombstones suppressed.
        let mut merged: Vec<(Key, Entry)> = Vec::new();
        for level in self.levels.iter().flatten() {
            let mut older = Vec::new();
            let mut pairs = Vec::new();
            level.pgm.range(lo, hi, &mut pairs);
            for (k, pos) in pairs {
                older.push((k, level.entries[pos as usize]));
            }
            merged = merge_newest_wins(&merged, &older);
        }
        out.extend(merged.into_iter().filter_map(|(k, e)| match e {
            Entry::Live(v) => Some((k, v)),
            Entry::Dead => None,
        }));
    }
}

impl BulkBuildIndex for DynamicPgm {
    fn build(data: &[KeyValue]) -> Self {
        let mut d = DynamicPgm::new();
        if data.is_empty() {
            return d;
        }
        // Place everything in the smallest level that fits.
        let mut target = 0usize;
        while Self::cap(target) < data.len() {
            target += 1;
        }
        d.levels.resize_with(target + 1, || None);
        let pairs: Vec<(Key, Entry)> = data.iter().map(|&(k, v)| (k, Entry::Live(v))).collect();
        d.levels[target] = Some(d.build_level(pairs));
        d.len = data.len();
        d
    }
}

impl DepthStats for DynamicPgm {
    fn avg_depth(&self) -> f64 {
        let occupied: Vec<&DynLevel> = self.levels.iter().flatten().collect();
        if occupied.is_empty() {
            return 0.0;
        }
        // Weighted by level size: expected PGM height consulted.
        let total: usize = occupied.iter().map(|l| l.entries.len()).sum();
        occupied.iter().map(|l| l.pgm.height() as f64 * l.entries.len() as f64).sum::<f64>()
            / total as f64
    }

    fn leaf_count(&self) -> usize {
        self.levels.iter().flatten().map(|l| l.pgm.segment_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_many() {
        let mut d = DynamicPgm::new();
        let mut model = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..20_000u64 {
            let k = rng.random_range(0..100_000u64);
            assert_eq!(d.insert(k, i), model.insert(k, i), "insert {k}");
        }
        assert_eq!(d.len(), model.len());
        for (&k, &v) in model.iter().step_by(31) {
            assert_eq!(d.get(k), Some(v));
        }
        assert!(d.stats().count > 0, "merges must have been counted");
    }

    #[test]
    fn remove_with_tombstones() {
        let mut d = DynamicPgm::new();
        for k in 0..5_000u64 {
            d.insert(k, k * 2);
        }
        for k in (0..5_000u64).step_by(2) {
            assert_eq!(d.remove(k), Some(k * 2), "remove {k}");
            assert_eq!(d.get(k), None);
            assert_eq!(d.remove(k), None);
        }
        assert_eq!(d.len(), 2_500);
        // Odd keys still present (step 500 keeps parity odd).
        for k in (1..5_000u64).step_by(500) {
            assert_eq!(d.get(k), Some(k * 2));
        }
    }

    #[test]
    fn reinsert_after_remove() {
        let mut d = DynamicPgm::new();
        d.insert(42, 1);
        assert_eq!(d.remove(42), Some(1));
        assert_eq!(d.insert(42, 2), None);
        assert_eq!(d.get(42), Some(2));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn bulk_build_then_mutate() {
        let data: Vec<KeyValue> = (0..50_000u64).map(|i| (i * 4, i)).collect();
        let mut d = DynamicPgm::build(&data);
        assert_eq!(d.len(), data.len());
        for &(k, v) in data.iter().step_by(233) {
            assert_eq!(d.get(k), Some(v));
        }
        for i in 0..5_000u64 {
            d.insert(i * 4 + 1, i);
        }
        assert_eq!(d.len(), 55_000);
        assert_eq!(d.get(5), Some(1));
        assert_eq!(d.get(4), Some(1));
    }

    #[test]
    fn range_merges_levels() {
        let mut d = DynamicPgm::new();
        let mut model = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..8_000u64 {
            let k = rng.random_range(0..50_000u64);
            d.insert(k, i);
            model.insert(k, i);
            if i % 7 == 0 {
                let dk = rng.random_range(0..50_000u64);
                assert_eq!(d.remove(dk), model.remove(&dk), "remove {dk}");
            }
        }
        for _ in 0..30 {
            let lo = rng.random_range(0..50_000u64);
            let hi = lo + rng.random_range(0..5_000u64);
            let got = d.range_vec(lo, hi);
            let expect: Vec<KeyValue> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, expect, "range {lo}..={hi}");
        }
    }

    #[test]
    fn update_value() {
        let mut d = DynamicPgm::new();
        assert_eq!(d.insert(9, 1), None);
        assert_eq!(d.insert(9, 2), Some(1));
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(9), Some(2));
        assert_eq!(d.range_vec(0, 100), vec![(9, 2)]);
    }

    #[test]
    fn empty() {
        let d = DynamicPgm::new();
        assert!(d.is_empty());
        assert_eq!(d.get(1), None);
        assert!(d.range_vec(0, u64::MAX).is_empty());
        let d = DynamicPgm::build(&[]);
        assert!(d.is_empty());
    }

    #[test]
    fn amortized_retrain_profile() {
        // The logarithmic method: many small merges, few big ones.
        let mut d = DynamicPgm::new();
        for k in 0..10_000u64 {
            d.insert(k * 3, k);
        }
        let s = d.stats();
        assert_eq!(s.inserts, 10_000);
        assert_eq!(s.count, 10_000, "every insert triggers one (usually tiny) merge");
        // Amortised cost must stay logarithmic: total keys touched across
        // all merges is O(n log n), far below the quadratic worst case.
        assert!(
            s.keys_retrained < 10_000 * 20,
            "keys retrained {} suggests quadratic behaviour",
            s.keys_retrained
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn matches_btreemap(ops in proptest::collection::vec((0u64..800, 0u64..100, proptest::bool::ANY), 0..400)) {
            let mut d = DynamicPgm::new();
            let mut model = BTreeMap::new();
            for &(k, v, ins) in &ops {
                if ins {
                    proptest::prop_assert_eq!(d.insert(k, v), model.insert(k, v));
                } else {
                    proptest::prop_assert_eq!(d.remove(k), model.remove(&k));
                }
            }
            proptest::prop_assert_eq!(d.len(), model.len());
            let got = d.range_vec(0, u64::MAX);
            let expect: Vec<KeyValue> = model.iter().map(|(&k, &v)| (k, v)).collect();
            proptest::prop_assert_eq!(got, expect);
        }
    }
}

#[cfg(test)]
mod interleaved_tests {
    use super::*;

    #[test]
    fn probes_stay_correct_between_removes() {
        let mut d = DynamicPgm::new();
        for k in 0..5_000u64 {
            d.insert(k, k * 2);
        }
        for k in 0..5_000u64 {
            assert_eq!(d.get(k), Some(k * 2), "missing {k} right after inserts");
        }
        for k in (0..5_000u64).step_by(2) {
            assert_eq!(d.remove(k), Some(k * 2), "remove {k}");
            for probe in [k + 1, k + 2, k + 3, 4_999] {
                if probe < 5_000 && (probe % 2 == 1 || probe > k) {
                    assert_eq!(
                        d.get(probe),
                        Some(probe * 2),
                        "probe {probe} lost after remove({k})"
                    );
                }
            }
        }
    }
}
