//! The static PGM-Index.

use li_core::approx::optpla::segment_opt_pla;
use li_core::search::lower_bound_kv;
use li_core::traits::{BulkBuildIndex, DepthStats, Index, OrderedIndex, TwoPhaseLookup};
use li_core::{Key, KeyValue, LinearModel, Value};

/// Build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PgmConfig {
    /// Max error of the data-level segments.
    pub epsilon: u64,
    /// Max error of the internal levels (PGM's `EpsilonRecursive`).
    pub epsilon_recursive: u64,
}

impl Default for PgmConfig {
    fn default() -> Self {
        PgmConfig { epsilon: 64, epsilon_recursive: 4 }
    }
}

#[derive(Clone, Copy)]
struct Seg {
    model: LinearModel,
    err: u32,
    start: u32,
    len: u32,
}

struct Level {
    seg_keys: Vec<Key>,
    segs: Vec<Seg>,
}

impl Level {
    fn from_keys(keys: &[Key], epsilon: u64) -> Self {
        let pieces = segment_opt_pla(keys, epsilon);
        Level {
            seg_keys: pieces.iter().map(|s| s.first_key).collect(),
            segs: pieces
                .iter()
                .map(|s| Seg {
                    model: s.model,
                    err: s.max_error as u32,
                    start: s.start as u32,
                    len: s.len as u32,
                })
                .collect(),
        }
    }

    /// Position of the last element `<= key` in the level below, searching
    /// only within segment `seg`'s clamped window.
    #[inline]
    fn locate_below(&self, seg: usize, key: Key, below_keys: &[Key]) -> usize {
        let s = self.segs[seg];
        let p = s
            .model
            .predict_clamped(key, below_keys.len())
            .clamp(s.start as usize, (s.start + s.len - 1) as usize);
        li_core::search::bounded_last_le(below_keys, key, p, s.err as usize + 2)
    }
}

/// The static PGM-Index.
pub struct StaticPgm {
    data: Vec<KeyValue>,
    /// Bottom-up: `levels[0]` segments the data; deeper levels segment the
    /// previous level's first keys; the last level has one segment.
    levels: Vec<Level>,
    /// Data keys only (parallel to `data`), kept for bounded searches.
    keys: Vec<Key>,
}

impl StaticPgm {
    pub fn build_with(config: PgmConfig, data: &[KeyValue]) -> Self {
        let keys: Vec<Key> = data.iter().map(|kv| kv.0).collect();
        let mut levels = Vec::new();
        if !keys.is_empty() {
            let mut level = Level::from_keys(&keys, config.epsilon);
            loop {
                let done = level.segs.len() <= 1;
                let next_keys = level.seg_keys.clone();
                levels.push(level);
                if done {
                    break;
                }
                level = Level::from_keys(&next_keys, config.epsilon_recursive);
            }
        }
        StaticPgm { data: data.to_vec(), levels, keys }
    }

    /// Data-level segment containing `key` (last segment whose first key
    /// is `<= key`, clamped to 0).
    fn segment_of(&self, key: Key) -> usize {
        let top = self.levels.len() - 1;
        let mut seg = 0usize;
        for depth in (1..=top).rev() {
            let below = &self.levels[depth - 1].seg_keys;
            seg = self.levels[depth].locate_below(seg, key, below);
        }
        seg
    }

    /// Lower-bound position of `key` in `data`.
    fn lower_bound_pos(&self, key: Key) -> usize {
        if self.keys.is_empty() {
            return 0;
        }
        if key <= self.keys[0] {
            return 0;
        }
        let seg = self.segment_of(key);
        let last_le = self.levels[0].locate_below(seg, key, &self.keys);
        // Convert "last <= key" into lower bound.
        if self.keys[last_le] == key {
            last_le
        } else {
            last_le + 1
        }
    }

    /// Number of data-level segments.
    pub fn segment_count(&self) -> usize {
        self.levels.first().map_or(0, |l| l.segs.len())
    }

    /// Number of levels including the data level.
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Iterates all pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = KeyValue> + '_ {
        self.data.iter().copied()
    }

    /// Borrow of the underlying sorted data.
    pub fn data(&self) -> &[KeyValue] {
        &self.data
    }
}

impl Index for StaticPgm {
    fn name(&self) -> &'static str {
        "PGM"
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn get(&self, key: Key) -> Option<Value> {
        if self.data.is_empty() {
            return None;
        }
        let i = self.lower_bound_pos(key);
        match self.data.get(i) {
            Some(&(k, v)) if k == key => Some(v),
            _ => None,
        }
    }

    fn index_size_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| {
                l.seg_keys.len() * core::mem::size_of::<Key>()
                    + l.segs.len() * core::mem::size_of::<Seg>()
            })
            .sum()
    }

    fn data_size_bytes(&self) -> usize {
        // Sorted pair array plus the separate key array used for bounded
        // searches (PGM indexes a contiguous key array).
        self.data.len() * core::mem::size_of::<KeyValue>()
            + self.keys.len() * core::mem::size_of::<Key>()
    }
}

impl OrderedIndex for StaticPgm {
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        if self.data.is_empty() || lo > hi {
            return;
        }
        let mut i = self.lower_bound_pos(lo);
        while let Some(&(k, v)) = self.data.get(i) {
            if k > hi {
                break;
            }
            out.push((k, v));
            i += 1;
        }
    }
}

impl BulkBuildIndex for StaticPgm {
    fn build(data: &[KeyValue]) -> Self {
        Self::build_with(PgmConfig::default(), data)
    }
}

impl DepthStats for StaticPgm {
    fn avg_depth(&self) -> f64 {
        self.levels.len() as f64
    }

    fn leaf_count(&self) -> usize {
        self.segment_count()
    }
}

impl TwoPhaseLookup for StaticPgm {
    fn locate_leaf(&self, key: Key) -> usize {
        if self.data.is_empty() {
            0
        } else {
            self.segment_of(key)
        }
    }

    fn search_leaf(&self, leaf: usize, key: Key) -> Option<Value> {
        let s = self.levels[0].segs.get(leaf)?;
        let slice = &self.data[s.start as usize..(s.start + s.len) as usize];
        let i = lower_bound_kv(slice, key);
        match slice.get(i) {
            Some(&(k, v)) if k == key => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Vec<KeyValue> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keys: Vec<Key> = (0..n * 11 / 10 + 8).map(|_| rng.random()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.truncate(n);
        keys.into_iter().enumerate().map(|(i, k)| (k, i as u64)).collect()
    }

    #[test]
    fn build_and_get_all() {
        let data = dataset(200_000, 1);
        let pgm = StaticPgm::build(&data);
        assert!(pgm.height() >= 2);
        for &(k, v) in data.iter().step_by(97) {
            assert_eq!(pgm.get(k), Some(v), "key {k}");
        }
    }

    #[test]
    fn misses_exhaustive() {
        let data: Vec<KeyValue> = (0..50_000u64).map(|i| (i * 7 + 1, i)).collect();
        let pgm = StaticPgm::build(&data);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30_000 {
            let k: Key = rng.random::<u64>() % 400_000;
            let expect = data.binary_search_by_key(&k, |kv| kv.0).ok().map(|i| data[i].1);
            assert_eq!(pgm.get(k), expect, "key {k}");
        }
        assert_eq!(pgm.get(0), None);
        assert_eq!(pgm.get(u64::MAX), None);
    }

    #[test]
    fn epsilon_controls_segments() {
        let data = dataset(100_000, 3);
        let tight = StaticPgm::build_with(PgmConfig { epsilon: 8, epsilon_recursive: 4 }, &data);
        let loose = StaticPgm::build_with(PgmConfig { epsilon: 512, epsilon_recursive: 4 }, &data);
        assert!(loose.segment_count() < tight.segment_count());
        for &(k, v) in data.iter().step_by(499) {
            assert_eq!(tight.get(k), Some(v));
            assert_eq!(loose.get(k), Some(v));
        }
    }

    #[test]
    fn range_scan() {
        let data: Vec<KeyValue> = (0..30_000u64).map(|i| (i * 2, i)).collect();
        let pgm = StaticPgm::build(&data);
        assert_eq!(pgm.range_vec(7, 13), vec![(8, 4), (10, 5), (12, 6)]);
        let all = pgm.range_vec(0, u64::MAX);
        assert_eq!(all.len(), data.len());
        assert!(pgm.range_vec(60_001, u64::MAX).is_empty());
    }

    #[test]
    fn empty_single() {
        let pgm = StaticPgm::build(&[]);
        assert_eq!(pgm.get(5), None);
        assert!(pgm.range_vec(0, u64::MAX).is_empty());
        let pgm = StaticPgm::build(&[(3, 30)]);
        assert_eq!(pgm.get(3), Some(30));
        assert_eq!(pgm.get(2), None);
        assert_eq!(pgm.get(4), None);
    }

    #[test]
    fn extreme_key_magnitudes() {
        let mut keys: Vec<Key> = (0..10_000u64).collect();
        keys.extend((0..10_000u64).map(|i| u64::MAX - 20_000 + i));
        let data: Vec<KeyValue> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let pgm = StaticPgm::build(&data);
        for &(k, v) in data.iter().step_by(127) {
            assert_eq!(pgm.get(k), Some(v));
        }
        assert_eq!(pgm.get(20_000), None);
    }

    #[test]
    fn two_phase_consistent() {
        let data = dataset(50_000, 5);
        let pgm = StaticPgm::build(&data);
        for &(k, v) in data.iter().step_by(211) {
            let leaf = pgm.locate_leaf(k);
            assert_eq!(pgm.search_leaf(leaf, k), Some(v));
        }
    }

    #[test]
    fn index_far_smaller_than_data() {
        let data = dataset(200_000, 6);
        let pgm = StaticPgm::build(&data);
        assert!(pgm.index_size_bytes() * 10 < pgm.data_size_bytes());
    }
}
