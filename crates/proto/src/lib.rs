//! `li-proto`: the wire protocol of the `li-server` network front-end.
//!
//! A pipelined, length-prefixed binary protocol. Every frame is a `u32`
//! little-endian body length followed by the body; requests carry a
//! client-chosen `id` echoed on the response (so responses may be
//! reordered by the server's worker pool) and a relative deadline in
//! microseconds that the server propagates — work whose deadline expired
//! is shed before it touches the store.
//!
//! ```text
//! request  = len:u32 | id:u64 | deadline_us:u32 | opcode:u8 | payload
//! response = len:u32 | id:u64 | tag:u8          | payload
//! ```
//!
//! Opcodes: `GET`/`PUT`/`DELETE`/`SCAN`/`BATCH`/`STATS`. A `BATCH` holds
//! point/scan sub-commands (never a nested batch) and is answered by one
//! frame with per-sub-command bodies, preserving order.
//!
//! Error handling is the point of this crate: decoding is *total*. Any
//! byte sequence — truncated, oversized, bad opcode, corrupt length —
//! decodes to a typed [`ProtoError`], never a panic (`cargo xtask lint`
//! holds the decode paths to the same panic-free rule as the Viper store
//! hot paths, and the proptest suite fuzzes them with corrupt frames).
//! Overload and lifecycle outcomes are first-class protocol values
//! ([`ErrorKind::RetryAfter`], [`ErrorKind::Overloaded`],
//! [`ErrorKind::Cancelled`], …) instead of connection drops.

#![forbid(unsafe_code)]

use std::fmt;

/// Upper bound on a frame body; the length prefix is validated against
/// this before any allocation, so a corrupt length cannot balloon memory.
pub const MAX_FRAME: usize = 1 << 20;
/// Upper bound on one value's bytes.
pub const MAX_VALUE: usize = 64 * 1024;
/// Upper bound on sub-commands in one batch.
pub const MAX_BATCH: usize = 1024;
/// Upper bound on a scan's entry limit (also caps entries per response).
pub const MAX_SCAN: u32 = 65_536;

/// Bytes of the frame length prefix.
pub const LEN_PREFIX: usize = 4;
/// Minimum request body: id (8) + deadline (4) + opcode (1).
pub const MIN_REQUEST: usize = 13;
/// Minimum response body: id (8) + tag (1).
pub const MIN_RESPONSE: usize = 9;

const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_DELETE: u8 = 0x03;
const OP_SCAN: u8 = 0x04;
const OP_BATCH: u8 = 0x05;
const OP_STATS: u8 = 0x06;

const TAG_OK: u8 = 0x80;
const TAG_VALUE: u8 = 0x81;
const TAG_NOT_FOUND: u8 = 0x82;
const TAG_DELETED: u8 = 0x83;
const TAG_ENTRIES: u8 = 0x84;
const TAG_STATS: u8 = 0x85;
const TAG_BATCH: u8 = 0x86;
const TAG_ERR: u8 = 0xEF;

/// Why a frame failed to decode (or refused to encode). Every variant is
/// a protocol-level fact a server can act on — none of them panic, and
/// none of them are ambiguous with "need more bytes from the socket"
/// except [`ProtoError::Incomplete`], which is exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ends before the length prefix completes — read more.
    Incomplete,
    /// The length prefix exceeds [`MAX_FRAME`] (or is zero): the stream
    /// is corrupt or hostile; the connection should be closed.
    Oversized { len: usize },
    /// A complete frame body ended before its payload did.
    Truncated,
    /// Unknown request opcode.
    BadOpcode(u8),
    /// Unknown response tag.
    BadTag(u8),
    /// Unknown error kind byte in an `ERR` body.
    BadErrorKind(u8),
    /// A batch carried a sub-command that may not nest (batch-in-batch,
    /// stats-in-batch).
    BadBatchOp(u8),
    /// A boolean field held something other than 0 or 1.
    BadBool(u8),
    /// Value length exceeds [`MAX_VALUE`].
    ValueTooLarge { len: usize },
    /// Batch count exceeds [`MAX_BATCH`].
    BatchTooLarge { count: usize },
    /// Scan limit (or entry count) exceeds [`MAX_SCAN`].
    ScanTooLarge { limit: u32 },
    /// Bytes remain after a fully decoded body.
    TrailingBytes { extra: usize },
    /// A stats payload was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Incomplete => write!(f, "frame incomplete: need more bytes"),
            ProtoError::Oversized { len } => {
                write!(f, "frame length {len} outside 1..={MAX_FRAME}")
            }
            ProtoError::Truncated => write!(f, "frame body truncated"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::BadTag(tag) => write!(f, "unknown response tag {tag:#04x}"),
            ProtoError::BadErrorKind(k) => write!(f, "unknown error kind {k}"),
            ProtoError::BadBatchOp(op) => write!(f, "opcode {op:#04x} may not appear in a batch"),
            ProtoError::BadBool(b) => write!(f, "invalid boolean byte {b}"),
            ProtoError::ValueTooLarge { len } => write!(f, "value of {len} bytes > {MAX_VALUE}"),
            ProtoError::BatchTooLarge { count } => write!(f, "batch of {count} ops > {MAX_BATCH}"),
            ProtoError::ScanTooLarge { limit } => write!(f, "scan limit {limit} > {MAX_SCAN}"),
            ProtoError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes after body"),
            ProtoError::BadUtf8 => write!(f, "stats payload is not UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A request command. `Batch` may hold every variant except `Batch` and
/// `Stats` (enforced by encode and decode alike).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Get { key: u64 },
    Put { key: u64, value: Vec<u8> },
    Delete { key: u64 },
    Scan { lo: u64, hi: u64, limit: u32 },
    Batch(Vec<Command>),
    Stats,
}

impl Command {
    /// Short label for logs and telemetry.
    pub const fn name(&self) -> &'static str {
        match self {
            Command::Get { .. } => "get",
            Command::Put { .. } => "put",
            Command::Delete { .. } => "delete",
            Command::Scan { .. } => "scan",
            Command::Batch(_) => "batch",
            Command::Stats => "stats",
        }
    }

    /// The key this command routes by, when it has one (`Batch` routes by
    /// its first routable sub-command; `Stats` by nothing).
    pub fn route_key(&self) -> Option<u64> {
        match self {
            Command::Get { key } | Command::Put { key, .. } | Command::Delete { key } => Some(*key),
            Command::Scan { lo, .. } => Some(*lo),
            Command::Batch(cmds) => cmds.iter().find_map(Command::route_key),
            Command::Stats => None,
        }
    }
}

/// One client request: id echoed on the response, relative deadline in
/// microseconds (0 = no deadline), and the command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub id: u64,
    pub deadline_us: u32,
    pub cmd: Command,
}

/// Typed protocol-level failures. These are *values*, not connection
/// drops: a shed or expired request still gets a response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The admission gate shed this write; retry after the hinted wait.
    RetryAfter,
    /// The circuit breaker is open; back off substantially.
    Overloaded,
    /// The store is read-only (device exhaustion degradation).
    ReadOnly,
    /// The request's deadline expired before the store was touched.
    DeadlineExceeded,
    /// The server is draining (shutdown) and will not start this work.
    Cancelled,
    /// The request was structurally valid but semantically unacceptable
    /// (wrong value size, scan bounds inverted, …).
    BadRequest,
    /// An unexpected store error; inspect server logs.
    Internal,
}

impl ErrorKind {
    pub const ALL: [ErrorKind; 7] = [
        ErrorKind::RetryAfter,
        ErrorKind::Overloaded,
        ErrorKind::ReadOnly,
        ErrorKind::DeadlineExceeded,
        ErrorKind::Cancelled,
        ErrorKind::BadRequest,
        ErrorKind::Internal,
    ];

    const fn to_byte(self) -> u8 {
        match self {
            ErrorKind::RetryAfter => 1,
            ErrorKind::Overloaded => 2,
            ErrorKind::ReadOnly => 3,
            ErrorKind::DeadlineExceeded => 4,
            ErrorKind::Cancelled => 5,
            ErrorKind::BadRequest => 6,
            ErrorKind::Internal => 7,
        }
    }

    const fn from_byte(b: u8) -> Result<Self, ProtoError> {
        match b {
            1 => Ok(ErrorKind::RetryAfter),
            2 => Ok(ErrorKind::Overloaded),
            3 => Ok(ErrorKind::ReadOnly),
            4 => Ok(ErrorKind::DeadlineExceeded),
            5 => Ok(ErrorKind::Cancelled),
            6 => Ok(ErrorKind::BadRequest),
            7 => Ok(ErrorKind::Internal),
            other => Err(ProtoError::BadErrorKind(other)),
        }
    }

    pub const fn name(self) -> &'static str {
        match self {
            ErrorKind::RetryAfter => "retry_after",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ReadOnly => "read_only",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Internal => "internal",
        }
    }
}

/// One response body. A batch response carries one body per sub-command,
/// in sub-command order (never a nested batch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// Acknowledged write.
    Ok,
    /// Point-lookup hit.
    Value(Vec<u8>),
    /// Point-lookup miss.
    NotFound,
    /// Delete outcome: whether the key existed.
    Deleted(bool),
    /// Scan results, ascending by key.
    Entries(Vec<(u64, Vec<u8>)>),
    /// Telemetry snapshot as JSON.
    Stats(String),
    /// Per-sub-command outcomes of a batch.
    Batch(Vec<Body>),
    /// Typed failure with a retry hint in microseconds (0 = none).
    Err { kind: ErrorKind, retry_after_us: u32 },
}

impl Body {
    pub const fn is_err(&self) -> bool {
        matches!(self, Body::Err { .. })
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub id: u64,
    pub body: Body,
}

/// Validates a length prefix. `Ok` is the body length to read next.
pub fn frame_len(header: [u8; LEN_PREFIX]) -> Result<usize, ProtoError> {
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(ProtoError::Oversized { len });
    }
    Ok(len)
}

/// Bounds-checked little-endian reader over a complete frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        match self.buf.get(self.at..self.at + n) {
            Some(s) => {
                self.at += n;
                Ok(s)
            }
            None => Err(ProtoError::Truncated),
        }
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = self.take(1)?;
        Ok(b[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes { extra: self.buf.len() - self.at })
        }
    }
}

fn encode_command(cmd: &Command, in_batch: bool, out: &mut Vec<u8>) -> Result<(), ProtoError> {
    match cmd {
        Command::Get { key } => {
            out.push(OP_GET);
            out.extend_from_slice(&key.to_le_bytes());
        }
        Command::Put { key, value } => {
            if value.len() > MAX_VALUE {
                return Err(ProtoError::ValueTooLarge { len: value.len() });
            }
            out.push(OP_PUT);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        Command::Delete { key } => {
            out.push(OP_DELETE);
            out.extend_from_slice(&key.to_le_bytes());
        }
        Command::Scan { lo, hi, limit } => {
            if *limit > MAX_SCAN {
                return Err(ProtoError::ScanTooLarge { limit: *limit });
            }
            out.push(OP_SCAN);
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
            out.extend_from_slice(&limit.to_le_bytes());
        }
        Command::Batch(cmds) => {
            if in_batch {
                return Err(ProtoError::BadBatchOp(OP_BATCH));
            }
            if cmds.len() > MAX_BATCH {
                return Err(ProtoError::BatchTooLarge { count: cmds.len() });
            }
            out.push(OP_BATCH);
            out.extend_from_slice(&(cmds.len() as u32).to_le_bytes());
            for c in cmds {
                encode_command(c, true, out)?;
            }
        }
        Command::Stats => {
            if in_batch {
                return Err(ProtoError::BadBatchOp(OP_STATS));
            }
            out.push(OP_STATS);
        }
    }
    Ok(())
}

fn decode_command(cur: &mut Cursor<'_>, in_batch: bool) -> Result<Command, ProtoError> {
    let opcode = cur.u8()?;
    match opcode {
        OP_GET => Ok(Command::Get { key: cur.u64()? }),
        OP_PUT => {
            let key = cur.u64()?;
            let len = cur.u32()? as usize;
            if len > MAX_VALUE {
                return Err(ProtoError::ValueTooLarge { len });
            }
            Ok(Command::Put { key, value: cur.take(len)?.to_vec() })
        }
        OP_DELETE => Ok(Command::Delete { key: cur.u64()? }),
        OP_SCAN => {
            let lo = cur.u64()?;
            let hi = cur.u64()?;
            let limit = cur.u32()?;
            if limit > MAX_SCAN {
                return Err(ProtoError::ScanTooLarge { limit });
            }
            Ok(Command::Scan { lo, hi, limit })
        }
        OP_BATCH if !in_batch => {
            let count = cur.u32()? as usize;
            if count > MAX_BATCH {
                return Err(ProtoError::BatchTooLarge { count });
            }
            let mut cmds = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                cmds.push(decode_command(cur, true)?);
            }
            Ok(Command::Batch(cmds))
        }
        OP_BATCH | OP_STATS if in_batch => Err(ProtoError::BadBatchOp(opcode)),
        OP_STATS => Ok(Command::Stats),
        other => Err(ProtoError::BadOpcode(other)),
    }
}

/// Appends one request frame (length prefix included) to `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) -> Result<(), ProtoError> {
    let frame_start = out.len();
    out.extend_from_slice(&[0u8; LEN_PREFIX]);
    out.extend_from_slice(&req.id.to_le_bytes());
    out.extend_from_slice(&req.deadline_us.to_le_bytes());
    if let Err(e) = encode_command(&req.cmd, false, out) {
        out.truncate(frame_start);
        return Err(e);
    }
    seal_frame(frame_start, out)
}

/// Decodes one request from a complete frame body (no length prefix).
/// Total: any input yields a `Request` or a typed error, never a panic.
pub fn decode_request(body: &[u8]) -> Result<Request, ProtoError> {
    let mut cur = Cursor::new(body);
    let id = cur.u64()?;
    let deadline_us = cur.u32()?;
    let cmd = decode_command(&mut cur, false)?;
    cur.finish()?;
    Ok(Request { id, deadline_us, cmd })
}

fn encode_body(body: &Body, in_batch: bool, out: &mut Vec<u8>) -> Result<(), ProtoError> {
    match body {
        Body::Ok => out.push(TAG_OK),
        Body::Value(v) => {
            if v.len() > MAX_VALUE {
                return Err(ProtoError::ValueTooLarge { len: v.len() });
            }
            out.push(TAG_VALUE);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        Body::NotFound => out.push(TAG_NOT_FOUND),
        Body::Deleted(existed) => {
            out.push(TAG_DELETED);
            out.push(u8::from(*existed));
        }
        Body::Entries(entries) => {
            if entries.len() > MAX_SCAN as usize {
                return Err(ProtoError::ScanTooLarge { limit: entries.len() as u32 });
            }
            out.push(TAG_ENTRIES);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (k, v) in entries {
                if v.len() > MAX_VALUE {
                    return Err(ProtoError::ValueTooLarge { len: v.len() });
                }
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
        }
        Body::Stats(json) => {
            out.push(TAG_STATS);
            out.extend_from_slice(&(json.len() as u32).to_le_bytes());
            out.extend_from_slice(json.as_bytes());
        }
        Body::Batch(bodies) => {
            if in_batch {
                return Err(ProtoError::BadBatchOp(TAG_BATCH));
            }
            if bodies.len() > MAX_BATCH {
                return Err(ProtoError::BatchTooLarge { count: bodies.len() });
            }
            out.push(TAG_BATCH);
            out.extend_from_slice(&(bodies.len() as u32).to_le_bytes());
            for b in bodies {
                encode_body(b, true, out)?;
            }
        }
        Body::Err { kind, retry_after_us } => {
            out.push(TAG_ERR);
            out.push(kind.to_byte());
            out.extend_from_slice(&retry_after_us.to_le_bytes());
        }
    }
    Ok(())
}

fn decode_body(cur: &mut Cursor<'_>, in_batch: bool) -> Result<Body, ProtoError> {
    let tag = cur.u8()?;
    match tag {
        TAG_OK => Ok(Body::Ok),
        TAG_VALUE => {
            let len = cur.u32()? as usize;
            if len > MAX_VALUE {
                return Err(ProtoError::ValueTooLarge { len });
            }
            Ok(Body::Value(cur.take(len)?.to_vec()))
        }
        TAG_NOT_FOUND => Ok(Body::NotFound),
        TAG_DELETED => match cur.u8()? {
            0 => Ok(Body::Deleted(false)),
            1 => Ok(Body::Deleted(true)),
            other => Err(ProtoError::BadBool(other)),
        },
        TAG_ENTRIES => {
            let count = cur.u32()?;
            if count > MAX_SCAN {
                return Err(ProtoError::ScanTooLarge { limit: count });
            }
            let mut entries = Vec::with_capacity((count as usize).min(64));
            for _ in 0..count {
                let k = cur.u64()?;
                let len = cur.u32()? as usize;
                if len > MAX_VALUE {
                    return Err(ProtoError::ValueTooLarge { len });
                }
                entries.push((k, cur.take(len)?.to_vec()));
            }
            Ok(Body::Entries(entries))
        }
        TAG_STATS => {
            let len = cur.u32()? as usize;
            if len > MAX_FRAME {
                return Err(ProtoError::Oversized { len });
            }
            match std::str::from_utf8(cur.take(len)?) {
                Ok(s) => Ok(Body::Stats(s.to_string())),
                Err(_) => Err(ProtoError::BadUtf8),
            }
        }
        TAG_BATCH if !in_batch => {
            let count = cur.u32()? as usize;
            if count > MAX_BATCH {
                return Err(ProtoError::BatchTooLarge { count });
            }
            let mut bodies = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                bodies.push(decode_body(cur, true)?);
            }
            Ok(Body::Batch(bodies))
        }
        TAG_BATCH => Err(ProtoError::BadBatchOp(tag)),
        TAG_ERR => {
            let kind = ErrorKind::from_byte(cur.u8()?)?;
            let retry_after_us = cur.u32()?;
            Ok(Body::Err { kind, retry_after_us })
        }
        other => Err(ProtoError::BadTag(other)),
    }
}

/// Appends one response frame (length prefix included) to `out`.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) -> Result<(), ProtoError> {
    let frame_start = out.len();
    out.extend_from_slice(&[0u8; LEN_PREFIX]);
    out.extend_from_slice(&resp.id.to_le_bytes());
    if let Err(e) = encode_body(&resp.body, false, out) {
        out.truncate(frame_start);
        return Err(e);
    }
    seal_frame(frame_start, out)
}

/// Decodes one response from a complete frame body (no length prefix).
pub fn decode_response(body: &[u8]) -> Result<Response, ProtoError> {
    let mut cur = Cursor::new(body);
    let id = cur.u64()?;
    let body = decode_body(&mut cur, false)?;
    cur.finish()?;
    Ok(Response { id, body })
}

/// Writes the final body length into the reserved prefix at
/// `frame_start`, refusing frames over [`MAX_FRAME`]. On error the
/// partial frame is rolled back off `out`.
fn seal_frame(frame_start: usize, out: &mut Vec<u8>) -> Result<(), ProtoError> {
    let body_len = out.len() - frame_start - LEN_PREFIX;
    if body_len == 0 || body_len > MAX_FRAME {
        out.truncate(frame_start);
        return Err(ProtoError::Oversized { len: body_len });
    }
    let prefix = (body_len as u32).to_le_bytes();
    if let Some(slot) = out.get_mut(frame_start..frame_start + LEN_PREFIX) {
        slot.copy_from_slice(&prefix);
    }
    Ok(())
}

/// Splits a byte stream into complete frame bodies: returns
/// `Ok(Some((body_range, consumed)))` when `buf` holds at least one whole
/// frame, `Ok(None)` when more bytes are needed, and the typed error for
/// a corrupt prefix. Pure function over the buffer — the caller owns the
/// socket loop.
pub fn split_frame(buf: &[u8]) -> Result<Option<(std::ops::Range<usize>, usize)>, ProtoError> {
    let Some(header) = buf.get(..LEN_PREFIX) else {
        return Ok(None);
    };
    let mut h = [0u8; LEN_PREFIX];
    h.copy_from_slice(header);
    let len = frame_len(h)?;
    if buf.len() < LEN_PREFIX + len {
        return Ok(None);
    }
    Ok(Some((LEN_PREFIX..LEN_PREFIX + len, LEN_PREFIX + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        encode_request(req, &mut buf).expect("encode");
        let (range, consumed) = split_frame(&buf).expect("split").expect("complete");
        assert_eq!(consumed, buf.len());
        decode_request(&buf[range]).expect("decode")
    }

    fn rt_response(resp: &Response) -> Response {
        let mut buf = Vec::new();
        encode_response(resp, &mut buf).expect("encode");
        let (range, consumed) = split_frame(&buf).expect("split").expect("complete");
        assert_eq!(consumed, buf.len());
        decode_response(&buf[range]).expect("decode")
    }

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request { id: 1, deadline_us: 0, cmd: Command::Get { key: 42 } },
            Request { id: 2, deadline_us: 500, cmd: Command::Put { key: 7, value: vec![1, 2, 3] } },
            Request { id: 3, deadline_us: 0, cmd: Command::Delete { key: 9 } },
            Request { id: 4, deadline_us: 10, cmd: Command::Scan { lo: 5, hi: 50, limit: 16 } },
            Request { id: 5, deadline_us: 0, cmd: Command::Stats },
            Request {
                id: u64::MAX,
                deadline_us: u32::MAX,
                cmd: Command::Batch(vec![
                    Command::Get { key: 1 },
                    Command::Put { key: 2, value: vec![] },
                    Command::Delete { key: 3 },
                    Command::Scan { lo: 0, hi: u64::MAX, limit: 1 },
                ]),
            },
        ];
        for req in &reqs {
            assert_eq!(&rt_request(req), req);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response { id: 1, body: Body::Ok },
            Response { id: 2, body: Body::Value(vec![9; 16]) },
            Response { id: 3, body: Body::NotFound },
            Response { id: 4, body: Body::Deleted(true) },
            Response { id: 5, body: Body::Entries(vec![(1, vec![1]), (2, vec![])]) },
            Response { id: 6, body: Body::Stats("{\"events\":{}}".to_string()) },
            Response {
                id: 7,
                body: Body::Batch(vec![
                    Body::Ok,
                    Body::NotFound,
                    Body::Err { kind: ErrorKind::RetryAfter, retry_after_us: 250 },
                ]),
            },
        ];
        for resp in &resps {
            assert_eq!(&rt_response(resp), resp);
        }
        for kind in ErrorKind::ALL {
            let r = Response { id: 8, body: Body::Err { kind, retry_after_us: 99 } };
            assert_eq!(rt_response(&r), r);
        }
    }

    #[test]
    fn nested_batch_refused_both_ways() {
        let nested =
            Request { id: 1, deadline_us: 0, cmd: Command::Batch(vec![Command::Batch(vec![])]) };
        let mut buf = Vec::new();
        assert_eq!(encode_request(&nested, &mut buf), Err(ProtoError::BadBatchOp(OP_BATCH)));
        assert!(buf.is_empty(), "failed encode must roll the frame back");
        // Hand-craft the same nesting on the wire.
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.push(OP_BATCH);
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(OP_BATCH);
        body.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode_request(&body), Err(ProtoError::BadBatchOp(OP_BATCH)));
    }

    #[test]
    fn stats_in_batch_refused() {
        let mut buf = Vec::new();
        let req = Request { id: 1, deadline_us: 0, cmd: Command::Batch(vec![Command::Stats]) };
        assert_eq!(encode_request(&req, &mut buf), Err(ProtoError::BadBatchOp(OP_STATS)));
    }

    #[test]
    fn bad_opcode_and_tag_are_typed() {
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.push(0x77);
        assert_eq!(decode_request(&body), Err(ProtoError::BadOpcode(0x77)));
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(0x00);
        assert_eq!(decode_response(&body), Err(ProtoError::BadTag(0x00)));
    }

    #[test]
    fn oversized_prefix_is_typed() {
        assert_eq!(
            frame_len((MAX_FRAME as u32 + 1).to_le_bytes()),
            Err(ProtoError::Oversized { len: MAX_FRAME + 1 })
        );
        assert_eq!(frame_len(0u32.to_le_bytes()), Err(ProtoError::Oversized { len: 0 }));
        assert_eq!(frame_len(13u32.to_le_bytes()), Ok(13));
        let huge = u32::MAX.to_le_bytes();
        let mut buf = huge.to_vec();
        buf.extend_from_slice(&[0; 32]);
        assert!(matches!(split_frame(&buf), Err(ProtoError::Oversized { .. })));
    }

    #[test]
    fn truncation_inside_body_is_typed() {
        let req =
            Request { id: 1, deadline_us: 0, cmd: Command::Put { key: 7, value: vec![5; 8] } };
        let mut buf = Vec::new();
        encode_request(&req, &mut buf).expect("encode");
        let body = &buf[LEN_PREFIX..];
        for cut in 0..body.len() {
            let r = decode_request(&body[..cut]);
            assert!(r.is_err(), "cut at {cut} decoded: {r:?}");
        }
    }

    #[test]
    fn split_frame_needs_whole_frame() {
        let req = Request { id: 3, deadline_us: 0, cmd: Command::Get { key: 1 } };
        let mut buf = Vec::new();
        encode_request(&req, &mut buf).expect("encode");
        for cut in 0..buf.len() {
            assert_eq!(split_frame(&buf[..cut]), Ok(None), "cut at {cut}");
        }
        // Two pipelined frames split one at a time.
        let mut two = buf.clone();
        encode_request(&Request { id: 4, deadline_us: 0, cmd: Command::Stats }, &mut two)
            .expect("encode");
        let (r1, used) = split_frame(&two).expect("ok").expect("frame");
        assert_eq!(decode_request(&two[r1]).expect("decode").id, 3);
        let (r2, used2) = split_frame(&two[used..]).expect("ok").expect("frame");
        assert_eq!(decode_request(&two[used..][r2]).expect("decode").id, 4);
        assert_eq!(used + used2, two.len());
    }

    #[test]
    fn value_and_batch_limits_enforced() {
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.push(OP_PUT);
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&(MAX_VALUE as u32 + 1).to_le_bytes());
        assert_eq!(decode_request(&body), Err(ProtoError::ValueTooLarge { len: MAX_VALUE + 1 }));

        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.push(OP_BATCH);
        body.extend_from_slice(&(MAX_BATCH as u32 + 1).to_le_bytes());
        assert_eq!(decode_request(&body), Err(ProtoError::BatchTooLarge { count: MAX_BATCH + 1 }));
    }

    #[test]
    fn trailing_bytes_are_typed() {
        let req = Request { id: 1, deadline_us: 0, cmd: Command::Get { key: 2 } };
        let mut buf = Vec::new();
        encode_request(&req, &mut buf).expect("encode");
        let mut body = buf[LEN_PREFIX..].to_vec();
        body.push(0xAB);
        assert_eq!(decode_request(&body), Err(ProtoError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn route_key_prefers_first_routable() {
        assert_eq!(Command::Get { key: 5 }.route_key(), Some(5));
        assert_eq!(Command::Stats.route_key(), None);
        let b = Command::Batch(vec![Command::Delete { key: 9 }, Command::Get { key: 4 }]);
        assert_eq!(b.route_key(), Some(9), "first routable sub-command wins");
        assert_eq!(Command::Batch(vec![]).route_key(), None);
        let b = Command::Batch(vec![Command::Scan { lo: 3, hi: 9, limit: 1 }]);
        assert_eq!(b.route_key(), Some(3));
    }
}
