//! Property tests for the `li-proto` wire codec: round-trip fidelity for
//! randomized requests/responses, and totality under corruption — any
//! mangled frame (truncated, bit-flipped, oversized length, random
//! bytes) must decode to a typed [`ProtoError`], never a panic. The
//! decode paths are additionally held panic-free by `cargo xtask lint`;
//! these tests exercise them with hostile inputs.

use li_proto::{
    decode_request, decode_response, encode_request, encode_response, split_frame, Body, Command,
    ErrorKind, ProtoError, Request, Response, LEN_PREFIX, MAX_FRAME,
};
use proptest::prelude::*;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministically derives a command from a seed stream. `depth` stops
/// batch nesting (which the protocol forbids anyway).
fn arb_command(state: &mut u64, in_batch: bool) -> Command {
    let pick = splitmix64(state) % if in_batch { 4 } else { 6 };
    match pick {
        0 => Command::Get { key: splitmix64(state) },
        1 => {
            let len = (splitmix64(state) % 64) as usize;
            let mut value = Vec::with_capacity(len);
            for _ in 0..len {
                value.push((splitmix64(state) & 0xFF) as u8);
            }
            Command::Put { key: splitmix64(state), value }
        }
        2 => Command::Delete { key: splitmix64(state) },
        3 => {
            let lo = splitmix64(state);
            Command::Scan {
                lo,
                hi: lo.wrapping_add(splitmix64(state) % 1_000),
                limit: (splitmix64(state) % 256) as u32,
            }
        }
        4 => {
            let n = (splitmix64(state) % 8) as usize;
            Command::Batch((0..n).map(|_| arb_command(state, true)).collect())
        }
        _ => Command::Stats,
    }
}

fn arb_body(state: &mut u64, in_batch: bool) -> Body {
    let pick = splitmix64(state) % if in_batch { 7 } else { 8 };
    match pick {
        0 => Body::Ok,
        1 => {
            let len = (splitmix64(state) % 64) as usize;
            Body::Value((0..len).map(|_| (splitmix64(state) & 0xFF) as u8).collect())
        }
        2 => Body::NotFound,
        3 => Body::Deleted(splitmix64(state) & 1 == 1),
        4 => {
            let n = (splitmix64(state) % 8) as usize;
            Body::Entries(
                (0..n)
                    .map(|_| {
                        let k = splitmix64(state);
                        let len = (splitmix64(state) % 16) as usize;
                        (k, (0..len).map(|_| (splitmix64(state) & 0xFF) as u8).collect())
                    })
                    .collect(),
            )
        }
        5 => {
            let idx = (splitmix64(state) as usize) % ErrorKind::ALL.len();
            Body::Err {
                kind: ErrorKind::ALL[idx],
                retry_after_us: (splitmix64(state) & 0xFFFF_FFFF) as u32,
            }
        }
        6 => Body::Stats(format!("{{\"seed\":{}}}", splitmix64(state))),
        _ => {
            let n = (splitmix64(state) % 6) as usize;
            Body::Batch((0..n).map(|_| arb_body(state, true)).collect())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every representable request survives encode → split → decode.
    #[test]
    fn request_round_trip(seed in 0u64..u64::MAX, id in 0u64..u64::MAX, dl in 0u32..u32::MAX) {
        let mut state = seed;
        let req = Request { id, deadline_us: dl, cmd: arb_command(&mut state, false) };
        let mut buf = Vec::new();
        encode_request(&req, &mut buf).expect("encode rejects only over-limit frames");
        let (range, consumed) = split_frame(&buf).expect("valid prefix").expect("whole frame");
        prop_assert_eq!(consumed, buf.len());
        let got = decode_request(&buf[range]).expect("decode");
        prop_assert_eq!(got, req);
    }

    /// Every representable response survives encode → split → decode.
    #[test]
    fn response_round_trip(seed in 0u64..u64::MAX, id in 0u64..u64::MAX) {
        let mut state = seed;
        let resp = Response { id, body: arb_body(&mut state, false) };
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf).expect("encode");
        let (range, consumed) = split_frame(&buf).expect("valid prefix").expect("whole frame");
        prop_assert_eq!(consumed, buf.len());
        let got = decode_response(&buf[range]).expect("decode");
        prop_assert_eq!(got, resp);
    }

    /// Truncating a valid frame at any point either asks for more bytes
    /// (prefix-level) or yields a typed error (body-level) — never a
    /// panic, never a bogus success.
    #[test]
    fn truncation_never_panics(seed in 0u64..u64::MAX, cut_seed in 0u64..u64::MAX) {
        let mut state = seed;
        let req = Request { id: 1, deadline_us: 7, cmd: arb_command(&mut state, false) };
        let mut buf = Vec::new();
        encode_request(&req, &mut buf).expect("encode");
        let cut = (cut_seed as usize) % buf.len();
        // Stream-level truncation: split_frame must report "need more".
        prop_assert_eq!(split_frame(&buf[..cut]), Ok(None));
        // Body-level truncation: a frame that *claims* completeness but
        // is short must fail typed.
        if cut > LEN_PREFIX {
            let body = &buf[LEN_PREFIX..cut];
            if body.len() < buf.len() - LEN_PREFIX {
                prop_assert!(decode_request(body).is_err());
            }
        }
    }

    /// Flipping arbitrary bytes in a valid frame never panics the
    /// decoder: it decodes to something, or fails with a typed error.
    #[test]
    fn bitflip_never_panics(
        seed in 0u64..u64::MAX,
        flips in proptest::collection::vec((0usize..4096, 0u8..=255), 1..8),
    ) {
        let mut state = seed;
        let req = Request { id: 9, deadline_us: 0, cmd: arb_command(&mut state, false) };
        let mut buf = Vec::new();
        encode_request(&req, &mut buf).expect("encode");
        for (pos, val) in flips {
            let i = pos % buf.len();
            buf[i] ^= val;
        }
        match split_frame(&buf) {
            Ok(Some((range, _))) => {
                let _ = decode_request(&buf[range]);
            }
            Ok(None) => {}
            Err(e) => prop_assert!(matches!(e, ProtoError::Oversized { .. })),
        }
    }

    /// Pure random bytes never panic either decoder, and a random prefix
    /// claiming more than MAX_FRAME is refused before allocation.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        match split_frame(&bytes) {
            Ok(Some((range, consumed))) => {
                prop_assert!(consumed <= bytes.len());
                prop_assert!(range.end <= bytes.len());
                let _ = decode_request(&bytes[range]);
            }
            Ok(None) => {}
            Err(ProtoError::Oversized { len }) => {
                prop_assert!(len == 0 || len > MAX_FRAME);
            }
            Err(e) => prop_assert!(false, "unexpected stream error {e:?}"),
        }
    }
}
