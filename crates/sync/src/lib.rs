//! `li-sync`: the workspace's single concurrency import surface.
//!
//! Every crate in the workspace takes its atomics, locks, threads and
//! spin hints from here instead of `std::sync` / `parking_lot`
//! directly (`cargo xtask lint` rule R1 enforces this). In a normal
//! build the module tree below re-exports the plain types; under
//! `RUSTFLAGS="--cfg loom"` the same paths resolve to the vendored
//! `loom` model checker's instrumented types, so the loom model tests
//! exercise the *production* protocol code, not a copy.
//!
//! Layout mirrors `std`:
//!
//! * [`sync`] — `Arc`, `Mutex`, `RwLock` (+ guards, parking_lot-style
//!   non-poisoning API) and [`sync::atomic`].
//! * [`thread`] — `Builder`, `JoinHandle`, `spawn`, `yield_now`,
//!   `sleep`.
//! * [`hint`] — `spin_loop`.
//!
//! Migration is therefore mechanical: `use std::sync::atomic::X` →
//! `use li_sync::sync::atomic::X`, `use parking_lot::X` →
//! `use li_sync::sync::X`, `std::thread::X` → `li_sync::thread::X`.

#![forbid(unsafe_code)]

#[cfg(not(loom))]
pub mod sync {
    pub use std::sync::Arc;

    pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicIsize, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
            Ordering,
        };
    }
}

#[cfg(not(loom))]
pub mod thread {
    pub use std::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
}

#[cfg(not(loom))]
pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(loom)]
pub mod sync {
    pub use loom::sync::Arc;

    pub use loom::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

    pub mod atomic {
        pub use loom::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicIsize, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
            Ordering,
        };
    }
}

#[cfg(loom)]
pub mod thread {
    pub use loom::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
}

#[cfg(loom)]
pub mod hint {
    pub use loom::hint::spin_loop;
}

/// Runs a closure under bounded-exhaustive interleaving exploration
/// when built with `--cfg loom`; absent otherwise so accidental use in
/// production code fails to compile.
#[cfg(loom)]
pub use loom::model;
