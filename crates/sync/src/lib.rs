//! `li-sync`: the workspace's single concurrency import surface.
//!
//! Every crate in the workspace takes its atomics, locks, threads,
//! channels and spin hints from here instead of `std::sync` /
//! `parking_lot` directly (`cargo xtask lint` rule R1 enforces this).
//! The one seam buys three instrumented builds of the *same* production
//! code:
//!
//! * normal build — [`sync::Mutex`] / [`sync::RwLock`] are thin wrappers
//!   over `parking_lot` with the lock-class plumbing compiled out;
//! * `--features lockdep` — every guard acquisition feeds the runtime
//!   lock-order witness in [`lockdep`] (held-lock stack, acquisition
//!   graph, incremental cycle detection);
//! * `RUSTFLAGS="--cfg loom"` — the same paths resolve to the vendored
//!   `loom` model checker's instrumented types (which own deadlock
//!   detection in that build, so the witness stands down).
//!
//! Layout mirrors `std`:
//!
//! * [`sync`] — `Arc`, `Mutex`, `RwLock` (+ guards, parking_lot-style
//!   non-poisoning API), [`sync::atomic`] and [`sync::mpsc`].
//! * [`thread`] — `Builder`, `JoinHandle`, `spawn`, `scope`,
//!   `yield_now`, `sleep`.
//! * [`hint`] — `spin_loop`.
//!
//! Migration is therefore mechanical: `use std::sync::atomic::X` →
//! `use li_sync::sync::atomic::X`, `use parking_lot::X` →
//! `use li_sync::sync::X`, `std::thread::X` → `li_sync::thread::X`,
//! `std::sync::mpsc` → `li_sync::sync::mpsc`.

#![forbid(unsafe_code)]

pub mod lockdep;

mod locks {
    #[cfg(loom)]
    use loom::sync as backend;
    #[cfg(not(loom))]
    use parking_lot as backend;

    use crate::lockdep::LockClass;

    /// Mutual exclusion with parking_lot's non-poisoning API, plus a
    /// lock class for the [`crate::lockdep`] witness. `new` assigns an
    /// automatic per-construction-site class; locks that participate in
    /// a documented hierarchy should use [`Mutex::with_class`].
    pub struct Mutex<T: ?Sized> {
        #[cfg(all(feature = "lockdep", not(loom)))]
        class: &'static LockClass,
        inner: backend::Mutex<T>,
    }

    impl<T> Mutex<T> {
        #[track_caller]
        pub fn new(value: T) -> Self {
            Mutex {
                #[cfg(all(feature = "lockdep", not(loom)))]
                class: crate::lockdep::auto_class_here(),
                inner: backend::Mutex::new(value),
            }
        }

        /// A mutex belonging to a declared lock class (see
        /// [`crate::lock_class!`]).
        pub fn with_class(class: &'static LockClass, value: T) -> Self {
            let _ = class;
            Mutex {
                #[cfg(all(feature = "lockdep", not(loom)))]
                class,
                inner: backend::Mutex::new(value),
            }
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        #[track_caller]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            // Witness first: an inversion must panic, not deadlock.
            #[cfg(all(feature = "lockdep", not(loom)))]
            let token = crate::lockdep::acquire_token(self.class, crate::lockdep::Mode::Exclusive);
            MutexGuard {
                #[cfg(all(feature = "lockdep", not(loom)))]
                _token: token,
                inner: self.inner.lock(),
            }
        }

        /// Never blocks, so it cannot complete a deadlock itself — but a
        /// successful try still records its edges: a cycle through them
        /// plus later blocking acquisitions is a real inversion.
        #[track_caller]
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            let inner = self.inner.try_lock()?;
            Some(MutexGuard {
                #[cfg(all(feature = "lockdep", not(loom)))]
                _token: crate::lockdep::acquire_token(self.class, crate::lockdep::Mode::Exclusive),
                inner,
            })
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        #[track_caller]
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    #[must_use = "a MutexGuard unlocks on drop"]
    pub struct MutexGuard<'a, T: ?Sized> {
        // Declared before `inner`: the witness pops the held entry just
        // before the real unlock.
        #[cfg(all(feature = "lockdep", not(loom)))]
        _token: crate::lockdep::HeldToken,
        inner: backend::MutexGuard<'a, T>,
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&**self, f)
        }
    }

    /// Reader-writer lock; see [`Mutex`] for the class plumbing.
    pub struct RwLock<T: ?Sized> {
        #[cfg(all(feature = "lockdep", not(loom)))]
        class: &'static LockClass,
        inner: backend::RwLock<T>,
    }

    impl<T> RwLock<T> {
        #[track_caller]
        pub fn new(value: T) -> Self {
            RwLock {
                #[cfg(all(feature = "lockdep", not(loom)))]
                class: crate::lockdep::auto_class_here(),
                inner: backend::RwLock::new(value),
            }
        }

        /// A lock belonging to a declared class (see
        /// [`crate::lock_class!`]).
        pub fn with_class(class: &'static LockClass, value: T) -> Self {
            let _ = class;
            RwLock {
                #[cfg(all(feature = "lockdep", not(loom)))]
                class,
                inner: backend::RwLock::new(value),
            }
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> RwLock<T> {
        #[track_caller]
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            #[cfg(all(feature = "lockdep", not(loom)))]
            let token = crate::lockdep::acquire_token(self.class, crate::lockdep::Mode::Shared);
            RwLockReadGuard {
                #[cfg(all(feature = "lockdep", not(loom)))]
                _token: token,
                inner: self.inner.read(),
            }
        }

        #[track_caller]
        pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
            let inner = self.inner.try_read()?;
            Some(RwLockReadGuard {
                #[cfg(all(feature = "lockdep", not(loom)))]
                _token: crate::lockdep::acquire_token(self.class, crate::lockdep::Mode::Shared),
                inner,
            })
        }

        #[track_caller]
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            #[cfg(all(feature = "lockdep", not(loom)))]
            let token = crate::lockdep::acquire_token(self.class, crate::lockdep::Mode::Exclusive);
            RwLockWriteGuard {
                #[cfg(all(feature = "lockdep", not(loom)))]
                _token: token,
                inner: self.inner.write(),
            }
        }

        #[track_caller]
        pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
            let inner = self.inner.try_write()?;
            Some(RwLockWriteGuard {
                #[cfg(all(feature = "lockdep", not(loom)))]
                _token: crate::lockdep::acquire_token(self.class, crate::lockdep::Mode::Exclusive),
                inner,
            })
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for RwLock<T> {
        #[track_caller]
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    #[must_use = "an RwLockReadGuard unlocks on drop"]
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        #[cfg(all(feature = "lockdep", not(loom)))]
        _token: crate::lockdep::HeldToken,
        inner: backend::RwLockReadGuard<'a, T>,
    }

    impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&**self, f)
        }
    }

    #[must_use = "an RwLockWriteGuard unlocks on drop"]
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        #[cfg(all(feature = "lockdep", not(loom)))]
        _token: crate::lockdep::HeldToken,
        inner: backend::RwLockWriteGuard<'a, T>,
    }

    impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&**self, f)
        }
    }
}

mod channels {
    //! `std::sync::mpsc` re-exports plus lock-classed bounded channels.
    //!
    //! A full bounded channel blocks its sender exactly like a lock
    //! blocks its waiter, so a thread that sends while holding a lock
    //! the consumer needs is a deadlock the acquisition graph should
    //! see. [`classed_sync_channel`] gives the channel a [`LockClass`];
    //! blocking `send` / `recv` are witness *blocking points* (edges
    //! from every held lock, no push — the channel is never "held").

    pub use std::sync::mpsc::{
        channel, sync_channel, Receiver, RecvError, RecvTimeoutError, SendError, Sender,
        SyncSender, TryRecvError, TrySendError,
    };

    use crate::lockdep::LockClass;

    /// A bounded channel whose blocking endpoints participate in the
    /// lockdep witness under `--features lockdep`.
    pub fn classed_sync_channel<T>(
        class: &'static LockClass,
        bound: usize,
    ) -> (ClassedSyncSender<T>, ClassedReceiver<T>) {
        let _ = class;
        let (tx, rx) = sync_channel(bound);
        (
            ClassedSyncSender {
                #[cfg(all(feature = "lockdep", not(loom)))]
                class,
                inner: tx,
            },
            ClassedReceiver {
                #[cfg(all(feature = "lockdep", not(loom)))]
                class,
                inner: rx,
            },
        )
    }

    /// Sending half of [`classed_sync_channel`].
    pub struct ClassedSyncSender<T> {
        #[cfg(all(feature = "lockdep", not(loom)))]
        class: &'static LockClass,
        inner: SyncSender<T>,
    }

    impl<T> Clone for ClassedSyncSender<T> {
        fn clone(&self) -> Self {
            ClassedSyncSender {
                #[cfg(all(feature = "lockdep", not(loom)))]
                class: self.class,
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> ClassedSyncSender<T> {
        /// Blocks when the channel is full — a witness blocking point.
        #[track_caller]
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            #[cfg(all(feature = "lockdep", not(loom)))]
            crate::lockdep::blocking_point(self.class);
            self.inner.send(value)
        }

        /// Never blocks; no witness edge.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(value)
        }
    }

    /// Receiving half of [`classed_sync_channel`].
    pub struct ClassedReceiver<T> {
        #[cfg(all(feature = "lockdep", not(loom)))]
        class: &'static LockClass,
        inner: Receiver<T>,
    }

    impl<T> ClassedReceiver<T> {
        /// Blocks until a message or disconnect — a witness blocking
        /// point.
        #[track_caller]
        pub fn recv(&self) -> Result<T, RecvError> {
            #[cfg(all(feature = "lockdep", not(loom)))]
            crate::lockdep::blocking_point(self.class);
            self.inner.recv()
        }

        /// Blocks up to `timeout` — a witness blocking point.
        #[track_caller]
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            #[cfg(all(feature = "lockdep", not(loom)))]
            crate::lockdep::blocking_point(self.class);
            self.inner.recv_timeout(timeout)
        }

        /// Never blocks; no witness edge.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }
}

#[cfg(not(loom))]
pub mod sync {
    pub use std::sync::Arc;

    pub use crate::locks::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicIsize, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
            Ordering,
        };
    }

    pub mod mpsc {
        pub use crate::channels::*;
    }
}

#[cfg(not(loom))]
pub mod thread {
    pub use std::thread::{
        scope, sleep, spawn, yield_now, Builder, JoinHandle, Result, Scope, ScopedJoinHandle,
    };
}

#[cfg(not(loom))]
pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(loom)]
pub mod sync {
    pub use loom::sync::Arc;

    pub use crate::locks::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

    pub mod atomic {
        pub use loom::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicIsize, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
            Ordering,
        };
    }

    /// Channels are not modelled by the vendored loom; under `--cfg
    /// loom` they degrade to plain std channels (outside `loom::model`
    /// the locks do too, so crates that use channels still build).
    pub mod mpsc {
        pub use crate::channels::*;
    }
}

#[cfg(loom)]
pub mod thread {
    pub use loom::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
    /// Same alias std::thread exposes; loom has no equivalent to re-export.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;
}

#[cfg(loom)]
pub mod hint {
    pub use loom::hint::spin_loop;
}

/// Runs a closure under bounded-exhaustive interleaving exploration
/// when built with `--cfg loom`; absent otherwise so accidental use in
/// production code fails to compile.
#[cfg(loom)]
pub use loom::model;
