//! Runtime lock-order witness (lockdep lineage).
//!
//! Every [`crate::sync::Mutex`] / [`crate::sync::RwLock`] belongs to a
//! *lock class*: one static [`LockClass`] shared by every instance that
//! plays the same role in the locking protocol (all 1024 Viper key
//! stripes are one class; the shard router's boundary table is another).
//! Classes are declared with the [`crate::lock_class!`] macro and
//! attached at construction via `Mutex::with_class` /
//! `RwLock::with_class`; locks built with plain `new` get an automatic
//! per-construction-site class so nothing escapes the witness.
//!
//! Under the `lockdep` feature (and outside `--cfg loom`, where the
//! model checker's own deadlock detection owns the job) every guard
//! acquisition:
//!
//! 1. checks same-class rules — recursive acquisition and reentrant
//!    reads panic unless the class is *ordered* (instances always nested
//!    in one global order, e.g. merge locking two cells left-to-right);
//! 2. records a `held-class -> acquired-class` edge into a global
//!    acquisition graph and runs incremental cycle detection — a cycle
//!    is a *potential* deadlock (two threads interleaving the two edge
//!    directions), reported by panic with both acquisition sites even if
//!    the schedule never actually deadlocks;
//! 3. pushes onto a thread-local held-lock stack, popped when the guard
//!    drops.
//!
//! The check runs *before* the inner lock is acquired, so an inversion
//! panics instead of deadlocking. With the feature off every hook
//! compiles to nothing and the guard types carry no extra state.
//!
//! Setting `LI_LOCKDEP_ORDER=<path to xtask/lock-order.txt>` makes the
//! witness additionally enforce the *declared* hierarchy: an edge
//! between two classes named in that file that the file's `order` lines
//! do not (transitively) allow panics as "undeclared", tying the runtime
//! witness to the same source of truth as the static `xtask` R6 pass.

#[cfg(all(feature = "lockdep", not(loom)))]
use std::panic::Location;
#[cfg(all(feature = "lockdep", not(loom)))]
use std::sync::atomic::AtomicU32;

/// A lock class: the unit the acquisition graph is built over. See the
/// module docs. Construct via [`crate::lock_class!`].
pub struct LockClass {
    name: &'static str,
    site: &'static str,
    ordered: bool,
    /// Graph node id, assigned on first acquisition (0 = unassigned).
    #[cfg(all(feature = "lockdep", not(loom)))]
    id: AtomicU32,
}

impl LockClass {
    /// A class whose instances must never be nested with each other.
    #[must_use]
    pub const fn new(name: &'static str, site: &'static str) -> Self {
        LockClass {
            name,
            site,
            ordered: false,
            #[cfg(all(feature = "lockdep", not(loom)))]
            id: AtomicU32::new(0),
        }
    }

    /// A class whose instances may nest because every thread acquires
    /// them in one agreed global order (document that order where the
    /// class is declared).
    #[must_use]
    pub const fn new_ordered(name: &'static str, site: &'static str) -> Self {
        LockClass {
            name,
            site,
            ordered: true,
            #[cfg(all(feature = "lockdep", not(loom)))]
            id: AtomicU32::new(0),
        }
    }

    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// `file:line` of the `lock_class!` invocation.
    #[must_use]
    pub const fn declaration_site(&self) -> &'static str {
        self.site
    }

    #[must_use]
    pub const fn is_ordered(&self) -> bool {
        self.ordered
    }
}

/// Declares a `&'static LockClass`.
///
/// ```
/// use li_sync::lock_class;
/// let table = lock_class!("shard-table");
/// let stripe = lock_class!("viper-stripe", ordered); // nested in index order
/// ```
#[macro_export]
macro_rules! lock_class {
    ($name:expr) => {{
        static CLASS: $crate::lockdep::LockClass =
            $crate::lockdep::LockClass::new($name, concat!(file!(), ":", line!()));
        &CLASS
    }};
    ($name:expr, ordered) => {{
        static CLASS: $crate::lockdep::LockClass =
            $crate::lockdep::LockClass::new_ordered($name, concat!(file!(), ":", line!()));
        &CLASS
    }};
}

#[cfg(all(feature = "lockdep", not(loom)))]
pub(crate) use active::{acquire_token, blocking_point, HeldToken, Mode};

#[cfg(all(feature = "lockdep", not(loom)))]
mod active {
    use std::cell::{Cell, RefCell};
    use std::collections::{HashMap, HashSet};
    use std::panic::Location;
    use std::sync::atomic::Ordering;
    use std::sync::{Mutex, OnceLock, PoisonError};

    use super::LockClass;

    #[derive(Clone, Copy, PartialEq, Eq)]
    pub(crate) enum Mode {
        Shared,
        Exclusive,
    }

    struct ClassInfo {
        name: &'static str,
        /// Auto classes (per-construction-site, from `Mutex::new`) are
        /// exempt from the declared-hierarchy cross-check: they belong
        /// to tests and scaffolding, not the documented protocol.
        auto: bool,
    }

    /// Where an edge was first established, for the panic report.
    struct EdgeInfo {
        holder_site: String,
        acquire_site: String,
    }

    #[derive(Default)]
    struct Registry {
        /// `id - 1` indexes into this.
        classes: Vec<ClassInfo>,
        /// Auto classes keyed by construction site.
        auto: HashMap<String, &'static LockClass>,
        edges: HashMap<(u32, u32), EdgeInfo>,
        adj: HashMap<u32, Vec<u32>>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static R: OnceLock<Mutex<Registry>> = OnceLock::new();
        R.get_or_init(|| Mutex::new(Registry::default()))
    }

    fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
        // A thread that panicked out of a report while holding the
        // registry must not wedge every other thread's diagnostics.
        registry().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Declared hierarchy from `LI_LOCKDEP_ORDER` (optional).
    struct Declared {
        /// class name -> declared `ordered` flag.
        classes: HashMap<String, bool>,
        /// Transitive "may hold `k` while acquiring any of `v`".
        reach: HashMap<String, HashSet<String>>,
        path: String,
    }

    fn declared() -> Option<&'static Declared> {
        static D: OnceLock<Option<Declared>> = OnceLock::new();
        D.get_or_init(load_declared).as_ref()
    }

    fn load_declared() -> Option<Declared> {
        let path = std::env::var("LI_LOCKDEP_ORDER").ok()?;
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("lockdep: cannot read LI_LOCKDEP_ORDER={path}: {e}"));
        let mut classes: HashMap<String, bool> = HashMap::new();
        let mut direct: HashMap<String, HashSet<String>> = HashMap::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("class") => {
                    let Some(name) = words.next() else {
                        panic!("lockdep: {path}:{}: `class` needs a name", no + 1);
                    };
                    let ordered = match words.next() {
                        None => false,
                        Some("ordered") => true,
                        Some(w) => {
                            panic!("lockdep: {path}:{}: unknown class flag `{w}`", no + 1)
                        }
                    };
                    classes.insert(name.to_string(), ordered);
                }
                Some("order") => {
                    let chain: Vec<&str> =
                        line["order".len()..].split('>').map(str::trim).collect();
                    assert!(
                        chain.len() >= 2 && chain.iter().all(|c| !c.is_empty()),
                        "lockdep: {path}:{}: `order` needs `a > b [> c ...]`",
                        no + 1
                    );
                    for w in chain.windows(2) {
                        direct.entry(w[0].to_string()).or_default().insert(w[1].to_string());
                    }
                }
                // Static-pass directive (receiver-ident -> class); not
                // needed at runtime.
                Some("map") => {}
                Some(w) => panic!("lockdep: {path}:{}: unknown directive `{w}`", no + 1),
                // Blank and comment-only lines were skipped above.
                None => unreachable!(),
            }
        }
        for (src, dsts) in &direct {
            for n in std::iter::once(src).chain(dsts.iter()) {
                assert!(
                    classes.contains_key(n),
                    "lockdep: {path}: `order` references undeclared class `{n}`"
                );
            }
        }
        // Transitive closure (the hierarchy is a handful of classes).
        let mut reach = direct;
        loop {
            let mut grew = false;
            let snapshot: HashMap<String, HashSet<String>> = reach.clone();
            for (src, outs) in &mut reach {
                for mid in snapshot.get(src).into_iter().flatten() {
                    for next in snapshot.get(mid).into_iter().flatten() {
                        if next != src && outs.insert(next.clone()) {
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        for (src, outs) in &reach {
            assert!(
                !outs.contains(src),
                "lockdep: {path}: declared hierarchy has a cycle through `{src}`"
            );
        }
        Some(Declared { classes, reach, path })
    }

    struct Held {
        id: u32,
        mode: Mode,
        name: &'static str,
        token: u64,
        site: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        /// Edges this thread already pushed through the global graph;
        /// skips the registry lock on the hot path.
        static SEEN: RefCell<HashSet<(u32, u32)>> = RefCell::new(HashSet::new());
        static NEXT_TOKEN: Cell<u64> = const { Cell::new(0) };
    }

    fn class_id(class: &'static LockClass) -> u32 {
        let id = class.id.load(Ordering::Acquire);
        if id != 0 {
            return id;
        }
        let mut reg = lock_registry();
        let id = class.id.load(Ordering::Acquire);
        if id != 0 {
            return id;
        }
        if let Some(d) = declared() {
            if let Some(&decl_ordered) = d.classes.get(class.name) {
                if decl_ordered != class.ordered {
                    let msg = format!(
                        "lockdep: class `{}` (declared at {}) is {} in code but {} in {}",
                        class.name,
                        class.site,
                        if class.ordered { "ordered" } else { "not ordered" },
                        if decl_ordered { "ordered" } else { "not ordered" },
                        d.path,
                    );
                    drop(reg);
                    panic!("{msg}");
                }
            }
        }
        // One name = one class: a second `lock_class!` with the same
        // name would silently split the class and blind the same-class
        // checks, so it is rejected as misuse.
        if let Some(dup) = reg.classes.iter().find(|c| !c.auto && c.name == class.name) {
            let msg = format!(
                "lockdep: duplicate lock class name `{}` (second declaration at {}); \
                 declare the class once and share the `&'static LockClass`",
                dup.name, class.site,
            );
            drop(reg);
            panic!("{msg}");
        }
        reg.classes.push(ClassInfo { name: class.name, auto: false });
        let id = u32::try_from(reg.classes.len()).expect("lock class count fits u32");
        class.id.store(id, Ordering::Release);
        id
    }

    /// The per-construction-site class a plain `Mutex::new` falls back
    /// to. Leaked once per site; site count is bounded by the source.
    pub(crate) fn auto_class(loc: &'static Location<'static>) -> &'static LockClass {
        let key = format!("{}:{}:{}", loc.file(), loc.line(), loc.column());
        let mut reg = lock_registry();
        if let Some(c) = reg.auto.get(&key) {
            return c;
        }
        let name: &'static str = Box::leak(key.clone().into_boxed_str());
        let class: &'static LockClass = Box::leak(Box::new(LockClass::new(name, name)));
        reg.classes.push(ClassInfo { name, auto: true });
        let id = u32::try_from(reg.classes.len()).expect("lock class count fits u32");
        class.id.store(id, Ordering::Release);
        reg.auto.insert(key, class);
        class
    }

    /// RAII token for one held lock; popped from the held stack on drop.
    pub(crate) struct HeldToken(u64);

    impl Drop for HeldToken {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                if let Some(pos) = held.iter().rposition(|x| x.token == self.0) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Runs the witness for one acquisition and pushes the held entry.
    /// Call *before* acquiring the inner lock so an inversion panics
    /// instead of deadlocking.
    #[track_caller]
    pub(crate) fn acquire_token(class: &'static LockClass, mode: Mode) -> HeldToken {
        let site = Location::caller();
        let id = class_id(class);
        let token = NEXT_TOKEN.with(|t| {
            let v = t.get() + 1;
            t.set(v);
            v
        });
        HELD.with(|held_cell| {
            {
                let held = held_cell.borrow();
                check_against_held(&held, class, id, mode, site);
            }
            held_cell.borrow_mut().push(Held { id, mode, name: class.name, token, site });
        });
        HeldToken(token)
    }

    /// Edge-only variant for operations that can block on a resource
    /// that is not a lock (bounded-channel send/recv): records
    /// held-lock -> class edges and runs cycle detection, but holds
    /// nothing afterwards.
    #[track_caller]
    pub(crate) fn blocking_point(class: &'static LockClass) {
        let site = Location::caller();
        let id = class_id(class);
        HELD.with(|held_cell| {
            let held = held_cell.borrow();
            let mut recorded: HashSet<u32> = HashSet::new();
            for h in held.iter() {
                if h.id != id && recorded.insert(h.id) {
                    check_edge(h, id, class, site);
                }
            }
        });
    }

    fn check_against_held(
        held: &[Held],
        class: &'static LockClass,
        id: u32,
        mode: Mode,
        site: &'static Location<'static>,
    ) {
        for h in held {
            if h.id == id && !class.ordered {
                let kind = if mode == Mode::Shared && h.mode == Mode::Shared {
                    "reentrant read of one RwLock class (readers are not recursion-safe: \
                     a writer queued between the two reads deadlocks both)"
                } else {
                    "recursive acquisition of one lock class"
                };
                panic!(
                    "lockdep: {kind}\n  class `{}` (declared at {})\n  first acquired at {}\n  \
                     acquired again at {}\n  hint: mark the class `ordered` only if every \
                     thread nests its instances in one agreed global order",
                    class.name, class.site, h.site, site
                );
            }
        }
        let mut recorded: HashSet<u32> = HashSet::new();
        for h in held {
            if h.id != id && recorded.insert(h.id) {
                check_edge(h, id, class, site);
            }
        }
    }

    /// Records `holder -> class` into the global graph; panics on a
    /// cycle or (when a hierarchy file is loaded) an undeclared edge.
    fn check_edge(
        holder: &Held,
        id: u32,
        class: &'static LockClass,
        site: &'static Location<'static>,
    ) {
        let key = (holder.id, id);
        if SEEN.with(|s| s.borrow().contains(&key)) {
            return;
        }
        let mut reg = lock_registry();
        if !reg.edges.contains_key(&key) {
            if let Some(d) = declared() {
                let holder_decl = !reg.classes[(holder.id - 1) as usize].auto
                    && d.classes.contains_key(holder.name);
                let target_decl =
                    !reg.classes[(id - 1) as usize].auto && d.classes.contains_key(class.name);
                let allowed = d.reach.get(holder.name).is_some_and(|r| r.contains(class.name));
                if holder_decl && target_decl && !allowed {
                    let msg = format!(
                        "lockdep: undeclared lock-order edge `{}` -> `{}`\n  holding `{}` \
                         acquired at {}\n  acquiring `{}` at {}\n  either this nesting is a \
                         bug, or it is legitimate and `order {} > {}` (or a covering chain) \
                         belongs in {}",
                        holder.name,
                        class.name,
                        holder.name,
                        holder.site,
                        class.name,
                        site,
                        holder.name,
                        class.name,
                        d.path,
                    );
                    drop(reg);
                    panic!("{msg}");
                }
            }
            reg.edges.insert(
                key,
                EdgeInfo { holder_site: holder.site.to_string(), acquire_site: site.to_string() },
            );
            reg.adj.entry(holder.id).or_default().push(id);
            if let Some(path) = find_path(&reg.adj, id, holder.id) {
                let msg = render_cycle(&reg, &path, holder, class, site);
                drop(reg);
                panic!("{msg}");
            }
        }
        drop(reg);
        SEEN.with(|s| s.borrow_mut().insert(key));
    }

    /// BFS path `from -> ... -> to` in the acquisition graph.
    fn find_path(adj: &HashMap<u32, Vec<u32>>, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut parent: HashMap<u32, u32> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        let mut visited: HashSet<u32> = HashSet::from([from]);
        while let Some(n) = queue.pop_front() {
            for &m in adj.get(&n).into_iter().flatten() {
                if visited.insert(m) {
                    parent.insert(m, n);
                    if m == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = parent[&cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(m);
                }
            }
        }
        None
    }

    fn render_cycle(
        reg: &Registry,
        path: &[u32],
        holder: &Held,
        class: &'static LockClass,
        site: &'static Location<'static>,
    ) -> String {
        let name_of = |id: u32| reg.classes[(id - 1) as usize].name;
        let mut msg = format!(
            "lockdep: lock-order inversion (potential deadlock)\n  acquiring `{}` at {}\n  \
             while holding `{}` acquired at {}\n  but the acquisition graph already orders \
             `{}` before `{}`:",
            class.name, site, holder.name, holder.site, class.name, holder.name,
        );
        use std::fmt::Write as _;
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            if let Some(e) = reg.edges.get(&(a, b)) {
                let _ = write!(
                    msg,
                    "\n    `{}` -> `{}`: held `{}` at {}, acquired `{}` at {}",
                    name_of(a),
                    name_of(b),
                    name_of(a),
                    e.holder_site,
                    name_of(b),
                    e.acquire_site,
                );
            }
        }
        msg
    }
}

/// Convenience used by `Mutex::new` / `RwLock::new` (wrapped here so the
/// wrapper code has one call with the caller's location threaded in).
#[cfg(all(feature = "lockdep", not(loom)))]
#[track_caller]
pub(crate) fn auto_class_here() -> &'static LockClass {
    active::auto_class(Location::caller())
}

#[cfg(all(test, feature = "lockdep", not(loom)))]
mod tests {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    use crate::sync::{Mutex, RwLock};

    fn panic_message(r: std::thread::Result<()>) -> String {
        let err = r.expect_err("expected a lockdep panic");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn ab_ba_inversion_is_caught_without_hanging() {
        let a = Mutex::with_class(lock_class!("test.inv-a"), ());
        let b = Mutex::with_class(lock_class!("test.inv-b"), ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        // Single thread, so an actual deadlock is impossible: only the
        // witness can object, and it must do so before blocking.
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock();
        })));
        assert!(msg.contains("lock-order inversion"), "unexpected message: {msg}");
        assert!(msg.contains("test.inv-a") && msg.contains("test.inv-b"), "{msg}");
        // Both acquisition sites of the reverse edge are reported.
        assert!(msg.contains("lockdep.rs"), "{msg}");
    }

    #[test]
    fn hierarchy_respecting_nest_passes() {
        let outer = RwLock::with_class(lock_class!("test.nest-outer"), 1u32);
        let inner = Mutex::with_class(lock_class!("test.nest-inner"), 2u32);
        for _ in 0..3 {
            let g = outer.read();
            let h = inner.lock();
            assert_eq!(*g + *h, 3);
        }
        let g = outer.write();
        let h = inner.lock();
        assert_eq!(*g + *h, 3);
    }

    #[test]
    fn reentrant_read_of_one_class_is_flagged() {
        let l = RwLock::with_class(lock_class!("test.reent"), ());
        let _g1 = l.read();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _g2 = l.read();
        })));
        assert!(msg.contains("reentrant read"), "unexpected message: {msg}");
    }

    #[test]
    fn recursive_mutex_acquisition_is_flagged() {
        let class = lock_class!("test.rec");
        let a = Mutex::with_class(class, ());
        let b = Mutex::with_class(class, ());
        let _ga = a.lock();
        // Distinct instance, same class: still a violation (another
        // thread nesting them the other way around would deadlock).
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
        })));
        assert!(msg.contains("recursive acquisition"), "unexpected message: {msg}");
    }

    #[test]
    fn ordered_class_allows_fixed_order_nesting() {
        let class = lock_class!("test.ordered", ordered);
        let stripes: Vec<Mutex<()>> = (0..4).map(|_| Mutex::with_class(class, ())).collect();
        // Quiesce-style sweep: all instances held at once, index order.
        let guards: Vec<_> = stripes.iter().map(|m| m.lock()).collect();
        assert_eq!(guards.len(), 4);
    }

    #[test]
    fn try_lock_edges_feed_the_graph() {
        let a = Mutex::with_class(lock_class!("test.try-a"), ());
        let b = Mutex::with_class(lock_class!("test.try-b"), ());
        {
            let _ga = a.lock();
            let _gb = b.try_lock().expect("uncontended");
        }
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock();
        })));
        assert!(msg.contains("lock-order inversion"), "unexpected message: {msg}");
    }

    #[test]
    fn auto_classes_from_plain_new_are_witnessed() {
        let a = Mutex::new(0u8);
        let b = Mutex::new(0u8);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock();
        })));
        assert!(msg.contains("lock-order inversion"), "unexpected message: {msg}");
    }

    #[test]
    fn classed_channel_blocking_points_record_edges() {
        let guard_class = lock_class!("test.chan-lock");
        let chan_class = lock_class!("test.chan-queue");
        let m = Mutex::with_class(guard_class, ());
        let (tx, rx) = crate::sync::mpsc::classed_sync_channel::<u8>(chan_class, 4);
        {
            let _g = m.lock();
            tx.send(7).unwrap();
        }
        assert_eq!(rx.recv().unwrap(), 7);
        let tx2 = tx.clone();
        tx2.try_send(9).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 9);
    }

    #[test]
    fn cross_thread_nesting_in_one_order_passes() {
        use crate::sync::Arc;
        let outer = Arc::new(Mutex::with_class(lock_class!("test.xt-outer"), 0u64));
        let inner = Arc::new(Mutex::with_class(lock_class!("test.xt-inner"), 0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let o = Arc::clone(&outer);
            let i = Arc::clone(&inner);
            handles.push(crate::thread::spawn(move || {
                for _ in 0..100 {
                    let mut g = o.lock();
                    let mut h = i.lock();
                    *g += 1;
                    *h += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*outer.lock(), 400);
    }
}
