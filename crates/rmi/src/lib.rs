//! # li-rmi — Recursive Model Index (Kraska et al., 2018; §II-A1)
//!
//! A two-stage RMI: a root linear model dispatches each key to one of `m`
//! second-stage linear models, whose prediction (corrected by a bounded
//! binary search using the per-model error measured at build time) gives
//! the key's position in the sorted array.
//!
//! Like the original, this index is **read-only** (Table I): it implements
//! bulk build and lookups but no insertion. Per-model errors are unbounded
//! a priori — the source of RMI's high tail latency in Fig. 10.

#![forbid(unsafe_code)]

use li_core::model::CubicModel;
use li_core::search::lower_bound_kv;
use li_core::traits::{BulkBuildIndex, DepthStats, Index, OrderedIndex, TwoPhaseLookup};
use li_core::{Key, KeyValue, LinearModel, Value};

/// Second-stage model family. The original RMI mixes model classes per
/// stage (§II-A1); cubic second stages realise §V-A's "nonlinear models"
/// suggestion — one cubic can replace several linear models on curved CDF
/// regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecondStage {
    Linear,
    Cubic,
}

/// Build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmiConfig {
    /// Average keys per second-stage model. The paper tunes per-index
    /// hyperparameters for best performance (§III-A1); 2048 is a good
    /// default for in-memory integer keys.
    pub keys_per_model: usize,
    /// Model family of the second stage.
    pub second_stage: SecondStage,
}

impl Default for RmiConfig {
    fn default() -> Self {
        RmiConfig { keys_per_model: 2048, second_stage: SecondStage::Linear }
    }
}

/// A second-stage model of either family.
enum StageModel {
    Linear(LinearModel),
    Cubic(CubicModel),
}

impl StageModel {
    #[inline]
    fn predict_clamped(&self, key: Key, n: usize) -> usize {
        match self {
            StageModel::Linear(m) => m.predict_clamped(key, n),
            StageModel::Cubic(m) => m.predict_clamped(key, n),
        }
    }
}

struct StageTwo {
    model: StageModel,
    /// Max |prediction − position| over the training keys of this model.
    err: u32,
    /// Position range [start, end) this model's keys occupy — predictions
    /// are clamped into it, bounding worst-case search even for foreign
    /// query keys.
    start: u32,
    end: u32,
}

/// The two-stage RMI.
pub struct Rmi {
    data: Vec<KeyValue>,
    root: LinearModel,
    second: Vec<StageTwo>,
}

impl Rmi {
    /// Builds with explicit configuration.
    pub fn build_with(config: RmiConfig, data: &[KeyValue]) -> Self {
        let n = data.len();
        let m = n.div_ceil(config.keys_per_model).max(1);
        let keys: Vec<Key> = data.iter().map(|kv| kv.0).collect();
        let dense = LinearModel::fit_least_squares(&keys);
        let root = if n == 0 { dense } else { dense.scaled(m as f64 / n as f64) };

        // Top-down training: route every key through the root, then fit
        // each second-stage model on the keys it received.
        let mut boundaries = vec![0usize; m + 1];
        {
            let mut b = 0usize;
            for (i, &k) in keys.iter().enumerate() {
                let target = root.predict_clamped(k, m);
                while b < target {
                    b += 1;
                    boundaries[b] = i;
                }
            }
            while b < m {
                b += 1;
                boundaries[b] = n;
            }
            boundaries[m] = n;
        }

        let second = (0..m)
            .map(|j| {
                let (start, end) = (boundaries[j], boundaries[j + 1]);
                if start == end {
                    return StageTwo {
                        model: StageModel::Linear(LinearModel::constant(start as f64)),
                        err: 0,
                        start: start as u32,
                        end: end.max(start + 1).min(n) as u32,
                    };
                }
                let chunk = &keys[start..end];
                let model = match config.second_stage {
                    SecondStage::Linear => {
                        let local = LinearModel::fit_least_squares(chunk);
                        StageModel::Linear(local.shifted(start as f64))
                    }
                    SecondStage::Cubic => {
                        let mut local = CubicModel::fit(chunk);
                        local.d += start as f64;
                        StageModel::Cubic(local)
                    }
                };
                let mut err = 0usize;
                for (i, &k) in chunk.iter().enumerate() {
                    let p = model.predict_clamped(k, n);
                    err = err.max(p.abs_diff(start + i));
                }
                StageTwo { model, err: err as u32, start: start as u32, end: end as u32 }
            })
            .collect();

        Rmi { data: data.to_vec(), root, second }
    }

    /// Lookup position range for a key: `(lo, hi)` bounds within `data`
    /// guaranteed to bracket the key's lower bound.
    #[inline]
    fn search_window(&self, key: Key) -> (usize, usize) {
        let n = self.data.len();
        let m = self.second.len();
        let sm = &self.second[self.root.predict_clamped(key, m)];
        if sm.start == sm.end {
            return (sm.start as usize, sm.end as usize);
        }
        let p = sm
            .model
            .predict_clamped(key, n)
            .clamp(sm.start as usize, (sm.end as usize).saturating_sub(1));
        // The prediction window covers the model's own keys; query keys in
        // the gaps before/after a model's range are caught by clamping to
        // the model's position span, then widening by one key on each side
        // (the true lower bound can be at most one position outside).
        let err = sm.err as usize + 1;
        let lo = p.saturating_sub(err).max((sm.start as usize).saturating_sub(1));
        let hi = (p + err + 1).min(sm.end as usize + 1).min(n);
        (lo, hi)
    }

    /// Models in the second stage (diagnostics / Table II).
    pub fn model_count(&self) -> usize {
        self.second.len()
    }
}

impl Index for Rmi {
    fn name(&self) -> &'static str {
        "RMI"
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn get(&self, key: Key) -> Option<Value> {
        if self.data.is_empty() {
            return None;
        }
        let (lo, hi) = self.search_window(key);
        let i = lo + lower_bound_kv(&self.data[lo..hi], key);
        // Verify bracketing; a miss within a valid window is a genuine
        // miss, while an unbracketed window (foreign key routed to a
        // neighbouring model) needs the full-search fallback.
        let bracketed =
            (i == 0 || self.data[i - 1].0 < key) && (i == self.data.len() || self.data[i].0 >= key);
        let j = if bracketed { i } else { lower_bound_kv(&self.data, key) };
        match self.data.get(j) {
            Some(&(k, v)) if k == key => Some(v),
            _ => None,
        }
    }

    fn index_size_bytes(&self) -> usize {
        core::mem::size_of::<LinearModel>() + self.second.len() * core::mem::size_of::<StageTwo>()
    }

    fn data_size_bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<KeyValue>()
    }
}

impl OrderedIndex for Rmi {
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        if self.data.is_empty() || lo > hi {
            return;
        }
        let (wlo, whi) = self.search_window(lo);
        let mut i = wlo + lower_bound_kv(&self.data[wlo..whi], lo);
        // Verify the window actually bracketed the lower bound; fall back
        // to a full binary search otherwise.
        let bracketed =
            (i == 0 || self.data[i - 1].0 < lo) && (i == self.data.len() || self.data[i].0 >= lo);
        if !bracketed {
            i = lower_bound_kv(&self.data, lo);
        }
        while let Some(&(k, v)) = self.data.get(i) {
            if k > hi {
                break;
            }
            out.push((k, v));
            i += 1;
        }
    }
}

impl BulkBuildIndex for Rmi {
    fn build(data: &[KeyValue]) -> Self {
        Self::build_with(RmiConfig::default(), data)
    }
}

impl DepthStats for Rmi {
    fn avg_depth(&self) -> f64 {
        2.0
    }

    fn leaf_count(&self) -> usize {
        self.second.len()
    }
}

impl TwoPhaseLookup for Rmi {
    fn locate_leaf(&self, key: Key) -> usize {
        self.root.predict_clamped(key, self.second.len())
    }

    fn search_leaf(&self, leaf: usize, key: Key) -> Option<Value> {
        let sm = &self.second[leaf];
        let window = &self.data[sm.start as usize..sm.end as usize];
        let i = lower_bound_kv(window, key);
        match window.get(i) {
            Some(&(k, v)) if k == key => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Vec<KeyValue> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keys: Vec<Key> = (0..n * 11 / 10 + 8).map(|_| rng.random()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.truncate(n);
        keys.into_iter().enumerate().map(|(i, k)| (k, i as u64)).collect()
    }

    #[test]
    fn build_and_get_all() {
        let data = dataset(100_000, 1);
        let rmi = Rmi::build(&data);
        assert_eq!(rmi.len(), data.len());
        for &(k, v) in data.iter().step_by(37) {
            assert_eq!(rmi.get(k), Some(v), "key {k}");
        }
    }

    #[test]
    fn misses_return_none() {
        let data: Vec<KeyValue> = (0..50_000u64).map(|i| (i * 4 + 2, i)).collect();
        let rmi = Rmi::build(&data);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20_000 {
            let k: Key = rng.random();
            let expect = data.binary_search_by_key(&k, |kv| kv.0).ok().map(|i| data[i].1);
            assert_eq!(rmi.get(k), expect, "key {k}");
        }
        assert_eq!(rmi.get(0), None);
        assert_eq!(rmi.get(u64::MAX), None);
    }

    #[test]
    fn skewed_keys() {
        // FACE-like: two extreme clusters.
        let mut keys: Vec<Key> = (0..30_000u64).map(|i| i * 3).collect();
        keys.extend((0..300u64).map(|i| u64::MAX - 100_000 + i * 17));
        let data: Vec<KeyValue> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let rmi = Rmi::build(&data);
        for &(k, v) in data.iter().step_by(53) {
            assert_eq!(rmi.get(k), Some(v));
        }
    }

    #[test]
    fn range_scan() {
        let data: Vec<KeyValue> = (0..20_000u64).map(|i| (i * 5, i)).collect();
        let rmi = Rmi::build(&data);
        let got = rmi.range_vec(103, 151);
        let expect: Vec<KeyValue> =
            data.iter().copied().filter(|kv| kv.0 >= 103 && kv.0 <= 151).collect();
        assert_eq!(got, expect);
        assert_eq!(rmi.range_vec(0, 20).len(), 5);
        assert!(rmi.range_vec(99_999_999, u64::MAX).is_empty());
    }

    #[test]
    fn empty_and_tiny() {
        let rmi = Rmi::build(&[]);
        assert_eq!(rmi.get(5), None);
        assert!(rmi.is_empty());
        let rmi = Rmi::build(&[(9, 90)]);
        assert_eq!(rmi.get(9), Some(90));
        assert_eq!(rmi.get(8), None);
    }

    #[test]
    fn small_models_lower_error() {
        let data = dataset(100_000, 3);
        let coarse =
            Rmi::build_with(RmiConfig { keys_per_model: 16_384, ..RmiConfig::default() }, &data);
        let fine =
            Rmi::build_with(RmiConfig { keys_per_model: 256, ..RmiConfig::default() }, &data);
        assert!(fine.model_count() > coarse.model_count());
        let avg_err =
            |r: &Rmi| r.second.iter().map(|s| s.err as f64).sum::<f64>() / r.second.len() as f64;
        assert!(avg_err(&fine) < avg_err(&coarse));
        for &(k, v) in data.iter().step_by(997) {
            assert_eq!(fine.get(k), Some(v));
            assert_eq!(coarse.get(k), Some(v));
        }
    }

    #[test]
    fn cubic_second_stage_correct_and_tighter_on_curved_cdf() {
        // A curved CDF (rank ~ key^3): cubic second stages fit much
        // tighter than linear ones (§V-A's nonlinear-model suggestion).
        let mut keys: Vec<Key> =
            (0..80_000u64).map(|i| ((i as f64).powf(1.0 / 3.0) * 1e6) as u64 + i).collect();
        keys.dedup();
        let data: Vec<KeyValue> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let lin = Rmi::build_with(
            RmiConfig { keys_per_model: 8_192, second_stage: SecondStage::Linear },
            &data,
        );
        let cub = Rmi::build_with(
            RmiConfig { keys_per_model: 8_192, second_stage: SecondStage::Cubic },
            &data,
        );
        let avg_err =
            |r: &Rmi| r.second.iter().map(|s| s.err as f64).sum::<f64>() / r.second.len() as f64;
        assert!(
            avg_err(&cub) * 2.0 < avg_err(&lin),
            "cubic {} vs linear {}",
            avg_err(&cub),
            avg_err(&lin)
        );
        for &(k, v) in data.iter().step_by(997) {
            assert_eq!(cub.get(k), Some(v));
        }
        // Misses stay correct.
        assert_eq!(cub.get(1), None);
        assert_eq!(cub.get(u64::MAX), None);
    }

    #[test]
    fn two_phase_consistent() {
        let data = dataset(50_000, 4);
        let rmi = Rmi::build(&data);
        for &(k, v) in data.iter().step_by(211) {
            let leaf = rmi.locate_leaf(k);
            // The routed leaf holds the key for training keys.
            assert_eq!(rmi.search_leaf(leaf, k), Some(v));
        }
    }

    #[test]
    fn size_is_small() {
        let data = dataset(100_000, 5);
        let rmi = Rmi::build(&data);
        // Index structure must be orders of magnitude below the data.
        assert!(rmi.index_size_bytes() * 100 < rmi.data_size_bytes());
    }
}
