//! # li-lipp — LIPP: Updatable Learned Index with Precise Positions
//! (Wu et al., VLDB'21)
//!
//! §V-B1 of the benchmarked paper points at LIPP as the design that takes
//! its advice — combine the asymmetric tree with an approximation that
//! *changes the stored data's distribution* — but laments that "since it
//! is not open source now, we cannot evaluate it". This crate implements
//! LIPP so the reproduction can answer that open question (see the
//! `lipp_vs_alex` harness rows and EXPERIMENTS.md).
//!
//! Core idea: every key sits **exactly at its model-predicted slot**. A
//! node is a linear model over a slot array whose entries are empty, a
//! single `(key, value)`, or a child node holding the keys that collided
//! on that slot. Lookups compute one prediction per level and never
//! search; the prediction *is* the position — hence "precise positions".
//!
//! Inserts place a key at its predicted slot; a collision with a stored
//! key spawns a child node holding both. Subtrees whose population has
//! outgrown their build size are rebuilt (LIPP's adjustment), keeping
//! depth logarithmic under churn.

use li_core::pieces::retrain::RetrainStats;
use li_core::traits::{BulkBuildIndex, DepthStats, Index, OrderedIndex, UpdatableIndex};
use li_core::{Key, KeyValue, LinearModel, Value};
use std::time::Instant;

/// Tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LippConfig {
    /// Slots per key at build time (gaps make collisions rare).
    pub slots_per_key: f64,
    /// Rebuild a subtree when its population exceeds this multiple of its
    /// build-time population.
    pub rebuild_factor: f64,
    /// Smallest subtree worth rebuilding.
    pub rebuild_min: usize,
}

impl Default for LippConfig {
    fn default() -> Self {
        LippConfig { slots_per_key: 2.0, rebuild_factor: 2.0, rebuild_min: 8 }
    }
}

enum Entry {
    Empty,
    Data(Key, Value),
    Child(Box<Node>),
}

struct Node {
    model: LinearModel,
    slots: Vec<Entry>,
    /// Live keys under this node (incl. children).
    size: usize,
    /// Live keys when the node was (re)built; drives the rebuild trigger.
    build_size: usize,
}

impl Node {
    #[inline]
    fn slot_of(&self, key: Key) -> usize {
        self.model.predict_clamped(key, self.slots.len())
    }
}

/// The LIPP index.
pub struct Lipp {
    root: Node,
    len: usize,
    config: LippConfig,
    stats: RetrainStats,
}

impl Lipp {
    pub fn new() -> Self {
        Self::with_config(LippConfig::default())
    }

    pub fn with_config(config: LippConfig) -> Self {
        Lipp {
            root: Self::build_node(&config, &[]),
            len: 0,
            config,
            stats: RetrainStats::default(),
        }
    }

    pub fn build_with(config: LippConfig, data: &[KeyValue]) -> Self {
        let root = Self::build_node(&config, data);
        Lipp { root, len: data.len(), config, stats: RetrainStats::default() }
    }

    /// Rebuild counters (LIPP's "adjustment" operations).
    pub fn stats(&self) -> RetrainStats {
        self.stats
    }

    /// Builds a node over sorted `data`; keys colliding on a slot recurse
    /// into child nodes.
    fn build_node(config: &LippConfig, data: &[KeyValue]) -> Node {
        let n = data.len();
        let cap = ((n as f64 * config.slots_per_key).ceil() as usize).max(8);
        if n == 0 {
            return Node {
                model: LinearModel::default(),
                slots: (0..cap).map(|_| Entry::Empty).collect(),
                size: 0,
                build_size: 0,
            };
        }
        let keys: Vec<Key> = data.iter().map(|kv| kv.0).collect();
        let mut model = LinearModel::fit_least_squares(&keys).scaled(cap as f64 / n as f64);
        // Guarantee progress for degenerate fits: if every key lands on one
        // slot, an exact two-point model through the extremes separates at
        // least the first and last key.
        if n > 1 {
            let s_first = model.predict_clamped(keys[0], cap);
            let s_last = model.predict_clamped(keys[n - 1], cap);
            if s_first == s_last {
                model = LinearModel::through(keys[0], 0.0, keys[n - 1], (cap - 1) as f64);
            }
        }

        let mut slots: Vec<Entry> = (0..cap).map(|_| Entry::Empty).collect();
        let mut i = 0usize;
        while i < n {
            let s = model.predict_clamped(keys[i], cap);
            let mut j = i + 1;
            while j < n && model.predict_clamped(keys[j], cap) == s {
                j += 1;
            }
            slots[s] = if j - i == 1 {
                Entry::Data(data[i].0, data[i].1)
            } else {
                Entry::Child(Box::new(Self::build_node(config, &data[i..j])))
            };
            i = j;
        }
        Node { model, slots, size: n, build_size: n }
    }

    /// Collects a subtree's pairs in ascending key order.
    fn collect(node: &Node, out: &mut Vec<KeyValue>) {
        for entry in &node.slots {
            match entry {
                Entry::Empty => {}
                Entry::Data(k, v) => out.push((*k, *v)),
                Entry::Child(c) => Self::collect(c, out),
            }
        }
    }

    fn get_rec(node: &Node, key: Key) -> Option<&Value> {
        let mut cur = node;
        loop {
            match &cur.slots[cur.slot_of(key)] {
                Entry::Empty => return None,
                Entry::Data(k, v) => return (*k == key).then_some(v),
                Entry::Child(c) => cur = c,
            }
        }
    }

    fn insert_rec(
        config: &LippConfig,
        node: &mut Node,
        key: Key,
        value: Value,
        stats: &mut RetrainStats,
    ) -> Option<Value> {
        // LIPP's adjustment: a subtree that has doubled since its build is
        // re-laid-out so precise placement (and depth) stays healthy.
        if node.size + 1
            > ((node.build_size.max(config.rebuild_min) as f64) * config.rebuild_factor) as usize
        {
            let t0 = Instant::now();
            let mut data = Vec::with_capacity(node.size);
            Self::collect(node, &mut data);
            *node = Self::build_node(config, &data);
            stats.record_retrain(t0.elapsed(), data.len() as u64);
        }

        let s = node.slot_of(key);
        match &mut node.slots[s] {
            Entry::Empty => {
                node.slots[s] = Entry::Data(key, value);
                node.size += 1;
                None
            }
            Entry::Data(k, v) => {
                if *k == key {
                    return Some(std::mem::replace(v, value));
                }
                // Collision: both keys move into a fresh child.
                let pair =
                    if *k < key { [(*k, *v), (key, value)] } else { [(key, value), (*k, *v)] };
                node.slots[s] = Entry::Child(Box::new(Self::build_node(config, &pair)));
                node.size += 1;
                None
            }
            Entry::Child(c) => {
                let old = Self::insert_rec(config, c, key, value, stats);
                if old.is_none() {
                    node.size += 1;
                }
                old
            }
        }
    }

    fn remove_rec(node: &mut Node, key: Key) -> Option<Value> {
        let s = node.slot_of(key);
        match &mut node.slots[s] {
            Entry::Empty => None,
            Entry::Data(k, v) => {
                if *k != key {
                    return None;
                }
                let old = *v;
                node.slots[s] = Entry::Empty;
                node.size -= 1;
                Some(old)
            }
            Entry::Child(c) => {
                let old = Self::remove_rec(c, key);
                if old.is_some() {
                    node.size -= 1;
                    // Collapse a child that shrank to one entry back into
                    // this slot.
                    if c.size == 1 {
                        let mut single = Vec::with_capacity(1);
                        Self::collect(c, &mut single);
                        node.slots[s] = Entry::Data(single[0].0, single[0].1);
                    } else if c.size == 0 {
                        node.slots[s] = Entry::Empty;
                    }
                }
                old
            }
        }
    }

    fn range_rec(node: &Node, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        // Precise placement is monotone, so only slots between the
        // predictions of lo and hi can hold keys in range.
        let s_lo = node.slot_of(lo);
        let s_hi = node.slot_of(hi);
        for entry in &node.slots[s_lo..=s_hi] {
            match entry {
                Entry::Empty => {}
                Entry::Data(k, v) => {
                    if *k >= lo && *k <= hi {
                        out.push((*k, *v));
                    }
                }
                Entry::Child(c) => Self::range_rec(c, lo, hi, out),
            }
        }
    }

    fn depth_rec(node: &Node, depth: usize, keys: &mut usize, sum: &mut f64, max: &mut usize) {
        *max = (*max).max(depth);
        for entry in &node.slots {
            match entry {
                Entry::Empty => {}
                Entry::Data(..) => {
                    *keys += 1;
                    *sum += depth as f64;
                }
                Entry::Child(c) => Self::depth_rec(c, depth + 1, keys, sum, max),
            }
        }
    }

    fn size_rec(node: &Node) -> usize {
        core::mem::size_of::<Node>()
            + node.slots.len() * core::mem::size_of::<Entry>()
            + node
                .slots
                .iter()
                .map(|e| match e {
                    Entry::Child(c) => Self::size_rec(c),
                    _ => 0,
                })
                .sum::<usize>()
    }

    /// Maximum entry depth (diagnostics).
    pub fn max_depth(&self) -> usize {
        let (mut keys, mut sum, mut max) = (0usize, 0.0f64, 0usize);
        Self::depth_rec(&self.root, 1, &mut keys, &mut sum, &mut max);
        max
    }
}

impl Default for Lipp {
    fn default() -> Self {
        Self::new()
    }
}

impl Index for Lipp {
    fn name(&self) -> &'static str {
        "LIPP"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, key: Key) -> Option<Value> {
        Self::get_rec(&self.root, key).copied()
    }

    fn index_size_bytes(&self) -> usize {
        // Keys/values live inside the structure itself; report everything
        // as structure (LIPP has no separate sorted array).
        Self::size_rec(&self.root)
    }

    fn data_size_bytes(&self) -> usize {
        0
    }
}

impl UpdatableIndex for Lipp {
    fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        self.stats.inserts += 1;
        let config = self.config;
        let mut stats = std::mem::take(&mut self.stats);
        let old = Self::insert_rec(&config, &mut self.root, key, value, &mut stats);
        self.stats = stats;
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn remove(&mut self, key: Key) -> Option<Value> {
        let old = Self::remove_rec(&mut self.root, key);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }
}

impl OrderedIndex for Lipp {
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        if lo > hi || self.len == 0 {
            return;
        }
        Self::range_rec(&self.root, lo, hi, out);
    }
}

impl BulkBuildIndex for Lipp {
    fn build(data: &[KeyValue]) -> Self {
        Self::build_with(LippConfig::default(), data)
    }
}

impl DepthStats for Lipp {
    fn avg_depth(&self) -> f64 {
        let (mut keys, mut sum, mut max) = (0usize, 0.0f64, 0usize);
        Self::depth_rec(&self.root, 1, &mut keys, &mut sum, &mut max);
        let _ = max;
        if keys == 0 {
            0.0
        } else {
            sum / keys as f64
        }
    }

    fn leaf_count(&self) -> usize {
        // LIPP has no leaf segments; count nodes instead.
        fn nodes(node: &Node) -> usize {
            1 + node
                .slots
                .iter()
                .map(|e| match e {
                    Entry::Child(c) => nodes(c),
                    _ => 0,
                })
                .sum::<usize>()
        }
        nodes(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    use std::collections::BTreeMap;

    fn dataset(n: usize, seed: u64) -> Vec<KeyValue> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keys: Vec<Key> = (0..n * 11 / 10 + 8).map(|_| rng.random()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.truncate(n);
        keys.into_iter().enumerate().map(|(i, k)| (k, i as u64)).collect()
    }

    #[test]
    fn build_and_get() {
        let data = dataset(100_000, 1);
        let lipp = Lipp::build(&data);
        assert_eq!(lipp.len(), data.len());
        for &(k, v) in data.iter().step_by(89) {
            assert_eq!(lipp.get(k), Some(v), "key {k}");
        }
        assert_eq!(lipp.get(0), data.iter().find(|kv| kv.0 == 0).map(|kv| kv.1));
    }

    #[test]
    fn misses_return_none() {
        let data: Vec<KeyValue> = (0..50_000u64).map(|i| (i * 4, i)).collect();
        let lipp = Lipp::build(&data);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30_000 {
            let k: Key = rng.random::<u64>() % 250_000;
            let expect = data.binary_search_by_key(&k, |kv| kv.0).ok().map(|i| data[i].1);
            assert_eq!(lipp.get(k), expect, "key {k}");
        }
    }

    #[test]
    fn insert_from_empty() {
        let mut lipp = Lipp::new();
        let mut model = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..30_000u64 {
            let k = rng.random_range(0..1_000_000u64);
            assert_eq!(lipp.insert(k, i), model.insert(k, i), "insert {k}");
        }
        assert_eq!(lipp.len(), model.len());
        for (&k, &v) in model.iter().step_by(73) {
            assert_eq!(lipp.get(k), Some(v));
        }
        assert!(lipp.stats().count > 0, "adjustments must have happened");
    }

    #[test]
    fn dense_sequential_inserts() {
        let mut lipp = Lipp::new();
        for k in 0..50_000u64 {
            lipp.insert(k, k * 2);
        }
        assert_eq!(lipp.len(), 50_000);
        for k in (0..50_000u64).step_by(487) {
            assert_eq!(lipp.get(k), Some(k * 2));
        }
        // Adjustments must keep depth shallow even under pure appends.
        assert!(lipp.max_depth() < 16, "depth {}", lipp.max_depth());
    }

    #[test]
    fn clustered_keys_recurse() {
        // Tight clusters force collision children.
        let mut keys: Vec<Key> = Vec::new();
        for c in 0..100u64 {
            let base = c * (1 << 40);
            keys.extend((0..100u64).map(|i| base + i));
        }
        let data: Vec<KeyValue> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let lipp = Lipp::build(&data);
        for &(k, v) in data.iter().step_by(97) {
            assert_eq!(lipp.get(k), Some(v));
        }
        assert!(lipp.max_depth() >= 2, "clusters should nest");
    }

    #[test]
    fn precise_positions_no_search() {
        // The defining property: a stored key is found exactly at its
        // prediction at some level — verified implicitly by get() which
        // never scans; this test just hammers it on adversarial data.
        let mut keys: Vec<Key> = (0..10_000u64).map(|i| i * i * 31 + 7).collect();
        keys.sort_unstable();
        keys.dedup();
        let data: Vec<KeyValue> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let lipp = Lipp::build(&data);
        for &(k, v) in &data {
            assert_eq!(lipp.get(k), Some(v));
        }
    }

    #[test]
    fn remove_and_collapse() {
        let data = dataset(10_000, 5);
        let mut lipp = Lipp::build(&data);
        let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
        let keys: Vec<Key> = model.keys().copied().collect();
        for &k in keys.iter().step_by(2) {
            assert_eq!(lipp.remove(k), model.remove(&k));
            assert_eq!(lipp.remove(k), None);
        }
        assert_eq!(lipp.len(), model.len());
        for (&k, &v) in model.iter().step_by(61) {
            assert_eq!(lipp.get(k), Some(v));
        }
    }

    #[test]
    fn range_matches_model() {
        let data = dataset(20_000, 6);
        let mut lipp = Lipp::build(&data);
        let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..5_000u64 {
            let k = rng.random();
            lipp.insert(k, i);
            model.insert(k, i);
        }
        for _ in 0..50 {
            let lo: Key = rng.random();
            let hi = lo.saturating_add(rng.random::<u64>() >> 4);
            let got = lipp.range_vec(lo, hi);
            let expect: Vec<KeyValue> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, expect, "range {lo}..={hi}");
        }
        let all = lipp.range_vec(0, u64::MAX);
        assert_eq!(all.len(), model.len());
    }

    #[test]
    fn empty_and_tiny() {
        let mut lipp = Lipp::new();
        assert!(lipp.is_empty());
        assert_eq!(lipp.get(1), None);
        assert_eq!(lipp.remove(1), None);
        lipp.insert(5, 50);
        assert_eq!(lipp.get(5), Some(50));
        assert_eq!(lipp.insert(5, 51), Some(50));
        assert_eq!(lipp.len(), 1);
        assert_eq!(lipp.range_vec(0, 10), vec![(5, 51)]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn matches_btreemap(
            seed in 0u64..500,
            ops in 200usize..800,
        ) {
            let data: Vec<KeyValue> = (0..300u64).map(|i| (i * 11, i)).collect();
            let mut lipp = Lipp::build(&data);
            let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
            let mut rng = StdRng::seed_from_u64(seed);
            for n in 0..ops as u64 {
                let k = rng.random_range(0..5_000u64);
                if rng.random_bool(0.7) {
                    proptest::prop_assert_eq!(lipp.insert(k, n), model.insert(k, n));
                } else {
                    proptest::prop_assert_eq!(lipp.remove(k), model.remove(&k));
                }
            }
            proptest::prop_assert_eq!(lipp.len(), model.len());
            let got = lipp.range_vec(0, u64::MAX);
            let expect: Vec<KeyValue> = model.iter().map(|(&k, &v)| (k, v)).collect();
            proptest::prop_assert_eq!(got, expect);
        }
    }
}
