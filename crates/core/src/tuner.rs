//! Telemetry-driven shard adaptation policy.
//!
//! The tuner is the *brain* of the self-tuning router and nothing else: a
//! pure decision function from per-shard counter deltas to at most a few
//! [`TunerAction`]s per epoch. It holds no locks, touches no index and
//! performs no I/O — `Sharded::run_adaptation` samples the always-on
//! per-cell counters, feeds them through [`Tuner::observe`], and executes
//! whatever comes back. Keeping policy separate from mechanism is what
//! makes the hysteresis rules unit-testable without threads.
//!
//! Why hysteresis: "Are Updatable Learned Indexes Ready?" (PAPERS.md)
//! shows the best index kind is regime-dependent — but regimes are noisy,
//! and a tuner that reacts to every epoch's mix would flap between kinds,
//! paying a background rebuild each time. Three rules prevent that:
//!
//! 1. **Min-dwell**: a cell must have been observed for
//!    [`TunerConfig::min_dwell_epochs`] epochs before it can be acted on.
//!    Every committed action replaces the cell (new id), so dwell
//!    automatically restarts after each structural change.
//! 2. **Cooldown**: after any action (committed or aborted), the tuner
//!    stays quiet for [`TunerConfig::cooldown_epochs`] epochs.
//! 3. **Evidence floors**: shards below [`TunerConfig::min_epoch_ops`]
//!    observed ops (or [`TunerConfig::min_swap_ops`] for kind swaps) are
//!    never judged — an idle shard's mix is noise, not signal.

use std::collections::HashMap;

/// Index into the router's registered kind table (`KindSpec` list).
pub type KindId = u16;

/// Thresholds and hysteresis knobs for the adaptation policy.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Epochs a cell must have been observed before it is actionable.
    pub min_dwell_epochs: u64,
    /// Quiet epochs after any decision (committed or aborted).
    pub cooldown_epochs: u64,
    /// Hard cap on decisions returned per epoch.
    pub max_actions_per_epoch: usize,
    /// A shard is only judged when it saw at least this many ops this epoch.
    pub min_epoch_ops: u64,
    /// Split when one shard's epoch ops exceed `split_skew × mean` (and the
    /// router can still grow).
    pub split_skew: f64,
    /// Merge two adjacent shards when *each* saw fewer than
    /// `merge_fraction × mean` ops this epoch.
    pub merge_fraction: f64,
    /// Never split a shard holding fewer keys than this.
    pub min_split_len: usize,
    /// Never merge when the combined shard would exceed this many keys.
    pub max_merge_len: usize,
    /// Router shard-count bounds the tuner respects.
    pub max_shards: usize,
    pub min_shards: usize,
    /// Write fraction (writes / ops) at or above which a shard wants the
    /// write-optimized kind.
    pub write_heavy_frac: f64,
    /// Write fraction at or below which a shard wants the read-optimized
    /// kind.
    pub read_mostly_frac: f64,
    /// Kind to swap to under a write-heavy mix (`None` disables the rule).
    pub write_heavy_kind: Option<KindId>,
    /// Kind to swap to under a read-mostly mix (`None` disables the rule).
    pub read_mostly_kind: Option<KindId>,
    /// Evidence floor for kind swaps (they cost a full shard rebuild).
    pub min_swap_ops: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            min_dwell_epochs: 3,
            cooldown_epochs: 2,
            max_actions_per_epoch: 1,
            min_epoch_ops: 256,
            split_skew: 2.0,
            merge_fraction: 0.10,
            min_split_len: 512,
            max_merge_len: 1 << 22,
            max_shards: 4096,
            min_shards: 1,
            write_heavy_frac: 0.70,
            read_mostly_frac: 0.30,
            write_heavy_kind: None,
            read_mostly_kind: None,
            min_swap_ops: 512,
        }
    }
}

/// One epoch's view of one shard cell: cumulative counters sampled from
/// the router (the tuner keeps last-epoch baselines and diffs them).
#[derive(Debug, Clone, Copy)]
pub struct ShardObs {
    /// Stable cell identity — survives epochs, changes on every
    /// split/merge/swap (which is what restarts the dwell clock).
    pub cell: u64,
    /// Position in the boundary table *this epoch* (actions address
    /// positions; they are validated against the live table at commit).
    pub position: usize,
    pub kind: KindId,
    /// Live keys in the shard.
    pub len: usize,
    /// Cumulative reads routed to this cell.
    pub reads: u64,
    /// Cumulative writes routed to this cell.
    pub writes: u64,
    /// Cumulative nanoseconds writers spent blocked on this cell's lock.
    pub lock_wait_ns: u64,
    /// Retrain work currently parked on the shard's index.
    pub pending_retrains: usize,
}

/// A structural change the router should attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunerAction {
    /// Cut shard `shard` at its median key into two cells.
    Split { shard: usize },
    /// Combine shards `left` and `left + 1` into one cell.
    Merge { left: usize },
    /// Rebuild shard `shard` under registered kind `to`.
    Swap { shard: usize, to: KindId },
}

/// Per-cell history the hysteresis rules need.
#[derive(Debug, Clone, Copy)]
struct CellHist {
    born_epoch: u64,
    reads: u64,
    writes: u64,
}

/// The adaptation policy state machine. One per router, behind a mutex;
/// [`Tuner::observe`] is called once per maintenance epoch.
#[derive(Debug)]
pub struct Tuner {
    cfg: TunerConfig,
    epoch: u64,
    /// No decisions until this epoch (cooldown).
    quiet_until: u64,
    seen: HashMap<u64, CellHist>,
}

impl Tuner {
    pub fn new(cfg: TunerConfig) -> Self {
        Tuner { cfg, epoch: 0, quiet_until: 0, seen: HashMap::new() }
    }

    pub fn config(&self) -> &TunerConfig {
        &self.cfg
    }

    /// Epochs observed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Charges the cooldown without an action having committed — the
    /// router calls this when a cutover aborts (e.g. side-buffer
    /// overflow), so the tuner does not hammer a shard that is too hot
    /// to rebuild right now.
    pub fn penalize(&mut self) {
        self.quiet_until = self.epoch + self.cfg.cooldown_epochs;
    }

    /// Feeds one epoch of per-cell counters; returns the actions to
    /// attempt this epoch (possibly none), already hysteresis-filtered.
    pub fn observe(&mut self, obs: &[ShardObs]) -> Vec<TunerAction> {
        self.epoch += 1;
        let epoch = self.epoch;

        // Per-cell deltas vs the stored baselines; new cells start their
        // dwell clock now.
        let mut delta: Vec<(usize, u64, u64)> = Vec::with_capacity(obs.len());
        for (i, o) in obs.iter().enumerate() {
            let h = self.seen.entry(o.cell).or_insert(CellHist {
                born_epoch: epoch,
                reads: o.reads,
                writes: o.writes,
            });
            let dr = o.reads.saturating_sub(h.reads);
            let dw = o.writes.saturating_sub(h.writes);
            h.reads = o.reads;
            h.writes = o.writes;
            delta.push((i, dr, dw));
        }
        // Forget cells that left the table (split/merge/swap replaced them).
        let live: std::collections::HashSet<u64> = obs.iter().map(|o| o.cell).collect();
        self.seen.retain(|id, _| live.contains(id));

        if epoch < self.quiet_until || obs.is_empty() {
            return Vec::new();
        }

        let dwell_ok = |o: &ShardObs| {
            self.seen
                .get(&o.cell)
                .is_some_and(|h| epoch.saturating_sub(h.born_epoch) >= self.cfg.min_dwell_epochs)
        };

        let total_ops: u64 = delta.iter().map(|&(_, r, w)| r + w).sum();
        #[allow(clippy::cast_precision_loss)] // op counts are far below 2^52
        let mean_ops = total_ops as f64 / obs.len() as f64;

        let mut actions: Vec<TunerAction> = Vec::new();
        let push = |a: TunerAction, actions: &mut Vec<TunerAction>| {
            if actions.len() < self.cfg.max_actions_per_epoch {
                actions.push(a);
            }
        };

        // Rule 1 — kind swap: the mix says this shard is running the wrong
        // index. Checked first because a mismatched kind hurts every op,
        // while skew only hurts the tail.
        for (i, dr, dw) in delta.iter().copied() {
            let o = &obs[i];
            let ops = dr + dw;
            if ops < self.cfg.min_swap_ops || !dwell_ok(o) {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let write_frac = dw as f64 / ops as f64;
            let want = if write_frac >= self.cfg.write_heavy_frac {
                self.cfg.write_heavy_kind
            } else if write_frac <= self.cfg.read_mostly_frac {
                self.cfg.read_mostly_kind
            } else {
                None
            };
            if let Some(to) = want {
                if to != o.kind {
                    push(TunerAction::Swap { shard: o.position, to }, &mut actions);
                }
            }
        }

        // Rule 2 — split: one shard absorbs a disproportionate share of
        // the traffic (migrating hotspot) and is large enough to cut.
        if obs.len() < self.cfg.max_shards {
            if let Some((i, _, _)) = delta
                .iter()
                .copied()
                .filter(|&(i, r, w)| {
                    let o = &obs[i];
                    r + w >= self.cfg.min_epoch_ops
                        && o.len >= self.cfg.min_split_len
                        && dwell_ok(o)
                })
                .max_by_key(|&(_, r, w)| r + w)
            {
                let (_, dr, dw) = delta[i];
                #[allow(clippy::cast_precision_loss)]
                let ops = (dr + dw) as f64;
                if obs.len() > 1 && ops > self.cfg.split_skew * mean_ops {
                    push(TunerAction::Split { shard: obs[i].position }, &mut actions);
                }
            }
        }

        // Rule 3 — merge: two adjacent cold shards waste boundary-table
        // and lock granularity; fold them. Requires both cold and both
        // past their dwell so a freshly-split pair is not re-merged.
        if obs.len() > self.cfg.min_shards && obs.len() >= 2 && total_ops >= self.cfg.min_epoch_ops
        {
            let cold = self.cfg.merge_fraction * mean_ops;
            for w in delta.windows(2) {
                let (i, lr, lw) = w[0];
                let (j, rr, rw) = w[1];
                let (l, r) = (&obs[i], &obs[j]);
                #[allow(clippy::cast_precision_loss)]
                let (lops, rops) = ((lr + lw) as f64, (rr + rw) as f64);
                if lops < cold
                    && rops < cold
                    && l.len + r.len <= self.cfg.max_merge_len
                    && dwell_ok(l)
                    && dwell_ok(r)
                    && r.position == l.position + 1
                {
                    push(TunerAction::Merge { left: l.position }, &mut actions);
                    break;
                }
            }
        }

        if !actions.is_empty() {
            self.quiet_until = epoch + self.cfg.cooldown_epochs;
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(position: usize, cell: u64, reads: u64, writes: u64) -> ShardObs {
        ShardObs {
            cell,
            position,
            kind: 0,
            len: 10_000,
            reads,
            writes,
            lock_wait_ns: 0,
            pending_retrains: 0,
        }
    }

    fn cfg() -> TunerConfig {
        TunerConfig {
            min_dwell_epochs: 2,
            cooldown_epochs: 2,
            min_epoch_ops: 100,
            min_swap_ops: 100,
            write_heavy_kind: Some(1),
            read_mostly_kind: Some(2),
            min_split_len: 100,
            ..TunerConfig::default()
        }
    }

    /// Drives `epochs` identical epochs of cumulative counters and
    /// returns every action emitted.
    fn drive(t: &mut Tuner, per_epoch: &[(u64, u64)], epochs: u64) -> Vec<TunerAction> {
        let mut out = Vec::new();
        for e in 1..=epochs {
            let frame: Vec<ShardObs> = per_epoch
                .iter()
                .enumerate()
                .map(|(p, &(r, w))| obs(p, p as u64, r * e, w * e))
                .collect();
            out.extend(t.observe(&frame));
        }
        out
    }

    #[test]
    fn quiet_workload_yields_no_actions() {
        let mut t = Tuner::new(cfg());
        let acts = drive(&mut t, &[(500, 500), (500, 500), (500, 500)], 10);
        assert!(acts.is_empty(), "balanced mixed load must not trigger: {acts:?}");
    }

    #[test]
    fn min_dwell_delays_the_first_action() {
        let mut t = Tuner::new(cfg());
        // Write-heavy shard 0 from the start; dwell is 2 epochs.
        let a1 = t.observe(&[obs(0, 0, 10, 990)]);
        assert!(a1.is_empty(), "epoch 1 is inside the dwell window");
        let a2 = t.observe(&[obs(0, 0, 20, 1980)]);
        assert!(a2.is_empty(), "epoch 2 is the first eligible epoch only if dwell elapsed");
        let a3 = t.observe(&[obs(0, 0, 30, 2970)]);
        assert_eq!(a3, vec![TunerAction::Swap { shard: 0, to: 1 }]);
    }

    #[test]
    fn cooldown_spaces_actions_apart() {
        let mut t = Tuner::new(cfg());
        let acts = drive(&mut t, &[(10, 990)], 8);
        // Dwell delays the first action; cooldown (2) then spaces the rest:
        // at most one action per 2 epochs once eligible.
        assert!(!acts.is_empty());
        assert!(acts.len() <= 3, "cooldown must space actions: {acts:?}");
        assert!(acts.iter().all(|a| *a == TunerAction::Swap { shard: 0, to: 1 }));
    }

    #[test]
    fn swap_targets_follow_the_mix() {
        let mut t = Tuner::new(cfg());
        let acts = drive(&mut t, &[(990, 10)], 4);
        assert_eq!(acts.first(), Some(&TunerAction::Swap { shard: 0, to: 2 }));
        // A shard already on the right kind is left alone.
        let mut t = Tuner::new(cfg());
        let mut frame = obs(0, 7, 0, 0);
        frame.kind = 2;
        for e in 1..=6 {
            frame.reads = 990 * e;
            frame.writes = 10 * e;
            assert!(t.observe(&[frame]).is_empty(), "epoch {e}: no self-swap");
        }
    }

    #[test]
    fn skewed_hot_shard_splits_and_cold_pair_merges() {
        let mut t = Tuner::new(cfg());
        let acts = drive(&mut t, &[(4000, 4000), (50, 50), (40, 40), (3000, 3000)], 3);
        assert_eq!(acts.first(), Some(&TunerAction::Split { shard: 0 }));

        let mut t = Tuner::new(cfg());
        // Balanced-mix shards (no swap rule) with equal warm ends (below
        // the split-skew threshold) and a nearly idle adjacent pair.
        let acts = drive(&mut t, &[(500, 500), (2, 2), (3, 3), (500, 500)], 3);
        assert_eq!(acts.first(), Some(&TunerAction::Merge { left: 1 }));
    }

    #[test]
    fn evidence_floor_ignores_idle_shards() {
        let mut t = Tuner::new(cfg());
        // Write-heavy mix but only a handful of ops per epoch.
        let acts = drive(&mut t, &[(1, 20)], 10);
        assert!(acts.is_empty(), "below min_swap_ops nothing fires: {acts:?}");
    }

    #[test]
    fn penalize_recharges_cooldown_after_aborts() {
        let mut t = Tuner::new(cfg());
        let first = drive(&mut t, &[(10, 990)], 3);
        assert!(!first.is_empty());
        // The router reports the cutover aborted; the next epochs stay
        // quiet for a full cooldown again.
        t.penalize();
        let a = t.observe(&[obs(0, 0, 40, 3960)]);
        assert!(a.is_empty(), "penalized epoch must stay quiet");
    }

    #[test]
    fn replaced_cells_restart_their_dwell_clock() {
        let mut t = Tuner::new(cfg());
        let acts = drive(&mut t, &[(10, 990)], 3);
        assert!(!acts.is_empty());
        // Same position, new cell id (as after a committed swap): the new
        // cell must dwell before being acted on again, even after the
        // cooldown expires.
        let mut out = Vec::new();
        for e in 1..=2u64 {
            out.extend(t.observe(&[obs(0, 99, 10 * e, 990 * e)]));
        }
        assert!(out.is_empty(), "fresh cell acted on inside dwell: {out:?}");
    }
}
