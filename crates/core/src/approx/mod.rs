//! Approximation-CDF algorithms (§IV-A of the paper).
//!
//! All four algorithms evaluated by the paper are implemented from scratch:
//!
//! | Algorithm | Paper user | Module | Max-error guarantee |
//! |---|---|---|---|
//! | LSA (least squares, fixed segments) | XIndex | [`lsa`] | no |
//! | Opt-PLA (streaming optimal PLA) | PGM-Index | [`optpla`] | yes |
//! | FSW greedy | FITing-tree | [`fsw`] | yes |
//! | LSA-gap (model-based gapped layout) | ALEX | [`lsa_gap`] | no |
//!
//! Every algorithm produces [`Segment`]s whose models predict **global**
//! positions in the input array, plus a *measured* max error computed with
//! the exact same floating-point evaluation the query path uses — so
//! bounded search windows are always correct even at 64-bit key magnitudes
//! where `f64` rounding could otherwise exceed the theoretical ε.

pub mod fsw;
pub mod lsa;
pub mod lsa_gap;
pub mod optpla;

use crate::model::LinearModel;
use crate::types::Key;

/// One piecewise-linear segment over a sorted key array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First key covered by this segment.
    pub first_key: Key,
    /// Index of the first covered element in the input array.
    pub start: usize,
    /// Number of covered elements.
    pub len: usize,
    /// Model predicting global positions for keys in this segment.
    pub model: LinearModel,
    /// Measured maximum absolute prediction error (ceil), valid for keys in
    /// `[start, start+len)`.
    pub max_error: u64,
}

impl Segment {
    /// Measures and stores the true max error of `model` over the covered
    /// keys. Called by every segmentation algorithm before returning.
    #[allow(clippy::needless_range_loop)] // position i is the model target
    pub(crate) fn finish(mut self, keys: &[Key]) -> Self {
        let mut max = 0.0f64;
        for i in self.start..self.start + self.len {
            let e = (self.model.predict_f(keys[i]) - i as f64).abs();
            if e > max {
                max = e;
            }
        }
        self.max_error = max.ceil() as u64;
        self
    }
}

/// Algorithm selector used by benchmarks and the composable
/// [`crate::pieces::assembled::PiecewiseIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApproxAlgorithm {
    /// Least squares over fixed-size segments of `seg_size` keys.
    Lsa { seg_size: usize },
    /// Streaming optimal PLA with max error `epsilon`.
    OptPla { epsilon: u64 },
    /// Greedy feasible-space-window with max error `epsilon`.
    Fsw { epsilon: u64 },
}

impl ApproxAlgorithm {
    /// Runs the selected algorithm over a sorted key array.
    pub fn segment(&self, keys: &[Key]) -> Vec<Segment> {
        match *self {
            ApproxAlgorithm::Lsa { seg_size } => lsa::segment_lsa(keys, seg_size),
            ApproxAlgorithm::OptPla { epsilon } => optpla::segment_opt_pla(keys, epsilon),
            ApproxAlgorithm::Fsw { epsilon } => fsw::segment_fsw(keys, epsilon),
        }
    }

    /// Whether the algorithm guarantees a maximum error a priori
    /// (Table I's "Error" column).
    pub fn bounded(&self) -> bool {
        matches!(self, ApproxAlgorithm::OptPla { .. } | ApproxAlgorithm::Fsw { .. })
    }

    pub fn name(&self) -> &'static str {
        match self {
            ApproxAlgorithm::Lsa { .. } => "LSA",
            ApproxAlgorithm::OptPla { .. } => "Opt-PLA",
            ApproxAlgorithm::Fsw { .. } => "FSW",
        }
    }
}

/// Validates that `segments` tile `keys` exactly: contiguous, complete and
/// in order. Used by tests and debug assertions.
pub fn validate_segmentation(keys: &[Key], segments: &[Segment]) -> bool {
    let mut next = 0usize;
    for s in segments {
        if s.start != next || s.len == 0 {
            return false;
        }
        if keys[s.start] != s.first_key {
            return false;
        }
        next += s.len;
    }
    next == keys.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_dispatch() {
        let keys: Vec<Key> = (0..10_000u64).map(|i| i * 3 + 7).collect();
        for algo in [
            ApproxAlgorithm::Lsa { seg_size: 256 },
            ApproxAlgorithm::OptPla { epsilon: 16 },
            ApproxAlgorithm::Fsw { epsilon: 16 },
        ] {
            let segs = algo.segment(&keys);
            assert!(validate_segmentation(&keys, &segs), "{}", algo.name());
            assert!(!segs.is_empty());
        }
    }

    #[test]
    fn boundedness_flags() {
        assert!(!ApproxAlgorithm::Lsa { seg_size: 64 }.bounded());
        assert!(ApproxAlgorithm::OptPla { epsilon: 8 }.bounded());
        assert!(ApproxAlgorithm::Fsw { epsilon: 8 }.bounded());
    }
}
