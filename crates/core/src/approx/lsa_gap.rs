//! LSA-gap: ALEX's model-based gapped layout (§IV-A (iii)).
//!
//! The key insight the paper highlights as *the* crucial learned-index
//! design idea: instead of passively approximating the CDF, **change the
//! stored data's distribution** so it becomes easy to approximate. A least
//! squares model is fitted, scaled by `1 / density` so the same keys spread
//! over a larger array, and every key is placed at (or directly after) its
//! own predicted slot. The result is a layout where the model's prediction
//! is almost always exact — simultaneously achieving low error *and* few
//! segments, the conflict the other algorithms cannot resolve (§IV-A).

use crate::model::LinearModel;
use crate::types::{Key, KeyValue, Value};

/// A gapped array layout for one segment of keys.
#[derive(Debug, Clone)]
pub struct GappedLayout {
    /// Slot array; `None` is a gap.
    pub slots: Vec<Option<KeyValue>>,
    /// Model mapping a key to its slot (not to a dense position).
    pub model: LinearModel,
    /// Number of occupied slots.
    pub occupied: usize,
    /// Measured mean |predicted slot − actual slot| at build time.
    pub avg_error: f64,
    /// Measured max |predicted slot − actual slot| at build time.
    pub max_error: u64,
}

impl GappedLayout {
    /// Builds a gapped layout over sorted `data`, targeting `density`
    /// occupancy in `(0, 1]`. ALEX's default initial density is ~0.7.
    pub fn build(data: &[KeyValue], density: f64) -> Self {
        assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
        let cap = ((data.len() as f64 / density).ceil() as usize).max(data.len());
        Self::build_with_capacity(data, cap)
    }

    /// Builds a gapped layout with an exact slot count (used by
    /// fixed-size persistent nodes).
    pub fn build_with_capacity(data: &[KeyValue], cap: usize) -> Self {
        assert!(cap >= data.len(), "capacity below population");
        let n = data.len();
        if n == 0 {
            return GappedLayout {
                slots: vec![None; cap],
                model: LinearModel::default(),
                occupied: 0,
                avg_error: 0.0,
                max_error: 0,
            };
        }
        // Fit on dense positions, then scale out to the gapped capacity —
        // exactly ALEX's "enlarge slope and intercept by a factor" trick.
        let keys: Vec<Key> = data.iter().map(|kv| kv.0).collect();
        let dense = LinearModel::fit_least_squares(&keys);
        let factor = cap as f64 / n as f64;
        let scaled = dense.scaled(factor);

        // Place once with the scaled model, refit the model on the actual
        // slots, and place again: one fixed-point round absorbs the
        // systematic drift that "placed at next free slot" runs introduce
        // (cuts placement error roughly in half on hard CDFs; further
        // rounds do not converge further).
        let first_pass = Self::place(&keys, &scaled, cap);
        let refit = LinearModel::fit_least_squares_positions(&keys, |i| first_pass[i] as f64);
        let placements = Self::place(&keys, &refit, cap);

        let mut slots: Vec<Option<KeyValue>> = vec![None; cap];
        let mut err_sum = 0.0f64;
        let mut err_max = 0.0f64;
        for (j, &(k, v)) in data.iter().enumerate() {
            let slot = placements[j];
            debug_assert!(slots[slot].is_none());
            slots[slot] = Some((k, v));
            let e = (refit.predict_f(k) - slot as f64).abs();
            err_sum += e;
            if e > err_max {
                err_max = e;
            }
        }
        GappedLayout {
            slots,
            model: refit,
            occupied: n,
            avg_error: err_sum / n as f64,
            max_error: err_max.ceil() as u64,
        }
    }

    /// Monotone model-based placement of `keys` into `cap` slots: each key
    /// lands on its predicted slot, or the next free slot, while always
    /// leaving room for the keys still to come.
    fn place(keys: &[Key], model: &LinearModel, cap: usize) -> Vec<usize> {
        let n = keys.len();
        let mut out = Vec::with_capacity(n);
        let mut next_free = 0usize;
        for (j, &k) in keys.iter().enumerate() {
            let predicted = model.predict_clamped(k, cap);
            let upper = cap - (n - j);
            let slot = predicted.max(next_free).min(upper);
            out.push(slot);
            next_free = slot + 1;
        }
        out
    }

    /// Total number of slots (occupied + gaps).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupancy fraction.
    pub fn density(&self) -> f64 {
        if self.slots.is_empty() {
            0.0
        } else {
            self.occupied as f64 / self.slots.len() as f64
        }
    }

    /// Point lookup: predict, then exponential-search over occupied slots.
    pub fn get(&self, key: Key) -> Option<Value> {
        let cap = self.slots.len();
        if cap == 0 {
            return None;
        }
        let mut i = self.model.predict_clamped(key, cap);
        // Walk to the nearest occupied slot at or after the prediction,
        // then gallop in the right direction.
        match self.slot_key(i) {
            Some(k) if k == key => self.slots[i].map(|kv| kv.1),
            Some(k) if k < key => {
                // scan right
                i += 1;
                while i < cap {
                    if let Some((k2, v2)) = self.slots[i] {
                        if k2 == key {
                            return Some(v2);
                        }
                        if k2 > key {
                            return None;
                        }
                    }
                    i += 1;
                }
                None
            }
            _ => {
                // empty or key greater: scan left
                while i > 0 {
                    i -= 1;
                    if let Some((k2, v2)) = self.slots[i] {
                        if k2 == key {
                            return Some(v2);
                        }
                        if k2 < key {
                            return None;
                        }
                    }
                }
                None
            }
        }
    }

    #[inline]
    fn slot_key(&self, i: usize) -> Option<Key> {
        self.slots.get(i).and_then(|s| s.map(|kv| kv.0))
    }

    /// Iterates occupied slots in key order.
    pub fn iter(&self) -> impl Iterator<Item = KeyValue> + '_ {
        self.slots.iter().filter_map(|s| *s)
    }

    /// Checks the sortedness invariant of the occupied slots.
    pub fn is_sorted(&self) -> bool {
        let mut last: Option<Key> = None;
        for (k, _) in self.iter() {
            if let Some(l) = last {
                if k <= l {
                    return false;
                }
            }
            last = Some(k);
        }
        true
    }
}

/// Quality summary of LSA-gap over fixed-size segments, comparable with the
/// other algorithms' [`crate::cdf::SegmentationQuality`] for Fig. 17 (a)/(b).
pub fn lsa_gap_quality(
    keys: &[Key],
    seg_size: usize,
    density: f64,
) -> crate::cdf::SegmentationQuality {
    assert!(seg_size >= 1);
    let n = keys.len();
    let mut segments = 0usize;
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    let mut start = 0usize;
    while start < n {
        let len = seg_size.min(n - start);
        let data: Vec<KeyValue> = keys[start..start + len].iter().map(|&k| (k, 0)).collect();
        let layout = GappedLayout::build(&data, density);
        segments += 1;
        sum += layout.avg_error * len as f64;
        max = max.max(layout.max_error as f64);
        start += len;
    }
    crate::cdf::SegmentationQuality {
        segments,
        avg_error: if n == 0 { 0.0 } else { sum / n as f64 },
        max_error: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: u64, f: impl Fn(u64) -> u64) -> Vec<KeyValue> {
        (0..n).map(|i| (f(i), i)).collect()
    }

    #[test]
    fn build_preserves_order_and_membership() {
        let d = data(10_000, |i| i * 37 + 11);
        let g = GappedLayout::build(&d, 0.7);
        assert!(g.is_sorted());
        assert_eq!(g.occupied, d.len());
        assert!(g.capacity() >= d.len());
        for &(k, v) in &d {
            assert_eq!(g.get(k), Some(v), "key {k}");
        }
        assert_eq!(g.get(5), None);
    }

    #[test]
    fn empty_layout() {
        let g = GappedLayout::build(&[], 0.7);
        assert_eq!(g.capacity(), 0);
        assert_eq!(g.get(1), None);
        assert!(g.is_sorted());
    }

    #[test]
    fn density_one_has_no_gaps() {
        let d = data(1_000, |i| i * 3);
        let g = GappedLayout::build(&d, 1.0);
        assert_eq!(g.capacity(), d.len());
        assert!((g.density() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gaps_shrink_error_versus_dense_lsa() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let mut keys: Vec<Key> = (0..20_000).map(|_| rng.random::<u64>() >> 16).collect();
        keys.sort_unstable();
        keys.dedup();
        let lsa = crate::cdf::segmentation_quality(
            &keys,
            crate::approx::lsa::segment_lsa(&keys, 1024).iter().map(|s| (s.start, s.len, s.model)),
        );
        let gap = lsa_gap_quality(&keys, 1024, 0.7);
        // The paper's headline: gaps lower the error dramatically for the
        // same number of segments.
        assert_eq!(gap.segments, lsa.segments);
        assert!(
            gap.avg_error < lsa.avg_error / 2.0,
            "gap {} vs lsa {}",
            gap.avg_error,
            lsa.avg_error
        );
    }

    #[test]
    fn skewed_data_still_correct() {
        // Heavy skew: most keys tiny, a few enormous.
        let mut d: Vec<KeyValue> = (0..5_000u64).map(|i| (i, i)).collect();
        d.extend((0..50u64).map(|i| (u64::MAX - 1000 + i, 10_000 + i)));
        let g = GappedLayout::build(&d, 0.5);
        assert!(g.is_sorted());
        for &(k, v) in &d {
            assert_eq!(g.get(k), Some(v));
        }
    }

    #[test]
    fn lookup_misses_between_keys() {
        let d = data(100, |i| i * 10);
        let g = GappedLayout::build(&d, 0.6);
        for probe in [1u64, 5, 11, 995, 1_000_000] {
            if probe % 10 != 0 || probe >= 1000 {
                assert_eq!(g.get(probe), None, "probe {probe}");
            }
        }
    }
}
