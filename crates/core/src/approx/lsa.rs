//! Fixed-segment least squares approximation ("LSA", §IV-A (i)), the
//! algorithm used by XIndex: split the sorted array into fixed-size chunks
//! and fit each by ordinary least squares. Simple and fast to build, but
//! with no maximum-error guarantee — the source of XIndex's and (plain)
//! LSA's tail-latency problems in Fig. 10.

use super::Segment;
use crate::model::LinearModel;
use crate::types::Key;

/// Splits `keys` into chunks of `seg_size` and fits each by least squares.
pub fn segment_lsa(keys: &[Key], seg_size: usize) -> Vec<Segment> {
    assert!(seg_size >= 1, "LSA segment size must be >= 1");
    let n = keys.len();
    let mut out = Vec::with_capacity(n.div_ceil(seg_size.max(1)));
    let mut start = 0usize;
    while start < n {
        let len = seg_size.min(n - start);
        let chunk = &keys[start..start + len];
        // Fit local positions then shift to global.
        let local = LinearModel::fit_least_squares(chunk);
        let model = local.shifted(start as f64);
        out.push(Segment { first_key: keys[start], start, len, model, max_error: 0 }.finish(keys));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::validate_segmentation;

    #[test]
    fn covers_input() {
        let keys: Vec<Key> = (0..10_000u64).map(|i| i * i).collect();
        let segs = segment_lsa(&keys, 256);
        assert!(validate_segmentation(&keys, &segs));
        assert_eq!(segs.len(), 10_000usize.div_ceil(256));
    }

    #[test]
    fn ragged_tail() {
        let keys: Vec<Key> = (0..1_000u64).collect();
        let segs = segment_lsa(&keys, 300);
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[3].len, 100);
        assert!(validate_segmentation(&keys, &segs));
    }

    #[test]
    fn empty_and_tiny() {
        assert!(segment_lsa(&[], 10).is_empty());
        let segs = segment_lsa(&[5], 10);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].max_error, 0);
    }

    #[test]
    fn linear_data_zero_error() {
        let keys: Vec<Key> = (0..10_000u64).map(|i| i * 3).collect();
        for s in segment_lsa(&keys, 500) {
            assert_eq!(s.max_error, 0, "segment at {}", s.start);
        }
    }

    #[test]
    fn smaller_segments_mean_lower_error() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let mut keys: Vec<Key> = (0..40_000).map(|_| rng.random::<u64>() >> 16).collect();
        keys.sort_unstable();
        keys.dedup();
        let avg = |segs: &[Segment]| {
            let q = crate::cdf::segmentation_quality(
                &keys,
                segs.iter().map(|s| (s.start, s.len, s.model)),
            );
            q.avg_error
        };
        let coarse = segment_lsa(&keys, 4096);
        let fine = segment_lsa(&keys, 64);
        assert!(avg(&fine) < avg(&coarse));
    }
}
