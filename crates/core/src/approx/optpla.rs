//! Streaming optimal piecewise linear approximation ("Opt-PLA", §IV-A (ii)).
//!
//! This is the O'Rourke (1981) algorithm as used by PGM-Index: it maintains
//! the feasible region of lines that stay within ±ε of every point seen so
//! far, represented by upper/lower convex hulls and the two extreme-slope
//! lines (a shrinking "rectangle" in dual space). A segment is closed only
//! when the region becomes empty, which provably yields the minimum number
//! of maximal segments and runs in O(n) total time.
//!
//! Feasibility tests use exact `i128` cross products; only the final
//! reported line is floating point (and each segment's true max error is
//! re-measured afterwards, see [`crate::approx::Segment::finish`]).

use super::Segment;
use crate::model::LinearModel;
use crate::types::Key;

/// A point in (key, position±ε) space; `x` is stored relative to the first
/// key of the current segment to keep cross products small and the final
/// floating-point line well conditioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pt {
    x: i128,
    y: i128,
}

impl Pt {
    #[inline]
    fn sub(self, o: Pt) -> Pt {
        Pt { x: self.x - o.x, y: self.y - o.y }
    }

    /// Cross product (self - o) × (b - o); sign gives turn direction.
    #[inline]
    fn cross(o: Pt, a: Pt, b: Pt) -> i128 {
        let u = a.sub(o);
        let v = b.sub(o);
        u.x * v.y - u.y * v.x
    }
}

/// Compares slope(a) < slope(b) by cross-multiplication, exactly as PGM's
/// `Slope::operator<`. Valid whenever both vectors have the same-signed
/// `x`; for a vertical vector (`x == 0`) the comparison degenerates to the
/// projective "±∞ depending on the sign of `y`" semantics the algorithm
/// relies on (a vertical min-slope line has `y < 0` and acts as −∞; a
/// vertical max-slope line has `y > 0` and acts as +∞).
#[inline]
fn slope_lt(a: Pt, b: Pt) -> bool {
    a.y * b.x < b.y * a.x
}

#[inline]
fn slope_gt(a: Pt, b: Pt) -> bool {
    a.y * b.x > b.y * a.x
}

/// Incremental optimal-PLA state for one segment.
///
/// Usage mirrors PGM's `OptimalPiecewiseLinearModel`: call
/// [`OptimalPla::add_point`] with ascending keys; when it returns `false`
/// the point did not fit, so extract the finished line with
/// [`OptimalPla::segment_line`] and start a new segment by calling
/// `add_point` again with the same point.
pub struct OptimalPla {
    epsilon: i128,
    /// x-origin of the current segment (the segment's first key).
    origin_x: u64,
    last_x: Option<u64>,
    points_in_hull: usize,
    /// rectangle[0], rectangle[1]: upper/lower corner at segment start;
    /// rectangle[2], rectangle[3]: corners defining min/max slopes.
    rect: [Pt; 4],
    upper: Vec<Pt>,
    lower: Vec<Pt>,
    upper_start: usize,
    lower_start: usize,
}

impl OptimalPla {
    /// `epsilon` is the maximum allowed absolute position error (≥ 1).
    pub fn new(epsilon: u64) -> Self {
        assert!(epsilon >= 1, "Opt-PLA requires epsilon >= 1");
        OptimalPla {
            epsilon: epsilon as i128,
            origin_x: 0,
            last_x: None,
            points_in_hull: 0,
            rect: [Pt { x: 0, y: 0 }; 4],
            upper: Vec::with_capacity(64),
            lower: Vec::with_capacity(64),
            upper_start: 0,
            lower_start: 0,
        }
    }

    /// Number of points accepted into the current segment.
    pub fn points_in_hull(&self) -> usize {
        self.points_in_hull
    }

    /// Tries to extend the current segment with `(key, position)`.
    /// Keys must be passed in strictly ascending order. Returns `false`
    /// when the point cannot be covered with error ≤ ε — the caller must
    /// then materialise the segment and re-add the point.
    pub fn add_point(&mut self, key: Key, position: u64) -> bool {
        if self.points_in_hull > 0 {
            if let Some(last) = self.last_x {
                assert!(key > last, "Opt-PLA input must be strictly ascending");
            }
        }

        if self.points_in_hull == 0 {
            self.origin_x = key;
            self.last_x = Some(key);
            let y = position as i128;
            let p1 = Pt { x: 0, y: y + self.epsilon };
            let p2 = Pt { x: 0, y: y - self.epsilon };
            self.rect[0] = p1;
            self.rect[1] = p2;
            self.upper.clear();
            self.lower.clear();
            self.upper.push(p1);
            self.lower.push(p2);
            self.upper_start = 0;
            self.lower_start = 0;
            self.points_in_hull = 1;
            return true;
        }

        self.last_x = Some(key);
        let x = (key - self.origin_x) as i128;
        let y = position as i128;
        let p1 = Pt { x, y: y + self.epsilon };
        let p2 = Pt { x, y: y - self.epsilon };

        if self.points_in_hull == 1 {
            self.rect[2] = p2;
            self.rect[3] = p1;
            self.upper.push(p1);
            self.lower.push(p2);
            self.points_in_hull = 2;
            return true;
        }

        let slope1 = self.rect[2].sub(self.rect[0]); // min slope
        let slope2 = self.rect[3].sub(self.rect[1]); // max slope
        let outside1 = slope_lt(p1.sub(self.rect[2]), slope1);
        let outside2 = slope_gt(p2.sub(self.rect[3]), slope2);
        if outside1 || outside2 {
            // Region empty: keep rect intact so segment_line() still
            // describes the finished segment.
            self.points_in_hull = 0;
            return false;
        }

        if slope_lt(p1.sub(self.rect[1]), slope2) {
            // p1's constraint lowers the max slope: find the lower-hull
            // point minimising slope(p1 - lower[i]).
            let mut min_i = self.lower_start;
            let mut min_s = p1.sub(self.lower[min_i]);
            let mut i = self.lower_start + 1;
            while i < self.lower.len() {
                let s = p1.sub(self.lower[i]);
                if slope_gt(s, min_s) {
                    break;
                }
                min_s = s;
                min_i = i;
                i += 1;
            }
            self.rect[1] = self.lower[min_i];
            self.rect[3] = p1;
            self.lower_start = min_i;

            // Maintain the upper hull with p1.
            let mut end = self.upper.len();
            while end >= self.upper_start + 2
                && Pt::cross(self.upper[end - 2], self.upper[end - 1], p1) <= 0
            {
                end -= 1;
            }
            self.upper.truncate(end);
            self.upper.push(p1);
        }

        if slope_gt(p2.sub(self.rect[0]), slope1) {
            // p2's constraint raises the min slope: find the upper-hull
            // point maximising slope(p2 - upper[i]).
            let mut max_i = self.upper_start;
            let mut max_s = p2.sub(self.upper[max_i]);
            let mut i = self.upper_start + 1;
            while i < self.upper.len() {
                let s = p2.sub(self.upper[i]);
                if slope_lt(s, max_s) {
                    break;
                }
                max_s = s;
                max_i = i;
                i += 1;
            }
            self.rect[0] = self.upper[max_i];
            self.rect[2] = p2;
            self.upper_start = max_i;

            // Maintain the lower hull with p2.
            let mut end = self.lower.len();
            while end >= self.lower_start + 2
                && Pt::cross(self.lower[end - 2], self.lower[end - 1], p2) >= 0
            {
                end -= 1;
            }
            self.lower.truncate(end);
            self.lower.push(p2);
        }

        self.points_in_hull += 1;
        true
    }

    /// Returns the line for the finished segment: a model predicting
    /// *global* positions (same space as the `position` arguments).
    ///
    /// Valid after one or more successful `add_point` calls, including
    /// immediately after a failed `add_point` (which keeps the state of the
    /// finished segment, matching PGM's contract).
    pub fn segment_line(&self) -> LinearModel {
        if self.points_in_hull == 1 {
            // Single point: horizontal line through its position.
            let y = (self.rect[0].y + self.rect[1].y) as f64 / 2.0;
            return LinearModel { x0: self.origin_x, slope: 0.0, intercept: y };
        }
        let min_slope = slope_f(self.rect[0], self.rect[2]);
        let max_slope = slope_f(self.rect[1], self.rect[3]);
        let slope = f64::midpoint(min_slope, max_slope);

        // Intersection of the two extreme lines gives a point every
        // feasible line passes near; anchor the mid-slope line there.
        let (ix, iy) = intersection(self.rect[0], self.rect[2], self.rect[1], self.rect[3]);
        // All rectangle coordinates are relative to the segment's first
        // key, so anchor the model there.
        LinearModel { x0: self.origin_x, slope, intercept: iy - slope * ix }
    }
}

#[inline]
fn slope_f(a: Pt, b: Pt) -> f64 {
    (b.y - a.y) as f64 / (b.x - a.x) as f64
}

/// Intersection of line(a1,a2) and line(b1,b2) in relative coordinates;
/// falls back to a corner when the lines are parallel.
fn intersection(a1: Pt, a2: Pt, b1: Pt, b2: Pt) -> (f64, f64) {
    let d1 = a2.sub(a1);
    let d2 = b2.sub(b1);
    let denom = d1.x * d2.y - d1.y * d2.x;
    if denom == 0 {
        return (a1.x as f64, a1.y as f64);
    }
    let w = b1.sub(a1);
    // Parameter t along (a1, d1): t = (w × d2) / (d1 × d2)
    let t_num = w.x * d2.y - w.y * d2.x;
    let t = t_num as f64 / denom as f64;
    (a1.x as f64 + t * d1.x as f64, a1.y as f64 + t * d1.y as f64)
}

/// Segments a strictly-ascending key array with max error `epsilon`,
/// producing the minimum number of maximal segments.
pub fn segment_opt_pla(keys: &[Key], epsilon: u64) -> Vec<Segment> {
    let mut out = Vec::new();
    if keys.is_empty() {
        return out;
    }
    let mut pla = OptimalPla::new(epsilon);
    let mut seg_start = 0usize;
    let mut i = 0usize;
    while i < keys.len() {
        if pla.add_point(keys[i], i as u64) {
            i += 1;
        } else {
            let seg = Segment {
                first_key: keys[seg_start],
                start: seg_start,
                len: i - seg_start,
                model: pla.segment_line(),
                max_error: 0,
            }
            .finish(keys);
            out.push(seg);
            seg_start = i;
            // Re-add the failed point into the fresh segment; always
            // succeeds on an empty hull.
            let ok = pla.add_point(keys[i], i as u64);
            debug_assert!(ok);
            i += 1;
        }
    }
    let seg = Segment {
        first_key: keys[seg_start],
        start: seg_start,
        len: keys.len() - seg_start,
        model: pla.segment_line(),
        max_error: 0,
    }
    .finish(keys);
    out.push(seg);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::validate_segmentation;

    fn check_epsilon(keys: &[Key], eps: u64) -> Vec<Segment> {
        let segs = segment_opt_pla(keys, eps);
        assert!(validate_segmentation(keys, &segs));
        for s in &segs {
            // The theoretical guarantee is ε; allow +1 for floating point
            // rounding of the final line (same tolerance PGM uses).
            assert!(s.max_error <= eps + 1, "segment err {} > eps {}", s.max_error, eps);
        }
        segs
    }

    #[test]
    fn perfectly_linear_is_one_segment() {
        let keys: Vec<Key> = (0..100_000u64).map(|i| i * 13 + 5).collect();
        let segs = check_epsilon(&keys, 4);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn single_and_two_keys() {
        let segs = segment_opt_pla(&[42], 8);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, 1);
        let segs = segment_opt_pla(&[42, 43], 8);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(segment_opt_pla(&[], 8).is_empty());
    }

    #[test]
    fn piecewise_distribution_respects_epsilon() {
        // Two very different slopes force at least two segments at low ε.
        let mut keys: Vec<Key> = (0..10_000u64).collect();
        keys.extend((0..10_000u64).map(|i| 10_000 + i * 1_000));
        let segs = check_epsilon(&keys, 2);
        assert!(segs.len() >= 2);
    }

    #[test]
    fn random_keys_respect_epsilon() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut keys: Vec<Key> = (0..50_000).map(|_| rng.random::<u64>() >> 1).collect();
        keys.sort_unstable();
        keys.dedup();
        for eps in [1u64, 4, 32, 256] {
            check_epsilon(&keys, eps);
        }
    }

    #[test]
    fn fewer_segments_with_larger_epsilon() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut keys: Vec<Key> = (0..50_000).map(|_| rng.random::<u64>() >> 8).collect();
        keys.sort_unstable();
        keys.dedup();
        let small = segment_opt_pla(&keys, 4).len();
        let large = segment_opt_pla(&keys, 128).len();
        assert!(large < small, "eps=4: {small}, eps=128: {large}");
    }

    #[test]
    fn optimal_not_worse_than_greedy() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut keys: Vec<Key> = (0..30_000).map(|_| rng.random::<u64>() >> 4).collect();
        keys.sort_unstable();
        keys.dedup();
        for eps in [8u64, 64] {
            let opt = segment_opt_pla(&keys, eps).len();
            let greedy = crate::approx::fsw::segment_fsw(&keys, eps).len();
            assert!(opt <= greedy, "eps {eps}: opt {opt} > greedy {greedy}");
        }
    }

    #[test]
    fn huge_key_magnitudes() {
        let keys: Vec<Key> = (0..10_000u64).map(|i| (u64::MAX / 2) + i * (1 << 40)).collect();
        check_epsilon(&keys, 16);
    }

    #[test]
    fn ascending_assert_fires() {
        let mut pla = OptimalPla::new(4);
        assert!(pla.add_point(10, 0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pla.add_point(9, 1);
        }));
        assert!(r.is_err());
    }
}
