//! Greedy feasible-space-window segmentation, the FITing-tree algorithm
//! (§II-B1). Anchors each segment at its first point and maintains the cone
//! of slopes that keep every subsequent point within ±ε; when the cone
//! collapses the segment is closed.
//!
//! Greedy FSW guarantees the same max error ε as Opt-PLA but may produce
//! more segments (the paper chose Opt-PLA for its FITing-tree
//! reimplementation for exactly this reason, §III-A1).

use super::Segment;
use crate::model::LinearModel;
use crate::types::Key;

/// Segments `keys` greedily with max error `epsilon`.
pub fn segment_fsw(keys: &[Key], epsilon: u64) -> Vec<Segment> {
    assert!(epsilon >= 1, "FSW requires epsilon >= 1");
    let mut out = Vec::new();
    let n = keys.len();
    if n == 0 {
        return out;
    }
    let eps = epsilon as f64;

    let mut seg_start = 0usize;
    // Slope cone for the current segment, anchored at
    // (keys[seg_start], seg_start).
    let mut slope_lo = f64::NEG_INFINITY;
    let mut slope_hi = f64::INFINITY;

    let close =
        |out: &mut Vec<Segment>, keys: &[Key], start: usize, end: usize, lo: f64, hi: f64| {
            let slope = match (lo.is_finite(), hi.is_finite()) {
                (true, true) => f64::midpoint(lo, hi),
                (true, false) => lo,
                (false, true) => hi,
                (false, false) => 0.0, // single-point segment
            };
            let model = LinearModel { x0: keys[start], slope, intercept: start as f64 };
            out.push(
                Segment { first_key: keys[start], start, len: end - start, model, max_error: 0 }
                    .finish(keys),
            );
        };

    let mut i = 1usize;
    while i < n {
        debug_assert!(keys[i] > keys[i - 1], "FSW input must be strictly ascending");
        let dx = (keys[i] - keys[seg_start]) as f64;
        let dy = (i - seg_start) as f64;
        let lo = (dy - eps) / dx;
        let hi = (dy + eps) / dx;
        let new_lo = slope_lo.max(lo);
        let new_hi = slope_hi.min(hi);
        if new_lo > new_hi {
            close(&mut out, keys, seg_start, i, slope_lo, slope_hi);
            seg_start = i;
            slope_lo = f64::NEG_INFINITY;
            slope_hi = f64::INFINITY;
        } else {
            slope_lo = new_lo;
            slope_hi = new_hi;
        }
        i += 1;
    }
    close(&mut out, keys, seg_start, n, slope_lo, slope_hi);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::validate_segmentation;

    fn check(keys: &[Key], eps: u64) -> Vec<Segment> {
        let segs = segment_fsw(keys, eps);
        assert!(validate_segmentation(keys, &segs));
        for s in &segs {
            assert!(s.max_error <= eps + 1, "err {} > eps {}", s.max_error, eps);
        }
        segs
    }

    #[test]
    fn linear_is_one_segment() {
        let keys: Vec<Key> = (0..50_000u64).map(|i| i * 7).collect();
        assert_eq!(check(&keys, 2).len(), 1);
    }

    #[test]
    fn single_key() {
        let segs = check(&[99], 4);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, 1);
    }

    #[test]
    fn empty() {
        assert!(segment_fsw(&[], 4).is_empty());
    }

    #[test]
    fn random_respects_epsilon() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut keys: Vec<Key> = (0..50_000).map(|_| rng.random::<u64>() >> 2).collect();
        keys.sort_unstable();
        keys.dedup();
        for eps in [1u64, 8, 64, 512] {
            check(&keys, eps);
        }
    }

    #[test]
    fn monotone_in_epsilon() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut keys: Vec<Key> = (0..40_000).map(|_| rng.random::<u64>() >> 8).collect();
        keys.sort_unstable();
        keys.dedup();
        let a = segment_fsw(&keys, 4).len();
        let b = segment_fsw(&keys, 64).len();
        assert!(b < a);
    }

    #[test]
    fn abrupt_slope_change_splits() {
        let mut keys: Vec<Key> = (0..1_000u64).collect();
        keys.extend((0..1_000u64).map(|i| 1_000 + i * 10_000));
        assert!(check(&keys, 2).len() >= 2);
    }
}
