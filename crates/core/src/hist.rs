//! Log-bucketed latency histogram for throughput/tail-latency reporting.
//!
//! The paper reports throughput and 99.9 % tail latency for every
//! experiment (Figs. 10–15). This histogram records nanosecond samples into
//! logarithmic buckets with linear sub-buckets (HDR-style), giving ~1.6 %
//! relative error on percentile queries with a fixed 2 KiB footprint — cheap
//! enough to keep in the measurement loop.

/// Number of linear sub-buckets per power of two.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Covers values up to 2^40 ns (~18 minutes), far beyond any op latency.
const TOP_POW: usize = 40;
const BUCKETS: usize = (TOP_POW + 1) * SUB;

/// A fixed-size histogram of `u64` samples (nanoseconds by convention).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0u64; BUCKETS]),
            total: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let pow = value.ilog2();
        let sub = (value >> (pow - SUB_BITS)) as usize & (SUB - 1);
        let idx = ((pow - SUB_BITS + 1) as usize) * SUB + sub;
        idx.min(BUCKETS - 1)
    }

    /// Representative (upper-edge) value of a bucket.
    fn bucket_value(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let pow = (idx / SUB) as u32 + SUB_BITS - 1;
        let sub = (idx % SUB) as u64;
        (1u64 << pow) + (sub + 1) * (1u64 << (pow - SUB_BITS)) - 1
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q` in `[0, 1]`; e.g. `0.999` for the paper's
    /// p99.9 tail latency. Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0)) * self.total as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (used to combine per-thread
    /// histograms in the multi-threaded experiments, Figs. 12/14).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

impl core::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(0.50))
            .field("p99", &self.percentile(0.99))
            .field("p999", &self.percentile(0.999))
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.999), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn exact_small_values() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        // Sub-SUB values are exact.
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 31);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn percentile_relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        // Uniform 1..=100_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &q in &[0.5, 0.9, 0.99, 0.999] {
            let got = h.percentile(q) as f64;
            let expect = q * 100_000.0;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "q={q} got={got} expect={expect} rel={rel}");
        }
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for v in 0..10_000u64 {
            if v % 2 == 0 {
                a.record(v * 3 + 1);
            } else {
                b.record(v * 3 + 1);
            }
            c.record(v * 3 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.percentile(0.999), c.percentile(0.999));
        assert_eq!(a.max(), c.max());
        assert_eq!(a.min(), c.min());
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1 << 45);
        assert_eq!(h.count(), 2);
        // Top-bucket quantization may clamp huge values; the call just must
        // not panic, and percentiles must stay monotone.
        assert!(h.percentile(1.0) >= h.percentile(0.5));
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn mean_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn percentiles_monotone_and_bounded(
            samples in proptest::collection::vec(0u64..1_000_000, 1..500),
        ) {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            let mut last = 0u64;
            for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
                let p = h.percentile(q);
                prop_assert!(p >= last, "percentile not monotone at q={q}");
                prop_assert!(p <= h.max());
                last = p;
            }
            prop_assert_eq!(h.count(), samples.len() as u64);
            let mean = h.mean();
            prop_assert!(mean >= h.min() as f64 && mean <= h.max() as f64);
        }

        #[test]
        fn bucket_relative_error(sample in 32u64..(1u64 << 43)) {
            // Within the histogram's covered range, a single sample's p50
            // must be within ~2^-SUB_BITS relative error (beyond ~2^44 the
            // histogram saturates into its top bucket by design).
            let mut h = LatencyHistogram::new();
            h.record(sample);
            let got = h.percentile(0.5) as f64;
            let rel = (got - sample as f64).abs() / sample as f64;
            prop_assert!(rel <= 0.04, "sample {sample} got {got} rel {rel}");
        }
    }
}
