//! Range sharding: lift any single-writer index into concurrent service.
//!
//! The paper's multi-threaded write experiment (Fig. 14, §III-C2) could
//! only run XIndex because it is the sole learned index with native
//! concurrent writes (Table I). [`Sharded`] removes that limitation: the
//! key space is cut into contiguous ranges at CDF-balanced boundaries
//! (equal key mass per shard, estimated from the bulk-load keys), each
//! range served by an independent copy of the wrapped index behind its own
//! reader-writer lock. Writers touching different shards never contend;
//! readers never block each other.
//!
//! [`Native`] is the bridge for indexes that are already write-concurrent
//! (XIndex): it satisfies the same trait surface with zero added locking,
//! so a runtime-selected lineup can mix both routes behind one type.

use std::time::{Duration, Instant};

use li_sync::sync::atomic::{AtomicUsize, Ordering};
use li_sync::sync::{RwLock, RwLockWriteGuard};

use crate::traits::{BulkBuildIndex, ConcurrentIndex, Index, OrderedIndex, UpdatableIndex};
use crate::types::{Key, KeyValue, Value};
use li_telemetry::Recorder;

/// Returned when an [`Admission`] lane stayed saturated for the whole
/// bounded wait — the `WouldBlock`-style rung of the overload ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Saturated;

/// Bounded admission: at most `limit` callers inside each lane at once.
///
/// This is the first rung of the overload ladder: writers queue *here*,
/// in a cheap spin/yield wait with a deadline, instead of piling onto a
/// shard's write lock without bound. A lane is whatever granularity the
/// caller picks — one per shard for [`Sharded`], a single global lane for
/// a store-level gate.
#[derive(Debug)]
pub struct Admission {
    limit: usize,
    lanes: Vec<AtomicUsize>,
}

impl Admission {
    pub fn new(lanes: usize, limit: usize) -> Self {
        assert!(lanes >= 1 && limit >= 1);
        Admission { limit, lanes: (0..lanes).map(|_| AtomicUsize::new(0)).collect() }
    }

    /// Concurrent-entrant cap per lane.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Callers currently inside `lane`.
    pub fn in_flight(&self, lane: usize) -> usize {
        self.lanes[lane % self.lanes.len()].load(Ordering::Relaxed)
    }

    /// Non-blocking admission attempt.
    pub fn try_enter(&self, lane: usize) -> Option<AdmissionGuard<'_>> {
        let slot = &self.lanes[lane % self.lanes.len()];
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            if cur >= self.limit {
                return None;
            }
            match slot.compare_exchange_weak(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed) {
                Ok(_) => return Some(AdmissionGuard { slot }),
                Err(now) => cur = now,
            }
        }
    }

    /// Admission with a bounded short wait; `Err(Saturated)` after
    /// `max_wait` of yielding without a free slot.
    pub fn enter(&self, lane: usize, max_wait: Duration) -> Result<AdmissionGuard<'_>, Saturated> {
        if let Some(g) = self.try_enter(lane) {
            return Ok(g);
        }
        let t0 = Instant::now();
        loop {
            li_sync::thread::yield_now();
            if let Some(g) = self.try_enter(lane) {
                return Ok(g);
            }
            if t0.elapsed() >= max_wait {
                return Err(Saturated);
            }
        }
    }
}

/// RAII token for one admitted caller; leaving the scope frees the slot.
#[derive(Debug)]
pub struct AdmissionGuard<'a> {
    slot: &'a AtomicUsize,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.slot.fetch_sub(1, Ordering::Release);
    }
}

/// A range-partitioned router over `2..=MAX_SHARDS` (or one) instances of a
/// single-writer index, giving it a [`ConcurrentIndex`] face plus ordered
/// range scans.
///
/// Shard `s` owns keys in `[lower[s], lower[s+1])`; `lower[0] == 0` and the
/// last shard extends to [`Key::MAX`], so every key routes to exactly one
/// shard — no gaps, no overlaps (property-tested below).
pub struct Sharded<I> {
    /// Strictly increasing lower bounds, one per shard; `lower[0] == 0`.
    lower: Vec<Key>,
    shards: Vec<RwLock<I>>,
    recorder: Recorder,
    /// Optional per-shard admission gate (overload backpressure).
    admission: Option<Admission>,
    /// Deadline for the gate's short wait before a writer proceeds (or,
    /// via [`Sharded::try_insert`], is rejected with [`Saturated`]).
    admission_wait: Duration,
}

/// Hard cap on shard count — beyond this the boundary table itself starts
/// to cost a cache line per probe for no extra parallelism on any machine
/// this runs on.
pub const MAX_SHARDS: usize = 4096;

impl<I> Sharded<I> {
    /// Builds a sharded index from strictly-ascending `(key, value)` pairs,
    /// constructing each shard with `build` over its slice of the input.
    ///
    /// Boundaries are CDF-balanced: each shard receives an equal count of
    /// the bulk-load keys, so a skewed distribution still spreads load. If
    /// `data` has fewer keys than requested shards (including the empty
    /// bulk load of a store that starts cold), boundaries fall back to a
    /// uniform split of the whole key domain.
    pub fn build_with(
        shards: usize,
        data: &[KeyValue],
        mut build: impl FnMut(&[KeyValue]) -> I,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(shards <= MAX_SHARDS, "too many shards ({shards} > {MAX_SHARDS})");
        debug_assert!(data.windows(2).all(|w| w[0].0 < w[1].0), "bulk load keys must ascend");
        let mut lower: Vec<Key> = vec![0];
        if data.len() >= shards {
            for s in 1..shards {
                let b = data[s * data.len() / shards].0;
                // Collapse duplicate boundaries (possible under extreme
                // skew); the shard count shrinks rather than leaving an
                // empty zero-width range.
                if b > *lower.last().expect("non-empty") {
                    lower.push(b);
                }
            }
        } else if shards > 1 {
            // Too few keys to estimate a CDF: split the domain uniformly.
            let step = Key::MAX / shards as Key;
            lower.extend((1..shards).map(|s| s as Key * step));
        }
        let mut built = Vec::with_capacity(lower.len());
        let mut start = 0usize;
        for s in 0..lower.len() {
            let end = match lower.get(s + 1) {
                Some(&hi) => start + data[start..].partition_point(|kv| kv.0 < hi),
                None => data.len(),
            };
            built.push(RwLock::new(build(&data[start..end])));
            start = end;
        }
        Sharded {
            lower,
            shards: built,
            recorder: Recorder::disabled(),
            admission: None,
            admission_wait: Duration::from_micros(200),
        }
    }

    /// Enables bounded per-shard admission: at most `per_shard` writers
    /// queued into any one shard; further writers short-wait up to
    /// `max_wait` (and [`Sharded::try_insert`] rejects with [`Saturated`]
    /// instead of waiting past the deadline).
    pub fn set_admission(&mut self, per_shard: usize, max_wait: Duration) {
        self.admission = Some(Admission::new(self.shards.len(), per_shard));
        self.admission_wait = max_wait;
    }

    /// `WouldBlock`-style write: admission failure after the short wait
    /// surfaces as `Err(Saturated)` rather than unbounded queueing.
    pub fn try_insert(&self, key: Key, value: Value) -> Result<Option<Value>, Saturated>
    where
        I: Index + UpdatableIndex,
    {
        let s = self.shard_of(key);
        let _admit = match &self.admission {
            Some(gate) => Some(gate.enter(s, self.admission_wait)?),
            None => None,
        };
        self.recorder.shard_write(s);
        Ok(self.write_shard(s).insert(key, value))
    }

    /// Number of shards actually created (may be below the request when the
    /// bulk-load keys could not support that many distinct boundaries).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The strictly-increasing lower bound of each shard's key range;
    /// `boundaries()[0] == 0` and the last shard extends to [`Key::MAX`].
    pub fn boundaries(&self) -> &[Key] {
        &self.lower
    }

    #[inline]
    fn shard_of(&self, key: Key) -> usize {
        // lower[0] == 0 <= key always, so the partition point is >= 1.
        self.lower.partition_point(|&b| b <= key) - 1
    }

    /// Runs `f` on the shard owning `key` under its read lock.
    pub fn with_shard<R>(&self, key: Key, f: impl FnOnce(&I) -> R) -> R {
        f(&self.shards[self.shard_of(key)].read())
    }

    /// Acquires shard `s`'s write lock, recording contention when a
    /// telemetry recorder is attached: a failed fast try-acquire counts
    /// as a [`li_telemetry::Event::ShardLockWait`] and the blocked time
    /// lands in the `LockWait` histogram. Without a recorder this is a
    /// plain `write()`.
    #[inline]
    fn write_shard(&self, s: usize) -> RwLockWriteGuard<'_, I> {
        if !self.recorder.is_enabled() {
            return self.shards[s].write();
        }
        if let Some(g) = self.shards[s].try_write() {
            g
        } else {
            let t0 = std::time::Instant::now();
            let g = self.shards[s].write();
            let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            self.recorder.shard_lock_wait(s, ns);
            g
        }
    }
}

impl<I: BulkBuildIndex> Sharded<I> {
    /// [`Sharded::build_with`] using the index's own bulk constructor.
    pub fn build(shards: usize, data: &[KeyValue]) -> Self {
        Self::build_with(shards, data, I::build)
    }
}

impl<I: Index> Index for Sharded<I> {
    fn name(&self) -> &'static str {
        self.shards[0].read().name()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn get(&self, key: Key) -> Option<Value> {
        let s = self.shard_of(key);
        self.recorder.shard_read(s);
        self.shards[s].read().get(key)
    }

    fn index_size_bytes(&self) -> usize {
        self.lower.len() * core::mem::size_of::<Key>()
            + self.shards.iter().map(|s| s.read().index_size_bytes()).sum::<usize>()
    }

    fn data_size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.read().data_size_bytes()).sum()
    }

    /// Keeps the recorder for routing/lock-wait metrics and forwards a
    /// clone into every shard's inner index.
    fn set_recorder(&mut self, recorder: Recorder) {
        for s in &mut self.shards {
            s.get_mut().set_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }
}

impl<I: OrderedIndex> OrderedIndex for Sharded<I> {
    /// Scans shard by shard in boundary order; per-shard output is ordered
    /// and shards partition the key space, so the result is globally
    /// ordered. Locks are taken one shard at a time — a scan never holds
    /// more than one read lock.
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        for s in self.shard_of(lo)..self.shards.len() {
            if self.lower[s] > hi {
                break;
            }
            self.shards[s].read().range(lo, hi, out);
        }
    }
}

impl<I> Sharded<I> {
    /// Blocking admission for the infallible `ConcurrentIndex` surface:
    /// short-waits in rounds until admitted, charging each saturated
    /// round to the lock-wait telemetry so overload is visible.
    fn admit(&self, s: usize) -> Option<AdmissionGuard<'_>> {
        let gate = self.admission.as_ref()?;
        loop {
            match gate.enter(s, self.admission_wait) {
                Ok(g) => return Some(g),
                Err(Saturated) => {
                    self.recorder.shard_lock_wait(s, self.admission_wait.as_nanos() as u64);
                }
            }
        }
    }
}

impl<I: Index + UpdatableIndex> ConcurrentIndex for Sharded<I> {
    fn get(&self, key: Key) -> Option<Value> {
        Index::get(self, key)
    }

    fn insert(&self, key: Key, value: Value) -> Option<Value> {
        let s = self.shard_of(key);
        let _admit = self.admit(s);
        self.recorder.shard_write(s);
        self.write_shard(s).insert(key, value)
    }

    fn remove(&self, key: Key) -> Option<Value> {
        let s = self.shard_of(key);
        let _admit = self.admit(s);
        self.recorder.shard_write(s);
        self.write_shard(s).remove(key)
    }

    fn len(&self) -> usize {
        Index::len(self)
    }

    /// Forwards deferral into every shard (under its write lock); true
    /// when any shard supports it.
    fn set_defer_retrains(&self, on: bool) -> bool {
        let mut any = false;
        for s in &self.shards {
            any |= s.write().set_defer_retrains(on);
        }
        any
    }

    fn pending_retrains(&self) -> usize {
        self.shards.iter().map(|s| s.read().pending_retrains()).sum()
    }

    /// Drains queued retrains shard by shard, never holding more than one
    /// write lock, so foreground writers only contend for the shard
    /// actually being maintained.
    fn run_pending_retrains(&self, budget: usize) -> usize {
        let mut done = 0;
        for s in &self.shards {
            if done >= budget {
                break;
            }
            if s.read().pending_retrains() == 0 {
                continue;
            }
            done += s.write().run_pending_retrains(budget - done);
        }
        done
    }
}

/// Lock-free bridge for natively write-concurrent indexes (XIndex): the
/// same trait surface [`Sharded`] provides, with every call passed straight
/// through — no router, no locks.
pub struct Native<C>(pub C);

impl<C> Native<C> {
    pub fn into_inner(self) -> C {
        self.0
    }
}

impl<C> core::ops::Deref for Native<C> {
    type Target = C;
    fn deref(&self) -> &C {
        &self.0
    }
}

impl<C: Index> Index for Native<C> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn get(&self, key: Key) -> Option<Value> {
        self.0.get(key)
    }
    fn index_size_bytes(&self) -> usize {
        self.0.index_size_bytes()
    }
    fn data_size_bytes(&self) -> usize {
        self.0.data_size_bytes()
    }
    fn set_recorder(&mut self, recorder: Recorder) {
        self.0.set_recorder(recorder);
    }
}

impl<C: OrderedIndex> OrderedIndex for Native<C> {
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        self.0.range(lo, hi, out);
    }
}

impl<C: ConcurrentIndex> ConcurrentIndex for Native<C> {
    fn get(&self, key: Key) -> Option<Value> {
        ConcurrentIndex::get(&self.0, key)
    }
    fn insert(&self, key: Key, value: Value) -> Option<Value> {
        ConcurrentIndex::insert(&self.0, key, value)
    }
    fn remove(&self, key: Key) -> Option<Value> {
        ConcurrentIndex::remove(&self.0, key)
    }
    fn len(&self) -> usize {
        ConcurrentIndex::len(&self.0)
    }
    fn set_defer_retrains(&self, on: bool) -> bool {
        self.0.set_defer_retrains(on)
    }
    fn pending_retrains(&self) -> usize {
        self.0.pending_retrains()
    }
    fn run_pending_retrains(&self, budget: usize) -> usize {
        self.0.run_pending_retrains(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    /// Minimal single-writer index for exercising the router.
    #[derive(Default)]
    struct MapIndex(BTreeMap<Key, Value>);

    impl Index for MapIndex {
        fn name(&self) -> &'static str {
            "map"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.0.get(&key).copied()
        }
        fn index_size_bytes(&self) -> usize {
            self.0.len() * 48
        }
        fn data_size_bytes(&self) -> usize {
            0
        }
    }

    impl UpdatableIndex for MapIndex {
        fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
            self.0.insert(key, value)
        }
        fn remove(&mut self, key: Key) -> Option<Value> {
            self.0.remove(&key)
        }
    }

    impl OrderedIndex for MapIndex {
        fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
            out.extend(self.0.range(lo..=hi).map(|(&k, &v)| (k, v)));
        }
    }

    impl BulkBuildIndex for MapIndex {
        fn build(data: &[KeyValue]) -> Self {
            MapIndex(data.iter().copied().collect())
        }
    }

    #[test]
    fn cdf_balanced_boundaries_balance_skew() {
        // 90% of keys in [0, 1000), the rest spread to u64::MAX: an MSB
        // split would put 90% of keys in shard 0.
        let mut data: Vec<KeyValue> = (0..900u64).map(|i| (i, i)).collect();
        data.extend((1..=100u64).map(|i| (i << 40, i)));
        let idx = Sharded::<MapIndex>::build(8, &data);
        assert_eq!(Index::len(&idx), 1_000);
        let max_shard = (0..idx.shard_count()).map(|s| idx.shards[s].read().len()).max().unwrap();
        assert!(max_shard <= 2 * 1_000 / idx.shard_count(), "unbalanced: {max_shard}");
    }

    #[test]
    fn routes_every_key_to_the_shard_that_built_it() {
        let data: Vec<KeyValue> = (0..5_000u64).map(|i| (i * 97 + 3, i)).collect();
        let idx = Sharded::<MapIndex>::build(16, &data);
        for &(k, v) in data.iter().step_by(53) {
            assert_eq!(Index::get(&idx, k), Some(v));
            assert_eq!(Index::get(&idx, k + 1), None);
        }
        assert_eq!(Index::get(&idx, Key::MAX), None);
        assert_eq!(Index::get(&idx, 0), None);
    }

    #[test]
    fn empty_bulk_load_still_shards_the_domain() {
        let idx = Sharded::<MapIndex>::build(8, &[]);
        assert_eq!(idx.shard_count(), 8);
        assert_eq!(ConcurrentIndex::insert(&idx, 5, 50), None);
        assert_eq!(ConcurrentIndex::insert(&idx, Key::MAX, 1), None);
        assert_eq!(ConcurrentIndex::get(&idx, 5), Some(50));
        assert_eq!(ConcurrentIndex::len(&idx), 2);
        // The two keys landed on different shards of the uniform split.
        assert_ne!(idx.shard_of(5), idx.shard_of(Key::MAX));
    }

    #[test]
    fn range_scans_cross_shard_boundaries_in_order() {
        let data: Vec<KeyValue> = (0..2_000u64).map(|i| (i * 10, i)).collect();
        let idx = Sharded::<MapIndex>::build(7, &data);
        let got = idx.range_vec(995, 10_255);
        let expect: Vec<KeyValue> =
            data.iter().copied().filter(|&(k, _)| (995..=10_255).contains(&k)).collect();
        assert_eq!(got, expect);
        assert_eq!(idx.range_vec(0, Key::MAX).len(), 2_000);
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let data: Vec<KeyValue> = (0..8_000u64).map(|i| (i * 8, 0)).collect();
        let idx = Arc::new(Sharded::<MapIndex>::build(16, &data));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let idx = Arc::clone(&idx);
            handles.push(li_sync::thread::spawn(move || {
                for i in 0..1_000u64 {
                    // Own every key ≡ t (mod 8): updates of loaded keys and
                    // inserts of fresh ones, interleaved across all shards.
                    let k = i * 64 + t;
                    ConcurrentIndex::insert(&*idx, k, t + 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ConcurrentIndex::len(&*idx), 8_000 + 7_000);
        assert_eq!(ConcurrentIndex::get(&*idx, 64 + 1), Some(2));
    }

    #[test]
    fn admission_caps_in_flight_writers() {
        let gate = Arc::new(Admission::new(1, 2));
        let g1 = gate.try_enter(0).unwrap();
        let _g2 = gate.try_enter(0).unwrap();
        assert!(gate.try_enter(0).is_none(), "third entrant must be rejected");
        assert_eq!(gate.enter(0, Duration::from_millis(1)).err(), Some(Saturated));
        assert_eq!(gate.in_flight(0), 2);
        drop(g1);
        assert!(gate.try_enter(0).is_some(), "slot frees on guard drop");

        // Concurrent hammering never observes more than `limit` inside.
        let gate = Arc::new(Admission::new(4, 3));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let gate = Arc::clone(&gate);
                let peak = Arc::clone(&peak);
                li_sync::thread::spawn(move || {
                    for i in 0..500usize {
                        let lane = (t + i) % 4;
                        let _g = loop {
                            if let Some(g) = gate.try_enter(lane) {
                                break g;
                            }
                            li_sync::thread::yield_now();
                        };
                        peak.fetch_max(gate.in_flight(lane), Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::Relaxed) <= 3, "admission bound violated");
        for lane in 0..4 {
            assert_eq!(gate.in_flight(lane), 0, "all slots released");
        }
    }

    #[test]
    fn sharded_insert_respects_admission_and_try_insert_rejects() {
        let data: Vec<KeyValue> = (0..1_000u64).map(|i| (i * 8, i)).collect();
        let mut idx = Sharded::<MapIndex>::build(4, &data);
        idx.set_admission(1, Duration::from_millis(1));
        // Uncontended: the gate is invisible.
        assert_eq!(ConcurrentIndex::insert(&idx, 3, 30), None);
        assert_eq!(idx.try_insert(3, 31).unwrap(), Some(30));
        // Saturate the lane by hand: try_insert must reject, not queue.
        let lane = idx.shard_of(3);
        let gate = idx.admission.as_ref().unwrap();
        let _hold = gate.try_enter(lane).unwrap();
        assert_eq!(idx.try_insert(3, 32), Err(Saturated));
        assert_eq!(Index::get(&idx, 3), Some(31), "rejected write must not apply");
    }

    #[test]
    fn sharded_forwards_deferred_retraining() {
        use crate::pieces::assembled::{PiecewiseConfig, PiecewiseIndex};

        let data: Vec<KeyValue> = (0..20_000u64).map(|i| (i * 4, i)).collect();
        let idx = Sharded::build_with(8, &data, |chunk| {
            PiecewiseIndex::build_with(PiecewiseConfig::default(), chunk)
        });
        assert!(ConcurrentIndex::set_defer_retrains(&idx, true));
        let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
        for n in 0..30_000u64 {
            let k = (n.wrapping_mul(0x9e3779b97f4a7c15) >> 16) % 100_000;
            assert_eq!(ConcurrentIndex::insert(&idx, k, n), model.insert(k, n), "insert {k}");
        }
        let parked = ConcurrentIndex::pending_retrains(&idx);
        assert!(parked > 0, "heavy churn must park retrains");
        // Budgeted drain makes progress without clearing everything.
        let ran = ConcurrentIndex::run_pending_retrains(&idx, 1);
        assert_eq!(ran, 1);
        // Full drain empties the queue; correctness holds throughout.
        while ConcurrentIndex::run_pending_retrains(&idx, 64) > 0 {}
        assert_eq!(ConcurrentIndex::pending_retrains(&idx), 0);
        assert_eq!(ConcurrentIndex::len(&idx), model.len());
        for (&k, &v) in model.iter().step_by(37) {
            assert_eq!(ConcurrentIndex::get(&idx, k), Some(v));
        }
    }

    #[test]
    fn native_bridge_passes_through() {
        #[derive(Default)]
        struct CountingMap(li_sync::sync::Mutex<BTreeMap<Key, Value>>);
        impl ConcurrentIndex for CountingMap {
            fn get(&self, key: Key) -> Option<Value> {
                self.0.lock().get(&key).copied()
            }
            fn insert(&self, key: Key, value: Value) -> Option<Value> {
                self.0.lock().insert(key, value)
            }
            fn remove(&self, key: Key) -> Option<Value> {
                self.0.lock().remove(&key)
            }
            fn len(&self) -> usize {
                self.0.lock().len()
            }
        }
        let n = Native(CountingMap::default());
        assert_eq!(ConcurrentIndex::insert(&n, 1, 10), None);
        assert_eq!(ConcurrentIndex::get(&n, 1), Some(10));
        assert_eq!(ConcurrentIndex::remove(&n, 1), Some(10));
        assert_eq!(ConcurrentIndex::len(&n), 0);
    }

    #[test]
    fn recorder_sees_routing_and_lock_waits() {
        use li_telemetry::{Event, OpKind};

        let data: Vec<KeyValue> = (0..4_000u64).map(|i| (i * 16, i)).collect();
        let mut idx = Sharded::<MapIndex>::build(8, &data);
        let rec = Recorder::enabled();
        idx.set_recorder(rec.clone());

        // Single-threaded ops never contend: the fast try-acquire always
        // succeeds, so zero ShardLockWait events — deterministically.
        for i in 0..1_000u64 {
            ConcurrentIndex::insert(&idx, i * 64 + 1, i);
            ConcurrentIndex::get(&idx, i * 64);
        }
        let s = rec.snapshot();
        assert_eq!(s.event(Event::ShardLockWait), 0);
        assert_eq!(s.shards.iter().map(|b| b.writes).sum::<u64>(), 1_000);
        assert_eq!(s.shards.iter().map(|b| b.reads).sum::<u64>(), 1_000);
        assert!(s.active_shards() > 1, "sharded route must touch several banks");

        // Forced contention: a held read guard blocks the writer's
        // try_write, so the slow path records the wait. Scheduling can in
        // principle let the writer start after the guard drops, so retry
        // until the wait is observed (one attempt suffices in practice).
        let idx = Arc::new(idx);
        let key = data[0].0;
        for attempt in 0.. {
            assert!(attempt < 50, "never observed a shard lock wait");
            let idx2 = Arc::clone(&idx);
            let ready = Arc::new(li_sync::sync::atomic::AtomicBool::new(false));
            let ready2 = Arc::clone(&ready);
            let writer = idx.with_shard(key, |_shard| {
                let w = li_sync::thread::spawn(move || {
                    ready2.store(true, li_sync::sync::atomic::Ordering::Release);
                    ConcurrentIndex::insert(&*idx2, key, 9);
                });
                while !ready.load(li_sync::sync::atomic::Ordering::Acquire) {
                    li_sync::thread::yield_now();
                }
                // Give the writer time to fail try_write and block.
                li_sync::thread::sleep(std::time::Duration::from_millis(10));
                w
            });
            writer.join().unwrap();
            if rec.event_count(Event::ShardLockWait) >= 1 {
                break;
            }
        }
        let s = rec.snapshot();
        assert!(s.event(Event::ShardLockWait) >= 1, "contended write must record a wait");
        assert!(s.op(OpKind::LockWait).count >= 1);
        assert!(s.total_lock_waits() >= 1);
    }

    mod boundary_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// Shard boundary selection covers the full key domain with no
            /// gaps and no overlaps, for any bulk-load key set and shard
            /// count.
            #[test]
            fn boundaries_partition_the_domain(
                mut keys in proptest::collection::vec(0u64..u64::MAX, 0..400),
                shards in 1usize..40,
            ) {
                keys.sort_unstable();
                keys.dedup();
                let data: Vec<KeyValue> = keys.iter().map(|&k| (k, k)).collect();
                let idx = Sharded::<MapIndex>::build(shards, &data);

                // Structure: first bound is 0, bounds strictly increase, and
                // no more shards exist than requested.
                let lower = idx.boundaries();
                prop_assert_eq!(lower[0], 0);
                prop_assert!(lower.windows(2).all(|w| w[0] < w[1]));
                prop_assert_eq!(lower.len(), idx.shard_count());
                prop_assert!(idx.shard_count() <= shards);

                // Coverage: the domain extremes and every boundary's
                // neighbourhood route to exactly one in-range shard, and
                // routing is monotone (no overlap between ranges).
                let mut probes = vec![0u64, u64::MAX];
                for &b in lower {
                    probes.push(b);
                    probes.push(b.saturating_sub(1));
                    probes.push(b.saturating_add(1));
                }
                probes.extend(keys.iter().copied());
                probes.sort_unstable();
                let mut last_shard = 0usize;
                for &p in &probes {
                    let s = idx.shard_of(p);
                    prop_assert!(s < idx.shard_count());
                    prop_assert!(p >= lower[s], "key below its shard's range");
                    if let Some(&hi) = lower.get(s + 1) {
                        prop_assert!(p < hi, "key above its shard's range");
                    }
                    prop_assert!(s >= last_shard, "routing must be monotone");
                    last_shard = s;
                }

                // Every bulk-loaded key is findable after the build.
                for &(k, v) in data.iter().step_by(7) {
                    prop_assert_eq!(Index::get(&idx, k), Some(v));
                }
                prop_assert_eq!(Index::len(&idx), data.len());
            }
        }
    }
}
