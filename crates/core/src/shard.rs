//! Range sharding: lift any single-writer index into concurrent service —
//! and adapt the shard layout online.
//!
//! The paper's multi-threaded write experiment (Fig. 14, §III-C2) could
//! only run XIndex because it is the sole learned index with native
//! concurrent writes (Table I). [`Sharded`] removes that limitation: the
//! key space is cut into contiguous ranges at CDF-balanced boundaries
//! (equal key mass per shard, estimated from the bulk-load keys), each
//! range served by an independent index behind its own reader-writer
//! lock. Writers touching different shards never contend; readers never
//! block each other.
//!
//! Since PR 7 the router is *heterogeneous*: every shard cell owns a
//! `Box<dyn ShardIndex>` instead of a shared generic `I`, so shards can
//! differ in kind — and change kind at runtime. Three online adaptations
//! share one cutover protocol (see `DESIGN.md` "Adaptation"):
//!
//! * **split** — a hot shard's range is cut at its median key into two
//!   cells ([`Sharded::force_split`]);
//! * **merge** — two cold adjacent cells fold into one
//!   ([`Sharded::force_merge`]);
//! * **kind swap** — a cell is rebuilt under a different registered index
//!   kind ([`Sharded::force_swap`]), e.g. gapped-ALEX under insert-heavy
//!   load, PGM under read-mostly ("Are Updatable Learned Indexes
//!   Ready?", PAPERS.md).
//!
//! The cutover never blocks readers while the replacement index is built:
//! a bounded **side log** opens on the cell (writers keep applying to the
//! live index *and* append to the log), the old index is snapshotted
//! under a read lock, the replacement is built lock-free, and commit —
//! under the boundary-table write lock — replays the log and swaps the
//! cell atomically. Replay is idempotent because ops are absolute
//! (`insert k=v` / `remove k`). A log that overflows its cap aborts the
//! cutover; the live index already has every write, so nothing is lost.
//!
//! Decisions come from [`crate::tuner::Tuner`] over always-on per-cell
//! counters ([`Sharded::run_adaptation`], called by Viper's maintenance
//! worker); [`Native`] remains as a zero-cost bridge for indexes that are
//! already write-concurrent.

use std::time::{Duration, Instant};

use li_sync::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use li_sync::sync::{Arc, Mutex, RwLock, RwLockWriteGuard};

use crate::traits::{BulkBuildIndex, ConcurrentIndex, Index, OrderedIndex, UpdatableIndex};
use crate::tuner::{KindId, ShardObs, Tuner, TunerAction, TunerConfig};
use crate::types::{Key, KeyValue, Value};
use li_telemetry::{Event, Recorder};

/// Returned when an [`Admission`] lane stayed saturated for the whole
/// bounded wait — the `WouldBlock`-style rung of the overload ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Saturated;

/// Bounded admission: at most `limit` callers inside each lane at once.
///
/// This is the first rung of the overload ladder: writers queue *here*,
/// in a cheap spin/yield wait with a deadline, instead of piling onto a
/// shard's write lock without bound. A lane is whatever granularity the
/// caller picks — one per shard for [`Sharded`], a single global lane for
/// a store-level gate.
#[derive(Debug)]
pub struct Admission {
    limit: usize,
    lanes: Vec<AtomicUsize>,
}

impl Admission {
    pub fn new(lanes: usize, limit: usize) -> Self {
        assert!(lanes >= 1 && limit >= 1);
        Admission { limit, lanes: (0..lanes).map(|_| AtomicUsize::new(0)).collect() }
    }

    /// Concurrent-entrant cap per lane.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Callers currently inside `lane`.
    pub fn in_flight(&self, lane: usize) -> usize {
        self.lanes[lane % self.lanes.len()].load(Ordering::Relaxed)
    }

    /// Non-blocking admission attempt.
    pub fn try_enter(&self, lane: usize) -> Option<AdmissionGuard<'_>> {
        let slot = &self.lanes[lane % self.lanes.len()];
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            if cur >= self.limit {
                return None;
            }
            match slot.compare_exchange_weak(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed) {
                Ok(_) => return Some(AdmissionGuard { slot }),
                Err(now) => cur = now,
            }
        }
    }

    /// Admission with a bounded short wait; `Err(Saturated)` after
    /// `max_wait` of yielding without a free slot.
    pub fn enter(&self, lane: usize, max_wait: Duration) -> Result<AdmissionGuard<'_>, Saturated> {
        if let Some(g) = self.try_enter(lane) {
            return Ok(g);
        }
        let t0 = Instant::now();
        loop {
            li_sync::thread::yield_now();
            if let Some(g) = self.try_enter(lane) {
                return Ok(g);
            }
            if t0.elapsed() >= max_wait {
                return Err(Saturated);
            }
        }
    }
}

/// RAII token for one admitted caller; leaving the scope frees the slot.
#[derive(Debug)]
pub struct AdmissionGuard<'a> {
    slot: &'a AtomicUsize,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.slot.fetch_sub(1, Ordering::Release);
    }
}

/// Object-safe face a shard cell needs from its inner index: reads
/// ([`Index`]), single-writer mutation ([`UpdatableIndex`]) and ordered
/// scans ([`OrderedIndex`]). Blanket-implemented, so every index in the
/// workspace with those three already is one. [`BulkBuildIndex`] is
/// deliberately excluded (it is not object safe); construction goes
/// through closures or registered [`KindSpec`] builders instead.
pub trait ShardIndex: Index + UpdatableIndex + OrderedIndex {}

impl<T: Index + UpdatableIndex + OrderedIndex> ShardIndex for T {}

/// What a shard cell actually owns.
pub type BoxShard = Box<dyn ShardIndex>;

/// Bulk constructor a [`KindSpec`] stores.
type KindBuilder = Box<dyn Fn(&[KeyValue]) -> BoxShard + Send + Sync>;

/// A registered index kind the adaptive router can (re)build shards
/// under: a display label plus a bulk constructor.
pub struct KindSpec {
    pub label: &'static str,
    build: KindBuilder,
}

impl KindSpec {
    pub fn new(
        label: &'static str,
        build: impl Fn(&[KeyValue]) -> BoxShard + Send + Sync + 'static,
    ) -> Self {
        KindSpec { label, build: Box::new(build) }
    }

    /// Convenience constructor from a bulk-buildable index type.
    pub fn of<I: ShardIndex + BulkBuildIndex + 'static>(label: &'static str) -> Self {
        Self::new(label, |chunk| Box::new(I::build(chunk)))
    }
}

/// Everything [`Sharded::build_adaptive`] needs beyond the static build:
/// the kind table, which kind to bulk-load under, the tuner policy and
/// the side-log bound.
pub struct AdaptiveConfig {
    /// Kinds the tuner may rebuild shards under ([`KindId`] = index).
    pub kinds: Vec<KindSpec>,
    /// Kind every shard starts as.
    pub initial: KindId,
    pub tuner: TunerConfig,
    /// Max writes buffered per cell while its replacement builds; an
    /// overflow aborts that cutover (retried after the tuner cooldown).
    pub side_cap: usize,
}

impl AdaptiveConfig {
    pub fn new(kinds: Vec<KindSpec>, initial: KindId) -> Self {
        AdaptiveConfig { kinds, initial, tuner: TunerConfig::default(), side_cap: 1 << 16 }
    }
}

/// Why a split/merge/swap did not commit. All variants are recoverable:
/// the live index keeps serving and retains every write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptError {
    /// Built without [`Sharded::build_adaptive`]: no kind table to
    /// rebuild shards with.
    NotAdaptive,
    /// Another rebuild already owns this cell's side log.
    Busy,
    /// The position/kind no longer matches the live table (a concurrent
    /// adaptation moved it); re-observe and retry.
    Stale,
    /// The shard holds too few (or all-identical) keys to cut.
    CannotSplit,
    /// Shard-count bounds ([`MAX_SHARDS`], or merging the last shard).
    Limit,
    /// The side log overflowed `side_cap` while the replacement was
    /// building; the cutover aborted (the live index has every write).
    SideOverflow,
}

/// One write buffered by an in-flight cutover. Absolute, not relative —
/// replaying a prefix twice is idempotent.
#[derive(Debug, Clone, Copy)]
enum SideOp {
    Put(Key, Value),
    Del(Key),
}

/// Bounded log of writes that landed on a cell while its replacement
/// index was building. Writers apply to the live index *and* append
/// here; commit replays the log into the replacement.
#[derive(Debug)]
struct SideLog {
    ops: Vec<SideOp>,
    cap: usize,
    overflowed: bool,
}

impl SideLog {
    fn new(cap: usize) -> Self {
        SideLog { ops: Vec::new(), cap, overflowed: false }
    }

    fn push(&mut self, op: SideOp) {
        if self.ops.len() < self.cap {
            self.ops.push(op);
        } else {
            self.overflowed = true;
        }
    }
}

/// The lock-protected interior of a shard cell.
struct ShardState {
    index: BoxShard,
    /// `Some` while a rebuild of this cell is in flight; writers must go
    /// through the exclusive path and log here (the native fast path
    /// checks this under the read lock and stands down).
    side: Option<SideLog>,
}

/// Always-on per-cell counters the tuner reads — independent of the
/// opt-in telemetry recorder, so adaptation works with telemetry off.
struct CellStats {
    reads: AtomicU64,
    writes: AtomicU64,
    lock_wait_ns: AtomicU64,
}

/// One shard: a stable identity, a fixed kind, and the locked index.
/// Cells are immutable apart from their interior lock — every committed
/// adaptation publishes *new* cells, which is what gives the tuner a
/// fresh dwell clock and readers a consistent `(boundary, cell)` pair.
struct ShardCell {
    /// Monotonic id; survives epochs, never reused. The tuner keys its
    /// per-cell history on this.
    id: u64,
    kind: KindId,
    /// Cached `index.native_writer().is_some()` so the write path skips
    /// the probe (and the read-lock acquisition) for non-native kinds.
    native: bool,
    lock: RwLock<ShardState>,
    stats: CellStats,
}

impl ShardCell {
    fn create(id: u64, kind: KindId, index: BoxShard) -> Arc<Self> {
        let native = index.native_writer().is_some();
        Arc::new(ShardCell {
            id,
            kind,
            native,
            // `ordered`: merge commits hold two cells at once, always
            // left-to-right in boundary order (see `commit_merge`).
            lock: RwLock::with_class(
                li_sync::lock_class!("shard-cell", ordered),
                ShardState { index, side: None },
            ),
            stats: CellStats {
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                lock_wait_ns: AtomicU64::new(0),
            },
        })
    }
}

/// The boundary table: `cells[s]` owns keys in `[lower[s], lower[s+1])`;
/// `lower[0] == 0` and the last cell extends to [`Key::MAX`], so every
/// key routes to exactly one cell — no gaps, no overlaps
/// (property-tested below). Swapped wholesale under its `RwLock` by
/// committed adaptations; ops hold the read side for their duration, so
/// a cutover's write acquisition is itself the epoch barrier — when it
/// is granted, no op holds a stale `(boundary, cell)` pair.
struct Table {
    lower: Vec<Key>,
    cells: Vec<Arc<ShardCell>>,
}

impl Table {
    #[inline]
    fn shard_of(&self, key: Key) -> usize {
        // lower[0] == 0 <= key always, so the partition point is >= 1.
        self.lower.partition_point(|&b| b <= key) - 1
    }

    /// Live position of a cell by identity — positions shift as other
    /// cells split/merge, ids never do.
    fn pos_of(&self, id: u64) -> Option<usize> {
        self.cells.iter().position(|c| c.id == id)
    }
}

/// The adaptation machinery attached by [`Sharded::build_adaptive`].
struct AdaptState {
    kinds: Vec<KindSpec>,
    side_cap: usize,
    tuner: Mutex<Tuner>,
}

/// A range-partitioned router over `1..=MAX_SHARDS` heterogeneous shard
/// cells (each a `Box<dyn ShardIndex>`), giving single-writer indexes a
/// [`ConcurrentIndex`] face plus ordered range scans — and, when built
/// with [`Sharded::build_adaptive`], online shard split/merge and
/// index-kind hot-swap driven by [`crate::tuner::Tuner`].
pub struct Sharded {
    table: RwLock<Table>,
    recorder: Recorder,
    /// Optional per-shard admission gate (overload backpressure). Lane
    /// count is fixed at gate creation; cells map to lanes modulo.
    admission: Option<Admission>,
    /// Deadline for the gate's short wait before a writer proceeds (or,
    /// via [`Sharded::try_insert`], is rejected with [`Saturated`]).
    admission_wait: Duration,
    /// Allow writes through an inner index's shared-reference
    /// [`crate::traits::NativeWriter`] surface under the cell *read*
    /// lock (the XIndex route). Off by default so the sharded and
    /// global-lock routes keep exclusive-writer semantics.
    allow_native: bool,
    /// Deferred-retrain mode, re-applied to indexes built by adaptation
    /// so a hot-swapped shard keeps the store's maintenance contract.
    defer_retrains: AtomicBool,
    adapt: Option<AdaptState>,
    next_cell_id: AtomicU64,
}

/// Hard cap on shard count — beyond this the boundary table itself starts
/// to cost a cache line per probe for no extra parallelism on any machine
/// this runs on.
pub const MAX_SHARDS: usize = 4096;

impl Sharded {
    /// Builds a sharded index from sorted `(key, value)` pairs,
    /// constructing each shard with `build` over its slice of the input.
    ///
    /// Boundaries are CDF-balanced: each shard receives an equal count of
    /// the bulk-load keys, so a skewed distribution still spreads load.
    /// Duplicate boundary samples (possible under duplicate-heavy or
    /// extremely skewed key sets) are deduplicated — the shard count
    /// shrinks rather than leaving an empty zero-width range. If `data`
    /// has fewer keys than requested shards (including the empty bulk
    /// load of a store that starts cold), boundaries fall back to a
    /// uniform split of the whole key domain.
    pub fn build_with<B: ShardIndex + 'static>(
        shards: usize,
        data: &[KeyValue],
        mut build: impl FnMut(&[KeyValue]) -> B,
    ) -> Self {
        Self::build_inner(shards, data, 0, &mut |chunk| Box::new(build(chunk)))
    }

    /// [`Sharded::build_with`] using the index's own bulk constructor:
    /// `Sharded::build::<MapIndex>(8, &data)`.
    pub fn build<I: ShardIndex + BulkBuildIndex + 'static>(
        shards: usize,
        data: &[KeyValue],
    ) -> Self {
        Self::build_with(shards, data, I::build)
    }

    /// Builds a self-tuning router: every shard starts as
    /// `cfg.kinds[cfg.initial]`, and [`Sharded::run_adaptation`] may
    /// split, merge, or hot-swap shards among the registered kinds.
    pub fn build_adaptive(shards: usize, data: &[KeyValue], cfg: AdaptiveConfig) -> Self {
        let AdaptiveConfig { kinds, initial, tuner, side_cap } = cfg;
        assert!(
            (initial as usize) < kinds.len(),
            "initial kind {initial} out of range ({} registered)",
            kinds.len()
        );
        let mut idx = {
            let spec = &kinds[initial as usize];
            Self::build_inner(shards, data, initial, &mut |chunk| (spec.build)(chunk))
        };
        idx.adapt = Some(AdaptState {
            kinds,
            side_cap,
            tuner: Mutex::with_class(li_sync::lock_class!("shard-tuner"), Tuner::new(tuner)),
        });
        idx
    }

    fn build_inner(
        shards: usize,
        data: &[KeyValue],
        kind: KindId,
        build: &mut dyn FnMut(&[KeyValue]) -> BoxShard,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(shards <= MAX_SHARDS, "too many shards ({shards} > {MAX_SHARDS})");
        debug_assert!(data.windows(2).all(|w| w[0].0 <= w[1].0), "bulk load keys must be sorted");
        let mut lower: Vec<Key> = vec![0];
        if data.len() >= shards {
            for s in 1..shards {
                let b = data[s * data.len() / shards].0;
                // Dedupe boundary samples: duplicate-heavy key sets can
                // repeat a sample, and an empty zero-width range would
                // break the strictly-increasing routing invariant.
                if lower.last().is_some_and(|&l| b > l) {
                    lower.push(b);
                }
            }
        } else if shards > 1 {
            // Too few keys to estimate a CDF: split the domain uniformly.
            // `step >= 1` because `shards <= MAX_SHARDS << Key::MAX`, so
            // these bounds are strictly increasing by construction.
            let step = Key::MAX / shards as Key;
            lower.extend((1..shards).map(|s| s as Key * step));
        }
        let mut cells = Vec::with_capacity(lower.len());
        let mut start = 0usize;
        let mut next_id = 0u64;
        for s in 0..lower.len() {
            let end = match lower.get(s + 1) {
                Some(&hi) => start + data[start..].partition_point(|kv| kv.0 < hi),
                None => data.len(),
            };
            cells.push(ShardCell::create(next_id, kind, build(&data[start..end])));
            next_id += 1;
            start = end;
        }
        Sharded {
            table: RwLock::with_class(li_sync::lock_class!("shard-table"), Table { lower, cells }),
            recorder: Recorder::disabled(),
            admission: None,
            admission_wait: Duration::from_micros(200),
            allow_native: false,
            defer_retrains: AtomicBool::new(false),
            adapt: None,
            next_cell_id: AtomicU64::new(next_id),
        }
    }

    /// Enables bounded per-shard admission: at most `per_shard` writers
    /// queued into any one shard; further writers short-wait up to
    /// `max_wait` (and [`Sharded::try_insert`] rejects with [`Saturated`]
    /// instead of waiting past the deadline).
    pub fn set_admission(&mut self, per_shard: usize, max_wait: Duration) {
        let lanes = self.table.read().cells.len();
        self.admission = Some(Admission::new(lanes, per_shard));
        self.admission_wait = max_wait;
    }

    /// Permits writes through an inner index's shared-reference
    /// [`crate::traits::NativeWriter`] under the cell read lock. Only
    /// meaningful when a shard's index exposes one (XIndex); everything
    /// else keeps using the exclusive path.
    pub fn set_allow_native(&mut self, on: bool) {
        self.allow_native = on;
    }

    /// `WouldBlock`-style write: admission failure after the short wait
    /// surfaces as `Err(Saturated)` rather than unbounded queueing.
    pub fn try_insert(&self, key: Key, value: Value) -> Result<Option<Value>, Saturated> {
        let t = self.table.read();
        let s = t.shard_of(key);
        let _admit = match &self.admission {
            Some(gate) => Some(gate.enter(s, self.admission_wait)?),
            None => None,
        };
        Ok(self.apply(&t, s, key, WriteOp::Put(value)))
    }

    /// Number of shards currently live (changes as adaptation splits and
    /// merges; below the build request when the bulk-load keys could not
    /// support that many distinct boundaries).
    pub fn shard_count(&self) -> usize {
        self.table.read().cells.len()
    }

    /// The strictly-increasing lower bound of each shard's key range at
    /// this instant; `boundaries()[0] == 0` and the last shard extends
    /// to [`Key::MAX`]. A snapshot — adaptation may change it.
    pub fn boundaries(&self) -> Vec<Key> {
        self.table.read().lower.clone()
    }

    /// Live key count per shard, in boundary order.
    pub fn shard_lens(&self) -> Vec<usize> {
        let t = self.table.read();
        t.cells.iter().map(|c| c.lock.read().index.len()).collect()
    }

    /// Registered-kind id per shard, in boundary order (all zero for
    /// static builds).
    pub fn shard_kinds(&self) -> Vec<KindId> {
        let t = self.table.read();
        t.cells.iter().map(|c| c.kind).collect()
    }

    /// Display label for a registered kind (`"static"` when built
    /// without adaptation).
    pub fn kind_label(&self, kind: KindId) -> &'static str {
        match self.adapt.as_ref().and_then(|a| a.kinds.get(kind as usize)) {
            Some(spec) => spec.label,
            None => "static",
        }
    }

    /// Whether this router was built with a kind table and tuner.
    pub fn is_adaptive(&self) -> bool {
        self.adapt.is_some()
    }

    #[cfg(test)]
    fn shard_of(&self, key: Key) -> usize {
        self.table.read().shard_of(key)
    }

    /// Runs `f` on the shard owning `key` under its read lock.
    pub fn with_shard<R>(&self, key: Key, f: impl FnOnce(&dyn ShardIndex) -> R) -> R {
        let t = self.table.read();
        let s = t.shard_of(key);
        let g = t.cells[s].lock.read();
        f(&*g.index)
    }

    /// Acquires a cell's write lock, charging contention to both the
    /// always-on cell counters (tuner input) and, when a telemetry
    /// recorder is attached, the [`Event::ShardLockWait`] counter and
    /// `LockWait` histogram.
    #[inline]
    fn write_cell<'a>(&self, cell: &'a ShardCell, s: usize) -> RwLockWriteGuard<'a, ShardState> {
        if let Some(g) = cell.lock.try_write() {
            return g;
        }
        let t0 = Instant::now();
        let g = cell.lock.write();
        let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        cell.stats.lock_wait_ns.fetch_add(ns, Ordering::Relaxed);
        self.recorder.shard_lock_wait(s, ns);
        g
    }

    /// Blocking admission for the infallible `ConcurrentIndex` surface:
    /// short-waits in rounds until admitted, charging each saturated
    /// round to the lock-wait telemetry so overload is visible.
    fn admit(&self, s: usize) -> Option<AdmissionGuard<'_>> {
        let gate = self.admission.as_ref()?;
        loop {
            match gate.enter(s, self.admission_wait) {
                Ok(g) => return Some(g),
                Err(Saturated) => {
                    self.recorder.shard_lock_wait(s, self.admission_wait.as_nanos() as u64);
                }
            }
        }
    }

    /// One routed write against shard `s` of table `t`: the native fast
    /// path (shared-reference write under the cell read lock) when the
    /// cell's kind supports it, no cutover is draining, and the router
    /// allows it — else the exclusive path, which also feeds the side
    /// log of an in-flight rebuild. The caller holds the table read lock
    /// (`t`), which is what makes the routed `(boundary, cell)` pair
    /// stable against concurrent cutovers for the whole op.
    fn apply(&self, t: &Table, s: usize, key: Key, op: WriteOp) -> Option<Value> {
        self.recorder.shard_write(s);
        let cell = &t.cells[s];
        cell.stats.writes.fetch_add(1, Ordering::Relaxed);
        if self.allow_native && cell.native {
            let g = cell.lock.read();
            // The side flag flips only under the cell write lock, which
            // excludes this read guard: checking and writing under one
            // guard cannot race a cutover opening the log.
            if g.side.is_none() {
                if let Some(w) = g.index.native_writer() {
                    return match op {
                        WriteOp::Put(v) => w.insert(key, v),
                        WriteOp::Del => w.remove(key),
                    };
                }
            }
        }
        let mut g = self.write_cell(cell, s);
        match op {
            WriteOp::Put(v) => {
                let prev = g.index.insert(key, v);
                if let Some(side) = g.side.as_mut() {
                    side.push(SideOp::Put(key, v));
                }
                prev
            }
            WriteOp::Del => {
                let prev = g.index.remove(key);
                if let Some(side) = g.side.as_mut() {
                    side.push(SideOp::Del(key));
                }
                prev
            }
        }
    }
}

/// A routed write, so insert and remove share one code path.
enum WriteOp {
    Put(Value),
    Del,
}

// ---------------------------------------------------------------------------
// Online adaptation: split / merge / kind swap + the tuner loop.
// ---------------------------------------------------------------------------

impl Sharded {
    fn next_id(&self) -> u64 {
        self.next_cell_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Samples the always-on per-cell counters into tuner observations.
    fn observe_cells(&self) -> Vec<ShardObs> {
        let t = self.table.read();
        t.cells
            .iter()
            .enumerate()
            .map(|(position, c)| {
                let (len, pending) = {
                    let g = c.lock.read();
                    (g.index.len(), g.index.pending_retrains())
                };
                ShardObs {
                    cell: c.id,
                    position,
                    kind: c.kind,
                    len,
                    reads: c.stats.reads.load(Ordering::Relaxed),
                    writes: c.stats.writes.load(Ordering::Relaxed),
                    lock_wait_ns: c.stats.lock_wait_ns.load(Ordering::Relaxed),
                    pending_retrains: pending,
                }
            })
            .collect()
    }

    /// One adaptation epoch: sample counters, ask the tuner, execute its
    /// decisions. Returns the number of structural actions that
    /// *committed*; an aborted cutover (e.g. side-log overflow) charges
    /// the tuner's cooldown instead. Called by Viper's maintenance
    /// worker via [`ConcurrentIndex::run_adaptation`]; a no-op (0) for
    /// static builds.
    pub fn run_adaptation(&self) -> usize {
        let Some(adapt) = self.adapt.as_ref() else { return 0 };
        let obs = self.observe_cells();
        let actions = adapt.tuner.lock().observe(&obs);
        let mut done = 0usize;
        for a in actions {
            self.recorder.event(Event::TunerDecision);
            let ok = match a {
                TunerAction::Split { shard } => self.split_shard(shard).is_ok(),
                TunerAction::Merge { left } => self.merge_shards(left).is_ok(),
                TunerAction::Swap { shard, to } => self.swap_kind(shard, to).is_ok(),
            };
            if ok {
                done += 1;
            } else {
                adapt.tuner.lock().penalize();
            }
        }
        done
    }

    /// Cuts the shard at position `shard` at its median key into two
    /// cells of the same kind. Test/operator entry point; the tuner
    /// takes the same path.
    pub fn force_split(&self, shard: usize) -> Result<(), AdaptError> {
        self.split_shard(shard)
    }

    /// Folds shards `left` and `left + 1` into one cell of `left`'s kind.
    pub fn force_merge(&self, left: usize) -> Result<(), AdaptError> {
        self.merge_shards(left)
    }

    /// Rebuilds the shard at position `shard` under registered kind `to`
    /// and cuts over atomically. No-op `Ok` if already that kind.
    pub fn force_swap(&self, shard: usize, to: KindId) -> Result<(), AdaptError> {
        self.swap_kind(shard, to)
    }

    /// Resolves position `s` to its cell and range under the table read
    /// lock, without holding any lock afterwards.
    fn cell_at(&self, s: usize) -> Result<Arc<ShardCell>, AdaptError> {
        let t = self.table.read();
        match t.cells.get(s) {
            Some(c) => Ok(Arc::clone(c)),
            None => Err(AdaptError::Stale),
        }
    }

    /// Phase 1 of a cutover: opens the side log on `cell` under its
    /// write lock. From here until commit (or [`Sharded::cancel_side`]),
    /// every write to the cell is applied to the live index *and*
    /// logged, and the native fast path stands down.
    fn open_side(cell: &ShardCell, cap: usize) -> Result<(), AdaptError> {
        let mut g = cell.lock.write();
        if g.side.is_some() {
            return Err(AdaptError::Busy);
        }
        g.side = Some(SideLog::new(cap));
        Ok(())
    }

    /// Abandons an in-flight cutover: drops the log. Safe because logged
    /// writes were also applied to the live index.
    fn cancel_side(cell: &ShardCell) {
        cell.lock.write().side = None;
    }

    /// Phase 2: snapshots the cell's full contents under its read lock.
    /// Concurrent readers proceed; concurrent writers serialize behind
    /// the write lock and land in the side log.
    fn snapshot(cell: &ShardCell) -> Vec<KeyValue> {
        cell.lock.read().index.range_vec(0, Key::MAX)
    }

    /// Phase 3 helper: builds a replacement index under registered kind
    /// `kind`, threading through the recorder and deferred-retrain mode.
    fn build_kind(
        &self,
        adapt: &AdaptState,
        kind: KindId,
        data: &[KeyValue],
    ) -> Result<BoxShard, AdaptError> {
        let Some(spec) = adapt.kinds.get(kind as usize) else { return Err(AdaptError::Stale) };
        let mut idx = (spec.build)(data);
        idx.set_recorder(self.recorder.clone());
        if self.defer_retrains.load(Ordering::Acquire) {
            idx.set_defer_retrains(true);
        }
        Ok(idx)
    }

    fn swap_kind(&self, s: usize, to: KindId) -> Result<(), AdaptError> {
        let Some(adapt) = self.adapt.as_ref() else { return Err(AdaptError::NotAdaptive) };
        if adapt.kinds.get(to as usize).is_none() {
            return Err(AdaptError::Stale);
        }
        let cell = self.cell_at(s)?;
        if cell.kind == to {
            return Ok(());
        }
        Self::open_side(&cell, adapt.side_cap)?;
        let snap = Self::snapshot(&cell);
        let new_index = match self.build_kind(adapt, to, &snap) {
            Ok(i) => i,
            Err(e) => {
                Self::cancel_side(&cell);
                return Err(e);
            }
        };
        self.commit_swap(&cell, to, new_index)
    }

    /// Phase 4 for a kind swap: under the table write lock (the epoch
    /// barrier — granted only once no op holds the table read side) and
    /// the cell write lock, replay the side log into the replacement and
    /// publish a fresh cell. Any early return leaves the live index
    /// intact with every write applied.
    fn commit_swap(
        &self,
        cell: &ShardCell,
        to: KindId,
        mut new_index: BoxShard,
    ) -> Result<(), AdaptError> {
        let mut t = self.table.write();
        let mut g = cell.lock.write();
        let Some(side) = g.side.take() else { return Err(AdaptError::Busy) };
        if side.overflowed {
            return Err(AdaptError::SideOverflow);
        }
        for op in &side.ops {
            match *op {
                SideOp::Put(k, v) => {
                    new_index.insert(k, v);
                }
                SideOp::Del(k) => {
                    new_index.remove(k);
                }
            }
        }
        let Some(pos) = t.pos_of(cell.id) else { return Err(AdaptError::Stale) };
        drop(g);
        t.cells[pos] = ShardCell::create(self.next_id(), to, new_index);
        self.recorder.event(Event::KindSwap);
        Ok(())
    }

    fn split_shard(&self, s: usize) -> Result<(), AdaptError> {
        let Some(adapt) = self.adapt.as_ref() else { return Err(AdaptError::NotAdaptive) };
        let cell = self.cell_at(s)?;
        Self::open_side(&cell, adapt.side_cap)?;
        let snap = Self::snapshot(&cell);
        let mid = snap.len() / 2;
        if mid == 0 {
            Self::cancel_side(&cell);
            return Err(AdaptError::CannotSplit);
        }
        let b = snap[mid].0;
        let left = match self.build_kind(adapt, cell.kind, &snap[..mid]) {
            Ok(i) => i,
            Err(e) => {
                Self::cancel_side(&cell);
                return Err(e);
            }
        };
        let right = match self.build_kind(adapt, cell.kind, &snap[mid..]) {
            Ok(i) => i,
            Err(e) => {
                Self::cancel_side(&cell);
                return Err(e);
            }
        };
        self.commit_split(&cell, b, left, right)
    }

    fn commit_split(
        &self,
        cell: &ShardCell,
        b: Key,
        mut left: BoxShard,
        mut right: BoxShard,
    ) -> Result<(), AdaptError> {
        let mut t = self.table.write();
        let mut g = cell.lock.write();
        let Some(side) = g.side.take() else { return Err(AdaptError::Busy) };
        if side.overflowed {
            return Err(AdaptError::SideOverflow);
        }
        if t.cells.len() >= MAX_SHARDS {
            return Err(AdaptError::Limit);
        }
        let Some(pos) = t.pos_of(cell.id) else { return Err(AdaptError::Stale) };
        // The new boundary must cut strictly inside the cell's range or
        // routing would break; a cell whose keys collapsed onto its lower
        // bound since the snapshot cannot be split.
        if b <= t.lower[pos] {
            return Err(AdaptError::CannotSplit);
        }
        if let Some(&hi) = t.lower.get(pos + 1) {
            if b >= hi {
                return Err(AdaptError::Stale);
            }
        }
        for op in &side.ops {
            match *op {
                SideOp::Put(k, v) => {
                    if k < b {
                        left.insert(k, v);
                    } else {
                        right.insert(k, v);
                    }
                }
                SideOp::Del(k) => {
                    if k < b {
                        left.remove(k);
                    } else {
                        right.remove(k);
                    }
                }
            }
        }
        drop(g);
        let kind = cell.kind;
        t.lower.insert(pos + 1, b);
        t.cells[pos] = ShardCell::create(self.next_id(), kind, left);
        t.cells.insert(pos + 1, ShardCell::create(self.next_id(), kind, right));
        self.recorder.event(Event::ShardSplit);
        Ok(())
    }

    fn merge_shards(&self, s: usize) -> Result<(), AdaptError> {
        let Some(adapt) = self.adapt.as_ref() else { return Err(AdaptError::NotAdaptive) };
        let (c1, c2) = {
            let t = self.table.read();
            if t.cells.len() < 2 {
                return Err(AdaptError::Limit);
            }
            let Some(c1) = t.cells.get(s) else { return Err(AdaptError::Stale) };
            let Some(c2) = t.cells.get(s + 1) else { return Err(AdaptError::Stale) };
            (Arc::clone(c1), Arc::clone(c2))
        };
        // Open both side logs left-to-right (commit locks in the same
        // order; op writers only ever hold one cell lock).
        Self::open_side(&c1, adapt.side_cap)?;
        if let Err(e) = Self::open_side(&c2, adapt.side_cap) {
            Self::cancel_side(&c1);
            return Err(e);
        }
        let mut snap = Self::snapshot(&c1);
        snap.extend(Self::snapshot(&c2));
        let merged = match self.build_kind(adapt, c1.kind, &snap) {
            Ok(i) => i,
            Err(e) => {
                Self::cancel_side(&c1);
                Self::cancel_side(&c2);
                return Err(e);
            }
        };
        self.commit_merge(&c1, &c2, merged)
    }

    fn commit_merge(
        &self,
        c1: &ShardCell,
        c2: &ShardCell,
        mut merged: BoxShard,
    ) -> Result<(), AdaptError> {
        let mut t = self.table.write();
        let mut g1 = c1.lock.write();
        let mut g2 = c2.lock.write();
        let (Some(s1), Some(s2)) = (g1.side.take(), g2.side.take()) else {
            return Err(AdaptError::Busy);
        };
        if s1.overflowed || s2.overflowed {
            return Err(AdaptError::SideOverflow);
        }
        let Some(pos) = t.pos_of(c1.id) else { return Err(AdaptError::Stale) };
        match t.cells.get(pos + 1) {
            Some(c) if c.id == c2.id => {}
            _ => return Err(AdaptError::Stale),
        }
        // The two logs cover disjoint key ranges, so relative order
        // between them is irrelevant; within each, log order is applied.
        for op in s1.ops.iter().chain(s2.ops.iter()) {
            match *op {
                SideOp::Put(k, v) => {
                    merged.insert(k, v);
                }
                SideOp::Del(k) => {
                    merged.remove(k);
                }
            }
        }
        drop(g2);
        drop(g1);
        let kind = c1.kind;
        t.lower.remove(pos + 1);
        t.cells[pos] = ShardCell::create(self.next_id(), kind, merged);
        t.cells.remove(pos + 1);
        self.recorder.event(Event::ShardMerge);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Trait faces.
// ---------------------------------------------------------------------------

impl Index for Sharded {
    fn name(&self) -> &'static str {
        let t = self.table.read();
        match t.cells.first() {
            Some(c) => c.lock.read().index.name(),
            None => "sharded",
        }
    }

    fn len(&self) -> usize {
        let t = self.table.read();
        t.cells.iter().map(|c| c.lock.read().index.len()).sum()
    }

    fn get(&self, key: Key) -> Option<Value> {
        let t = self.table.read();
        let s = t.shard_of(key);
        self.recorder.shard_read(s);
        let cell = &t.cells[s];
        cell.stats.reads.fetch_add(1, Ordering::Relaxed);
        let g = cell.lock.read();
        g.index.get(key)
    }

    fn index_size_bytes(&self) -> usize {
        let t = self.table.read();
        t.lower.len() * core::mem::size_of::<Key>()
            + t.cells.iter().map(|c| c.lock.read().index.index_size_bytes()).sum::<usize>()
    }

    fn data_size_bytes(&self) -> usize {
        let t = self.table.read();
        t.cells.iter().map(|c| c.lock.read().index.data_size_bytes()).sum()
    }

    /// Keeps the recorder for routing/lock-wait metrics and forwards a
    /// clone into every live shard; indexes built by later adaptation
    /// inherit it via [`Sharded::build_kind`].
    fn set_recorder(&mut self, recorder: Recorder) {
        {
            let t = self.table.read();
            for c in &t.cells {
                c.lock.write().index.set_recorder(recorder.clone());
            }
        }
        self.recorder = recorder;
    }
}

impl OrderedIndex for Sharded {
    /// Scans shard by shard in boundary order; per-shard output is ordered
    /// and shards partition the key space, so the result is globally
    /// ordered. Cell locks are taken one shard at a time; the table read
    /// lock is held for the whole scan so the boundary walk stays
    /// consistent against concurrent cutovers.
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        let t = self.table.read();
        for s in t.shard_of(lo)..t.cells.len() {
            if t.lower[s] > hi {
                break;
            }
            // A scan is read traffic to every cell it visits: without
            // this, a scan-heavy shard looks idle (or write-heavy) to
            // the tuner and the shard-bank telemetry.
            self.recorder.shard_read(s);
            t.cells[s].stats.reads.fetch_add(1, Ordering::Relaxed);
            t.cells[s].lock.read().index.range(lo, hi, out);
        }
    }
}

impl ConcurrentIndex for Sharded {
    fn get(&self, key: Key) -> Option<Value> {
        Index::get(self, key)
    }

    fn insert(&self, key: Key, value: Value) -> Option<Value> {
        let t = self.table.read();
        let s = t.shard_of(key);
        let _admit = self.admit(s);
        self.apply(&t, s, key, WriteOp::Put(value))
    }

    fn remove(&self, key: Key) -> Option<Value> {
        let t = self.table.read();
        let s = t.shard_of(key);
        let _admit = self.admit(s);
        self.apply(&t, s, key, WriteOp::Del)
    }

    fn len(&self) -> usize {
        Index::len(self)
    }

    /// Forwards deferral into every live shard (under its write lock) and
    /// remembers the mode for shards built by later adaptation; true when
    /// any shard supports it.
    fn set_defer_retrains(&self, on: bool) -> bool {
        self.defer_retrains.store(on, Ordering::Release);
        let t = self.table.read();
        let mut any = false;
        for c in &t.cells {
            any |= c.lock.write().index.set_defer_retrains(on);
        }
        any
    }

    fn pending_retrains(&self) -> usize {
        let t = self.table.read();
        t.cells.iter().map(|c| c.lock.read().index.pending_retrains()).sum()
    }

    /// Drains queued retrains shard by shard, never holding more than one
    /// cell write lock, so foreground writers only contend for the shard
    /// actually being maintained.
    fn run_pending_retrains(&self, budget: usize) -> usize {
        let t = self.table.read();
        let mut done = 0;
        for c in &t.cells {
            if done >= budget {
                break;
            }
            if c.lock.read().index.pending_retrains() == 0 {
                continue;
            }
            done += c.lock.write().index.run_pending_retrains(budget - done);
        }
        done
    }

    fn run_adaptation(&self) -> usize {
        Sharded::run_adaptation(self)
    }

    /// The shard this key routes to under the current boundary table.
    /// Advisory only: adaptation may re-cut boundaries between the hint
    /// and a later operation, which is fine — hints steer coalescing,
    /// correctness never depends on them.
    fn shard_hint(&self, key: Key) -> usize {
        self.table.read().shard_of(key)
    }
}

/// Lock-free bridge for natively write-concurrent indexes (XIndex): the
/// same trait surface [`Sharded`] provides, with every call passed straight
/// through — no router, no locks.
pub struct Native<C>(pub C);

impl<C> Native<C> {
    pub fn into_inner(self) -> C {
        self.0
    }
}

impl<C> core::ops::Deref for Native<C> {
    type Target = C;
    fn deref(&self) -> &C {
        &self.0
    }
}

impl<C: Index> Index for Native<C> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn get(&self, key: Key) -> Option<Value> {
        self.0.get(key)
    }
    fn index_size_bytes(&self) -> usize {
        self.0.index_size_bytes()
    }
    fn data_size_bytes(&self) -> usize {
        self.0.data_size_bytes()
    }
    fn set_recorder(&mut self, recorder: Recorder) {
        self.0.set_recorder(recorder);
    }
}

impl<C: OrderedIndex> OrderedIndex for Native<C> {
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        self.0.range(lo, hi, out);
    }
}

impl<C: ConcurrentIndex> ConcurrentIndex for Native<C> {
    fn get(&self, key: Key) -> Option<Value> {
        ConcurrentIndex::get(&self.0, key)
    }
    fn insert(&self, key: Key, value: Value) -> Option<Value> {
        ConcurrentIndex::insert(&self.0, key, value)
    }
    fn remove(&self, key: Key) -> Option<Value> {
        ConcurrentIndex::remove(&self.0, key)
    }
    fn len(&self) -> usize {
        ConcurrentIndex::len(&self.0)
    }
    fn set_defer_retrains(&self, on: bool) -> bool {
        self.0.set_defer_retrains(on)
    }
    fn pending_retrains(&self) -> usize {
        self.0.pending_retrains()
    }
    fn run_pending_retrains(&self, budget: usize) -> usize {
        self.0.run_pending_retrains(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::NativeWriter;
    use std::collections::BTreeMap;

    /// Minimal single-writer index for exercising the router.
    #[derive(Default)]
    struct MapIndex(BTreeMap<Key, Value>);

    impl Index for MapIndex {
        fn name(&self) -> &'static str {
            "map"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.0.get(&key).copied()
        }
        fn index_size_bytes(&self) -> usize {
            self.0.len() * 48
        }
        fn data_size_bytes(&self) -> usize {
            0
        }
    }

    impl UpdatableIndex for MapIndex {
        fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
            self.0.insert(key, value)
        }
        fn remove(&mut self, key: Key) -> Option<Value> {
            self.0.remove(&key)
        }
    }

    impl OrderedIndex for MapIndex {
        fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
            out.extend(self.0.range(lo..=hi).map(|(&k, &v)| (k, v)));
        }
    }

    impl BulkBuildIndex for MapIndex {
        fn build(data: &[KeyValue]) -> Self {
            MapIndex(data.iter().copied().collect())
        }
    }

    /// Second kind for heterogeneous/adaptive tests: sorted-array index.
    struct VecIndex(Vec<KeyValue>);

    impl Index for VecIndex {
        fn name(&self) -> &'static str {
            "vec"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.0.binary_search_by_key(&key, |kv| kv.0).ok().map(|i| self.0[i].1)
        }
        fn index_size_bytes(&self) -> usize {
            0
        }
        fn data_size_bytes(&self) -> usize {
            self.0.len() * core::mem::size_of::<KeyValue>()
        }
    }

    impl UpdatableIndex for VecIndex {
        fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
            match self.0.binary_search_by_key(&key, |kv| kv.0) {
                Ok(i) => Some(core::mem::replace(&mut self.0[i].1, value)),
                Err(i) => {
                    self.0.insert(i, (key, value));
                    None
                }
            }
        }
        fn remove(&mut self, key: Key) -> Option<Value> {
            match self.0.binary_search_by_key(&key, |kv| kv.0) {
                Ok(i) => Some(self.0.remove(i).1),
                Err(_) => None,
            }
        }
    }

    impl OrderedIndex for VecIndex {
        fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
            let s = self.0.partition_point(|kv| kv.0 < lo);
            out.extend(self.0[s..].iter().take_while(|kv| kv.0 <= hi));
        }
    }

    impl BulkBuildIndex for VecIndex {
        fn build(data: &[KeyValue]) -> Self {
            VecIndex(data.to_vec())
        }
    }

    fn two_kinds() -> Vec<KindSpec> {
        vec![KindSpec::of::<MapIndex>("map"), KindSpec::of::<VecIndex>("vec")]
    }

    #[test]
    fn cdf_balanced_boundaries_balance_skew() {
        // 90% of keys in [0, 1000), the rest spread to u64::MAX: an MSB
        // split would put 90% of keys in shard 0.
        let mut data: Vec<KeyValue> = (0..900u64).map(|i| (i, i)).collect();
        data.extend((1..=100u64).map(|i| (i << 40, i)));
        let idx = Sharded::build::<MapIndex>(8, &data);
        assert_eq!(Index::len(&idx), 1_000);
        let max_shard = idx.shard_lens().into_iter().max().unwrap();
        assert!(max_shard <= 2 * 1_000 / idx.shard_count(), "unbalanced: {max_shard}");
    }

    #[test]
    fn duplicate_heavy_bulk_load_dedupes_boundaries() {
        // 1000 entries over only 4 distinct keys: CDF sampling repeats the
        // same boundary key, which used to leave zero-width shard ranges
        // that broke the strictly-increasing routing invariant.
        let mut data: Vec<KeyValue> = (0..1_000u64).map(|i| ((i % 4) * 1_000, i)).collect();
        data.sort_unstable_by_key(|kv| kv.0);
        let idx = Sharded::build::<MapIndex>(8, &data);
        let lower = idx.boundaries();
        assert!(lower.windows(2).all(|w| w[0] < w[1]), "boundaries must strictly increase");
        assert!(idx.shard_count() <= 4, "4 distinct keys cannot support 8 shards");
        assert_eq!(Index::len(&idx), 4, "BTreeMap keeps the last value per duplicate key");
        for k in [0u64, 1_000, 2_000, 3_000] {
            assert!(Index::get(&idx, k).is_some());
        }
    }

    #[test]
    fn routes_every_key_to_the_shard_that_built_it() {
        let data: Vec<KeyValue> = (0..5_000u64).map(|i| (i * 97 + 3, i)).collect();
        let idx = Sharded::build::<MapIndex>(16, &data);
        for &(k, v) in data.iter().step_by(53) {
            assert_eq!(Index::get(&idx, k), Some(v));
            assert_eq!(Index::get(&idx, k + 1), None);
        }
        assert_eq!(Index::get(&idx, Key::MAX), None);
        assert_eq!(Index::get(&idx, 0), None);
    }

    #[test]
    fn empty_bulk_load_still_shards_the_domain() {
        let idx = Sharded::build::<MapIndex>(8, &[]);
        assert_eq!(idx.shard_count(), 8);
        assert_eq!(ConcurrentIndex::insert(&idx, 5, 50), None);
        assert_eq!(ConcurrentIndex::insert(&idx, Key::MAX, 1), None);
        assert_eq!(ConcurrentIndex::get(&idx, 5), Some(50));
        assert_eq!(ConcurrentIndex::len(&idx), 2);
        // The two keys landed on different shards of the uniform split.
        assert_ne!(idx.shard_of(5), idx.shard_of(Key::MAX));
    }

    #[test]
    fn range_scans_cross_shard_boundaries_in_order() {
        let data: Vec<KeyValue> = (0..2_000u64).map(|i| (i * 10, i)).collect();
        let idx = Sharded::build::<MapIndex>(7, &data);
        let got = idx.range_vec(995, 10_255);
        let expect: Vec<KeyValue> =
            data.iter().copied().filter(|&(k, _)| (995..=10_255).contains(&k)).collect();
        assert_eq!(got, expect);
        assert_eq!(idx.range_vec(0, Key::MAX).len(), 2_000);
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let data: Vec<KeyValue> = (0..8_000u64).map(|i| (i * 8, 0)).collect();
        let idx = Arc::new(Sharded::build::<MapIndex>(16, &data));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let idx = Arc::clone(&idx);
            handles.push(li_sync::thread::spawn(move || {
                for i in 0..1_000u64 {
                    // Own every key ≡ t (mod 8): updates of loaded keys and
                    // inserts of fresh ones, interleaved across all shards.
                    let k = i * 64 + t;
                    ConcurrentIndex::insert(&*idx, k, t + 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ConcurrentIndex::len(&*idx), 8_000 + 7_000);
        assert_eq!(ConcurrentIndex::get(&*idx, 64 + 1), Some(2));
    }

    #[test]
    fn admission_caps_in_flight_writers() {
        let gate = Arc::new(Admission::new(1, 2));
        let g1 = gate.try_enter(0).unwrap();
        let _g2 = gate.try_enter(0).unwrap();
        assert!(gate.try_enter(0).is_none(), "third entrant must be rejected");
        assert_eq!(gate.enter(0, Duration::from_millis(1)).err(), Some(Saturated));
        assert_eq!(gate.in_flight(0), 2);
        drop(g1);
        assert!(gate.try_enter(0).is_some(), "slot frees on guard drop");

        // Concurrent hammering never observes more than `limit` inside.
        let gate = Arc::new(Admission::new(4, 3));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let gate = Arc::clone(&gate);
                let peak = Arc::clone(&peak);
                li_sync::thread::spawn(move || {
                    for i in 0..500usize {
                        let lane = (t + i) % 4;
                        let _g = loop {
                            if let Some(g) = gate.try_enter(lane) {
                                break g;
                            }
                            li_sync::thread::yield_now();
                        };
                        peak.fetch_max(gate.in_flight(lane), Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::Relaxed) <= 3, "admission bound violated");
        for lane in 0..4 {
            assert_eq!(gate.in_flight(lane), 0, "all slots released");
        }
    }

    #[test]
    fn sharded_insert_respects_admission_and_try_insert_rejects() {
        let data: Vec<KeyValue> = (0..1_000u64).map(|i| (i * 8, i)).collect();
        let mut idx = Sharded::build::<MapIndex>(4, &data);
        idx.set_admission(1, Duration::from_millis(1));
        // Uncontended: the gate is invisible.
        assert_eq!(ConcurrentIndex::insert(&idx, 3, 30), None);
        assert_eq!(idx.try_insert(3, 31).unwrap(), Some(30));
        // Saturate the lane by hand: try_insert must reject, not queue.
        let lane = idx.shard_of(3);
        let gate = idx.admission.as_ref().unwrap();
        let _hold = gate.try_enter(lane).unwrap();
        assert_eq!(idx.try_insert(3, 32), Err(Saturated));
        assert_eq!(Index::get(&idx, 3), Some(31), "rejected write must not apply");
    }

    #[test]
    fn sharded_forwards_deferred_retraining() {
        use crate::pieces::assembled::{PiecewiseConfig, PiecewiseIndex};

        let data: Vec<KeyValue> = (0..20_000u64).map(|i| (i * 4, i)).collect();
        let idx = Sharded::build_with(8, &data, |chunk| {
            PiecewiseIndex::build_with(PiecewiseConfig::default(), chunk)
        });
        assert!(ConcurrentIndex::set_defer_retrains(&idx, true));
        let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
        for n in 0..30_000u64 {
            let k = (n.wrapping_mul(0x9e3779b97f4a7c15) >> 16) % 100_000;
            assert_eq!(ConcurrentIndex::insert(&idx, k, n), model.insert(k, n), "insert {k}");
        }
        let parked = ConcurrentIndex::pending_retrains(&idx);
        assert!(parked > 0, "heavy churn must park retrains");
        // Budgeted drain makes progress without clearing everything.
        let ran = ConcurrentIndex::run_pending_retrains(&idx, 1);
        assert_eq!(ran, 1);
        // Full drain empties the queue; correctness holds throughout.
        while ConcurrentIndex::run_pending_retrains(&idx, 64) > 0 {}
        assert_eq!(ConcurrentIndex::pending_retrains(&idx), 0);
        assert_eq!(ConcurrentIndex::len(&idx), model.len());
        for (&k, &v) in model.iter().step_by(37) {
            assert_eq!(ConcurrentIndex::get(&idx, k), Some(v));
        }
    }

    #[test]
    fn native_bridge_passes_through() {
        #[derive(Default)]
        struct CountingMap(li_sync::sync::Mutex<BTreeMap<Key, Value>>);
        impl ConcurrentIndex for CountingMap {
            fn get(&self, key: Key) -> Option<Value> {
                self.0.lock().get(&key).copied()
            }
            fn insert(&self, key: Key, value: Value) -> Option<Value> {
                self.0.lock().insert(key, value)
            }
            fn remove(&self, key: Key) -> Option<Value> {
                self.0.lock().remove(&key)
            }
            fn len(&self) -> usize {
                self.0.lock().len()
            }
        }
        let n = Native(CountingMap::default());
        assert_eq!(ConcurrentIndex::insert(&n, 1, 10), None);
        assert_eq!(ConcurrentIndex::get(&n, 1), Some(10));
        assert_eq!(ConcurrentIndex::remove(&n, 1), Some(10));
        assert_eq!(ConcurrentIndex::len(&n), 0);
    }

    #[test]
    fn native_write_path_used_only_when_allowed_and_idle() {
        /// A shard index exposing a shared-reference write surface, with a
        /// call counter threaded out through an `Arc` (the router only sees
        /// `dyn ShardIndex`, so the test cannot downcast to inspect it).
        struct NativeMap {
            map: li_sync::sync::Mutex<BTreeMap<Key, Value>>,
            native_calls: Arc<AtomicU64>,
        }
        impl Index for NativeMap {
            fn name(&self) -> &'static str {
                "native-map"
            }
            fn len(&self) -> usize {
                self.map.lock().len()
            }
            fn get(&self, key: Key) -> Option<Value> {
                self.map.lock().get(&key).copied()
            }
            fn index_size_bytes(&self) -> usize {
                0
            }
            fn data_size_bytes(&self) -> usize {
                0
            }
            fn native_writer(&self) -> Option<&dyn NativeWriter> {
                Some(self)
            }
        }
        impl NativeWriter for NativeMap {
            fn insert(&self, key: Key, value: Value) -> Option<Value> {
                self.native_calls.fetch_add(1, Ordering::Relaxed);
                self.map.lock().insert(key, value)
            }
            fn remove(&self, key: Key) -> Option<Value> {
                self.native_calls.fetch_add(1, Ordering::Relaxed);
                self.map.lock().remove(&key)
            }
        }
        impl UpdatableIndex for NativeMap {
            fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
                self.map.lock().insert(key, value)
            }
            fn remove(&mut self, key: Key) -> Option<Value> {
                self.map.lock().remove(&key)
            }
        }
        impl OrderedIndex for NativeMap {
            fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
                out.extend(self.map.lock().range(lo..=hi).map(|(&k, &v)| (k, v)));
            }
        }

        let data: Vec<KeyValue> = (0..100u64).map(|i| (i, i)).collect();
        let native_calls = Arc::new(AtomicU64::new(0));
        let nc = Arc::clone(&native_calls);
        let mut idx = Sharded::build_with(1, &data, move |chunk| NativeMap {
            map: li_sync::sync::Mutex::new(chunk.iter().copied().collect()),
            native_calls: Arc::clone(&nc),
        });

        // Off by default: writes take the exclusive path.
        assert_eq!(ConcurrentIndex::insert(&idx, 200, 1), None);
        assert_eq!(native_calls.load(Ordering::Relaxed), 0);

        idx.set_allow_native(true);
        assert_eq!(ConcurrentIndex::insert(&idx, 201, 2), None);
        assert_eq!(ConcurrentIndex::remove(&idx, 201), Some(2));
        assert_eq!(native_calls.load(Ordering::Relaxed), 2, "native path must be used");

        // With a cutover side log open, the native path stands down so the
        // write is both applied and logged.
        let cell = {
            let t = idx.table.read();
            Arc::clone(&t.cells[0])
        };
        Sharded::open_side(&cell, 16).unwrap();
        assert_eq!(ConcurrentIndex::insert(&idx, 202, 3), None);
        assert_eq!(native_calls.load(Ordering::Relaxed), 2, "native path must stand down");
        assert_eq!(cell.lock.read().side.as_ref().unwrap().ops.len(), 1);
        Sharded::cancel_side(&cell);
        assert_eq!(ConcurrentIndex::insert(&idx, 203, 4), None);
        assert_eq!(native_calls.load(Ordering::Relaxed), 3, "native path resumes after cancel");
        assert_eq!(ConcurrentIndex::get(&idx, 202), Some(3));
    }

    #[test]
    fn static_builds_refuse_adaptation() {
        let data: Vec<KeyValue> = (0..100u64).map(|i| (i, i)).collect();
        let idx = Sharded::build::<MapIndex>(2, &data);
        assert!(!idx.is_adaptive());
        assert_eq!(idx.force_split(0), Err(AdaptError::NotAdaptive));
        assert_eq!(idx.force_merge(0), Err(AdaptError::NotAdaptive));
        assert_eq!(idx.force_swap(0, 1), Err(AdaptError::NotAdaptive));
        assert_eq!(idx.run_adaptation(), 0);
        assert_eq!(idx.kind_label(0), "static");
    }

    #[test]
    fn forced_split_merge_and_swap_preserve_contents() {
        let data: Vec<KeyValue> = (0..4_000u64).map(|i| (i * 3, i)).collect();
        let mut idx = Sharded::build_adaptive(4, &data, AdaptiveConfig::new(two_kinds(), 0));
        let rec = Recorder::enabled();
        idx.set_recorder(rec.clone());
        let before = idx.range_vec(0, Key::MAX);

        assert_eq!(idx.shard_count(), 4);
        idx.force_split(1).unwrap();
        assert_eq!(idx.shard_count(), 5);
        let lower = idx.boundaries();
        assert!(lower.windows(2).all(|w| w[0] < w[1]), "split boundary must stay strict");

        idx.force_merge(1).unwrap();
        assert_eq!(idx.shard_count(), 4);

        assert_eq!(idx.shard_kinds(), vec![0, 0, 0, 0]);
        idx.force_swap(2, 1).unwrap();
        assert_eq!(idx.shard_kinds(), vec![0, 0, 1, 0]);
        assert_eq!(idx.kind_label(1), "vec");
        idx.force_swap(2, 1).unwrap(); // same-kind swap is a no-op Ok

        assert_eq!(idx.range_vec(0, Key::MAX), before, "adaptation must not change contents");
        let s = rec.snapshot();
        assert_eq!(s.event(Event::ShardSplit), 1);
        assert_eq!(s.event(Event::ShardMerge), 1);
        assert_eq!(s.event(Event::KindSwap), 1, "no-op swap must not emit an event");

        // The router keeps serving after the layout changed.
        assert_eq!(ConcurrentIndex::insert(&idx, 1, 999), None);
        assert_eq!(ConcurrentIndex::get(&idx, 1), Some(999));
        assert_eq!(ConcurrentIndex::remove(&idx, 1), Some(999));
    }

    #[test]
    fn split_refuses_unsplittable_shards() {
        let data: Vec<KeyValue> = vec![(10, 1)];
        let idx = Sharded::build_adaptive(1, &data, AdaptiveConfig::new(two_kinds(), 0));
        assert_eq!(idx.force_split(0), Err(AdaptError::CannotSplit), "one key cannot split");
        assert_eq!(idx.force_merge(0), Err(AdaptError::Limit), "one shard cannot merge");
        assert_eq!(idx.force_split(5), Err(AdaptError::Stale), "out-of-range position");
    }

    #[test]
    fn writes_during_cutover_drain_through_the_side_log() {
        let data: Vec<KeyValue> = (0..2_000u64).map(|i| (i * 2, i)).collect();
        let idx = Sharded::build_adaptive(2, &data, AdaptiveConfig::new(two_kinds(), 0));
        let cell = {
            let t = idx.table.read();
            Arc::clone(&t.cells[0])
        };
        // Simulate the build window by hand: open the side log, write
        // through the public surface, then run the commit path.
        Sharded::open_side(&cell, 1 << 10).unwrap();
        let snap = Sharded::snapshot(&cell);
        assert_eq!(ConcurrentIndex::insert(&idx, 1, 111), None); // fresh key, logged
        assert_eq!(ConcurrentIndex::remove(&idx, 0), Some(0)); // bulk key, logged
        let adapt = idx.adapt.as_ref().unwrap();
        let rebuilt = idx.build_kind(adapt, 1, &snap).unwrap();
        idx.commit_swap(&cell, 1, rebuilt).unwrap();
        // The replayed log made the new index current.
        assert_eq!(ConcurrentIndex::get(&idx, 1), Some(111));
        assert_eq!(ConcurrentIndex::get(&idx, 0), None);
        assert_eq!(idx.shard_kinds()[0], 1);

        // Overflow aborts: the live index keeps every write.
        let cell = {
            let t = idx.table.read();
            Arc::clone(&t.cells[1])
        };
        Sharded::open_side(&cell, 2).unwrap();
        let snap = Sharded::snapshot(&cell);
        let hi_keys: Vec<Key> = (0..5u64).map(|i| 3_900 + i * 2 + 1).collect();
        for &k in &hi_keys {
            ConcurrentIndex::insert(&idx, k, 7);
        }
        let rebuilt = idx.build_kind(adapt, 1, &snap).unwrap();
        assert_eq!(idx.commit_swap(&cell, 1, rebuilt), Err(AdaptError::SideOverflow));
        for &k in &hi_keys {
            assert_eq!(ConcurrentIndex::get(&idx, k), Some(7), "aborted cutover loses nothing");
        }
        // The cell is reusable after the abort.
        assert_eq!(idx.force_swap(1, 1), Ok(()));
        assert_eq!(idx.shard_kinds(), vec![1, 1]);
    }

    #[test]
    fn tuner_swaps_a_write_heavy_shard() {
        let data: Vec<KeyValue> = (0..8_192u64).map(|i| (i * 4, i)).collect();
        let mut cfg = AdaptiveConfig::new(two_kinds(), 0);
        cfg.tuner.write_heavy_kind = Some(1);
        cfg.tuner.min_dwell_epochs = 1;
        cfg.tuner.cooldown_epochs = 0;
        cfg.tuner.min_epoch_ops = 64;
        cfg.tuner.min_swap_ops = 64;
        let mut idx = Sharded::build_adaptive(2, &data, cfg);
        let rec = Recorder::enabled();
        idx.set_recorder(rec.clone());

        let mut committed = 0;
        for epoch in 0..8 {
            for i in 0..2_000u64 {
                // Pure writes into shard 0's range.
                ConcurrentIndex::insert(&idx, (i % 1_000) * 4 + 1, epoch * 10_000 + i);
            }
            committed += idx.run_adaptation();
            if idx.shard_kinds()[0] == 1 {
                break;
            }
        }
        assert!(committed >= 1, "write-heavy traffic must trigger an adaptation");
        assert_eq!(idx.shard_kinds()[0], 1, "hot shard must swap to the write-heavy kind");
        let s = rec.snapshot();
        assert!(s.event(Event::KindSwap) >= 1);
        assert!(
            s.event(Event::TunerDecision) >= s.event(Event::KindSwap),
            "every swap is preceded by a decision"
        );
    }

    #[test]
    fn recorder_sees_routing_and_lock_waits() {
        use li_telemetry::OpKind;

        let data: Vec<KeyValue> = (0..4_000u64).map(|i| (i * 16, i)).collect();
        let mut idx = Sharded::build::<MapIndex>(8, &data);
        let rec = Recorder::enabled();
        idx.set_recorder(rec.clone());

        // Single-threaded ops never contend: the fast try-acquire always
        // succeeds, so zero ShardLockWait events — deterministically.
        for i in 0..1_000u64 {
            ConcurrentIndex::insert(&idx, i * 64 + 1, i);
            ConcurrentIndex::get(&idx, i * 64);
        }
        let s = rec.snapshot();
        assert_eq!(s.event(Event::ShardLockWait), 0);
        assert_eq!(s.shards.iter().map(|b| b.writes).sum::<u64>(), 1_000);
        assert_eq!(s.shards.iter().map(|b| b.reads).sum::<u64>(), 1_000);
        assert!(s.active_shards() > 1, "sharded route must touch several banks");

        // Forced contention: a held read guard blocks the writer's
        // try_write, so the slow path records the wait. Scheduling can in
        // principle let the writer start after the guard drops, so retry
        // until the wait is observed (one attempt suffices in practice).
        let idx = Arc::new(idx);
        let key = data[0].0;
        for attempt in 0.. {
            assert!(attempt < 50, "never observed a shard lock wait");
            let idx2 = Arc::clone(&idx);
            let ready = Arc::new(li_sync::sync::atomic::AtomicBool::new(false));
            let ready2 = Arc::clone(&ready);
            let writer = idx.with_shard(key, |_shard| {
                let w = li_sync::thread::spawn(move || {
                    ready2.store(true, li_sync::sync::atomic::Ordering::Release);
                    ConcurrentIndex::insert(&*idx2, key, 9);
                });
                while !ready.load(li_sync::sync::atomic::Ordering::Acquire) {
                    li_sync::thread::yield_now();
                }
                // Give the writer time to fail try_write and block.
                li_sync::thread::sleep(std::time::Duration::from_millis(10));
                w
            });
            writer.join().unwrap();
            if rec.event_count(Event::ShardLockWait) >= 1 {
                break;
            }
        }
        let s = rec.snapshot();
        assert!(s.event(Event::ShardLockWait) >= 1, "contended write must record a wait");
        assert!(s.op(OpKind::LockWait).count >= 1);
        assert!(s.total_lock_waits() >= 1);
    }

    mod boundary_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// Shard boundary selection covers the full key domain with no
            /// gaps and no overlaps, for any bulk-load key set and shard
            /// count.
            #[test]
            fn boundaries_partition_the_domain(
                mut keys in proptest::collection::vec(0u64..u64::MAX, 0..400),
                shards in 1usize..40,
            ) {
                keys.sort_unstable();
                keys.dedup();
                let data: Vec<KeyValue> = keys.iter().map(|&k| (k, k)).collect();
                let idx = Sharded::build::<MapIndex>(shards, &data);

                // Structure: first bound is 0, bounds strictly increase, and
                // no more shards exist than requested.
                let lower = idx.boundaries();
                prop_assert_eq!(lower[0], 0);
                prop_assert!(lower.windows(2).all(|w| w[0] < w[1]));
                prop_assert_eq!(lower.len(), idx.shard_count());
                prop_assert!(idx.shard_count() <= shards);

                // Coverage: the domain extremes and every boundary's
                // neighbourhood route to exactly one in-range shard, and
                // routing is monotone (no overlap between ranges).
                let mut probes = vec![0u64, u64::MAX];
                for &b in &lower {
                    probes.push(b);
                    probes.push(b.saturating_sub(1));
                    probes.push(b.saturating_add(1));
                }
                probes.extend(keys.iter().copied());
                probes.sort_unstable();
                let mut last_shard = 0usize;
                for &p in &probes {
                    let s = idx.shard_of(p);
                    prop_assert!(s < idx.shard_count());
                    prop_assert!(p >= lower[s], "key below its shard's range");
                    if let Some(&hi) = lower.get(s + 1) {
                        prop_assert!(p < hi, "key above its shard's range");
                    }
                    prop_assert!(s >= last_shard, "routing must be monotone");
                    last_shard = s;
                }

                // Every bulk-loaded key is findable after the build.
                for &(k, v) in data.iter().step_by(7) {
                    prop_assert_eq!(Index::get(&idx, k), Some(v));
                }
                prop_assert_eq!(Index::len(&idx), data.len());
            }
        }
    }
}
