//! CDF utilities and approximation-quality metrics.
//!
//! §IV-A of the paper measures approximation algorithms by (i) the number
//! of segments (leaves) they produce, (ii) the average in-segment error and
//! (iii) whether a maximum error is guaranteed. The helpers here compute
//! those metrics for any segmentation, and quantify how "hard" a key
//! distribution is to approximate (the paper's explanation for why OSM is
//! slower than YCSB).

use crate::model::LinearModel;
use crate::types::Key;

/// Empirical CDF point: `(key, rank / n)`.
pub fn empirical_cdf(keys: &[Key]) -> Vec<(Key, f64)> {
    let n = keys.len();
    keys.iter().enumerate().map(|(i, &k)| (k, (i + 1) as f64 / n as f64)).collect()
}

/// Quality metrics of one piecewise-linear segmentation of a sorted key
/// array, matching Fig. 17 (a)/(b)'s axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentationQuality {
    /// Number of segments (leaf nodes).
    pub segments: usize,
    /// Mean absolute prediction error over all keys.
    pub avg_error: f64,
    /// Largest absolute prediction error over all keys.
    pub max_error: f64,
}

/// Computes quality metrics for a segmentation given as `(start, len,
/// model)` triples over `keys`, where each model predicts *global*
/// positions.
#[allow(clippy::needless_range_loop)] // position i is the model target
pub fn segmentation_quality(
    keys: &[Key],
    segments: impl IntoIterator<Item = (usize, usize, LinearModel)>,
) -> SegmentationQuality {
    let mut count = 0usize;
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    let mut covered = 0usize;
    for (start, len, model) in segments {
        count += 1;
        for i in start..start + len {
            let e = (model.predict_f(keys[i]) - i as f64).abs();
            sum += e;
            if e > max {
                max = e;
            }
        }
        covered += len;
    }
    debug_assert_eq!(covered, keys.len(), "segmentation must cover all keys");
    SegmentationQuality {
        segments: count,
        avg_error: if covered == 0 { 0.0 } else { sum / covered as f64 },
        max_error: max,
    }
}

/// A crude "CDF complexity" score: the number of maximal ε-error linear
/// pieces needed per million keys (higher = lumpier CDF = harder for
/// learned indexes). Used by tests to verify the synthetic OSM-like
/// generator really is harder than the YCSB-like one, as the paper relies
/// on (§III-B1).
pub fn cdf_complexity(keys: &[Key], epsilon: u64) -> f64 {
    if keys.len() < 2 {
        return 0.0;
    }
    let segs = crate::approx::optpla::segment_opt_pla(keys, epsilon);
    segs.len() as f64 * 1e6 / keys.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_cdf_monotone() {
        let keys = vec![3u64, 7, 9, 100];
        let cdf = empirical_cdf(&keys);
        assert_eq!(cdf.len(), 4);
        assert!((cdf[3].1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn quality_of_perfect_fit() {
        let keys: Vec<Key> = (0..1000u64).map(|i| i * 2).collect();
        let m = LinearModel { x0: 0, slope: 0.5, intercept: 0.0 };
        let q = segmentation_quality(&keys, [(0usize, keys.len(), m)]);
        assert_eq!(q.segments, 1);
        assert!(q.max_error < 1e-9);
        assert!(q.avg_error < 1e-9);
    }

    #[test]
    fn quality_multiple_segments() {
        let keys: Vec<Key> = (0..100u64).collect();
        let m1 = LinearModel { x0: 0, slope: 1.0, intercept: 0.0 };
        let m2 = LinearModel { x0: 0, slope: 1.0, intercept: 1.0 }; // off by one
        let q = segmentation_quality(&keys, [(0usize, 50, m1), (50usize, 50, m2)]);
        assert_eq!(q.segments, 2);
        assert!((q.max_error - 1.0).abs() < 1e-9);
        assert!((q.avg_error - 0.5).abs() < 1e-9);
    }

    #[test]
    fn linear_distribution_has_trivial_complexity() {
        let keys: Vec<Key> = (0..100_000u64).map(|i| i * 17).collect();
        let c = cdf_complexity(&keys, 16);
        // One segment per 100k keys => 10 per million.
        assert!(c <= 20.0, "complexity {c}");
    }
}
