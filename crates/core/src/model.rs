//! Linear models — the building block of every learned index in the paper.
//!
//! A model maps a key to a predicted position: `pos ≈ slope * key +
//! intercept`. Models are produced either by least squares fitting
//! ([`LinearModel::fit_least_squares`], used by ALEX and XIndex) or by the
//! PLA algorithms in [`crate::approx`].

use crate::types::Key;

/// A linear function from key space to position space, anchored at a
/// reference key `x0`: `pos ≈ slope * (key − x0) + intercept`.
///
/// The anchored form matters at 64-bit key magnitudes: evaluating
/// `slope * key + b` directly loses up to hundreds of positions to `f64`
/// cancellation when `key ≈ 2^64`, whereas `key − x0` is computed exactly
/// in integer arithmetic first (PGM's segments use the same trick).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    pub x0: Key,
    pub slope: f64,
    pub intercept: f64,
}

impl Default for LinearModel {
    fn default() -> Self {
        LinearModel { x0: 0, slope: 0.0, intercept: 0.0 }
    }
}

impl LinearModel {
    /// A model predicting `position` for every key (constant).
    pub fn constant(position: f64) -> Self {
        LinearModel { x0: 0, slope: 0.0, intercept: position }
    }

    /// Fits positions `0..keys.len()` by ordinary least squares — the "LSA"
    /// algorithm of §IV-A used by ALEX node models and XIndex.
    ///
    /// Keys need not be distinct but must be ascending for the resulting
    /// model to be monotone in expectation.
    pub fn fit_least_squares(keys: &[Key]) -> Self {
        Self::fit_least_squares_positions(keys, |i| i as f64)
    }

    /// Least squares fit against caller-provided target positions, used by
    /// gapped layouts where position `i` maps to a slot other than `i`.
    pub fn fit_least_squares_positions(keys: &[Key], pos: impl Fn(usize) -> f64) -> Self {
        let n = keys.len();
        match n {
            0 => LinearModel::default(),
            1 => LinearModel { x0: keys[0], slope: 0.0, intercept: pos(0) },
            _ => {
                // Anchor at the first key to keep the sums well conditioned
                // for 64-bit key magnitudes.
                let x0 = keys[0];
                let nf = n as f64;
                let mut sx = 0.0f64;
                let mut sy = 0.0f64;
                let mut sxx = 0.0f64;
                let mut sxy = 0.0f64;
                for (i, &k) in keys.iter().enumerate() {
                    let x = (k - x0) as f64;
                    let y = pos(i);
                    sx += x;
                    sy += y;
                    sxx += x * x;
                    sxy += x * y;
                }
                let denom = nf * sxx - sx * sx;
                if denom.abs() < f64::EPSILON {
                    // All keys identical: fall back to mean position.
                    return LinearModel { x0, slope: 0.0, intercept: sy / nf };
                }
                let slope = (nf * sxy - sx * sy) / denom;
                let intercept = (sy - slope * sx) / nf;
                LinearModel { x0, slope, intercept }
            }
        }
    }

    /// Builds the model through two points `(k0, p0)` and `(k1, p1)`.
    pub fn through(k0: Key, p0: f64, k1: Key, p1: f64) -> Self {
        if k1 == k0 {
            return LinearModel { x0: k0, slope: 0.0, intercept: p0 };
        }
        let slope = (p1 - p0) / (k1 as f64 - k0 as f64);
        LinearModel { x0: k0, slope, intercept: p0 }
    }

    /// Raw (unclamped) prediction. The key offset is computed exactly in
    /// 128-bit integers before the single rounding to `f64`.
    #[inline]
    pub fn predict_f(&self, key: Key) -> f64 {
        let dx = key as i128 - self.x0 as i128;
        self.slope * dx as f64 + self.intercept
    }

    /// Prediction clamped to `[0, n)` and rounded to a slot index; `n == 0`
    /// yields 0.
    #[inline]
    pub fn predict_clamped(&self, key: Key, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let p = self.predict_f(key);
        if p <= 0.0 {
            0
        } else {
            (p as usize).min(n - 1)
        }
    }

    /// Returns a copy with slope and intercept scaled by `factor` — ALEX's
    /// trick of expanding a fitted model so the same keys spread over a
    /// larger, gap-containing array (§II-B3).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        LinearModel { x0: self.x0, slope: self.slope * factor, intercept: self.intercept * factor }
    }

    /// Returns a copy whose predictions are shifted by `delta` positions
    /// (e.g. converting between a segment's global and leaf-local position
    /// spaces).
    #[must_use]
    pub fn shifted(&self, delta: f64) -> Self {
        LinearModel { x0: self.x0, slope: self.slope, intercept: self.intercept + delta }
    }

    /// Maximum and mean absolute prediction error against the true
    /// positions `0..keys.len()`.
    pub fn errors(&self, keys: &[Key]) -> (f64, f64) {
        if keys.is_empty() {
            return (0.0, 0.0);
        }
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        for (i, &k) in keys.iter().enumerate() {
            let e = (self.predict_f(k) - i as f64).abs();
            if e > max {
                max = e;
            }
            sum += e;
        }
        (max, sum / keys.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_exact_line() {
        // keys = 10, 20, 30 ... positions 0,1,2: slope 0.1
        let keys: Vec<Key> = (1..=100).map(|i| i * 10).collect();
        let m = LinearModel::fit_least_squares(&keys);
        assert!((m.slope - 0.1).abs() < 1e-9, "slope {}", m.slope);
        let (max, mean) = m.errors(&keys);
        assert!(max < 1e-6);
        assert!(mean < 1e-6);
    }

    #[test]
    fn fit_single_and_empty() {
        let m = LinearModel::fit_least_squares(&[]);
        assert_eq!(m.predict_clamped(42, 0), 0);
        let m = LinearModel::fit_least_squares(&[7]);
        assert_eq!(m.predict_clamped(7, 1), 0);
    }

    #[test]
    fn fit_identical_keys() {
        let m = LinearModel::fit_least_squares(&[5, 5, 5, 5]);
        // Mean position 1.5 for 4 duplicates.
        assert!((m.predict_f(5) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn predict_clamps() {
        let m = LinearModel { x0: 0, slope: 1.0, intercept: -5.0 };
        assert_eq!(m.predict_clamped(0, 10), 0); // negative -> 0
        assert_eq!(m.predict_clamped(100, 10), 9); // beyond -> n-1
        assert_eq!(m.predict_clamped(8, 10), 3);
    }

    #[test]
    fn through_two_points() {
        let m = LinearModel::through(10, 0.0, 20, 10.0);
        assert!((m.predict_f(15) - 5.0).abs() < 1e-9);
        let degen = LinearModel::through(10, 3.0, 10, 9.0);
        assert!((degen.predict_f(123) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_spreads_predictions() {
        let keys: Vec<Key> = (0..100).map(|i| i * 3).collect();
        let m = LinearModel::fit_least_squares(&keys);
        let g = m.scaled(2.0);
        assert!((g.predict_f(297) - 2.0 * m.predict_f(297)).abs() < 1e-6);
    }

    #[test]
    fn huge_keys_well_conditioned() {
        let base = u64::MAX - 10_000;
        let keys: Vec<Key> = (0..1_000).map(|i| base + i * 10).collect();
        let m = LinearModel::fit_least_squares(&keys);
        let (max, _) = m.errors(&keys);
        assert!(max < 1.0, "max err {max}");
    }
}

/// A cubic model `pos ≈ a·x³ + b·x² + c·x + d` over `x = key − x0`
/// (normalised), §V-A's "nonlinear models" suggestion. Used optionally as
/// an RMI second stage, where one cubic can replace several linear models
/// on curved CDF regions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CubicModel {
    pub x0: Key,
    /// Key span used for normalisation (predictions divide by it).
    pub span: f64,
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

impl CubicModel {
    /// Least-squares cubic fit of positions `0..keys.len()` via the normal
    /// equations (4×4 Gaussian elimination). Keys are normalised to
    /// `[0, 1]` first so the power sums stay conditioned.
    pub fn fit(keys: &[Key]) -> Self {
        let n = keys.len();
        if n == 0 {
            return CubicModel { x0: 0, span: 1.0, a: 0.0, b: 0.0, c: 0.0, d: 0.0 };
        }
        let x0 = keys[0];
        let span = ((keys[n - 1] - x0) as f64).max(1.0);
        if n < 4 {
            // Fall back to the linear fit embedded in cubic form.
            let lin = LinearModel::fit_least_squares(keys);
            return CubicModel { x0, span, a: 0.0, b: 0.0, c: lin.slope * span, d: lin.intercept };
        }
        // Accumulate power sums S_k = Σ x^k (k ≤ 6) and T_k = Σ x^k · y.
        let mut s = [0.0f64; 7];
        let mut t = [0.0f64; 4];
        for (i, &k) in keys.iter().enumerate() {
            let x = (k - x0) as f64 / span;
            let y = i as f64;
            let mut p = 1.0;
            for sk in &mut s {
                *sk += p;
                p *= x;
            }
            let mut p = 1.0;
            for tk in &mut t {
                *tk += p * y;
                p *= x;
            }
        }
        // Normal equations: M · [d c b a]^T = t with M[i][j] = S_{i+j}.
        let mut m = [[0.0f64; 5]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().take(4).enumerate() {
                *cell = s[i + j];
            }
            row[4] = t[i];
        }
        // Gaussian elimination with partial pivoting.
        for col in 0..4 {
            let piv = (col..4)
                .max_by(|&r1, &r2| m[r1][col].abs().partial_cmp(&m[r2][col].abs()).unwrap())
                .unwrap();
            m.swap(col, piv);
            if m[col][col].abs() < 1e-12 {
                // Degenerate system: fall back to linear.
                let lin = LinearModel::fit_least_squares(keys);
                return CubicModel {
                    x0,
                    span,
                    a: 0.0,
                    b: 0.0,
                    c: lin.slope * span,
                    d: lin.intercept,
                };
            }
            for row in col + 1..4 {
                let f = m[row][col] / m[col][col];
                // Row elimination; indexing both rows keeps the linear
                // algebra legible.
                #[allow(clippy::needless_range_loop)]
                for k in col..5 {
                    m[row][k] -= f * m[col][k];
                }
            }
        }
        let mut coef = [0.0f64; 4];
        for row in (0..4).rev() {
            let mut acc = m[row][4];
            for k in row + 1..4 {
                acc -= m[row][k] * coef[k];
            }
            coef[row] = acc / m[row][row];
        }
        CubicModel { x0, span, a: coef[3], b: coef[2], c: coef[1], d: coef[0] }
    }

    /// Raw prediction.
    #[inline]
    pub fn predict_f(&self, key: Key) -> f64 {
        let x = (key as i128 - self.x0 as i128) as f64 / self.span;
        ((self.a * x + self.b) * x + self.c) * x + self.d
    }

    /// Prediction clamped to `[0, n)`.
    #[inline]
    pub fn predict_clamped(&self, key: Key, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let p = self.predict_f(key);
        if p <= 0.0 {
            0
        } else {
            (p as usize).min(n - 1)
        }
    }

    /// `(max, mean)` absolute error against positions `0..keys.len()`.
    pub fn errors(&self, keys: &[Key]) -> (f64, f64) {
        if keys.is_empty() {
            return (0.0, 0.0);
        }
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        for (i, &k) in keys.iter().enumerate() {
            let e = (self.predict_f(k) - i as f64).abs();
            max = max.max(e);
            sum += e;
        }
        (max, sum / keys.len() as f64)
    }
}

#[cfg(test)]
mod cubic_tests {
    use super::*;

    #[test]
    fn fits_exact_cubic_cdf() {
        // Keys whose CDF (rank as a function of key) is a cubic:
        // key ∝ rank^(1/3) makes rank ∝ key³.
        let keys: Vec<Key> =
            (0..1_000u64).map(|i| ((i as f64).powf(1.0 / 3.0) * 100_000.0) as u64 + i).collect();
        let m = CubicModel::fit(&keys);
        let (max, mean) = m.errors(&keys);
        assert!(mean < 2.0, "mean {mean}");
        assert!(max < 20.0, "max {max}");
        // A linear fit is far worse on the same data.
        let lin = LinearModel::fit_least_squares(&keys);
        let (_, lin_mean) = lin.errors(&keys);
        assert!(lin_mean > mean * 10.0, "cubic {mean} vs linear {lin_mean}");
    }

    #[test]
    fn linear_data_still_fits() {
        let keys: Vec<Key> = (0..5_000u64).map(|i| i * 17 + 3).collect();
        let m = CubicModel::fit(&keys);
        let (max, _) = m.errors(&keys);
        assert!(max < 1.5, "max {max}");
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(CubicModel::fit(&[]).predict_clamped(5, 0), 0);
        let m = CubicModel::fit(&[10]);
        assert_eq!(m.predict_clamped(10, 1), 0);
        let m = CubicModel::fit(&[10, 20, 30]);
        assert_eq!(m.predict_clamped(20, 3), 1);
    }

    #[test]
    fn huge_key_magnitudes() {
        let base = u64::MAX - (1 << 30);
        let keys: Vec<Key> = (0..2_000u64).map(|i| base + i * 1_000).collect();
        let m = CubicModel::fit(&keys);
        let (max, _) = m.errors(&keys);
        assert!(max < 4.0, "max {max}");
    }

    #[test]
    fn monotone_on_training_range_for_monotone_data() {
        let keys: Vec<Key> = (0..1_000u64).map(|i| (i as f64).powf(1.5) as u64 * 7 + i).collect();
        let m = CubicModel::fit(&keys);
        let mut last = m.predict_f(keys[0]);
        let mut violations = 0;
        for &k in &keys[1..] {
            let p = m.predict_f(k);
            if p < last - 1.0 {
                violations += 1;
            }
            last = p;
        }
        // Cubic fits of monotone CDFs are near-monotone; allow slack.
        assert!(violations < keys.len() / 20, "{violations} violations");
    }
}
