//! Hot-key front cache (§V-B1).
//!
//! The paper's closing structural suggestion: "the asymmetric tree
//! structure can support the hot data to be placed closer to the root
//! node, which can shorten the total number of queries". The structure-
//! agnostic form of that idea is a small direct-mapped cache in front of
//! *any* index: a hot key resolves in one hash-and-compare (depth 0)
//! instead of a full descent. [`HotCache`] wraps any
//! [`UpdatableIndex`] and keeps itself coherent across inserts/removes.

use li_sync::sync::atomic::{AtomicU64, Ordering};

use crate::traits::{Index, OrderedIndex, UpdatableIndex};
use crate::types::{Key, KeyValue, Value};

/// One cache slot.
#[derive(Clone, Copy)]
struct Slot {
    key: Key,
    value: Value,
    live: bool,
}

const EMPTY: Slot = Slot { key: 0, value: 0, live: false };

/// A direct-mapped hot-key cache wrapped around an index.
pub struct HotCache<I> {
    inner: I,
    slots: Vec<Slot>,
    mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[inline]
fn slot_of(key: Key, mask: usize) -> usize {
    (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & mask
}

impl<I> HotCache<I> {
    /// Wraps `inner` with a cache of `capacity` slots (rounded up to a
    /// power of two).
    pub fn new(inner: I, capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(64);
        HotCache {
            inner,
            slots: vec![EMPTY; cap],
            mask: cap - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// The wrapped index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    fn invalidate(&mut self, key: Key) {
        let s = slot_of(key, self.mask);
        if self.slots[s].live && self.slots[s].key == key {
            self.slots[s] = EMPTY;
        }
    }
}

impl<I: Index> HotCache<I> {
    /// Point lookup with cache fill. Takes `&mut self` because a miss
    /// promotes the key into its slot (direct-mapped, evicting whatever
    /// was there — recency wins, which is exactly right for Zipfian
    /// traffic).
    pub fn get_mut(&mut self, key: Key) -> Option<Value> {
        let s = slot_of(key, self.mask);
        let slot = self.slots[s];
        if slot.live && slot.key == key {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(slot.value);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = self.inner.get(key)?;
        self.slots[s] = Slot { key, value: v, live: true };
        Some(v)
    }
}

impl<I: Index> Index for HotCache<I> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    /// Read-only lookup: consults the cache but cannot fill it.
    fn get(&self, key: Key) -> Option<Value> {
        let s = slot_of(key, self.mask);
        let slot = self.slots[s];
        if slot.live && slot.key == key {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(slot.value);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.inner.get(key)
    }

    fn index_size_bytes(&self) -> usize {
        self.inner.index_size_bytes() + self.slots.len() * core::mem::size_of::<Slot>()
    }

    fn data_size_bytes(&self) -> usize {
        self.inner.data_size_bytes()
    }
}

impl<I: Index + UpdatableIndex> UpdatableIndex for HotCache<I> {
    fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        // Write-through: keep the slot coherent.
        let s = slot_of(key, self.mask);
        if self.slots[s].live && self.slots[s].key == key {
            self.slots[s].value = value;
        }
        self.inner.insert(key, value)
    }

    fn remove(&mut self, key: Key) -> Option<Value> {
        self.invalidate(key);
        self.inner.remove(key)
    }
}

impl<I: OrderedIndex> OrderedIndex for HotCache<I> {
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        self.inner.range(lo, hi, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    struct Map(BTreeMap<Key, Value>);

    impl Index for Map {
        fn name(&self) -> &'static str {
            "map"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.0.get(&key).copied()
        }
        fn index_size_bytes(&self) -> usize {
            0
        }
        fn data_size_bytes(&self) -> usize {
            0
        }
    }

    impl UpdatableIndex for Map {
        fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
            self.0.insert(key, value)
        }
        fn remove(&mut self, key: Key) -> Option<Value> {
            self.0.remove(&key)
        }
    }

    fn cache() -> HotCache<Map> {
        let inner = Map((0..1_000u64).map(|i| (i * 3, i)).collect());
        HotCache::new(inner, 256)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = cache();
        assert_eq!(c.get_mut(30), Some(10));
        let (h0, _) = c.stats();
        assert_eq!(c.get_mut(30), Some(10));
        let (h1, _) = c.stats();
        assert_eq!(h1, h0 + 1, "second lookup must hit");
    }

    #[test]
    fn insert_write_through() {
        let mut c = cache();
        c.get_mut(30); // fill
        c.insert(30, 999);
        assert_eq!(c.get_mut(30), Some(999));
        assert_eq!(c.inner().get(30), Some(999));
    }

    #[test]
    fn remove_invalidates() {
        let mut c = cache();
        c.get_mut(30);
        assert_eq!(c.remove(30), Some(10));
        assert_eq!(c.get_mut(30), None);
        // Reinsert: fresh value visible.
        c.insert(30, 7);
        assert_eq!(c.get_mut(30), Some(7));
    }

    #[test]
    fn misses_never_cached() {
        let mut c = cache();
        assert_eq!(c.get_mut(31), None);
        assert_eq!(c.get_mut(31), None);
        c.insert(31, 1);
        assert_eq!(c.get_mut(31), Some(1));
    }

    #[test]
    fn zipfian_traffic_mostly_hits() {
        let mut c = cache();
        // 90% of lookups to 10 hot keys.
        for i in 0..10_000u64 {
            let k = if i % 10 != 0 { (i % 10) * 3 } else { (i % 1_000) * 3 };
            c.get_mut(k);
        }
        let (h, m) = c.stats();
        assert!(h as f64 / (h + m) as f64 > 0.8, "hit rate {h}/{}", h + m);
    }

    #[test]
    fn coherent_under_churn() {
        let mut c = cache();
        let mut model: BTreeMap<Key, Value> = (0..1_000u64).map(|i| (i * 3, i)).collect();
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..20_000u64 {
            let k = rng.random_range(0..3_100u64);
            match rng.random_range(0..3) {
                0 => {
                    assert_eq!(c.insert(k, i), model.insert(k, i));
                }
                1 => {
                    assert_eq!(c.get_mut(k), model.get(&k).copied(), "get {k}");
                }
                _ => {
                    assert_eq!(c.remove(k), model.remove(&k));
                }
            }
        }
    }
}
