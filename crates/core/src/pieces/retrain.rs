//! Retraining bookkeeping (§IV-E/F, Fig. 18 (b)–(d)).
//!
//! A *retraining* is any model rebuild triggered by inserts: FITing-tree
//! and XIndex re-segment one leaf when its buffer fills; PGM-Index merges
//! LSM levels; ALEX expands or splits a gapped node. The paper compares
//! these strategies by retrain **count**, **average time** and **total
//! time** — exactly the counters kept here.

use std::time::Duration;

/// Counters describing the update behaviour of an index.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetrainStats {
    /// Number of retraining operations performed.
    pub count: u64,
    /// Total wall time spent retraining.
    pub total_time: Duration,
    /// Total keys that participated in retraining operations.
    pub keys_retrained: u64,
    /// Total key movements caused by inserts (outside retraining).
    pub insert_moves: u64,
    /// Total wall time spent in insert operations (including the time of
    /// any retrains they triggered).
    pub insert_time: Duration,
    /// Number of insert operations.
    pub inserts: u64,
}

impl RetrainStats {
    /// Mean time of one retraining operation.
    pub fn avg_retrain_time(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.count as u32
        }
    }

    /// Inserts per retraining operation (∞-ish when no retrain happened).
    pub fn inserts_per_retrain(&self) -> f64 {
        if self.count == 0 {
            f64::INFINITY
        } else {
            self.inserts as f64 / self.count as f64
        }
    }

    /// Records one retraining operation.
    pub fn record_retrain(&mut self, took: Duration, keys: u64) {
        self.count += 1;
        self.total_time += took;
        self.keys_retrained += keys;
    }

    /// Merges counters (e.g. across leaves or threads).
    pub fn merge(&mut self, other: &RetrainStats) {
        self.count += other.count;
        self.total_time += other.total_time;
        self.keys_retrained += other.keys_retrained;
        self.insert_moves += other.insert_moves;
        self.insert_time += other.insert_time;
        self.inserts += other.inserts;
    }
}

/// Retraining policy selector for the assembled index (what to do when a
/// leaf reports `NeedsRetrain`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrainPolicy {
    /// Re-run the approximation algorithm on the overflowing leaf's keys,
    /// possibly splitting it into several leaves (FITing-tree / XIndex).
    ResegmentLeaf,
    /// Expand the leaf in place when its model still predicts well,
    /// split otherwise (ALEX). `expand_factor` scales capacity on expand;
    /// a leaf splits when its mean prediction error exceeds
    /// `split_error_threshold`.
    ExpandOrSplit { expand_factor: f64, split_error_threshold: f64 },
}

impl RetrainPolicy {
    pub fn name(&self) -> &'static str {
        match self {
            RetrainPolicy::ResegmentLeaf => "retrain-one-node",
            RetrainPolicy::ExpandOrSplit { .. } => "expand-or-split",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let mut s = RetrainStats::default();
        assert_eq!(s.avg_retrain_time(), Duration::ZERO);
        assert!(s.inserts_per_retrain().is_infinite());
        s.record_retrain(Duration::from_millis(10), 100);
        s.record_retrain(Duration::from_millis(30), 300);
        s.inserts = 10;
        assert_eq!(s.count, 2);
        assert_eq!(s.avg_retrain_time(), Duration::from_millis(20));
        assert_eq!(s.keys_retrained, 400);
        assert!((s.inserts_per_retrain() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds() {
        let mut a = RetrainStats {
            count: 1,
            total_time: Duration::from_secs(1),
            keys_retrained: 5,
            insert_moves: 7,
            insert_time: Duration::from_secs(2),
            inserts: 3,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.total_time, Duration::from_secs(2));
        assert_eq!(a.insert_moves, 14);
        assert_eq!(a.inserts, 6);
    }
}
