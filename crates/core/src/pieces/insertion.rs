//! Leaf containers implementing the three insertion strategies of §IV-D.
//!
//! * [`InplaceLeaf`] — FITing-tree-inp: a sorted run with reserved headroom
//!   at both ends; inserting shifts keys toward the nearer end.
//! * [`BufferLeaf`] — FITing-tree-buf / PGM / XIndex: a static sorted run
//!   plus a small sorted off-site buffer; the leaf asks for retraining when
//!   the buffer fills.
//! * [`GappedLeaf`] — ALEX: a model-based gapped array; inserting shifts at
//!   most to the nearest gap, and the leaf asks for retraining (expansion)
//!   when density crosses a threshold.
//!
//! Every leaf counts the key movements it performs
//! ([`LeafStorage::moves`]), the metric behind Fig. 18 (a)'s analysis.

use crate::approx::lsa_gap::GappedLayout;
use crate::model::LinearModel;
use crate::search::lower_bound_kv;
use crate::types::{Key, KeyValue, Value};

/// Result of a leaf insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Inserted; no structural action needed.
    Inserted,
    /// Key existed; value replaced (old value inside).
    Replaced(Value),
    /// The leaf is out of reserved space / too dense: the caller must
    /// retrain (re-segment, merge or expand) this leaf. The key was NOT
    /// inserted.
    NeedsRetrain,
}

/// Strategy selector + parameters, used by the assembled index and the
/// Fig. 18 benchmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LeafKind {
    /// Reserved headroom of `reserve` slots at each end.
    Inplace { reserve: usize },
    /// Off-site buffer of `reserve` slots.
    Buffer { reserve: usize },
    /// Gapped array with initial `density`, retrain at `max_density`.
    Gapped { density: f64, max_density: f64 },
}

impl LeafKind {
    pub fn name(&self) -> &'static str {
        match self {
            LeafKind::Inplace { .. } => "Inplace",
            LeafKind::Buffer { .. } => "Buffer",
            LeafKind::Gapped { .. } => "ALEX-gap",
        }
    }

    /// Builds a leaf of this kind over sorted `data` with a model
    /// predicting *local* positions (0-based within the leaf).
    pub fn build(&self, data: &[KeyValue], model: LinearModel, max_error: u64) -> Leaf {
        match *self {
            LeafKind::Inplace { reserve } => {
                Leaf::Inplace(InplaceLeaf::build(data, model, max_error, reserve))
            }
            LeafKind::Buffer { reserve } => {
                Leaf::Buffer(BufferLeaf::build(data, model, max_error, reserve))
            }
            LeafKind::Gapped { density, max_density } => {
                Leaf::Gapped(GappedLeaf::build(data, density, max_density))
            }
        }
    }
}

/// Operations common to all leaf kinds.
pub trait LeafStorage {
    fn get(&self, key: Key) -> Option<Value>;
    fn insert(&mut self, key: Key, value: Value) -> InsertOutcome;
    fn remove(&mut self, key: Key) -> Option<Value>;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Smallest key currently stored (None when empty).
    fn first_key(&self) -> Option<Key>;
    /// All live pairs in ascending key order (for retraining / merging).
    fn to_sorted_vec(&self) -> Vec<KeyValue>;
    /// Appends pairs with `lo <= key <= hi` in order.
    fn range_into(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>);
    /// Total key movements performed by inserts/removes so far.
    fn moves(&self) -> u64;
    /// Bytes used by the leaf's arrays.
    fn data_size_bytes(&self) -> usize;
}

/// Runtime-polymorphic leaf.
pub enum Leaf {
    Inplace(InplaceLeaf),
    Buffer(BufferLeaf),
    Gapped(GappedLeaf),
}

macro_rules! dispatch {
    ($self:ident, $leaf:ident => $body:expr) => {
        match $self {
            Leaf::Inplace($leaf) => $body,
            Leaf::Buffer($leaf) => $body,
            Leaf::Gapped($leaf) => $body,
        }
    };
}

impl LeafStorage for Leaf {
    fn get(&self, key: Key) -> Option<Value> {
        dispatch!(self, l => l.get(key))
    }
    fn insert(&mut self, key: Key, value: Value) -> InsertOutcome {
        dispatch!(self, l => l.insert(key, value))
    }
    fn remove(&mut self, key: Key) -> Option<Value> {
        dispatch!(self, l => l.remove(key))
    }
    fn len(&self) -> usize {
        dispatch!(self, l => l.len())
    }
    fn first_key(&self) -> Option<Key> {
        dispatch!(self, l => l.first_key())
    }
    fn to_sorted_vec(&self) -> Vec<KeyValue> {
        dispatch!(self, l => l.to_sorted_vec())
    }
    fn range_into(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        dispatch!(self, l => l.range_into(lo, hi, out));
    }
    fn moves(&self) -> u64 {
        dispatch!(self, l => l.moves())
    }
    fn data_size_bytes(&self) -> usize {
        dispatch!(self, l => l.data_size_bytes())
    }
}

// ---------------------------------------------------------------------------
// Inplace
// ---------------------------------------------------------------------------

/// Sorted run with `reserve` empty slots at each end (§II-B1's inplace
/// strategy). Inserting finds the position with a model-guided bounded
/// search and shifts everything between the position and the nearer end.
pub struct InplaceLeaf {
    /// Backing storage of `head + len + tail` slots; live data occupies
    /// `buf[head..head + len]`.
    buf: Vec<KeyValue>,
    head: usize,
    len: usize,
    model: LinearModel,
    /// Model error: build-time max error plus drift from shifts since.
    err: usize,
    moves: u64,
}

impl InplaceLeaf {
    pub fn build(data: &[KeyValue], model: LinearModel, max_error: u64, reserve: usize) -> Self {
        let cap = data.len() + 2 * reserve;
        let mut buf = vec![(0, 0); cap];
        buf[reserve..reserve + data.len()].copy_from_slice(data);
        InplaceLeaf {
            buf,
            head: reserve,
            len: data.len(),
            model,
            err: max_error as usize,
            moves: 0,
        }
    }

    #[inline]
    fn live(&self) -> &[KeyValue] {
        &self.buf[self.head..self.head + self.len]
    }

    /// Model-guided position of the last live key `<= key`, or None when
    /// `key` precedes all live keys. Returns indexes into `live()`.
    fn last_le(&self, key: Key) -> Option<usize> {
        let live = self.live();
        if live.is_empty() || key < live[0].0 {
            return None;
        }
        let p = self.model.predict_clamped(key, self.len.max(1));
        // Widen the window until it brackets (the model was trained on the
        // build-time layout; shifts and foreign keys grow the error).
        let mut err = self.err + 1;
        loop {
            let lo = p.saturating_sub(err);
            let hi = (p + err).min(self.len - 1);
            let lo_ok = lo == 0 || live[lo].0 <= key;
            let hi_ok = hi == self.len - 1 || live[hi].0 > key;
            if lo_ok && hi_ok {
                let whi = (p + err + 1).min(self.len);
                let window = &live[lo..whi];
                let ub = window.partition_point(|kv| kv.0 <= key);
                return Some((lo + ub).saturating_sub(1));
            }
            err = err.saturating_mul(2).max(2);
            if err >= self.len {
                let ub = live.partition_point(|kv| kv.0 <= key);
                return if ub == 0 { None } else { Some(ub - 1) };
            }
        }
    }
}

impl LeafStorage for InplaceLeaf {
    fn get(&self, key: Key) -> Option<Value> {
        match self.last_le(key) {
            Some(i) if self.live()[i].0 == key => Some(self.live()[i].1),
            _ => None,
        }
    }

    fn insert(&mut self, key: Key, value: Value) -> InsertOutcome {
        match self.last_le(key) {
            Some(i) if self.live()[i].0 == key => {
                let old = self.buf[self.head + i].1;
                self.buf[self.head + i].1 = value;
                InsertOutcome::Replaced(old)
            }
            found => {
                // Insert after position `found` (or at front).
                let ins = found.map_or(0, |i| i + 1); // index in live()
                let left_cost = ins; // shift [0, ins) one left
                let right_cost = self.len - ins; // shift [ins, len) one right
                let can_left = self.head > 0;
                let can_right = self.head + self.len < self.buf.len();
                let go_left = match (can_left, can_right) {
                    (true, true) => left_cost <= right_cost,
                    (true, false) => true,
                    (false, true) => false,
                    (false, false) => return InsertOutcome::NeedsRetrain,
                };
                if go_left {
                    let h = self.head;
                    self.buf.copy_within(h..h + ins, h - 1);
                    self.head -= 1;
                    self.buf[self.head + ins] = (key, value);
                    self.moves += left_cost as u64;
                } else {
                    let h = self.head;
                    self.buf.copy_within(h + ins..h + self.len, h + ins + 1);
                    self.buf[h + ins] = (key, value);
                    self.moves += right_cost as u64;
                }
                self.len += 1;
                // Every shift can displace positions by one relative to the
                // model's training layout.
                self.err += 1;
                InsertOutcome::Inserted
            }
        }
    }

    fn remove(&mut self, key: Key) -> Option<Value> {
        match self.last_le(key) {
            Some(i) if self.live()[i].0 == key => {
                let old = self.buf[self.head + i].1;
                let h = self.head;
                // Shift the shorter side inward.
                if i < self.len - i - 1 {
                    self.buf.copy_within(h..h + i, h + 1);
                    self.head += 1;
                    self.moves += i as u64;
                } else {
                    self.buf.copy_within(h + i + 1..h + self.len, h + i);
                    self.moves += (self.len - i - 1) as u64;
                }
                self.len -= 1;
                self.err += 1;
                Some(old)
            }
            _ => None,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn first_key(&self) -> Option<Key> {
        self.live().first().map(|kv| kv.0)
    }

    fn to_sorted_vec(&self) -> Vec<KeyValue> {
        self.live().to_vec()
    }

    fn range_into(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        let live = self.live();
        let start = lower_bound_kv(live, lo);
        for kv in &live[start..] {
            if kv.0 > hi {
                break;
            }
            out.push(*kv);
        }
    }

    fn moves(&self) -> u64 {
        self.moves
    }

    fn data_size_bytes(&self) -> usize {
        self.buf.len() * core::mem::size_of::<KeyValue>()
    }
}

// ---------------------------------------------------------------------------
// Buffer
// ---------------------------------------------------------------------------

/// Static sorted run + small sorted off-site buffer (§II-B1/B2/§II-B4).
pub struct BufferLeaf {
    main: Vec<KeyValue>,
    buf: Vec<KeyValue>,
    cap: usize,
    model: LinearModel,
    err: usize,
    moves: u64,
    /// Tombstones removed from `main` (swap-marked by key); kept sorted.
    dead: Vec<Key>,
}

impl BufferLeaf {
    pub fn build(data: &[KeyValue], model: LinearModel, max_error: u64, reserve: usize) -> Self {
        BufferLeaf {
            main: data.to_vec(),
            buf: Vec::with_capacity(reserve.max(1)),
            cap: reserve.max(1),
            model,
            err: max_error as usize,
            moves: 0,
            dead: Vec::new(),
        }
    }

    fn main_pos(&self, key: Key) -> Option<usize> {
        if self.main.is_empty() {
            return None;
        }
        let keys_len = self.main.len();
        let p = self.model.predict_clamped(key, keys_len);
        let mut err = self.err + 1;
        loop {
            let lo = p.saturating_sub(err);
            let hi = (p + err).min(keys_len - 1);
            let lo_ok = lo == 0 || self.main[lo].0 <= key;
            let hi_ok = hi == keys_len - 1 || self.main[hi].0 > key;
            if lo_ok && hi_ok {
                let whi = (p + err + 1).min(keys_len);
                let window = &self.main[lo..whi];
                let ub = window.partition_point(|kv| kv.0 <= key);
                let idx = (lo + ub).checked_sub(1)?;
                return (self.main[idx].0 == key).then_some(idx);
            }
            err = err.saturating_mul(2).max(2);
            if err >= keys_len {
                return self.main.binary_search_by_key(&key, |kv| kv.0).ok();
            }
        }
    }

    fn is_dead(&self, key: Key) -> bool {
        self.dead.binary_search(&key).is_ok()
    }
}

impl LeafStorage for BufferLeaf {
    fn get(&self, key: Key) -> Option<Value> {
        // The buffer holds the most recent version of a key.
        if let Ok(i) = self.buf.binary_search_by_key(&key, |kv| kv.0) {
            return Some(self.buf[i].1);
        }
        if self.is_dead(key) {
            return None;
        }
        self.main_pos(key).map(|i| self.main[i].1)
    }

    fn insert(&mut self, key: Key, value: Value) -> InsertOutcome {
        // Update in place when the key is already present.
        if let Ok(i) = self.buf.binary_search_by_key(&key, |kv| kv.0) {
            let old = self.buf[i].1;
            self.buf[i].1 = value;
            return InsertOutcome::Replaced(old);
        }
        if !self.is_dead(key) {
            if let Some(i) = self.main_pos(key) {
                let old = self.main[i].1;
                self.main[i].1 = value;
                return InsertOutcome::Replaced(old);
            }
        }
        if self.buf.len() >= self.cap {
            return InsertOutcome::NeedsRetrain;
        }
        let pos = lower_bound_kv(&self.buf, key);
        self.moves += (self.buf.len() - pos) as u64;
        // A tombstone for this key (if any) must stay: it keeps the stale
        // main-run copy dead while the buffer copy shadows it.
        self.buf.insert(pos, (key, value));
        InsertOutcome::Inserted
    }

    fn remove(&mut self, key: Key) -> Option<Value> {
        if let Ok(i) = self.buf.binary_search_by_key(&key, |kv| kv.0) {
            self.moves += (self.buf.len() - i - 1) as u64;
            return Some(self.buf.remove(i).1);
        }
        if self.is_dead(key) {
            return None;
        }
        if let Some(i) = self.main_pos(key) {
            let old = self.main[i].1;
            let d = self.dead.binary_search(&key).unwrap_err();
            self.dead.insert(d, key);
            return Some(old);
        }
        None
    }

    fn len(&self) -> usize {
        self.main.len() + self.buf.len() - self.dead.len()
    }

    fn first_key(&self) -> Option<Key> {
        let m = self.main.iter().find(|kv| !self.is_dead(kv.0)).map(|kv| kv.0);
        let b = self.buf.first().map(|kv| kv.0);
        match (m, b) {
            (Some(a), Some(c)) => Some(a.min(c)),
            (x, y) => x.or(y),
        }
    }

    fn to_sorted_vec(&self) -> Vec<KeyValue> {
        // Merge main (minus tombstones) with the buffer.
        let mut out = Vec::with_capacity(self.len());
        let mut i = 0usize;
        let mut j = 0usize;
        while i < self.main.len() || j < self.buf.len() {
            let take_main = match (self.main.get(i), self.buf.get(j)) {
                (Some(m), Some(b)) => m.0 < b.0,
                (Some(_), None) => true,
                _ => false,
            };
            if take_main {
                if !self.is_dead(self.main[i].0) {
                    out.push(self.main[i]);
                }
                i += 1;
            } else {
                out.push(self.buf[j]);
                j += 1;
            }
        }
        out
    }

    fn range_into(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        // Merge-scan both runs.
        let mut i = lower_bound_kv(&self.main, lo);
        let mut j = lower_bound_kv(&self.buf, lo);
        while i < self.main.len() || j < self.buf.len() {
            let take_main = match (self.main.get(i), self.buf.get(j)) {
                (Some(m), Some(b)) => m.0 < b.0,
                (Some(_), None) => true,
                _ => false,
            };
            if take_main {
                let kv = self.main[i];
                if kv.0 > hi {
                    break;
                }
                if !self.is_dead(kv.0) {
                    out.push(kv);
                }
                i += 1;
            } else {
                let kv = self.buf[j];
                if kv.0 > hi {
                    break;
                }
                out.push(kv);
                j += 1;
            }
        }
    }

    fn moves(&self) -> u64 {
        self.moves
    }

    fn data_size_bytes(&self) -> usize {
        (self.main.len() + self.cap) * core::mem::size_of::<KeyValue>()
            + self.dead.len() * core::mem::size_of::<Key>()
    }
}

// ---------------------------------------------------------------------------
// Gapped (ALEX)
// ---------------------------------------------------------------------------

/// Model-based gapped array (§II-B3). Inserts land on their predicted slot
/// or shift keys at most to the nearest gap; lookups use the model plus a
/// short local scan.
pub struct GappedLeaf {
    slots: Vec<Option<KeyValue>>,
    model: LinearModel,
    occupied: usize,
    max_density: f64,
    moves: u64,
}

impl GappedLeaf {
    pub fn build(data: &[KeyValue], density: f64, max_density: f64) -> Self {
        assert!(max_density > 0.0 && max_density <= 1.0);
        let layout = GappedLayout::build(data, density);
        GappedLeaf {
            slots: layout.slots,
            model: layout.model,
            occupied: layout.occupied,
            max_density,
            moves: 0,
        }
    }

    fn cap(&self) -> usize {
        self.slots.len()
    }

    pub fn density(&self) -> f64 {
        if self.slots.is_empty() {
            0.0
        } else {
            self.occupied as f64 / self.slots.len() as f64
        }
    }

    /// Index of the slot holding `key`, if present.
    fn find_slot(&self, key: Key) -> Option<usize> {
        let cap = self.cap();
        if cap == 0 {
            return None;
        }
        let start = self.model.predict_clamped(key, cap);
        // Scan right from the prediction until an occupied slot with a key
        // >= target decides the direction, then scan the other way.
        let mut i = start;
        loop {
            match self.slots[i] {
                Some((k, _)) if k == key => return Some(i),
                Some((k, _)) if k > key => break, // must be left of i
                _ => {
                    i += 1;
                    if i >= cap {
                        break;
                    }
                }
            }
        }
        let mut i = start;
        while i > 0 {
            i -= 1;
            match self.slots[i] {
                Some((k, _)) if k == key => return Some(i),
                Some((k, _)) if k < key => return None,
                _ => {}
            }
        }
        None
    }

    /// Finds `(prev, next)` where `prev` is the slot of the last occupied
    /// key `< key` and `next` the slot of the first occupied key `> key`
    /// (either end may be None). Assumes `key` itself is absent.
    fn neighbors(&self, key: Key) -> (Option<usize>, Option<usize>) {
        let cap = self.cap();
        if cap == 0 {
            return (None, None);
        }
        let start = self.model.predict_clamped(key, cap);
        // Find next occupied with key > target, scanning right from start;
        // anything occupied with key < target found en route is prev.
        let mut prev: Option<usize> = None;
        let mut next: Option<usize> = None;
        let mut i = start;
        loop {
            match self.slots.get(i).copied().flatten() {
                Some((k, _)) if k > key => {
                    next = Some(i);
                    break;
                }
                Some((k, _)) if k < key => {
                    // Prediction landed left of target: keep walking right.
                    prev = Some(i);
                }
                _ => {}
            }
            i += 1;
            if i >= cap {
                break;
            }
        }
        if prev.is_none() {
            // Walk left of the prediction for prev.
            let mut i = start;
            while i > 0 {
                i -= 1;
                if let Some((k, _)) = self.slots[i] {
                    debug_assert!(k != key);
                    if k < key {
                        prev = Some(i);
                        break;
                    }
                    next = Some(i);
                }
            }
        }
        (prev, next)
    }
}

impl LeafStorage for GappedLeaf {
    fn get(&self, key: Key) -> Option<Value> {
        self.find_slot(key).and_then(|i| self.slots[i].map(|kv| kv.1))
    }

    fn insert(&mut self, key: Key, value: Value) -> InsertOutcome {
        if let Some(i) = self.find_slot(key) {
            let old = self.slots[i].unwrap().1;
            self.slots[i] = Some((key, value));
            return InsertOutcome::Replaced(old);
        }
        let cap = self.cap();
        if cap == 0 || (self.occupied + 1) as f64 / cap as f64 > self.max_density {
            return InsertOutcome::NeedsRetrain;
        }
        let (prev, next) = self.neighbors(key);
        let lo = prev.map_or(0, |p| p + 1); // first legal slot
        let hi = next.unwrap_or(cap); // exclusive upper bound of legal slots
        debug_assert!(lo <= hi);
        let predicted = self.model.predict_clamped(key, cap);
        if lo < hi {
            // A legal empty region exists: place at the prediction clamped
            // into it (all slots in [lo, hi) are empty by construction).
            let slot = predicted.clamp(lo, hi - 1);
            debug_assert!(self.slots[slot].is_none());
            self.slots[slot] = Some((key, value));
        } else {
            // lo == hi: no gap between prev and next; shift toward the
            // nearest gap. occupancy < max_density <= 1 guarantees a gap
            // exists on at least one side.
            let gap_right = (hi..cap).find(|&i| self.slots[i].is_none());
            let gap_left = (0..lo).rev().find(|&i| self.slots[i].is_none());
            let (use_right, g) = match (gap_left, gap_right) {
                (Some(l), Some(r)) => {
                    if r - hi <= lo - 1 - l {
                        (true, r)
                    } else {
                        (false, l)
                    }
                }
                (None, Some(r)) => (true, r),
                (Some(l), None) => (false, l),
                (None, None) => return InsertOutcome::NeedsRetrain,
            };
            if use_right {
                // Shift [hi, g) right by one; insert at hi.
                let mut i = g;
                while i > hi {
                    self.slots[i] = self.slots[i - 1].take();
                    i -= 1;
                }
                self.moves += (g - hi) as u64;
                self.slots[hi] = Some((key, value));
            } else {
                // Shift (g, lo) left by one; insert at lo - 1.
                let mut i = g;
                while i + 1 < lo {
                    self.slots[i] = self.slots[i + 1].take();
                    i += 1;
                }
                self.moves += (lo - 1 - g) as u64;
                self.slots[lo - 1] = Some((key, value));
            }
        }
        self.occupied += 1;
        InsertOutcome::Inserted
    }

    fn remove(&mut self, key: Key) -> Option<Value> {
        let i = self.find_slot(key)?;
        let old = self.slots[i].take().map(|kv| kv.1);
        self.occupied -= 1;
        old
    }

    fn len(&self) -> usize {
        self.occupied
    }

    fn first_key(&self) -> Option<Key> {
        self.slots.iter().flatten().next().map(|kv| kv.0)
    }

    fn to_sorted_vec(&self) -> Vec<KeyValue> {
        self.slots.iter().flatten().copied().collect()
    }

    fn range_into(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        let cap = self.cap();
        if cap == 0 {
            return;
        }
        // Start a bit before the prediction for `lo` and scan.
        let start = self.model.predict_clamped(lo, cap);
        let mut begin = start;
        while begin > 0 {
            match self.slots[begin] {
                Some((k, _)) if k < lo => break,
                _ => begin -= 1,
            }
        }
        for (k, v) in self.slots[begin..].iter().flatten() {
            if *k > hi {
                break;
            }
            if *k >= lo {
                out.push((*k, *v));
            }
        }
    }

    fn moves(&self) -> u64 {
        self.moves
    }

    fn data_size_bytes(&self) -> usize {
        self.slots.len() * core::mem::size_of::<Option<KeyValue>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    use std::collections::BTreeMap;

    fn sample_data(n: u64) -> Vec<KeyValue> {
        (0..n).map(|i| (i * 10 + 3, i)).collect()
    }

    /// Builds a leaf of `kind` over `data` with a least-squares local model
    /// (adequate for leaf-level tests; assembled indexes use PLA models).
    fn build_leaf(kind: LeafKind, data: &[KeyValue]) -> Leaf {
        let keys: Vec<Key> = data.iter().map(|kv| kv.0).collect();
        let model = LinearModel::fit_least_squares(&keys);
        let (max_err, _) = model.errors(&keys);
        kind.build(data, model, max_err.ceil() as u64)
    }

    fn all_kinds() -> [LeafKind; 3] {
        [
            LeafKind::Inplace { reserve: 64 },
            LeafKind::Buffer { reserve: 64 },
            LeafKind::Gapped { density: 0.7, max_density: 0.9 },
        ]
    }

    #[test]
    fn build_and_get_all_kinds() {
        let data = sample_data(1_000);
        for kind in all_kinds() {
            let leaf = build_leaf(kind, &data);
            assert_eq!(leaf.len(), data.len(), "{}", kind.name());
            for &(k, v) in &data {
                assert_eq!(leaf.get(k), Some(v), "{} key {k}", kind.name());
            }
            assert_eq!(leaf.get(4), None, "{}", kind.name());
            assert_eq!(leaf.get(u64::MAX), None, "{}", kind.name());
            assert_eq!(leaf.first_key(), Some(3), "{}", kind.name());
            assert_eq!(leaf.to_sorted_vec(), data, "{}", kind.name());
        }
    }

    #[test]
    fn insert_until_retrain_all_kinds() {
        let data = sample_data(500);
        for kind in all_kinds() {
            let mut leaf = build_leaf(kind, &data);
            let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
            let mut rng = StdRng::seed_from_u64(77);
            let mut retrains = 0;
            for n in 0..2_000u64 {
                let k = rng.random_range(0..6_000u64);
                match leaf.insert(k, n) {
                    InsertOutcome::Inserted => {
                        model.insert(k, n);
                    }
                    InsertOutcome::Replaced(old) => {
                        assert_eq!(model.insert(k, n), Some(old), "{} key {k}", kind.name());
                    }
                    InsertOutcome::NeedsRetrain => {
                        retrains += 1;
                        break;
                    }
                }
            }
            // Verify contents match the model exactly.
            assert_eq!(leaf.len(), model.len(), "{}", kind.name());
            let got = leaf.to_sorted_vec();
            let expect: Vec<KeyValue> = model.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, expect, "{}", kind.name());
            // All kinds have finite capacity, so enough inserts eventually
            // request a retrain (or we inserted everything successfully).
            let _ = retrains;
        }
    }

    #[test]
    fn replace_and_remove_all_kinds() {
        let data = sample_data(200);
        for kind in all_kinds() {
            let mut leaf = build_leaf(kind, &data);
            assert_eq!(leaf.insert(13, 999), InsertOutcome::Replaced(1), "{}", kind.name());
            assert_eq!(leaf.get(13), Some(999));
            assert_eq!(leaf.remove(13), Some(999));
            assert_eq!(leaf.get(13), None);
            assert_eq!(leaf.remove(13), None);
            assert_eq!(leaf.len(), data.len() - 1, "{}", kind.name());
        }
    }

    #[test]
    fn buffer_remove_then_reinsert() {
        let data = sample_data(100);
        let mut leaf = build_leaf(LeafKind::Buffer { reserve: 16 }, &data);
        // Remove a main-run key (tombstone), then re-insert it.
        assert_eq!(leaf.remove(23), Some(2));
        assert_eq!(leaf.get(23), None);
        assert_eq!(leaf.insert(23, 555), InsertOutcome::Inserted);
        assert_eq!(leaf.get(23), Some(555));
        assert_eq!(leaf.len(), data.len());
    }

    #[test]
    fn range_all_kinds() {
        let data = sample_data(300);
        for kind in all_kinds() {
            let mut leaf = build_leaf(kind, &data);
            leaf.insert(7, 100); // between 3 and 13
            let mut out = Vec::new();
            leaf.range_into(3, 33, &mut out);
            assert_eq!(out, vec![(3, 0), (7, 100), (13, 1), (23, 2), (33, 3)], "{}", kind.name());
        }
    }

    #[test]
    fn inplace_exhausts_reserve() {
        let data = sample_data(50);
        let mut leaf = build_leaf(LeafKind::Inplace { reserve: 4 }, &data);
        let mut inserted = 0;
        for k in 0..100u64 {
            match leaf.insert(k * 10 + 5, k) {
                InsertOutcome::Inserted => inserted += 1,
                InsertOutcome::NeedsRetrain => break,
                InsertOutcome::Replaced(_) => unreachable!(),
            }
        }
        assert_eq!(inserted, 8, "both 4-slot reserves should fill");
    }

    #[test]
    fn buffer_exhausts_reserve() {
        let data = sample_data(50);
        let mut leaf = build_leaf(LeafKind::Buffer { reserve: 8 }, &data);
        let mut inserted = 0;
        for k in 0..100u64 {
            match leaf.insert(k * 10 + 5, k) {
                InsertOutcome::Inserted => inserted += 1,
                InsertOutcome::NeedsRetrain => break,
                InsertOutcome::Replaced(_) => unreachable!(),
            }
        }
        assert_eq!(inserted, 8);
    }

    #[test]
    fn gapped_density_triggers_retrain() {
        let data = sample_data(100);
        let mut leaf = build_leaf(LeafKind::Gapped { density: 0.5, max_density: 0.8 }, &data);
        let mut hit = false;
        for k in 0..200u64 {
            if leaf.insert(k * 10 + 5, k) == InsertOutcome::NeedsRetrain {
                hit = true;
                break;
            }
        }
        assert!(hit, "density bound never hit");
    }

    #[test]
    fn gapped_moves_fewer_than_inplace() {
        // The core claim of Fig. 18 (a): gap inserts move far fewer keys.
        let data = sample_data(2_000);
        let mut gap = build_leaf(LeafKind::Gapped { density: 0.5, max_density: 0.95 }, &data);
        let mut inp = build_leaf(LeafKind::Inplace { reserve: 512 }, &data);
        let mut rng = StdRng::seed_from_u64(5);
        let mut count = 0;
        for n in 0..512u64 {
            let k = rng.random_range(0..20_000u64) | 1; // odd => absent
            let a = gap.insert(k, n);
            let b = inp.insert(k, n);
            if a == InsertOutcome::Inserted && b == InsertOutcome::Inserted {
                count += 1;
            }
            if a == InsertOutcome::NeedsRetrain || b == InsertOutcome::NeedsRetrain {
                break;
            }
        }
        assert!(count > 100);
        assert!(
            gap.moves() * 10 < inp.moves().max(1),
            "gap moves {} vs inplace moves {}",
            gap.moves(),
            inp.moves()
        );
    }

    #[test]
    fn empty_leaves() {
        for kind in all_kinds() {
            let mut leaf = build_leaf(kind, &[]);
            assert!(leaf.is_empty(), "{}", kind.name());
            assert_eq!(leaf.get(1), None);
            assert_eq!(leaf.first_key(), None);
            assert_eq!(leaf.remove(1), None);
            let mut out = Vec::new();
            leaf.range_into(0, u64::MAX, &mut out);
            assert!(out.is_empty());
        }
    }

    proptest::proptest! {
        #[test]
        fn leaves_match_btreemap(ops in proptest::collection::vec((0u64..500, 0u64..1000, proptest::bool::ANY), 0..300)) {
            let data: Vec<KeyValue> = (0..100u64).map(|i| (i * 5, i)).collect();
            for kind in all_kinds() {
                let mut leaf = build_leaf(kind, &data);
                let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
                for &(k, v, is_insert) in &ops {
                    if is_insert {
                        match leaf.insert(k, v) {
                            InsertOutcome::Inserted => { model.insert(k, v); }
                            InsertOutcome::Replaced(old) => {
                                proptest::prop_assert_eq!(model.insert(k, v), Some(old));
                            }
                            InsertOutcome::NeedsRetrain => {}
                        }
                    } else {
                        let got = leaf.remove(k);
                        let expect = model.remove(&k);
                        proptest::prop_assert_eq!(got, expect, "{} remove {}", kind.name(), k);
                    }
                }
                let got = leaf.to_sorted_vec();
                let expect: Vec<KeyValue> = model.iter().map(|(&k, &v)| (k, v)).collect();
                proptest::prop_assert_eq!(got, expect, "{}", kind.name());
            }
        }
    }
}
