//! A full updatable learned index assembled from the four pieces.
//!
//! [`PiecewiseIndex`] composes an approximation algorithm, an inner
//! structure, a leaf insertion strategy and a retraining policy — any of
//! the 4 × 4 × 3 × 2 combinations. The existing indexes fall out as special
//! cases (e.g. Opt-PLA + LRS + Buffer ≈ PGM; LSA + ATS + Gapped + expand ≈
//! ALEX), and novel combinations the paper speculates about in §V (e.g.
//! Opt-PLA + ATS + Gapped) can be built and measured directly.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use crate::approx::ApproxAlgorithm;
use crate::model::LinearModel;
use crate::pieces::insertion::{InsertOutcome, Leaf, LeafKind, LeafStorage};
use crate::pieces::retrain::{RetrainPolicy, RetrainStats};
use crate::pieces::structure::{InnerStructure, StructureKind};
use crate::traits::{DepthStats, Index, OrderedIndex, TwoPhaseLookup, UpdatableIndex};
use crate::types::{Key, KeyValue, Value};
use li_telemetry::{Event, OpKind, Recorder};

/// Configuration choosing one point in the paper's design space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiecewiseConfig {
    pub algo: ApproxAlgorithm,
    pub structure: StructureKind,
    pub leaf: LeafKind,
    pub policy: RetrainPolicy,
}

impl Default for PiecewiseConfig {
    /// A strong default per §V's suggestions: bounded-error segmentation,
    /// asymmetric-tree routing, gapped leaves with expand-or-split.
    fn default() -> Self {
        PiecewiseConfig {
            algo: ApproxAlgorithm::OptPla { epsilon: 32 },
            structure: StructureKind::Ats,
            leaf: LeafKind::Gapped { density: 0.7, max_density: 0.85 },
            policy: RetrainPolicy::ExpandOrSplit { expand_factor: 1.5, split_error_threshold: 8.0 },
        }
    }
}

/// The assembled learned index.
pub struct PiecewiseIndex {
    cfg: PiecewiseConfig,
    /// Leaves in key order.
    leaves: Vec<Leaf>,
    /// Routing key of each leaf (boundary; every key in leaf `i` is
    /// `>= first_keys[i]`, except in leaf 0 which also absorbs smaller
    /// keys).
    first_keys: Vec<Key>,
    inner: Box<dyn InnerStructure>,
    len: usize,
    stats: RetrainStats,
    recorder: Recorder,
    /// Deferred-retrain mode: inserts that would trigger a retrain park
    /// the key in `overflow` and enqueue the leaf instead of blocking.
    defer_retrains: bool,
    /// Keys awaiting a background retrain. Invariant: a key is never in
    /// both a leaf and the overflow buffer, so reads stay exact.
    overflow: BTreeMap<Key, Value>,
    /// Routing boundaries (`first_keys[li]` at enqueue time) of leaves
    /// with parked keys — the retrain work queue.
    pending_leaves: BTreeSet<Key>,
}

/// Magic + version tag opening a serialized piecewise model ("LIPPLA01").
const MODEL_MAGIC: u64 = 0x4C49_5050_4C41_3031;

impl PiecewiseIndex {
    /// Serializes the model *structure* — the segment boundaries the
    /// approximation algorithm chose — for a durability checkpoint:
    /// `magic(8) ‖ count(8) ‖ count × boundary_key(8)`, little-endian.
    /// Per-segment slopes are deliberately not saved; they are cheap
    /// least-squares fits over each partition, while the boundaries are
    /// what the expensive segmentation pass (Opt-PLA / FSW) computed.
    pub fn model_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.first_keys.len() * 8);
        buf.extend_from_slice(&MODEL_MAGIC.to_le_bytes());
        buf.extend_from_slice(&(self.first_keys.len() as u64).to_le_bytes());
        for &k in &self.first_keys {
            buf.extend_from_slice(&k.to_le_bytes());
        }
        buf
    }

    fn decode_model(bytes: &[u8]) -> Option<Vec<Key>> {
        if bytes.len() < 16 {
            return None;
        }
        if u64::from_le_bytes(bytes[..8].try_into().unwrap()) != MODEL_MAGIC {
            return None;
        }
        let count = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        if count == 0 || bytes.len() != 16 + count * 8 {
            return None;
        }
        let mut bounds = Vec::with_capacity(count);
        for i in 0..count {
            let at = 16 + i * 8;
            bounds.push(u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()));
        }
        if bounds.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        Some(bounds)
    }

    /// Rebuilds from checkpointed model bytes plus the recovered pairs:
    /// the saved boundaries partition `data` and each partition gets a
    /// fresh least-squares fit — no segmentation pass. Invalid bytes, or
    /// bytes that no longer cover the data, fall back to a full
    /// [`PiecewiseIndex::build_with`]; the result is always exact, only
    /// the build cost differs.
    pub fn build_from_model(cfg: PiecewiseConfig, data: &[KeyValue], bytes: &[u8]) -> Self {
        let Some(bounds) = Self::decode_model(bytes) else {
            return Self::build_with(cfg, data);
        };
        if data.is_empty() {
            return Self::build_with(cfg, data);
        }
        let mut leaves = Vec::with_capacity(bounds.len());
        let mut first_keys = Vec::with_capacity(bounds.len());
        let mut start = 0usize;
        for (i, &b) in bounds.iter().enumerate() {
            let end = bounds
                .get(i + 1)
                .map_or(data.len(), |&next| data.partition_point(|kv| kv.0 < next));
            // The first partition absorbs keys below its boundary, like
            // leaf 0 of a normal build; empty partitions (their keys were
            // deleted since the checkpoint) are dropped from routing.
            if end > start {
                let chunk = &data[start..end];
                let keys: Vec<Key> = chunk.iter().map(|kv| kv.0).collect();
                let model = LinearModel::fit_least_squares(&keys);
                let (max_err, _) = model.errors(&keys);
                leaves.push(cfg.leaf.build(chunk, model, max_err.ceil() as u64));
                first_keys.push(if first_keys.is_empty() { b.min(keys[0]) } else { b });
                start = end;
            }
        }
        if leaves.is_empty() {
            return Self::build_with(cfg, data);
        }
        let inner = cfg.structure.build_dyn(&first_keys);
        PiecewiseIndex {
            cfg,
            leaves,
            first_keys,
            inner,
            len: data.len(),
            stats: RetrainStats::default(),
            recorder: Recorder::disabled(),
            defer_retrains: false,
            overflow: BTreeMap::new(),
            pending_leaves: BTreeSet::new(),
        }
    }

    /// Bulk-builds from strictly-ascending pairs.
    pub fn build_with(cfg: PiecewiseConfig, data: &[KeyValue]) -> Self {
        let keys: Vec<Key> = data.iter().map(|kv| kv.0).collect();
        let segments = cfg.algo.segment(&keys);
        let mut leaves = Vec::with_capacity(segments.len());
        let mut first_keys = Vec::with_capacity(segments.len());
        for s in &segments {
            let local = s.model.shifted(-(s.start as f64));
            leaves.push(cfg.leaf.build(&data[s.start..s.start + s.len], local, s.max_error));
            first_keys.push(s.first_key);
        }
        let inner = cfg.structure.build_dyn(&first_keys);
        PiecewiseIndex {
            cfg,
            leaves,
            first_keys,
            inner,
            len: data.len(),
            stats: RetrainStats::default(),
            recorder: Recorder::disabled(),
            defer_retrains: false,
            overflow: BTreeMap::new(),
            pending_leaves: BTreeSet::new(),
        }
    }

    /// The configuration this index was assembled from.
    pub fn config(&self) -> PiecewiseConfig {
        self.cfg
    }

    /// Update/retrain counters, including move counts accumulated in
    /// retired leaves.
    pub fn stats(&self) -> RetrainStats {
        let mut s = self.stats;
        s.insert_moves += self.leaves.iter().map(super::insertion::LeafStorage::moves).sum::<u64>();
        s
    }

    #[inline]
    fn leaf_for(&self, key: Key) -> usize {
        self.inner.locate(key)
    }

    /// Rebuilds leaf `li` after an overflow, inserting `pending` in the
    /// process. May replace the leaf with several leaves (split) and
    /// rebuild the inner structure.
    fn retrain_leaf(&mut self, li: usize, pending: KeyValue) {
        self.retrain_leaf_with(li, &[pending]);
    }

    /// Like [`Self::retrain_leaf`] but merges a sorted batch of pending
    /// keys (none of which may already live in the leaf) — the drain path
    /// of deferred retraining.
    fn retrain_leaf_with(&mut self, li: usize, pending: &[KeyValue]) {
        let t0 = Instant::now();
        let old = &self.leaves[li];
        let retired_moves = old.moves();
        self.stats.insert_moves += retired_moves;
        let mut data = old.to_sorted_vec();
        for &kv in pending {
            let pos = data.partition_point(|x| x.0 < kv.0);
            debug_assert!(data.get(pos).is_none_or(|x| x.0 != kv.0));
            data.insert(pos, kv);
        }
        if data.is_empty() {
            return;
        }
        let keys_involved = data.len() as u64;

        let mut new_leaves: Vec<(Key, Leaf)> = match self.cfg.policy {
            RetrainPolicy::ResegmentLeaf => self.resegment(&data),
            RetrainPolicy::ExpandOrSplit { expand_factor, split_error_threshold } => {
                self.expand_or_split(&data, expand_factor, split_error_threshold)
            }
        };
        // The first replacement leaf keeps the old routing boundary: the
        // inner structure is only rebuilt on structural change, and the
        // boundary invariant (every key in leaf i is >= first_keys[i])
        // continues to hold because all retrained keys were routed here.
        new_leaves[0].0 = new_leaves[0].0.min(self.first_keys[li]);

        let structural_change = new_leaves.len() != 1;
        let mut keys_iter = Vec::with_capacity(new_leaves.len());
        let mut leaf_iter = Vec::with_capacity(new_leaves.len());
        for (k, l) in new_leaves {
            keys_iter.push(k);
            leaf_iter.push(l);
        }
        self.first_keys.splice(li..=li, keys_iter);
        self.leaves.splice(li..=li, leaf_iter);
        if structural_change {
            self.inner = self.cfg.structure.build_dyn(&self.first_keys);
        }
        let elapsed = t0.elapsed();
        self.stats.record_retrain(elapsed, keys_involved);

        // Telemetry: every retrain leaves a strategy-specific fingerprint.
        self.recorder.event(Event::Retrain);
        self.recorder
            .record_ns(OpKind::Retrain, elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.recorder.event_n(Event::KeyShift, retired_moves);
        if matches!(self.cfg.leaf, LeafKind::Buffer { .. }) {
            // The retired leaf's off-site buffer was merged into the
            // rebuilt base model.
            self.recorder.event(Event::BufferFlush);
        }
        if structural_change {
            self.recorder.event(Event::SplitNode);
        } else if matches!(self.cfg.policy, RetrainPolicy::ExpandOrSplit { .. }) {
            self.recorder.event(Event::ExpandNode);
        }
    }

    /// FITing-tree / XIndex style: re-run the approximation algorithm over
    /// the leaf's keys and build one leaf per resulting segment.
    fn resegment(&self, data: &[KeyValue]) -> Vec<(Key, Leaf)> {
        let keys: Vec<Key> = data.iter().map(|kv| kv.0).collect();
        let segments = self.cfg.algo.segment(&keys);
        segments
            .iter()
            .map(|s| {
                let local = s.model.shifted(-(s.start as f64));
                (
                    s.first_key,
                    self.cfg.leaf.build(&data[s.start..s.start + s.len], local, s.max_error),
                )
            })
            .collect()
    }

    /// Hard node-size cap for the expand-or-split policy.
    const MAX_EXPAND_KEYS: usize = 16 * 1024;

    /// ALEX style: rebuild in place (expansion) while a single model still
    /// serves the leaf well; split into two leaves otherwise.
    ///
    /// The dense fit's mean error is the criterion for every leaf kind:
    /// for dense leaves it bounds the search window, and for gapped leaves
    /// it determines how long the gapless runs of a model-based layout get
    /// — and with them the shift cost per insert. A small floor prevents
    /// split churn on noisy fits of tiny leaves.
    fn expand_or_split(
        &self,
        data: &[KeyValue],
        _expand_factor: f64,
        split_error_threshold: f64,
    ) -> Vec<(Key, Leaf)> {
        let keys: Vec<Key> = data.iter().map(|kv| kv.0).collect();
        let model = LinearModel::fit_least_squares(&keys);
        let (_, avg_err) = model.errors(&keys);
        if (avg_err <= split_error_threshold || data.len() <= 512)
            && data.len() <= Self::MAX_EXPAND_KEYS
        {
            // Expand: one fresh leaf over all keys (gap leaves regain their
            // target density; inplace/buffer leaves get fresh reserves).
            let (max_err, _) = model.errors(&keys);
            vec![(keys[0], self.cfg.leaf.build(data, model, max_err.ceil() as u64))]
        } else {
            // Split in half.
            let mid = data.len() / 2;
            [&data[..mid], &data[mid..]]
                .into_iter()
                .map(|chunk| {
                    let ck: Vec<Key> = chunk.iter().map(|kv| kv.0).collect();
                    let m = LinearModel::fit_least_squares(&ck);
                    let (max_err, _) = m.errors(&ck);
                    (ck[0], self.cfg.leaf.build(chunk, m, max_err.ceil() as u64))
                })
                .collect()
        }
    }
}

impl Index for PiecewiseIndex {
    fn name(&self) -> &'static str {
        "Piecewise"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, key: Key) -> Option<Value> {
        if self.leaves.is_empty() {
            return None;
        }
        self.leaves[self.leaf_for(key)].get(key).or_else(|| self.overflow.get(&key).copied())
    }

    fn index_size_bytes(&self) -> usize {
        self.inner.size_bytes() + self.first_keys.len() * core::mem::size_of::<Key>()
    }

    fn data_size_bytes(&self) -> usize {
        self.leaves.iter().map(super::insertion::LeafStorage::data_size_bytes).sum::<usize>()
            + self.overflow.len() * core::mem::size_of::<KeyValue>()
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn model_save(&self) -> Option<Vec<u8>> {
        Some(self.model_bytes())
    }
}

impl OrderedIndex for PiecewiseIndex {
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        if self.leaves.is_empty() || lo > hi {
            return;
        }
        // The starting leaf must be scanned unconditionally: leaf 0 (and
        // a retrained leaf that kept an older boundary) can hold keys
        // below its routing key, so `first_keys[start] > hi` does not
        // imply emptiness of the requested range.
        let appended_at = out.len();
        let start = self.leaf_for(lo);
        let mut li = start;
        while li < self.leaves.len() {
            if li > start && self.first_keys[li] > hi {
                break;
            }
            self.leaves[li].range_into(lo, hi, out);
            li += 1;
        }
        if !self.overflow.is_empty() {
            let extra: Vec<KeyValue> =
                self.overflow.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            if !extra.is_empty() {
                // Merge the parked keys into what this call appended; the
                // two runs are sorted and key-disjoint.
                let tail = out.split_off(appended_at);
                let (mut a, mut b) = (tail.into_iter().peekable(), extra.into_iter().peekable());
                loop {
                    match (a.peek(), b.peek()) {
                        (Some(x), Some(y)) => {
                            if x.0 < y.0 {
                                out.push(a.next().unwrap());
                            } else {
                                out.push(b.next().unwrap());
                            }
                        }
                        (Some(_), None) => out.push(a.next().unwrap()),
                        (None, Some(_)) => out.push(b.next().unwrap()),
                        (None, None) => break,
                    }
                }
            }
        }
    }
}

impl UpdatableIndex for PiecewiseIndex {
    fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        let t0 = Instant::now();
        self.stats.inserts += 1;
        if self.leaves.is_empty() {
            let leaf = self.cfg.leaf.build(&[(key, value)], LinearModel::default(), 0);
            self.leaves.push(leaf);
            self.first_keys.push(key);
            self.inner = self.cfg.structure.build_dyn(&self.first_keys);
            self.len = 1;
            let elapsed = t0.elapsed();
            self.stats.insert_time += elapsed;
            self.recorder
                .record_ns(OpKind::Insert, elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
            return None;
        }
        // A parked key must be updated in place: letting it re-enter a
        // leaf would leave a stale twin in the overflow buffer.
        if self.defer_retrains && self.overflow.contains_key(&key) {
            let out = self.overflow.insert(key, value);
            let elapsed = t0.elapsed();
            self.stats.insert_time += elapsed;
            self.recorder
                .record_ns(OpKind::Insert, elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
            return out;
        }
        let li = self.leaf_for(key);
        let out = match self.leaves[li].insert(key, value) {
            InsertOutcome::Inserted => {
                self.len += 1;
                None
            }
            InsertOutcome::Replaced(old) => Some(old),
            InsertOutcome::NeedsRetrain => {
                if self.defer_retrains {
                    self.overflow.insert(key, value);
                    self.pending_leaves.insert(self.first_keys[li]);
                    self.recorder.event(Event::RetrainDeferred);
                } else {
                    self.retrain_leaf(li, (key, value));
                }
                self.len += 1;
                None
            }
        };
        let elapsed = t0.elapsed();
        self.stats.insert_time += elapsed;
        self.recorder
            .record_ns(OpKind::Insert, elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
        out
    }

    fn remove(&mut self, key: Key) -> Option<Value> {
        if !self.overflow.is_empty() {
            if let Some(old) = self.overflow.remove(&key) {
                self.len -= 1;
                return Some(old);
            }
        }
        if self.leaves.is_empty() {
            return None;
        }
        let li = self.leaf_for(key);
        let old = self.leaves[li].remove(key);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    fn set_defer_retrains(&mut self, on: bool) -> bool {
        if !on && self.defer_retrains {
            // Leaving deferred mode flushes all parked work so the index
            // returns to its fully-trained invariant.
            self.run_pending_retrains(usize::MAX);
        }
        self.defer_retrains = on;
        true
    }

    fn pending_retrains(&self) -> usize {
        self.pending_leaves.len()
    }

    fn run_pending_retrains(&mut self, budget: usize) -> usize {
        let mut done = 0;
        while done < budget {
            let Some(&boundary) = self.pending_leaves.iter().next() else { break };
            self.pending_leaves.remove(&boundary);
            if !self.drain_leaf_at(boundary) {
                continue; // already drained via a sibling marker
            }
            done += 1;
        }
        // Belt-and-braces: overflow keys can outlive their marker if a
        // sibling drain restructured routing first; sweep them too.
        while done < budget && self.pending_leaves.is_empty() && !self.overflow.is_empty() {
            let &straggler = self.overflow.keys().next().unwrap();
            if self.drain_leaf_at(straggler) {
                done += 1;
            } else {
                break;
            }
        }
        done
    }
}

impl PiecewiseIndex {
    /// Drains every parked key currently routed to `probe`'s leaf into a
    /// single batched retrain. Returns false when nothing was parked there.
    fn drain_leaf_at(&mut self, probe: Key) -> bool {
        if self.leaves.is_empty() {
            return false;
        }
        let li = self.leaf_for(probe);
        let pending: Vec<KeyValue> = self
            .overflow
            .iter()
            .map(|(&k, &v)| (k, v))
            .filter(|kv| self.leaf_for(kv.0) == li)
            .collect();
        if pending.is_empty() {
            return false;
        }
        for kv in &pending {
            self.overflow.remove(&kv.0);
        }
        self.retrain_leaf_with(li, &pending);
        true
    }
}

impl DepthStats for PiecewiseIndex {
    fn avg_depth(&self) -> f64 {
        self.inner.avg_depth()
    }

    fn leaf_count(&self) -> usize {
        self.leaves.len()
    }
}

impl TwoPhaseLookup for PiecewiseIndex {
    fn locate_leaf(&self, key: Key) -> usize {
        self.leaf_for(key)
    }

    fn search_leaf(&self, leaf: usize, key: Key) -> Option<Value> {
        self.leaves[leaf].get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    use std::collections::BTreeMap;

    fn sorted_data(n: u64, stride: u64, offset: u64) -> Vec<KeyValue> {
        (0..n).map(|i| (i * stride + offset, i)).collect()
    }

    fn all_configs() -> Vec<PiecewiseConfig> {
        let mut out = Vec::new();
        for algo in [
            ApproxAlgorithm::OptPla { epsilon: 16 },
            ApproxAlgorithm::Fsw { epsilon: 16 },
            ApproxAlgorithm::Lsa { seg_size: 128 },
        ] {
            for structure in StructureKind::ALL {
                for leaf in [
                    LeafKind::Inplace { reserve: 32 },
                    LeafKind::Buffer { reserve: 32 },
                    LeafKind::Gapped { density: 0.7, max_density: 0.85 },
                ] {
                    for policy in [
                        RetrainPolicy::ResegmentLeaf,
                        RetrainPolicy::ExpandOrSplit {
                            expand_factor: 1.5,
                            split_error_threshold: 8.0,
                        },
                    ] {
                        out.push(PiecewiseConfig { algo, structure, leaf, policy });
                    }
                }
            }
        }
        out
    }

    #[test]
    fn build_and_get_every_combination() {
        let data = sorted_data(3_000, 7, 5);
        for cfg in all_configs() {
            let idx = PiecewiseIndex::build_with(cfg, &data);
            assert_eq!(idx.len(), data.len(), "{cfg:?}");
            for &(k, v) in data.iter().step_by(17) {
                assert_eq!(idx.get(k), Some(v), "{cfg:?} key {k}");
            }
            assert_eq!(idx.get(3), None, "{cfg:?}");
            assert!(idx.leaf_count() >= 1);
            assert!(idx.avg_depth() >= 1.0);
        }
    }

    #[test]
    fn insert_heavy_random_workload_matches_model() {
        let data = sorted_data(500, 10, 0);
        // Exercise one representative config per leaf kind.
        let configs = [
            PiecewiseConfig {
                algo: ApproxAlgorithm::OptPla { epsilon: 8 },
                structure: StructureKind::BTree,
                leaf: LeafKind::Buffer { reserve: 16 },
                policy: RetrainPolicy::ResegmentLeaf,
            },
            PiecewiseConfig {
                algo: ApproxAlgorithm::Fsw { epsilon: 8 },
                structure: StructureKind::Lrs,
                leaf: LeafKind::Inplace { reserve: 16 },
                policy: RetrainPolicy::ResegmentLeaf,
            },
            PiecewiseConfig::default(),
        ];
        for cfg in configs {
            let mut idx = PiecewiseIndex::build_with(cfg, &data);
            let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
            let mut rng = StdRng::seed_from_u64(123);
            for n in 0..20_000u64 {
                let k = rng.random_range(0..20_000u64);
                let expect = model.insert(k, n);
                let got = idx.insert(k, n);
                assert_eq!(got, expect, "{cfg:?} insert {k}");
            }
            assert_eq!(idx.len(), model.len(), "{cfg:?}");
            for (&k, &v) in model.iter().step_by(11) {
                assert_eq!(idx.get(k), Some(v), "{cfg:?} get {k}");
            }
            // Retrains must have happened under this much churn.
            assert!(idx.stats().count > 0, "{cfg:?}");
        }
    }

    #[test]
    fn range_scan_after_inserts() {
        let data = sorted_data(1_000, 4, 2);
        let mut idx = PiecewiseIndex::build_with(PiecewiseConfig::default(), &data);
        let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(9);
        for n in 0..3_000u64 {
            let k = rng.random_range(0..5_000u64);
            idx.insert(k, n);
            model.insert(k, n);
        }
        for _ in 0..50 {
            let lo = rng.random_range(0..4_000u64);
            let hi = lo + rng.random_range(0..1_000u64);
            let got = idx.range_vec(lo, hi);
            let expect: Vec<KeyValue> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, expect, "range {lo}..={hi}");
        }
    }

    #[test]
    fn remove_everything() {
        let data = sorted_data(2_000, 3, 1);
        let mut idx = PiecewiseIndex::build_with(PiecewiseConfig::default(), &data);
        for &(k, v) in &data {
            assert_eq!(idx.remove(k), Some(v));
            assert_eq!(idx.remove(k), None);
        }
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.get(3), None);
    }

    #[test]
    fn grow_from_empty() {
        let mut idx = PiecewiseIndex::build_with(PiecewiseConfig::default(), &[]);
        assert!(idx.is_empty());
        assert_eq!(idx.get(1), None);
        let mut model = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(31);
        for n in 0..5_000u64 {
            let k: Key = rng.random_range(0..1 << 48);
            idx.insert(k, n);
            model.insert(k, n);
        }
        assert_eq!(idx.len(), model.len());
        for (&k, &v) in model.iter().step_by(7) {
            assert_eq!(idx.get(k), Some(v));
        }
    }

    #[test]
    fn descending_inserts() {
        let mut idx = PiecewiseIndex::build_with(PiecewiseConfig::default(), &[]);
        for k in (0..5_000u64).rev() {
            idx.insert(k * 2, k);
        }
        assert_eq!(idx.len(), 5_000);
        assert_eq!(idx.get(0), Some(0));
        assert_eq!(idx.get(9_998), Some(4_999));
        assert_eq!(idx.get(9_999), None);
    }

    #[test]
    fn range_below_first_boundary_after_small_key_insert() {
        // Regression: leaf 0 absorbs keys below its routing boundary; a
        // range whose hi sits below that boundary must still scan leaf 0.
        let data: Vec<KeyValue> = (0..1_000u64).map(|i| (1 << 40 | i, i)).collect();
        let mut idx = PiecewiseIndex::build_with(PiecewiseConfig::default(), &data);
        idx.insert(123, 9);
        idx.insert(456, 8);
        assert_eq!(idx.range_vec(100, 500), vec![(123, 9), (456, 8)]);
        assert_eq!(idx.range_vec(0, 10), vec![]);
        assert_eq!(idx.get(123), Some(9));
    }

    #[test]
    fn deferred_retrains_stay_correct_and_drain() {
        let data = sorted_data(500, 10, 0);
        let mut idx = PiecewiseIndex::build_with(PiecewiseConfig::default(), &data);
        let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
        let r = li_telemetry::Recorder::enabled();
        idx.set_recorder(r.clone());
        assert!(idx.set_defer_retrains(true));
        let mut rng = StdRng::seed_from_u64(77);
        for n in 0..20_000u64 {
            let k = rng.random_range(0..20_000u64);
            if rng.random_bool(0.8) {
                assert_eq!(idx.insert(k, n), model.insert(k, n), "insert {k}");
            } else {
                assert_eq!(idx.remove(k), model.remove(&k), "remove {k}");
            }
            if n % 4096 == 0 {
                idx.run_pending_retrains(2);
            }
            if n % 997 == 0 {
                assert_eq!(idx.get(k), model.get(&k).copied(), "get {k}");
            }
        }
        assert!(r.event_count(Event::RetrainDeferred) > 0, "defer mode never deferred");
        assert_eq!(idx.len(), model.len());
        // Reads and scans see parked keys exactly.
        let expect: Vec<KeyValue> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(idx.range_vec(0, u64::MAX), expect);
        // Leaving deferred mode flushes the queue and stays correct.
        assert!(idx.set_defer_retrains(false));
        assert_eq!(idx.pending_retrains(), 0);
        assert_eq!(idx.range_vec(0, u64::MAX), expect);
        for (&k, &v) in model.iter().step_by(13) {
            assert_eq!(idx.get(k), Some(v));
        }
        assert!(r.event_count(Event::Retrain) > 0);
    }

    #[test]
    fn two_phase_lookup_consistent() {
        let data = sorted_data(5_000, 5, 0);
        let idx = PiecewiseIndex::build_with(PiecewiseConfig::default(), &data);
        for &(k, v) in data.iter().step_by(97) {
            let leaf = idx.locate_leaf(k);
            assert_eq!(idx.search_leaf(leaf, k), Some(v));
        }
    }

    #[test]
    fn model_roundtrip_rebuilds_exactly() {
        let data = sorted_data(20_000, 3, 11);
        let idx = PiecewiseIndex::build_with(PiecewiseConfig::default(), &data);
        let bytes = idx.model_save().expect("piecewise saves its model");
        let rebuilt = PiecewiseIndex::build_from_model(PiecewiseConfig::default(), &data, &bytes);
        assert_eq!(rebuilt.len(), data.len());
        assert_eq!(rebuilt.leaf_count(), idx.leaf_count(), "boundaries preserved");
        for &(k, v) in data.iter().step_by(41) {
            assert_eq!(rebuilt.get(k), Some(v));
        }
        assert_eq!(rebuilt.get(1), None);
        assert_eq!(rebuilt.range_vec(0, u64::MAX), data);
    }

    #[test]
    fn model_rebuild_tolerates_data_drift() {
        // The recovered pairs may differ from the checkpointed snapshot
        // (WAL replay applied inserts and deletes): partitioning by stale
        // boundaries must stay exact anyway.
        let data = sorted_data(5_000, 4, 0);
        let idx = PiecewiseIndex::build_with(PiecewiseConfig::default(), &data);
        let bytes = idx.model_bytes();
        let mut drifted: Vec<KeyValue> = data.iter().copied().filter(|kv| kv.0 % 16 != 0).collect();
        for i in 0..500u64 {
            drifted.push((30_000 + i, i)); // beyond the last boundary
        }
        drifted.sort_unstable_by_key(|kv| kv.0);
        let rebuilt =
            PiecewiseIndex::build_from_model(PiecewiseConfig::default(), &drifted, &bytes);
        assert_eq!(rebuilt.len(), drifted.len());
        assert_eq!(rebuilt.range_vec(0, u64::MAX), drifted);
        assert_eq!(rebuilt.get(16), None, "deleted key must stay deleted");
        assert_eq!(rebuilt.get(30_000), Some(0));
    }

    #[test]
    fn invalid_model_bytes_fall_back_to_full_build() {
        let data = sorted_data(2_000, 5, 7);
        for bad in [&b""[..], &b"garbage!"[..], &[0u8; 64][..]] {
            let idx = PiecewiseIndex::build_from_model(PiecewiseConfig::default(), &data, bad);
            assert_eq!(idx.len(), data.len());
            assert_eq!(idx.range_vec(0, u64::MAX), data);
        }
        // A truncated genuine model is rejected too.
        let full = PiecewiseIndex::build_with(PiecewiseConfig::default(), &data).model_bytes();
        let idx = PiecewiseIndex::build_from_model(
            PiecewiseConfig::default(),
            &data,
            &full[..full.len() - 3],
        );
        assert_eq!(idx.range_vec(0, u64::MAX), data);
        // A mutated rebuilt index keeps accepting writes.
        let mut idx = PiecewiseIndex::build_from_model(PiecewiseConfig::default(), &data, &full);
        idx.insert(1, 99);
        assert_eq!(idx.get(1), Some(99));
    }

    #[test]
    fn sizes_reported() {
        let data = sorted_data(10_000, 2, 0);
        let idx = PiecewiseIndex::build_with(PiecewiseConfig::default(), &data);
        assert!(idx.index_size_bytes() > 0);
        assert!(idx.data_size_bytes() >= data.len() * core::mem::size_of::<KeyValue>());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn piecewise_matches_btreemap(
            seed in 0u64..1000,
            ops in 100usize..800,
        ) {
            let data = sorted_data(200, 6, 3);
            let mut idx = PiecewiseIndex::build_with(PiecewiseConfig::default(), &data);
            let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
            let mut rng = StdRng::seed_from_u64(seed);
            for n in 0..ops as u64 {
                let k = rng.random_range(0..2_000u64);
                if rng.random_bool(0.7) {
                    proptest::prop_assert_eq!(idx.insert(k, n), model.insert(k, n));
                } else {
                    proptest::prop_assert_eq!(idx.remove(k), model.remove(&k));
                }
            }
            proptest::prop_assert_eq!(idx.len(), model.len());
            let got = idx.range_vec(0, u64::MAX);
            let expect: Vec<KeyValue> = model.iter().map(|(&k, &v)| (k, v)).collect();
            proptest::prop_assert_eq!(got, expect);
        }
    }
}
