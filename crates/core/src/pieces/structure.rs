//! Inner index structures (§IV-B, Fig. 17 (c)).
//!
//! An inner structure routes a key to the leaf (segment) that may contain
//! it. The four structures evaluated by the paper are implemented over the
//! same interface so they can be swapped freely:
//!
//! * [`BTreeInner`] — comparison-based B+tree levels (FITing-tree).
//! * [`RmiInner`] — two-layer recursive model index (XIndex's root).
//! * [`LrsInner`] — linear recursive structure: Opt-PLA applied to its own
//!   segment keys until one segment remains (PGM-Index).
//! * [`AtsInner`] — asymmetric tree with model-routed internal nodes and
//!   variable leaf depth (ALEX).
//!
//! `locate(key)` returns the index of the last leaf whose first key is
//! `<= key` (0 when the key precedes every leaf), which is the contract the
//! assembled index and all benchmarks rely on.

use crate::approx::optpla::segment_opt_pla;
use crate::model::LinearModel;
use crate::search::bounded_last_le;
use crate::types::Key;

/// Common interface of all inner structures.
pub trait InnerStructure: Send + Sync {
    /// Builds over the sorted, distinct first keys of the leaves.
    fn build(first_keys: &[Key]) -> Self
    where
        Self: Sized;

    /// Index of the last leaf with `first_key <= key`, clamped to 0.
    fn locate(&self, key: Key) -> usize;

    /// Bytes used by the structure.
    fn size_bytes(&self) -> usize;

    /// Mean root-to-leaf hop count.
    fn avg_depth(&self) -> f64;

    fn name(&self) -> &'static str;
}

/// Runtime selector for benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    BTree,
    Rmi,
    Lrs,
    Ats,
}

impl StructureKind {
    pub const ALL: [StructureKind; 4] =
        [StructureKind::BTree, StructureKind::Rmi, StructureKind::Lrs, StructureKind::Ats];

    pub fn name(&self) -> &'static str {
        match self {
            StructureKind::BTree => "BTREE",
            StructureKind::Rmi => "RMI",
            StructureKind::Lrs => "LRS",
            StructureKind::Ats => "ATS",
        }
    }

    /// Builds the selected structure behind a trait object.
    pub fn build_dyn(&self, first_keys: &[Key]) -> Box<dyn InnerStructure> {
        match self {
            StructureKind::BTree => Box::new(BTreeInner::build(first_keys)),
            StructureKind::Rmi => Box::new(RmiInner::build(first_keys)),
            StructureKind::Lrs => Box::new(LrsInner::build(first_keys)),
            StructureKind::Ats => Box::new(AtsInner::build(first_keys)),
        }
    }
}

// ---------------------------------------------------------------------------
// BTREE
// ---------------------------------------------------------------------------

/// Static B+tree levels with comparison-based descent (fanout
/// [`BTreeInner::FANOUT`]), modelling FITing-tree's STX-B+tree inner
/// structure: every lookup pays one node's worth of comparisons per level.
pub struct BTreeInner {
    /// `levels[0]` are the leaf first-keys; `levels[i+1]` holds every
    /// FANOUT-th key of `levels[i]`. The last level has <= FANOUT keys.
    levels: Vec<Vec<Key>>,
}

impl BTreeInner {
    pub const FANOUT: usize = 32;
}

impl InnerStructure for BTreeInner {
    fn build(first_keys: &[Key]) -> Self {
        let mut levels = vec![first_keys.to_vec()];
        while levels.last().unwrap().len() > Self::FANOUT {
            let prev = levels.last().unwrap();
            let next: Vec<Key> = prev.iter().step_by(Self::FANOUT).copied().collect();
            levels.push(next);
        }
        BTreeInner { levels }
    }

    fn locate(&self, key: Key) -> usize {
        // Descend from the top level; at each level the child index narrows
        // the window in the level below to FANOUT entries.
        let top = self.levels.len() - 1;
        let mut idx = last_le(&self.levels[top], key);
        for depth in (0..top).rev() {
            let lvl = &self.levels[depth];
            let lo = idx * Self::FANOUT;
            let hi = (lo + Self::FANOUT).min(lvl.len());
            let local = last_le(&lvl[lo..hi], key);
            idx = lo + local;
        }
        idx
    }

    fn size_bytes(&self) -> usize {
        // Inner levels only; level 0 belongs to the leaves themselves.
        self.levels[1..].iter().map(|l| l.len() * core::mem::size_of::<Key>()).sum()
    }

    fn avg_depth(&self) -> f64 {
        self.levels.len() as f64
    }

    fn name(&self) -> &'static str {
        "BTREE"
    }
}

/// Index of the last element `<= key`; 0 when all elements exceed `key`.
#[inline]
fn last_le(keys: &[Key], key: Key) -> usize {
    let ub = keys.partition_point(|&k| k <= key);
    ub.saturating_sub(1)
}

// ---------------------------------------------------------------------------
// RMI
// ---------------------------------------------------------------------------

/// Two-layer recursive model index: a root linear model dispatches to one
/// of `m` second-layer linear models, each of which predicts a leaf index
/// with a per-model error bound (correcting with bounded binary search).
pub struct RmiInner {
    first_keys: Vec<Key>,
    root: LinearModel,
    second: Vec<SecondModel>,
}

struct SecondModel {
    model: LinearModel,
    err: usize,
}

impl RmiInner {
    /// Number of leaves routed per second-layer model on average.
    const LEAVES_PER_MODEL: usize = 64;
}

impl InnerStructure for RmiInner {
    fn build(first_keys: &[Key]) -> Self {
        let n = first_keys.len();
        let m = n.div_ceil(Self::LEAVES_PER_MODEL).max(1);
        // Root: least squares over all keys, scaled to [0, m).
        let dense = LinearModel::fit_least_squares(first_keys);
        let root = if n == 0 { dense } else { dense.scaled(m as f64 / n as f64) };

        // Assign each key to a second-layer model by the root's prediction,
        // mirroring RMI's top-down training (§II-A1).
        let mut buckets: Vec<Vec<(Key, usize)>> = vec![Vec::new(); m];
        for (i, &k) in first_keys.iter().enumerate() {
            let b = root.predict_clamped(k, m);
            buckets[b].push((k, i));
        }
        let second = buckets
            .into_iter()
            .map(|b| {
                if b.is_empty() {
                    return SecondModel { model: LinearModel::default(), err: 0 };
                }
                let keys: Vec<Key> = b.iter().map(|&(k, _)| k).collect();
                let base = b[0].1;
                let local = LinearModel::fit_least_squares(&keys);
                let model = local.shifted(base as f64);
                let mut err = 0usize;
                for &(k, i) in &b {
                    let p = model.predict_clamped(k, n);
                    err = err.max(p.abs_diff(i));
                }
                SecondModel { model, err }
            })
            .collect();

        RmiInner { first_keys: first_keys.to_vec(), root, second }
    }

    fn locate(&self, key: Key) -> usize {
        let n = self.first_keys.len();
        if n == 0 {
            return 0;
        }
        let b = self.root.predict_clamped(key, self.second.len());
        let sm = &self.second[b];
        let p = sm.model.predict_clamped(key, n);
        // Bounded search cannot rely on the per-model error alone for keys
        // that fall outside the model's training set (arbitrary query
        // keys), so widen until the window brackets the key.
        let mut err = sm.err + 1;
        loop {
            let lo = p.saturating_sub(err);
            let hi = (p + err).min(n - 1);
            let lo_ok = lo == 0 || self.first_keys[lo] <= key;
            let hi_ok = hi == n - 1 || self.first_keys[hi] > key;
            if lo_ok && hi_ok {
                return bounded_last_le(&self.first_keys, key, p, err);
            }
            err = err.saturating_mul(2).max(2);
            if err >= n {
                return last_le(&self.first_keys, key);
            }
        }
    }

    fn size_bytes(&self) -> usize {
        core::mem::size_of::<LinearModel>()
            + self.second.len() * core::mem::size_of::<SecondModel>()
            + self.first_keys.len() * core::mem::size_of::<Key>()
    }

    fn avg_depth(&self) -> f64 {
        2.0
    }

    fn name(&self) -> &'static str {
        "RMI"
    }
}

// ---------------------------------------------------------------------------
// LRS
// ---------------------------------------------------------------------------

/// Linear recursive structure (PGM-Index, §II-B2): Opt-PLA segments over
/// the leaf keys, then Opt-PLA over *those* segments' first keys, repeated
/// until a single segment remains. Lookup descends with one bounded binary
/// search per level.
pub struct LrsInner {
    /// `levels[0]`: segments over the leaf first-keys; deeper levels index
    /// the level below. Stored bottom-up.
    levels: Vec<LrsLevel>,
    first_keys: Vec<Key>,
}

struct LrsLevel {
    /// First key of each segment at this level.
    seg_keys: Vec<Key>,
    /// Per-segment routing info predicting positions in the level below
    /// (for level 0: positions in `first_keys`).
    models: Vec<LrsSeg>,
}

#[derive(Clone, Copy)]
struct LrsSeg {
    model: LinearModel,
    err: usize,
    /// Position range `[start, start + len)` this segment covers in the
    /// level below; predictions are clamped into it, as PGM does, so that
    /// query keys falling in the gap after a segment's last covered key
    /// cannot push the search window out of the segment.
    start: usize,
    len: usize,
}

impl LrsInner {
    /// PGM's inner epsilon; small to keep inner searches cheap.
    const EPSILON: u64 = 4;

    fn build_level(keys: &[Key]) -> LrsLevel {
        let segs = segment_opt_pla(keys, Self::EPSILON);
        let seg_keys: Vec<Key> = segs.iter().map(|s| s.first_key).collect();
        let models: Vec<LrsSeg> = segs
            .iter()
            .map(|s| LrsSeg {
                model: s.model,
                err: s.max_error as usize,
                start: s.start,
                len: s.len,
            })
            .collect();
        LrsLevel { seg_keys, models }
    }
}

impl InnerStructure for LrsInner {
    fn build(first_keys: &[Key]) -> Self {
        let mut levels = Vec::new();
        if first_keys.is_empty() {
            return LrsInner { levels, first_keys: Vec::new() };
        }
        let mut current = first_keys.to_vec();
        loop {
            let level = Self::build_level(&current);
            let next: Vec<Key> = level.seg_keys.clone();
            let done = next.len() <= 1;
            levels.push(level);
            if done {
                break;
            }
            current = next;
        }
        LrsInner { levels, first_keys: first_keys.to_vec() }
    }

    fn locate(&self, key: Key) -> usize {
        if self.first_keys.is_empty() || key <= self.first_keys[0] {
            return 0;
        }
        // Descend from the topmost (coarsest) level.
        let top = self.levels.len() - 1;
        let mut seg = 0usize; // segment index within the current level
        for depth in (0..=top).rev() {
            let level = &self.levels[depth];
            let s = level.models[seg];
            let below_keys: &[Key] =
                if depth == 0 { &self.first_keys } else { &self.levels[depth - 1].seg_keys };
            // Clamp the prediction into the segment's covered positions
            // (the answer lies there because the next segment's first key
            // exceeds `key`), then search a window of err + slack.
            let p =
                s.model.predict_clamped(key, below_keys.len()).clamp(s.start, s.start + s.len - 1);
            let pos = bounded_last_le(below_keys, key, p, s.err + 4);
            if depth == 0 {
                return pos;
            }
            seg = pos;
        }
        0
    }

    fn size_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| {
                l.seg_keys.len() * core::mem::size_of::<Key>()
                    + l.models.len() * core::mem::size_of::<LrsSeg>()
            })
            .sum::<usize>()
            + self.first_keys.len() * core::mem::size_of::<Key>()
    }

    fn avg_depth(&self) -> f64 {
        self.levels.len() as f64
    }

    fn name(&self) -> &'static str {
        "LRS"
    }
}

// ---------------------------------------------------------------------------
// ATS
// ---------------------------------------------------------------------------

/// Asymmetric tree structure (ALEX, §II-B3): internal nodes route purely by
/// model computation into a fanout array; leaves sit at different depths.
/// Dense regions of the key space get deeper subtrees, sparse regions
/// resolve in one hop — no comparison happens until a small terminal group.
pub struct AtsInner {
    root: AtsNode,
    n: usize,
    sum_depth: f64,
}

enum AtsNode {
    /// Model-routed internal node.
    Internal { model: LinearModel, children: Vec<AtsNode> },
    /// Terminal group: binary search among up to GROUP_CAP keys; `base` is
    /// the global index of the first key.
    Group { base: usize, keys: Vec<Key> },
}

impl AtsInner {
    const GROUP_CAP: usize = 8;
    const MAX_DEPTH: usize = 12;

    fn build_node(keys: &[Key], base: usize, depth: usize, sum_depth: &mut f64) -> AtsNode {
        if keys.len() <= Self::GROUP_CAP || depth >= Self::MAX_DEPTH {
            *sum_depth += (depth + 1) as f64 * keys.len() as f64;
            return AtsNode::Group { base, keys: keys.to_vec() };
        }
        // Fanout proportional to the population, as ALEX's fanout tree
        // would choose for a uniform cost target.
        let fanout = (keys.len() / 4).next_power_of_two().clamp(4, 1 << 16);
        let dense = LinearModel::fit_least_squares(keys);
        let model = dense.scaled(fanout as f64 / keys.len() as f64);

        let mut children = Vec::with_capacity(fanout);
        let mut start = 0usize;
        for b in 0..fanout {
            let mut end = start;
            while end < keys.len() && model.predict_clamped(keys[end], fanout) == b {
                end += 1;
            }
            if end == start {
                // Empty bucket: any key routed here is greater than every
                // key in earlier buckets and smaller than every key in
                // later ones, so the answer is the preceding key globally.
                children.push(AtsNode::Group {
                    base: (base + start).saturating_sub(1),
                    keys: Vec::new(),
                });
            } else if end - start == keys.len() {
                // Model failed to split (extreme skew): terminal group.
                *sum_depth += (depth + 2) as f64 * keys.len() as f64;
                children.push(AtsNode::Group { base, keys: keys.to_vec() });
            } else {
                children.push(Self::build_node(
                    &keys[start..end],
                    base + start,
                    depth + 1,
                    sum_depth,
                ));
            }
            start = end;
        }
        debug_assert_eq!(start, keys.len());
        AtsNode::Internal { model, children }
    }

    fn node_size(node: &AtsNode) -> usize {
        match node {
            AtsNode::Internal { children, .. } => {
                core::mem::size_of::<LinearModel>()
                    + children.len() * core::mem::size_of::<usize>()
                    + children.iter().map(Self::node_size).sum::<usize>()
            }
            AtsNode::Group { keys, .. } => {
                2 * core::mem::size_of::<usize>() + keys.len() * core::mem::size_of::<Key>()
            }
        }
    }
}

impl InnerStructure for AtsInner {
    fn build(first_keys: &[Key]) -> Self {
        let mut sum_depth = 0.0;
        let root = AtsInner::build_node(first_keys, 0, 0, &mut sum_depth);
        AtsInner { root, n: first_keys.len(), sum_depth }
    }

    fn locate(&self, key: Key) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                AtsNode::Internal { model, children } => {
                    let b = model.predict_clamped(key, children.len());
                    node = &children[b];
                }
                AtsNode::Group { base, keys } => {
                    if keys.is_empty() {
                        return *base;
                    }
                    let ub = keys.partition_point(|&k| k <= key);
                    if ub == 0 {
                        // Key precedes this group: answer is the previous
                        // leaf globally (see routing proof in module docs).
                        return base.saturating_sub(1);
                    }
                    return base + ub - 1;
                }
            }
        }
    }

    fn size_bytes(&self) -> usize {
        Self::node_size(&self.root)
    }

    fn avg_depth(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_depth / self.n as f64
        }
    }

    fn name(&self) -> &'static str {
        "ATS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn reference_locate(first_keys: &[Key], key: Key) -> usize {
        last_le(first_keys, key)
    }

    fn random_keys(n: usize, seed: u64, shift: u32) -> Vec<Key> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keys: Vec<Key> = (0..n).map(|_| rng.random::<u64>() >> shift).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    fn check_structure<S: InnerStructure>(first_keys: &[Key]) {
        let s = S::build(first_keys);
        let mut rng = StdRng::seed_from_u64(42);
        // Probe the exact keys, neighbours, and random keys.
        for &k in first_keys {
            assert_eq!(s.locate(k), reference_locate(first_keys, k), "{} exact {k}", s.name());
            assert_eq!(
                s.locate(k.saturating_add(1)),
                reference_locate(first_keys, k.saturating_add(1)),
                "{} succ {k}",
                s.name()
            );
        }
        for _ in 0..2_000 {
            let k: Key = rng.random();
            assert_eq!(s.locate(k), reference_locate(first_keys, k), "{} rand {k}", s.name());
        }
        assert!(s.avg_depth() >= 1.0);
    }

    #[test]
    fn btree_locate_correct() {
        check_structure::<BTreeInner>(&random_keys(5_000, 1, 1));
        check_structure::<BTreeInner>(&random_keys(10, 2, 1));
    }

    #[test]
    fn rmi_locate_correct() {
        check_structure::<RmiInner>(&random_keys(5_000, 3, 1));
        check_structure::<RmiInner>(&random_keys(17, 4, 1));
    }

    #[test]
    fn lrs_locate_correct() {
        check_structure::<LrsInner>(&random_keys(5_000, 5, 1));
        check_structure::<LrsInner>(&random_keys(3, 6, 1));
    }

    #[test]
    fn ats_locate_correct() {
        check_structure::<AtsInner>(&random_keys(5_000, 7, 1));
        check_structure::<AtsInner>(&random_keys(9, 8, 1));
    }

    #[test]
    fn skewed_keys_all_structures() {
        // FACE-like skew: clusters at both extremes of the key space.
        let mut keys = random_keys(2_000, 9, 16);
        keys.extend((0..100u64).map(|i| u64::MAX - 10_000 + i * 100));
        keys.sort_unstable();
        keys.dedup();
        check_structure::<BTreeInner>(&keys);
        check_structure::<RmiInner>(&keys);
        check_structure::<LrsInner>(&keys);
        check_structure::<AtsInner>(&keys);
    }

    #[test]
    fn single_leaf() {
        for kind in StructureKind::ALL {
            let s = kind.build_dyn(&[500]);
            assert_eq!(s.locate(0), 0, "{}", kind.name());
            assert_eq!(s.locate(500), 0);
            assert_eq!(s.locate(u64::MAX), 0);
        }
    }

    #[test]
    fn ats_is_asymmetric_on_skewed_data() {
        // A mix of a dense cluster and a sparse tail should produce
        // varying leaf depths (that is the point of ATS).
        let mut keys: Vec<Key> = (0..20_000u64).collect();
        keys.extend((1..200u64).map(|i| 1 << 40 | i << 20));
        keys.sort_unstable();
        let s = AtsInner::build(&keys);
        assert!(s.avg_depth() > 1.0);
        check_structure::<AtsInner>(&keys);
    }

    #[test]
    fn sizes_are_positive_and_sane() {
        let keys = random_keys(10_000, 11, 1);
        for kind in StructureKind::ALL {
            let s = kind.build_dyn(&keys);
            assert!(s.size_bytes() > 0, "{}", kind.name());
        }
    }

    #[test]
    fn btree_depth_grows_with_size() {
        let small = BTreeInner::build(&random_keys(100, 12, 1));
        let large = BTreeInner::build(&random_keys(100_000, 13, 1));
        assert!(large.avg_depth() > small.avg_depth());
    }
}
