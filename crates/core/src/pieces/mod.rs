//! The paper's four design dimensions as composable pieces (§IV).
//!
//! > "Note that, in theory, the four dimensions of the existing learned
//! > indexes are orthogonal, i.e., they can be combined to form brand new
//! > indexes." — §IV
//!
//! * [`structure`] — inner structures routing a key to a leaf: `BTREE`,
//!   `RMI`, `LRS`, `ATS` (Fig. 17 (c)).
//! * [`insertion`] — leaf containers implementing the `Inplace`, `Buffer`
//!   and `Gapped` insertion strategies (Fig. 18 (a)).
//! * [`retrain`] — retraining bookkeeping and policies (Fig. 18 (b)–(d)).
//! * [`assembled`] — [`assembled::PiecewiseIndex`], a full updatable
//!   learned index assembled from any combination of the above.

pub mod assembled;
pub mod insertion;
pub mod retrain;
pub mod structure;

pub use assembled::{PiecewiseConfig, PiecewiseIndex};
pub use insertion::{InsertOutcome, LeafKind};
pub use retrain::RetrainStats;
pub use structure::{AtsInner, BTreeInner, InnerStructure, LrsInner, RmiInner, StructureKind};
