//! # li-core
//!
//! Foundation crate for the `learned-index-pieces` workspace, a Rust
//! reproduction of *"Cutting Learned Index into Pieces: An In-depth Inquiry
//! into Updatable Learned Indexes"* (ICDE 2023).
//!
//! The paper deconstructs updatable learned indexes into four orthogonal
//! design dimensions. This crate provides exactly those pieces:
//!
//! * [`approx`] — the **approximation algorithms** that turn a sorted key
//!   array into piecewise linear models: least squares ([`approx::lsa`]),
//!   the streaming optimal PLA of PGM-Index ([`approx::optpla`]), the
//!   greedy feasible-space-window of FITing-tree ([`approx::fsw`]) and the
//!   gap-inserting model-based layout of ALEX ([`approx::lsa_gap`]).
//! * [`pieces::structure`] — the **inner index structures** that route a key
//!   to a leaf: B+Tree, two-layer RMI, linear recursive structure (PGM) and
//!   the asymmetric tree of ALEX.
//! * [`pieces::insertion`] — the **insertion strategies**: in-place with
//!   reserved headroom, off-site buffer, and gapped arrays.
//! * [`pieces::retrain`] — the **retraining policies** and their counters.
//!
//! On top of the pieces, [`pieces::assembled::PiecewiseIndex`] composes any
//! structure with any leaf kind, demonstrating the paper's claim that the
//! dimensions are orthogonal and can be recombined into brand-new indexes.
//!
//! Shared infrastructure lives in [`types`], [`traits`], [`search`],
//! [`model`], [`cdf`] and [`hist`].

pub mod approx;
pub mod cdf;
pub mod hist;
pub mod hot;
pub mod model;
pub mod pieces;
pub mod search;
pub mod shard;
pub mod traits;
pub mod tuner;
pub mod types;

/// Re-export of the observability crate so index crates reach it through
/// their existing `li-core` dependency (`li_core::telemetry::Recorder`).
pub use li_telemetry as telemetry;

pub use hot::HotCache;
pub use model::LinearModel;
pub use shard::{
    AdaptError, AdaptiveConfig, Admission, AdmissionGuard, BoxShard, KindSpec, Native, Saturated,
    ShardIndex, Sharded,
};
pub use traits::{
    BulkBuildIndex, ConcurrentIndex, DepthStats, Index, NativeWriter, OrderedIndex, TwoPhaseLookup,
    UpdatableIndex,
};
pub use tuner::{KindId, ShardObs, Tuner, TunerAction, TunerConfig};
pub use types::{Key, KeyValue, Value};
