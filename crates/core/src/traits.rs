//! Trait family implemented by every index in the workspace.
//!
//! The end-to-end harness (`li-viper` + `li-bench`) talks to indexes only
//! through these traits, which is what makes the paper's "same environment,
//! fair comparison" (§III) possible.

use crate::types::{Key, KeyValue, Value};
use li_telemetry::Recorder;

/// Read-side interface common to all indexes.
pub trait Index: Send + Sync {
    /// Human-readable name used in benchmark output (e.g. `"ALEX"`).
    fn name(&self) -> &'static str;

    /// Number of live keys.
    fn len(&self) -> usize;

    /// True when the index holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point lookup.
    fn get(&self, key: Key) -> Option<Value>;

    /// Bytes used by the index *structure* only: models, inner nodes,
    /// routing tables — excluding the sorted key/value arrays. This is the
    /// "Index size" column of the paper's Table III.
    fn index_size_bytes(&self) -> usize;

    /// Bytes used by the key/value-handle arrays the index owns (leaf data,
    /// buffers, gaps). Together with [`Index::index_size_bytes`] this forms
    /// the "Index+key size" column of Table III.
    fn data_size_bytes(&self) -> usize;

    /// Attaches a telemetry [`Recorder`]. The default implementation drops
    /// it, so instrumentation is strictly opt-in per index: uninstrumented
    /// indexes keep compiling and simply emit nothing. Wrappers
    /// (`Sharded`, `Native`, `AnyIndex`, `ViperStore`) forward the
    /// recorder to whatever they contain.
    fn set_recorder(&mut self, _recorder: Recorder) {}

    /// Serializes the index's *model parameters* — segment boundaries,
    /// slopes, routing tables — for a durability checkpoint, so recovery
    /// can rebuild without retraining from scratch. `None` (the default)
    /// means the index has no model worth saving and checkpointed
    /// recovery retrains from the recovered pairs instead; correctness
    /// never depends on this, only recovery speed.
    fn model_save(&self) -> Option<Vec<u8>> {
        None
    }

    /// Probes for a natively write-concurrent surface. `Some` means this
    /// index accepts inserts/removes through a shared reference (XIndex's
    /// fine-grained internal locking), so a router holding only a *read*
    /// lock on the cell may write through it. `None` (the default) routes
    /// writes through the router's exclusive lock. This lives on `Index`
    /// rather than a blanket impl so wrappers (`AnyIndex`) can forward it
    /// per variant without coherence conflicts.
    fn native_writer(&self) -> Option<&dyn NativeWriter> {
        None
    }
}

/// Shared-reference write surface exposed by indexes whose internal
/// synchronization already makes concurrent writers safe (XIndex in the
/// paper's lineup, Table I). Obtained via [`Index::native_writer`].
pub trait NativeWriter: Send + Sync {
    /// Insert/update through a shared reference.
    fn insert(&self, key: Key, value: Value) -> Option<Value>;
    /// Remove through a shared reference.
    fn remove(&self, key: Key) -> Option<Value>;
}

/// Indexes that support ordered range scans (every index in the paper except
/// the hash baseline).
pub trait OrderedIndex: Index {
    /// Appends all pairs with `lo <= key <= hi` to `out`, in key order.
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>);

    /// Convenience wrapper returning a fresh vector.
    fn range_vec(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
        let mut out = Vec::new();
        self.range(lo, hi, &mut out);
        out
    }
}

/// Indexes supporting single-threaded mutation.
pub trait UpdatableIndex: Index {
    /// Inserts or updates; returns the previous value if the key existed.
    fn insert(&mut self, key: Key, value: Value) -> Option<Value>;

    /// Removes a key; returns its value if present.
    fn remove(&mut self, key: Key) -> Option<Value>;

    /// Switches the index into (or out of) deferred-retrain mode: inserts
    /// that would trigger a structural retrain park the key in an overflow
    /// buffer and enqueue the leaf for background work instead of blocking.
    /// Returns `true` iff the index supports deferral; the default keeps
    /// every existing index compiling with foreground retraining.
    fn set_defer_retrains(&mut self, _on: bool) -> bool {
        false
    }

    /// Retrain-queue depth: structural work currently parked for
    /// background maintenance (0 for indexes without deferral).
    fn pending_retrains(&self) -> usize {
        0
    }

    /// Runs up to `budget` queued retrain units; returns how many ran.
    fn run_pending_retrains(&mut self, _budget: usize) -> usize {
        0
    }
}

/// Indexes supporting concurrent mutation through a shared reference
/// (in the paper only XIndex among the learned indexes; §III-C2).
pub trait ConcurrentIndex: Send + Sync {
    /// Point lookup through a shared reference.
    fn get(&self, key: Key) -> Option<Value>;
    /// Insert/update through a shared reference.
    fn insert(&self, key: Key, value: Value) -> Option<Value>;
    /// Remove through a shared reference.
    fn remove(&self, key: Key) -> Option<Value>;
    /// Number of live keys (may be approximate while writers are active).
    fn len(&self) -> usize;
    /// True when no keys are present.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shared-reference twin of [`UpdatableIndex::set_defer_retrains`];
    /// wrappers (e.g. `Sharded`) forward it under their write locks.
    fn set_defer_retrains(&self, _on: bool) -> bool {
        false
    }

    /// Shared-reference twin of [`UpdatableIndex::pending_retrains`].
    fn pending_retrains(&self) -> usize {
        0
    }

    /// Shared-reference twin of [`UpdatableIndex::run_pending_retrains`].
    fn run_pending_retrains(&self, _budget: usize) -> usize {
        0
    }

    /// Runs one round of online adaptation (shard split/merge, index-kind
    /// hot-swap) off the critical path; returns the number of structural
    /// actions committed. The default does nothing — only adaptive
    /// routers (`Sharded` with a tuner attached) override it, and the
    /// `MaintenanceWorker` calls it once per pass.
    fn run_adaptation(&self) -> usize {
        0
    }

    /// Stable routing hint: the shard this key would land in right now.
    /// Purely advisory — callers (e.g. a server's worker pool) use it to
    /// coalesce same-shard work; it must be cheap and must not lock.
    /// Unsharded indexes report one class (0).
    fn shard_hint(&self, _key: Key) -> usize {
        0
    }
}

/// Indexes constructible from a sorted array in one shot (bulk loading),
/// which is how every learned index in the paper is initialised and how
/// Viper recovers its DRAM index after a crash (Fig. 16).
pub trait BulkBuildIndex: Sized {
    /// Builds from strictly-ascending `(key, value)` pairs.
    fn build(data: &[KeyValue]) -> Self;
}

/// Structural statistics used by Table II (average depth) and Fig. 17.
pub trait DepthStats {
    /// Mean root-to-leaf depth over all leaves (Table II).
    fn avg_depth(&self) -> f64;
    /// Number of leaf nodes / segments produced by the approximation
    /// algorithm (Fig. 17 (b)).
    fn leaf_count(&self) -> usize;
}

/// Two-phase lookup used by Fig. 17 (d) to time the inner-structure phase
/// and the in-leaf search phase separately.
pub trait TwoPhaseLookup: Index {
    /// Phase 1: route `key` to a leaf identifier.
    fn locate_leaf(&self, key: Key) -> usize;
    /// Phase 2: search within leaf `leaf` for `key`.
    fn search_leaf(&self, leaf: usize, key: Key) -> Option<Value>;
}

/// Capability row for the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    pub name: &'static str,
    pub inner_node: &'static str,
    pub leaf_node: &'static str,
    /// Whether the approximation guarantees a maximum error.
    pub bounded_error: bool,
    pub approx_algorithm: &'static str,
    pub insertion: &'static str,
    pub retraining: &'static str,
    pub concurrent_writes: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy(Vec<KeyValue>);

    impl Index for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.0.binary_search_by_key(&key, |kv| kv.0).ok().map(|i| self.0[i].1)
        }
        fn index_size_bytes(&self) -> usize {
            0
        }
        fn data_size_bytes(&self) -> usize {
            self.0.len() * core::mem::size_of::<KeyValue>()
        }
    }

    impl OrderedIndex for Dummy {
        fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
            out.extend(self.0.iter().filter(|kv| kv.0 >= lo && kv.0 <= hi));
        }
    }

    #[test]
    fn default_is_empty() {
        let d = Dummy(vec![]);
        assert!(d.is_empty());
        let d = Dummy(vec![(1, 10)]);
        assert!(!d.is_empty());
        assert_eq!(d.get(1), Some(10));
        assert_eq!(d.get(2), None);
    }

    #[test]
    fn range_vec_collects() {
        let d = Dummy(vec![(1, 10), (5, 50), (9, 90)]);
        assert_eq!(d.range_vec(2, 9), vec![(5, 50), (9, 90)]);
        assert_eq!(d.range_vec(10, 20), vec![]);
    }
}
