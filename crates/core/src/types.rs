//! Fundamental key/value types shared by every index in the workspace.
//!
//! The paper evaluates indexes over 8-byte integer keys whose payloads live
//! in an NVM-resident record store; the index itself only maps a key to a
//! *value handle* (an offset into the store). Both are `u64` here.

/// An 8-byte key, matching the paper's evaluation setup (§III-A3).
pub type Key = u64;

/// A value handle: for end-to-end runs this is an offset into the Viper
/// record store; for in-memory microbenchmarks it is the payload itself.
pub type Value = u64;

/// A key/value-handle pair as stored in index leaf arrays.
pub type KeyValue = (Key, Value);

/// Errors produced by index construction or mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// Bulk build requires strictly ascending unique keys.
    UnsortedInput { at: usize },
    /// The structure cannot accept further inserts (read-only index).
    ReadOnly,
    /// An internal invariant was violated; carries a description.
    Corrupt(&'static str),
}

impl core::fmt::Display for IndexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IndexError::UnsortedInput { at } => {
                write!(f, "bulk-build input not strictly ascending at position {at}")
            }
            IndexError::ReadOnly => write!(f, "index is read-only"),
            IndexError::Corrupt(what) => write!(f, "index corrupt: {what}"),
        }
    }
}

impl std::error::Error for IndexError {}

/// Validates that `data` is strictly ascending by key, as required by all
/// bulk-build constructors in the workspace.
pub fn check_sorted(data: &[KeyValue]) -> Result<(), IndexError> {
    for (i, w) in data.windows(2).enumerate() {
        if w[0].0 >= w[1].0 {
            return Err(IndexError::UnsortedInput { at: i + 1 });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_ok() {
        assert!(check_sorted(&[(1, 0), (2, 0), (9, 0)]).is_ok());
        assert!(check_sorted(&[]).is_ok());
        assert!(check_sorted(&[(5, 0)]).is_ok());
    }

    #[test]
    fn duplicate_rejected() {
        assert_eq!(check_sorted(&[(1, 0), (1, 1)]), Err(IndexError::UnsortedInput { at: 1 }));
    }

    #[test]
    fn descending_rejected() {
        assert_eq!(check_sorted(&[(3, 0), (2, 0)]), Err(IndexError::UnsortedInput { at: 1 }));
    }

    #[test]
    fn error_display() {
        let e = IndexError::UnsortedInput { at: 7 };
        assert!(e.to_string().contains("position 7"));
        assert_eq!(IndexError::ReadOnly.to_string(), "index is read-only");
    }
}
