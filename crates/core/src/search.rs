//! In-leaf search routines.
//!
//! Learned indexes predict an approximate position and then correct it with
//! a local search (§II, Fig. 2). The paper's indexes use bounded binary
//! search within `prediction ± error` (RMI, RS, FITing-tree, PGM) or
//! exponential search outward from the prediction (ALEX). All variants are
//! provided here and unit-tested against each other.

use crate::types::{Key, KeyValue};

/// Returns the index of the first element `>= key` in the sorted slice
/// (classic lower bound). Returns `keys.len()` if all elements are smaller.
#[inline]
pub fn lower_bound(keys: &[Key], key: Key) -> usize {
    let mut lo = 0usize;
    let mut hi = keys.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if keys[mid] < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Lower bound over `(key, value)` pairs.
#[inline]
pub fn lower_bound_kv(data: &[KeyValue], key: Key) -> usize {
    let mut lo = 0usize;
    let mut hi = data.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if data[mid].0 < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Bounded binary search: looks for `key` within
/// `[predicted.saturating_sub(err), min(len, predicted + err + 1))` of the
/// sorted slice, the correction step every bounded-error learned index
/// performs (§II).
///
/// Returns the position of the first element `>= key` inside the window.
/// The caller must guarantee the window actually contains that position
/// (true whenever `err` is the approximation's max error).
#[inline]
pub fn bounded_lower_bound(keys: &[Key], key: Key, predicted: usize, err: usize) -> usize {
    let lo = predicted.saturating_sub(err);
    let hi = (predicted + err + 1).min(keys.len());
    let window = &keys[lo.min(hi)..hi];
    lo.min(hi) + lower_bound(window, key)
}

/// Bounded "last element <= key" search: like [`bounded_lower_bound`] but
/// returns the index of the last element `<= key` (0 if every element in
/// the window exceeds `key`). Avoids the `key + 1` overflow trick that
/// breaks at `u64::MAX`. The caller must guarantee the window brackets the
/// answer.
#[inline]
pub fn bounded_last_le(keys: &[Key], key: Key, predicted: usize, err: usize) -> usize {
    let lo = predicted.saturating_sub(err);
    let hi = (predicted + err + 1).min(keys.len());
    let lo = lo.min(hi);
    let window = &keys[lo..hi];
    let ub = window.partition_point(|&k| k <= key);
    (lo + ub).saturating_sub(1)
}

/// Exponential (galloping) search outward from `predicted`, used by ALEX
/// whose approximation has no max-error guarantee (§II-B3). Works on a
/// sorted slice; returns lower-bound position.
#[inline]
pub fn exponential_lower_bound(keys: &[Key], key: Key, predicted: usize) -> usize {
    let n = keys.len();
    if n == 0 {
        return 0;
    }
    let p = predicted.min(n - 1);
    if keys[p] == key {
        return p;
    }
    if keys[p] < key {
        // gallop right
        let mut step = 1usize;
        let mut lo = p;
        let mut hi = p;
        while hi < n && keys[hi] < key {
            lo = hi;
            hi = (hi + step).min(n);
            step <<= 1;
        }
        lo + lower_bound(&keys[lo..hi], key)
    } else {
        // gallop left
        let mut step = 1usize;
        let mut hi = p;
        let mut lo = p;
        while lo > 0 && keys[lo] >= key {
            hi = lo;
            lo = lo.saturating_sub(step);
            step <<= 1;
        }
        lo + lower_bound(&keys[lo..=hi.min(n - 1)], key)
    }
}

/// Interpolation search over a sorted slice (mentioned in §VI-A as one of
/// the in-leaf search options). Falls back to binary search when the key
/// range degenerates. Returns lower-bound position.
pub fn interpolation_lower_bound(keys: &[Key], key: Key) -> usize {
    let mut lo = 0usize;
    let mut hi = keys.len();
    // Limit interpolation probes to avoid pathological behaviour on skewed
    // data, then fall back to binary search on the remaining window.
    let mut probes = 0;
    while lo < hi && probes < 16 {
        let k_lo = keys[lo];
        let k_hi = keys[hi - 1];
        if key <= k_lo {
            // keys[lo] >= key, so lo is the lower bound.
            return lo;
        }
        if key > k_hi {
            return hi;
        }
        if k_hi == k_lo {
            break;
        }
        let span = (hi - lo - 1) as u128;
        let off = ((key - k_lo) as u128 * span / (k_hi - k_lo) as u128) as usize;
        let mid = lo + off;
        if keys[mid] < key {
            lo = mid + 1;
        } else {
            // keys[mid] >= key, so the answer is at most mid; mid < hi
            // always holds, guaranteeing progress.
            hi = mid;
        }
        probes += 1;
    }
    lo + lower_bound(&keys[lo..hi], key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<Key> {
        vec![2, 4, 8, 16, 23, 42, 99, 100, 105, 1000]
    }

    #[test]
    fn lower_bound_matches_std() {
        let ks = keys();
        for probe in 0..1100u64 {
            let expect = ks.partition_point(|&k| k < probe);
            assert_eq!(lower_bound(&ks, probe), expect, "probe {probe}");
        }
    }

    #[test]
    fn lower_bound_empty() {
        assert_eq!(lower_bound(&[], 5), 0);
    }

    #[test]
    fn bounded_matches_when_window_covers() {
        let ks = keys();
        for (true_pos, &k) in ks.iter().enumerate() {
            for pred in 0..ks.len() {
                let err = true_pos.abs_diff(pred);
                assert_eq!(
                    bounded_lower_bound(&ks, k, pred, err),
                    true_pos,
                    "key {k} pred {pred} err {err}"
                );
            }
        }
    }

    #[test]
    fn exponential_matches_std() {
        let ks = keys();
        for probe in 0..1100u64 {
            let expect = ks.partition_point(|&k| k < probe);
            for pred in 0..ks.len() {
                assert_eq!(
                    exponential_lower_bound(&ks, probe, pred),
                    expect,
                    "probe {probe} pred {pred}"
                );
            }
        }
    }

    #[test]
    fn exponential_empty() {
        assert_eq!(exponential_lower_bound(&[], 1, 0), 0);
    }

    #[test]
    fn interpolation_matches_std() {
        let ks = keys();
        for probe in 0..1100u64 {
            let expect = ks.partition_point(|&k| k < probe);
            assert_eq!(interpolation_lower_bound(&ks, probe), expect, "probe {probe}");
        }
    }

    #[test]
    fn interpolation_uniform_large() {
        let ks: Vec<Key> = (0..10_000).map(|i| i * 7 + 3).collect();
        for probe in (0..70_000).step_by(13) {
            let expect = ks.partition_point(|&k| k < probe);
            assert_eq!(interpolation_lower_bound(&ks, probe), expect);
        }
    }

    #[test]
    fn bounded_last_le_matches() {
        let ks = keys();
        for probe in 0..1100u64 {
            let expect = ks.partition_point(|&k| k <= probe).saturating_sub(1);
            // Full-window call is always bracketed.
            assert_eq!(bounded_last_le(&ks, probe, 5, ks.len()), expect, "probe {probe}");
        }
        // u64::MAX present and queried.
        let ks2 = vec![1u64, 5, u64::MAX];
        assert_eq!(bounded_last_le(&ks2, u64::MAX, 1, 3), 2);
        assert_eq!(bounded_last_le(&ks2, 0, 1, 3), 0);
    }

    #[test]
    fn lower_bound_kv_matches() {
        let data: Vec<KeyValue> = keys().into_iter().map(|k| (k, k * 2)).collect();
        for probe in 0..1100u64 {
            let expect = data.partition_point(|kv| kv.0 < probe);
            assert_eq!(lower_bound_kv(&data, probe), expect);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn all_searches_agree_with_partition_point(
            mut keys in proptest::collection::vec(0u64..10_000, 0..300),
            probe in 0u64..10_000,
            pred in 0usize..300,
        ) {
            keys.sort_unstable();
            keys.dedup();
            let expect = keys.partition_point(|&k| k < probe);
            prop_assert_eq!(lower_bound(&keys, probe), expect);
            prop_assert_eq!(interpolation_lower_bound(&keys, probe), expect);
            if !keys.is_empty() {
                prop_assert_eq!(exponential_lower_bound(&keys, probe, pred % keys.len()), expect);
                // Full-window bounded searches are always bracketed.
                prop_assert_eq!(bounded_lower_bound(&keys, probe, pred % keys.len(), keys.len()), expect);
                let le = keys.partition_point(|&k| k <= probe).saturating_sub(1);
                prop_assert_eq!(bounded_last_le(&keys, probe, pred % keys.len(), keys.len()), le);
            }
        }

        #[test]
        fn bounded_search_correct_within_true_error(
            mut keys in proptest::collection::vec(0u64..100_000, 2..400),
            idx in 0usize..400,
            err_extra in 0usize..8,
        ) {
            keys.sort_unstable();
            keys.dedup();
            let i = idx % keys.len();
            let probe = keys[i];
            // Any window that brackets the true position must find it.
            for pred in [i.saturating_sub(err_extra), (i + err_extra).min(keys.len() - 1)] {
                let err = i.abs_diff(pred);
                prop_assert_eq!(bounded_lower_bound(&keys, probe, pred, err), i);
            }
        }
    }
}
