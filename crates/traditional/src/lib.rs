//! # li-traditional — classical index baselines
//!
//! The paper compares learned indexes against six traditional indexes
//! (§III-A1). We implement four from scratch, covering the same structural
//! families; the remaining two are represented by the closest family
//! member (see DESIGN.md):
//!
//! | Paper baseline | Family | Here |
//! |---|---|---|
//! | STX B-Tree | comparison tree | [`BPlusTree`] |
//! | Skiplist (LevelDB) | probabilistic list | [`SkipList`] |
//! | CCEH | persistent extendible hash | [`Cceh`] / [`ShardedCceh`] |
//! | Wormhole | hash-accelerated ordered index | [`Wormhole`] |
//! | Bw-tree | delta-chain B-tree | [`BwTree`] |
//! | Masstree | trie of B+trees | [`Art`] (for fixed 8-byte keys a Masstree
//!   degenerates to one trie layer; ART is the closest faithful structure) |
//!
//! For the multi-threaded experiments every single-writer index here is
//! lifted to a [`li_core::ConcurrentIndex`] by range sharding
//! (`li_core::shard::Sharded`); only [`ShardedCceh`] carries its own
//! internal concurrency (per-directory-stripe locking).

#![forbid(unsafe_code)]

pub mod art;
pub mod bptree;
pub mod bwtree;
pub mod cceh;
pub mod skiplist;
pub mod wormhole;

pub use art::Art;
pub use bptree::BPlusTree;
pub use bwtree::BwTree;
pub use cceh::{Cceh, ShardedCceh};
pub use skiplist::SkipList;
pub use wormhole::Wormhole;
