//! Concurrency adapters: give any single-writer index a
//! [`ConcurrentIndex`] face for the multi-threaded experiments (Figs.
//! 12/14).

use li_core::traits::{BulkBuildIndex, ConcurrentIndex, Index, UpdatableIndex};
use li_core::{Key, KeyValue, Value};
use parking_lot::RwLock;

/// Coarse-grained wrapper: one reader-writer lock around the whole index.
/// Reads scale; writes serialise — the "global latch" baseline.
pub struct RwLocked<I> {
    inner: RwLock<I>,
}

impl<I> RwLocked<I> {
    pub fn new(index: I) -> Self {
        RwLocked { inner: RwLock::new(index) }
    }

    pub fn into_inner(self) -> I {
        self.inner.into_inner()
    }
}

impl<I: Index + UpdatableIndex> ConcurrentIndex for RwLocked<I> {
    fn get(&self, key: Key) -> Option<Value> {
        self.inner.read().get(key)
    }

    fn insert(&self, key: Key, value: Value) -> Option<Value> {
        self.inner.write().insert(key, value)
    }

    fn remove(&self, key: Key) -> Option<Value> {
        self.inner.write().remove(key)
    }

    fn len(&self) -> usize {
        self.inner.read().len()
    }
}

/// Range-sharded wrapper: the key space is cut into `2^bits` contiguous
/// shards (by key MSBs), each an independent index behind its own lock —
/// the standard way tree indexes gain write scalability without internal
/// latching. Preserves per-shard ordering, so approximate range scans
/// remain possible shard by shard.
pub struct Sharded<I> {
    shards: Vec<RwLock<I>>,
    bits: u32,
}

impl<I: Default> Sharded<I> {
    pub fn new(bits: u32) -> Self {
        assert!(bits <= 12, "too many shards");
        Sharded { shards: (0..1usize << bits).map(|_| RwLock::new(I::default())).collect(), bits }
    }
}

impl<I> Sharded<I> {
    #[inline]
    fn shard_of(&self, key: Key) -> usize {
        if self.bits == 0 {
            0
        } else {
            (key >> (64 - self.bits)) as usize
        }
    }
}

impl<I: Default + BulkBuildIndex + Index + UpdatableIndex> Sharded<I> {
    /// Bulk builds each shard from its slice of the sorted input.
    pub fn build_sharded(bits: u32, data: &[KeyValue]) -> Self {
        let sharded = Self::new(bits);
        let mut start = 0usize;
        for s in 0..sharded.shards.len() {
            let end = if s + 1 == sharded.shards.len() {
                data.len()
            } else {
                let bound = ((s + 1) as u64) << (64 - bits);
                start + data[start..].partition_point(|kv| kv.0 < bound)
            };
            *sharded.shards[s].write() = I::build(&data[start..end]);
            start = end;
        }
        sharded
    }
}

impl<I: Index + UpdatableIndex> ConcurrentIndex for Sharded<I> {
    fn get(&self, key: Key) -> Option<Value> {
        self.shards[self.shard_of(key)].read().get(key)
    }

    fn insert(&self, key: Key, value: Value) -> Option<Value> {
        self.shards[self.shard_of(key)].write().insert(key, value)
    }

    fn remove(&self, key: Key) -> Option<Value> {
        self.shards[self.shard_of(key)].write().remove(key)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bptree::BPlusTree;
    use crate::skiplist::SkipList;
    use std::sync::Arc;

    #[test]
    fn rwlocked_concurrent_reads_and_writes() {
        let idx = Arc::new(RwLocked::new(BPlusTree::new()));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let idx = Arc::clone(&idx);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    idx.insert(t * 100_000 + i, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 20_000);
        assert_eq!(idx.get(100_001), Some(1));
        assert_eq!(idx.remove(100_001), Some(1));
        assert_eq!(idx.get(100_001), None);
    }

    #[test]
    fn sharded_distributes() {
        let idx = Arc::new(Sharded::<SkipList>::new(4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let idx = Arc::clone(&idx);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    // Spread keys over the whole space.
                    let k = (t * 2_000 + i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    idx.insert(k, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 16_000);
    }

    #[test]
    fn sharded_bulk_build() {
        let data: Vec<KeyValue> = (0..10_000u64)
            .map(|i| (i << 50, i)) // spans many shards
            .collect();
        let idx = Sharded::<BPlusTree>::build_sharded(4, &data);
        assert_eq!(idx.len(), 10_000);
        for &(k, v) in data.iter().step_by(117) {
            assert_eq!(idx.get(k), Some(v));
        }
        assert_eq!(idx.get(123), None);
    }

    #[test]
    fn sharded_zero_bits() {
        let idx = Sharded::<BPlusTree>::new(0);
        idx.insert(5, 50);
        assert_eq!(idx.get(5), Some(50));
        assert_eq!(idx.len(), 1);
    }
}
