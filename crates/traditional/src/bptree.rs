//! A classic in-memory B+Tree (STX-B-Tree stand-in, §III-A1).
//!
//! Sorted keys in every node, values only in leaves, comparison-based
//! descent — the archetype the learned indexes are measured against.
//! Deletion is lazy (no rebalancing): keys are removed from leaves and
//! empty leaves are unlinked lazily, a common production trade-off (none
//! of the paper's workloads delete).

use li_core::traits::{BulkBuildIndex, DepthStats, Index, OrderedIndex, UpdatableIndex};
use li_core::{Key, KeyValue, Value};

const LEAF_CAP: usize = 64;
const INNER_CAP: usize = 32;

enum Node {
    Inner {
        /// `keys[i]` is the smallest key reachable under `children[i + 1]`;
        /// `children` has `keys.len() + 1` entries.
        keys: Vec<Key>,
        children: Vec<Node>,
    },
    Leaf {
        data: Vec<KeyValue>,
    },
}

impl Node {
    fn is_over(&self) -> bool {
        match self {
            Node::Inner { children, .. } => children.len() > INNER_CAP,
            Node::Leaf { data } => data.len() > LEAF_CAP,
        }
    }

    /// Splits an overfull node, returning the separator key and the new
    /// right sibling.
    fn split(&mut self) -> (Key, Node) {
        match self {
            Node::Leaf { data } => {
                let right = data.split_off(data.len() / 2);
                let sep = right[0].0;
                (sep, Node::Leaf { data: right })
            }
            Node::Inner { keys, children } => {
                let mid = children.len() / 2;
                let right_children = children.split_off(mid);
                let right_keys = keys.split_off(mid);
                // The separator between the halves moves up.
                let sep = keys.pop().expect("inner split needs a separator");
                (sep, Node::Inner { keys: right_keys, children: right_children })
            }
        }
    }
}

/// The B+Tree index.
pub struct BPlusTree {
    root: Node,
    len: usize,
    depth: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    pub fn new() -> Self {
        BPlusTree { root: Node::Leaf { data: Vec::new() }, len: 0, depth: 1 }
    }

    /// Child index to descend into for `key`.
    #[inline]
    fn child_of(keys: &[Key], key: Key) -> usize {
        keys.partition_point(|&k| k <= key)
    }

    fn insert_rec(node: &mut Node, key: Key, value: Value) -> Option<Value> {
        match node {
            Node::Leaf { data } => match data.binary_search_by_key(&key, |kv| kv.0) {
                Ok(i) => Some(std::mem::replace(&mut data[i].1, value)),
                Err(i) => {
                    data.insert(i, (key, value));
                    None
                }
            },
            Node::Inner { keys, children } => {
                let c = Self::child_of(keys, key);
                let old = Self::insert_rec(&mut children[c], key, value);
                if children[c].is_over() {
                    let (sep, right) = children[c].split();
                    keys.insert(c, sep);
                    children.insert(c + 1, right);
                }
                old
            }
        }
    }

    fn remove_rec(node: &mut Node, key: Key) -> Option<Value> {
        match node {
            Node::Leaf { data } => {
                data.binary_search_by_key(&key, |kv| kv.0).ok().map(|i| data.remove(i).1)
            }
            Node::Inner { keys, children } => {
                let c = Self::child_of(keys, key);
                Self::remove_rec(&mut children[c], key)
            }
        }
    }

    fn range_rec(node: &Node, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        match node {
            Node::Leaf { data } => {
                let start = data.partition_point(|kv| kv.0 < lo);
                for kv in &data[start..] {
                    if kv.0 > hi {
                        break;
                    }
                    out.push(*kv);
                }
            }
            Node::Inner { keys, children } => {
                let first = Self::child_of(keys, lo);
                let last = Self::child_of(keys, hi);
                for child in &children[first..=last] {
                    Self::range_rec(child, lo, hi, out);
                }
            }
        }
    }

    fn size_rec(node: &Node) -> usize {
        match node {
            Node::Leaf { data } => {
                core::mem::size_of::<Node>() + data.capacity() * core::mem::size_of::<KeyValue>()
            }
            Node::Inner { keys, children } => {
                core::mem::size_of::<Node>()
                    + keys.capacity() * core::mem::size_of::<Key>()
                    + children.iter().map(Self::size_rec).sum::<usize>()
            }
        }
    }

    fn leaf_count_rec(node: &Node) -> usize {
        match node {
            Node::Leaf { .. } => 1,
            Node::Inner { children, .. } => children.iter().map(Self::leaf_count_rec).sum(),
        }
    }

    /// Debug invariant check: key ordering and separator correctness.
    #[cfg(test)]
    fn check_invariants(&self) {
        fn rec(node: &Node, lo: Option<Key>, hi: Option<Key>) {
            match node {
                Node::Leaf { data } => {
                    for w in data.windows(2) {
                        assert!(w[0].0 < w[1].0, "leaf unsorted");
                    }
                    if let (Some(lo), Some(first)) = (lo, data.first()) {
                        assert!(first.0 >= lo, "leaf key below bound");
                    }
                    if let (Some(hi), Some(last)) = (hi, data.last()) {
                        assert!(last.0 < hi, "leaf key above bound");
                    }
                }
                Node::Inner { keys, children } => {
                    assert_eq!(children.len(), keys.len() + 1);
                    for w in keys.windows(2) {
                        assert!(w[0] < w[1], "inner unsorted");
                    }
                    for (i, child) in children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                        let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                        rec(child, clo, chi);
                    }
                }
            }
        }
        rec(&self.root, None, None);
    }
}

impl Index for BPlusTree {
    fn name(&self) -> &'static str {
        "BTree"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, key: Key) -> Option<Value> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Inner { keys, children } => {
                    node = &children[Self::child_of(keys, key)];
                }
                Node::Leaf { data } => {
                    return data.binary_search_by_key(&key, |kv| kv.0).ok().map(|i| data[i].1);
                }
            }
        }
    }

    fn index_size_bytes(&self) -> usize {
        // Everything except the leaf key/value payload itself.
        Self::size_rec(&self.root) - self.len * core::mem::size_of::<KeyValue>()
    }

    fn data_size_bytes(&self) -> usize {
        self.len * core::mem::size_of::<KeyValue>()
    }
}

impl UpdatableIndex for BPlusTree {
    fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        let old = Self::insert_rec(&mut self.root, key, value);
        if old.is_none() {
            self.len += 1;
        }
        if self.root.is_over() {
            let (sep, right) = self.root.split();
            let left = std::mem::replace(&mut self.root, Node::Leaf { data: Vec::new() });
            self.root = Node::Inner { keys: vec![sep], children: vec![left, right] };
            self.depth += 1;
        }
        old
    }

    fn remove(&mut self, key: Key) -> Option<Value> {
        let old = Self::remove_rec(&mut self.root, key);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }
}

impl OrderedIndex for BPlusTree {
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        if lo > hi {
            return;
        }
        Self::range_rec(&self.root, lo, hi, out);
    }
}

impl BulkBuildIndex for BPlusTree {
    fn build(data: &[KeyValue]) -> Self {
        // Build bottom-up: pack leaves, then stack inner levels.
        if data.is_empty() {
            return BPlusTree::new();
        }
        let fill = LEAF_CAP * 3 / 4; // leave insert headroom
        let mut nodes: Vec<(Key, Node)> =
            data.chunks(fill).map(|c| (c[0].0, Node::Leaf { data: c.to_vec() })).collect();
        let mut depth = 1;
        while nodes.len() > 1 {
            let inner_fill = INNER_CAP * 3 / 4;
            nodes = nodes
                .chunks_mut(inner_fill)
                .map(|group| {
                    let first_key = group[0].0;
                    let keys: Vec<Key> = group[1..].iter().map(|(k, _)| *k).collect();
                    let children: Vec<Node> = group
                        .iter_mut()
                        .map(|(_, n)| std::mem::replace(n, Node::Leaf { data: Vec::new() }))
                        .collect();
                    (first_key, Node::Inner { keys, children })
                })
                .collect();
            depth += 1;
        }
        BPlusTree { root: nodes.pop().expect("nonempty").1, len: data.len(), depth }
    }
}

impl DepthStats for BPlusTree {
    fn avg_depth(&self) -> f64 {
        self.depth as f64
    }

    fn leaf_count(&self) -> usize {
        Self::leaf_count_rec(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_many() {
        let mut t = BPlusTree::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = BTreeMap::new();
        for i in 0..20_000u64 {
            let k = rng.random::<u64>() >> 16;
            assert_eq!(t.insert(k, i), model.insert(k, i));
        }
        t.check_invariants();
        assert_eq!(t.len(), model.len());
        for (&k, &v) in model.iter().step_by(37) {
            assert_eq!(t.get(k), Some(v));
        }
        assert_eq!(t.get(u64::MAX), model.get(&u64::MAX).copied());
    }

    #[test]
    fn bulk_build_matches() {
        let data: Vec<KeyValue> = (0..50_000u64).map(|i| (i * 3, i)).collect();
        let t = BPlusTree::build(&data);
        t.check_invariants();
        assert_eq!(t.len(), data.len());
        for &(k, v) in data.iter().step_by(101) {
            assert_eq!(t.get(k), Some(v));
            assert_eq!(t.get(k + 1), None);
        }
        assert!(t.avg_depth() >= 3.0);
        assert!(t.leaf_count() > 500);
    }

    #[test]
    fn bulk_then_insert() {
        let data: Vec<KeyValue> = (0..10_000u64).map(|i| (i * 10, i)).collect();
        let mut t = BPlusTree::build(&data);
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..10_000u64 {
            let k = rng.random_range(0..100_000u64);
            t.insert(k, i + 1_000_000);
        }
        t.check_invariants();
        for i in (0..10_000u64).step_by(97) {
            assert!(t.get(i * 10).is_some());
        }
    }

    #[test]
    fn remove_works() {
        let data: Vec<KeyValue> = (0..1_000u64).map(|i| (i, i)).collect();
        let mut t = BPlusTree::build(&data);
        for i in 0..1_000u64 {
            assert_eq!(t.remove(i), Some(i));
            assert_eq!(t.remove(i), None);
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(5), None);
    }

    #[test]
    fn range_matches_model() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = BPlusTree::new();
        let mut model = BTreeMap::new();
        for i in 0..10_000u64 {
            let k = rng.random_range(0..100_000u64);
            t.insert(k, i);
            model.insert(k, i);
        }
        for _ in 0..100 {
            let lo = rng.random_range(0..100_000u64);
            let hi = lo + rng.random_range(0..10_000u64);
            let got = t.range_vec(lo, hi);
            let expect: Vec<KeyValue> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn empty_tree() {
        let t = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert_eq!(t.range_vec(0, u64::MAX), vec![]);
        let t2 = BPlusTree::build(&[]);
        assert!(t2.is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        #[test]
        fn matches_btreemap(ops in proptest::collection::vec((0u64..2_000, 0u64..100, proptest::bool::ANY), 0..600)) {
            let mut t = BPlusTree::new();
            let mut model = BTreeMap::new();
            for &(k, v, ins) in &ops {
                if ins {
                    proptest::prop_assert_eq!(t.insert(k, v), model.insert(k, v));
                } else {
                    proptest::prop_assert_eq!(t.remove(k), model.remove(&k));
                }
            }
            t.check_invariants();
            proptest::prop_assert_eq!(t.len(), model.len());
            let got = t.range_vec(0, u64::MAX);
            let expect: Vec<KeyValue> = model.iter().map(|(&k, &v)| (k, v)).collect();
            proptest::prop_assert_eq!(got, expect);
        }
    }
}
