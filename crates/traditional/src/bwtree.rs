//! A Bw-tree (Levandoski et al., ICDE'13), one of the paper's traditional
//! baselines (§III-A1).
//!
//! The Bw-tree's signature machinery is implemented faithfully — a
//! **mapping table** of logical page ids, **delta records** prepended to
//! pages instead of in-place updates, **consolidation** when chains grow,
//! and **splits posted as deltas** (split delta on the child, index-entry
//! delta on the parent). The original is latch-free via CAS on the mapping
//! table; this workspace benchmarks it single-writer (the paper's Table I
//! marks none of the compared tree indexes as write-concurrent in their
//! harness), so the mapping-table updates are plain stores. Concurrent
//! reads remain safe through the usual `&self` sharing.

use li_core::search::lower_bound_kv;
use li_core::traits::{BulkBuildIndex, DepthStats, Index, OrderedIndex, UpdatableIndex};
use li_core::{Key, KeyValue, Value};

type PageId = u32;

/// Delta chain length that triggers consolidation.
const CONSOLIDATE_AT: usize = 8;
/// Consolidated leaf size that triggers a split.
const LEAF_SPLIT_AT: usize = 128;
/// Consolidated inner size that triggers a split.
const INNER_SPLIT_AT: usize = 64;

#[derive(Debug, Clone)]
enum Delta {
    Insert(Key, Value),
    Delete(Key),
    /// This page was split: keys `>= sep` now live at `right`.
    Split {
        sep: Key,
        right: PageId,
    },
    /// (Inner pages) a new child `pid` covers keys `>= sep`.
    IndexEntry {
        sep: Key,
        pid: PageId,
    },
}

#[derive(Debug, Clone)]
enum Base {
    Leaf(Vec<KeyValue>),
    /// Sorted separators; `children[i]` covers keys in
    /// `[seps[i-1], seps[i])` with `seps[-1] = -inf`.
    Inner {
        seps: Vec<Key>,
        children: Vec<PageId>,
    },
}

#[derive(Debug, Clone)]
struct Page {
    deltas: Vec<Delta>, // newest first
    base: Base,
}

/// The Bw-tree index.
pub struct BwTree {
    /// The mapping table: logical page id -> page.
    mapping: Vec<Page>,
    root: PageId,
    len: usize,
    consolidations: u64,
}

impl Default for BwTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BwTree {
    pub fn new() -> Self {
        BwTree {
            mapping: vec![Page { deltas: Vec::new(), base: Base::Leaf(Vec::new()) }],
            root: 0,
            len: 0,
            consolidations: 0,
        }
    }

    /// Total consolidations performed (diagnostics).
    pub fn consolidation_count(&self) -> u64 {
        self.consolidations
    }

    fn alloc(&mut self, page: Page) -> PageId {
        self.mapping.push(page);
        (self.mapping.len() - 1) as PageId
    }

    /// Resolves the leaf page id for `key`, collecting the root-to-leaf
    /// path of inner page ids (for split posting) and the "next fence" —
    /// the smallest separator strictly greater than `key` seen along the
    /// descent, which is the first key of the next leaf (used by scans).
    fn descend(&self, key: Key, path: &mut Vec<PageId>, fence: &mut Option<Key>) -> PageId {
        let mut pid = self.root;
        loop {
            let page = &self.mapping[pid as usize];
            // Follow a split delta first (only transiently present).
            if let Some(right) = page.deltas.iter().find_map(|d| match *d {
                Delta::Split { sep, right } if key >= sep => Some(right),
                _ => None,
            }) {
                pid = right;
                continue;
            }
            match &page.base {
                Base::Leaf(_) => return pid,
                Base::Inner { seps, children } => {
                    // Route by the largest separator <= key among the base
                    // and any index-entry deltas; track the smallest
                    // separator > key as the next fence.
                    let mut best: Option<(Key, PageId)> = None;
                    for d in &page.deltas {
                        if let Delta::IndexEntry { sep, pid: child } = *d {
                            if key >= sep {
                                if best.is_none_or(|(s, _)| sep > s) {
                                    best = Some((sep, child));
                                }
                            } else {
                                *fence = Some(fence.map_or(sep, |f: Key| f.min(sep)));
                            }
                        }
                    }
                    let bi = seps.partition_point(|&s| s <= key);
                    if bi < seps.len() {
                        *fence = Some(fence.map_or(seps[bi], |f: Key| f.min(seps[bi])));
                    }
                    let base_sep = if bi == 0 { None } else { Some(seps[bi - 1]) };
                    let next = match (best, base_sep) {
                        (Some((s, c)), Some(bs)) if s >= bs => c,
                        (Some(_), Some(_)) => children[bi],
                        (Some((_, c)), None) => c,
                        (None, _) => children[bi],
                    };
                    path.push(pid);
                    pid = next;
                }
            }
        }
    }

    fn find_leaf(&self, key: Key, path: &mut Vec<PageId>) -> PageId {
        let mut fence = None;
        self.descend(key, path, &mut fence)
    }

    /// Folds a page's delta chain into a fresh base.
    fn consolidate(&mut self, pid: PageId) {
        self.consolidations += 1;
        let page = &self.mapping[pid as usize];
        match &page.base {
            Base::Leaf(base) => {
                // Apply deltas oldest-first so newer ones win.
                let mut map: Vec<KeyValue> = base.clone();
                let mut split: Option<Key> = None;
                for d in page.deltas.iter().rev() {
                    match *d {
                        Delta::Insert(k, v) => match map.binary_search_by_key(&k, |kv| kv.0) {
                            Ok(i) => map[i].1 = v,
                            Err(i) => map.insert(i, (k, v)),
                        },
                        Delta::Delete(k) => {
                            if let Ok(i) = map.binary_search_by_key(&k, |kv| kv.0) {
                                map.remove(i);
                            }
                        }
                        Delta::Split { sep, .. } => {
                            split = Some(split.map_or(sep, |s: Key| s.min(sep)));
                        }
                        Delta::IndexEntry { .. } => unreachable!("index entry on a leaf"),
                    }
                }
                if let Some(sep) = split {
                    map.retain(|kv| kv.0 < sep);
                }
                self.mapping[pid as usize] = Page { deltas: Vec::new(), base: Base::Leaf(map) };
            }
            Base::Inner { seps, children } => {
                let mut seps = seps.clone();
                let mut children = children.clone();
                let mut split: Option<Key> = None;
                for d in page.deltas.iter().rev().cloned().collect::<Vec<_>>() {
                    match d {
                        Delta::IndexEntry { sep, pid: child } => {
                            let i = seps.partition_point(|&s| s <= sep);
                            seps.insert(i, sep);
                            children.insert(i + 1, child);
                        }
                        Delta::Split { sep, .. } => {
                            split = Some(split.map_or(sep, |s: Key| s.min(sep)));
                        }
                        _ => unreachable!("data delta on an inner page"),
                    }
                }
                if let Some(sep) = split {
                    let cut = seps.partition_point(|&s| s < sep);
                    seps.truncate(cut);
                    children.truncate(cut + 1);
                }
                self.mapping[pid as usize] =
                    Page { deltas: Vec::new(), base: Base::Inner { seps, children } };
            }
        }
    }

    /// Consolidates, then splits the page if oversized, posting the split
    /// to the parent (or growing a new root).
    fn maybe_restructure(&mut self, pid: PageId, path: &[PageId]) {
        if self.mapping[pid as usize].deltas.len() < CONSOLIDATE_AT {
            return;
        }
        self.consolidate(pid);
        let (sep, right_base) = match &self.mapping[pid as usize].base {
            Base::Leaf(data) if data.len() > LEAF_SPLIT_AT => {
                let mid = data.len() / 2;
                (data[mid].0, Base::Leaf(data[mid..].to_vec()))
            }
            Base::Inner { seps, children } if children.len() > INNER_SPLIT_AT => {
                let mid = seps.len() / 2;
                let sep = seps[mid];
                let right = Base::Inner {
                    seps: seps[mid + 1..].to_vec(),
                    children: children[mid + 1..].to_vec(),
                };
                (sep, right)
            }
            _ => return,
        };
        let right = self.alloc(Page { deltas: Vec::new(), base: right_base });
        self.mapping[pid as usize].deltas.insert(0, Delta::Split { sep, right });
        // Make the split visible above: post an index entry to the parent,
        // or grow a new root when the root itself split.
        match path.last().copied() {
            Some(parent) if parent != pid => {
                self.mapping[parent as usize]
                    .deltas
                    .insert(0, Delta::IndexEntry { sep, pid: right });
                // Eagerly consolidate the just-split child so the split
                // delta's key filtering is materialised.
                self.consolidate(pid);
                if self.mapping[parent as usize].deltas.len() >= CONSOLIDATE_AT {
                    let grand = &path[..path.len() - 1];
                    self.maybe_restructure(parent, grand);
                }
            }
            _ => {
                self.consolidate(pid);
                let new_root = self.alloc(Page {
                    deltas: Vec::new(),
                    base: Base::Inner { seps: vec![sep], children: vec![pid, right] },
                });
                self.root = new_root;
            }
        }
    }

    /// Point lookup through the delta chain.
    fn lookup(&self, key: Key) -> Option<Value> {
        let mut path = Vec::new();
        let pid = self.find_leaf(key, &mut path);
        let page = &self.mapping[pid as usize];
        for d in &page.deltas {
            match *d {
                Delta::Insert(k, v) if k == key => return Some(v),
                Delta::Delete(k) if k == key => return None,
                _ => {}
            }
        }
        match &page.base {
            Base::Leaf(data) => data.binary_search_by_key(&key, |kv| kv.0).ok().map(|i| data[i].1),
            Base::Inner { .. } => unreachable!("find_leaf returned an inner page"),
        }
    }

    /// Materialises the live pairs of a leaf page (chain + base), already
    /// filtered by any split delta.
    fn leaf_pairs(&self, pid: PageId) -> Vec<KeyValue> {
        let page = &self.mapping[pid as usize];
        let (base, deltas) = match &page.base {
            Base::Leaf(b) => (b, &page.deltas),
            Base::Inner { .. } => unreachable!(),
        };
        let mut map: Vec<KeyValue> = base.clone();
        let mut split: Option<Key> = None;
        for d in deltas.iter().rev() {
            match *d {
                Delta::Insert(k, v) => match map.binary_search_by_key(&k, |kv| kv.0) {
                    Ok(i) => map[i].1 = v,
                    Err(i) => map.insert(i, (k, v)),
                },
                Delta::Delete(k) => {
                    if let Ok(i) = map.binary_search_by_key(&k, |kv| kv.0) {
                        map.remove(i);
                    }
                }
                Delta::Split { sep, .. } => split = Some(split.map_or(sep, |s: Key| s.min(sep))),
                Delta::IndexEntry { .. } => unreachable!(),
            }
        }
        if let Some(sep) = split {
            map.retain(|kv| kv.0 < sep);
        }
        map
    }
}

impl Index for BwTree {
    fn name(&self) -> &'static str {
        "BwTree"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.lookup(key)
    }

    fn index_size_bytes(&self) -> usize {
        self.mapping
            .iter()
            .map(|p| {
                let base = match &p.base {
                    Base::Leaf(d) => d.capacity() * core::mem::size_of::<KeyValue>(),
                    Base::Inner { seps, children } => seps.capacity() * 8 + children.capacity() * 4,
                };
                base + p.deltas.capacity() * core::mem::size_of::<Delta>()
            })
            .sum()
    }

    fn data_size_bytes(&self) -> usize {
        0 // pairs live inside the pages counted above
    }
}

impl UpdatableIndex for BwTree {
    fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        let old = self.lookup(key);
        let mut path = Vec::new();
        let pid = self.find_leaf(key, &mut path);
        self.mapping[pid as usize].deltas.insert(0, Delta::Insert(key, value));
        if old.is_none() {
            self.len += 1;
        }
        self.maybe_restructure(pid, &path);
        old
    }

    fn remove(&mut self, key: Key) -> Option<Value> {
        let old = self.lookup(key)?;
        let mut path = Vec::new();
        let pid = self.find_leaf(key, &mut path);
        self.mapping[pid as usize].deltas.insert(0, Delta::Delete(key));
        self.len -= 1;
        self.maybe_restructure(pid, &path);
        Some(old)
    }
}

impl OrderedIndex for BwTree {
    fn range(&self, lo: Key, hi: Key, out: &mut Vec<KeyValue>) {
        if lo > hi {
            return;
        }
        // Hop leaves left to right using the descent's next-fence: the
        // smallest separator above the cursor is exactly where the next
        // leaf begins. O(depth) per leaf.
        let mut cursor = lo;
        loop {
            let mut path = Vec::new();
            let mut fence = None;
            let pid = self.descend(cursor, &mut path, &mut fence);
            let pairs = self.leaf_pairs(pid);
            let start = lower_bound_kv(&pairs, cursor);
            for kv in &pairs[start..] {
                if kv.0 > hi {
                    return;
                }
                out.push(*kv);
            }
            match fence {
                Some(f) if f <= hi => cursor = f,
                _ => return,
            }
        }
    }
}

impl BulkBuildIndex for BwTree {
    fn build(data: &[KeyValue]) -> Self {
        let mut t = BwTree::new();
        if data.is_empty() {
            return t;
        }
        // Pack leaves, then build one inner level at a time.
        let fill = LEAF_SPLIT_AT * 3 / 4;
        let mut level: Vec<(Key, PageId)> = data
            .chunks(fill)
            .map(|c| {
                let pid = t.alloc(Page { deltas: Vec::new(), base: Base::Leaf(c.to_vec()) });
                (c[0].0, pid)
            })
            .collect();
        // The very first allocated page replaces the initial empty root.
        while level.len() > 1 {
            let inner_fill = INNER_SPLIT_AT * 3 / 4;
            level = level
                .chunks(inner_fill)
                .map(|group| {
                    let seps: Vec<Key> = group[1..].iter().map(|&(k, _)| k).collect();
                    let children: Vec<PageId> = group.iter().map(|&(_, p)| p).collect();
                    let pid =
                        t.alloc(Page { deltas: Vec::new(), base: Base::Inner { seps, children } });
                    (group[0].0, pid)
                })
                .collect();
        }
        t.root = level[0].1;
        t.len = data.len();
        t
    }
}

impl DepthStats for BwTree {
    fn avg_depth(&self) -> f64 {
        // Depth of the leftmost path (the tree is balanced by splits).
        let mut depth = 1.0;
        let mut pid = self.root;
        loop {
            match &self.mapping[pid as usize].base {
                Base::Leaf(_) => return depth,
                Base::Inner { children, .. } => {
                    pid = children[0];
                    depth += 1.0;
                }
            }
        }
    }

    fn leaf_count(&self) -> usize {
        self.mapping.iter().filter(|p| matches!(p.base, Base::Leaf(_))).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_many() {
        let mut t = BwTree::new();
        let mut model = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..30_000u64 {
            let k = rng.random::<u64>() >> 8;
            assert_eq!(t.insert(k, i), model.insert(k, i), "insert {k}");
        }
        assert_eq!(t.len(), model.len());
        assert!(t.consolidation_count() > 0);
        for (&k, &v) in model.iter().step_by(97) {
            assert_eq!(t.get(k), Some(v), "get {k}");
        }
        for _ in 0..10_000 {
            let k = rng.random::<u64>() >> 8;
            assert_eq!(t.get(k), model.get(&k).copied());
        }
    }

    #[test]
    fn sequential_inserts_split_root_repeatedly() {
        let mut t = BwTree::new();
        for k in 0..20_000u64 {
            t.insert(k, k * 2);
        }
        assert_eq!(t.len(), 20_000);
        assert!(t.avg_depth() >= 2.0);
        for k in (0..20_000u64).step_by(331) {
            assert_eq!(t.get(k), Some(k * 2));
        }
    }

    #[test]
    fn bulk_build_and_get() {
        let data: Vec<KeyValue> = (0..50_000u64).map(|i| (i * 5 + 1, i)).collect();
        let t = BwTree::build(&data);
        assert_eq!(t.len(), data.len());
        assert!(t.leaf_count() > 300);
        for &(k, v) in data.iter().step_by(173) {
            assert_eq!(t.get(k), Some(v));
            assert_eq!(t.get(k + 1), None);
        }
    }

    #[test]
    fn bulk_then_mutate() {
        let data: Vec<KeyValue> = (0..10_000u64).map(|i| (i * 4, i)).collect();
        let mut t = BwTree::build(&data);
        let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..20_000u64 {
            let k = rng.random_range(0..50_000u64);
            if rng.random_bool(0.7) {
                assert_eq!(t.insert(k, i), model.insert(k, i));
            } else {
                assert_eq!(t.remove(k), model.remove(&k));
            }
        }
        assert_eq!(t.len(), model.len());
        for (&k, &v) in model.iter().step_by(131) {
            assert_eq!(t.get(k), Some(v));
        }
    }

    #[test]
    fn delete_via_delta() {
        let mut t = BwTree::new();
        t.insert(5, 50);
        t.insert(7, 70);
        assert_eq!(t.remove(5), Some(50));
        assert_eq!(t.get(5), None);
        assert_eq!(t.remove(5), None);
        assert_eq!(t.get(7), Some(70));
        // Reinsert after delete.
        assert_eq!(t.insert(5, 51), None);
        assert_eq!(t.get(5), Some(51));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn range_scan() {
        let data: Vec<KeyValue> = (0..5_000u64).map(|i| (i * 3, i)).collect();
        let mut t = BwTree::build(&data);
        let mut model: BTreeMap<Key, Value> = data.iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..2_000u64 {
            let k = rng.random_range(0..15_000u64);
            t.insert(k, 100_000 + i);
            model.insert(k, 100_000 + i);
        }
        for _ in 0..20 {
            let lo = rng.random_range(0..15_000u64);
            let hi = lo + rng.random_range(0..1_500u64);
            let got = t.range_vec(lo, hi);
            let expect: Vec<KeyValue> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, expect, "range {lo}..={hi}");
        }
    }

    #[test]
    fn empty() {
        let mut t = BwTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert_eq!(t.remove(1), None);
        assert!(t.range_vec(0, u64::MAX).is_empty());
        let t2 = BwTree::build(&[]);
        assert!(t2.is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        #[test]
        fn matches_btreemap(ops in proptest::collection::vec((0u64..2_000, 0u64..100, proptest::bool::ANY), 0..500)) {
            let mut t = BwTree::new();
            let mut model = BTreeMap::new();
            for &(k, v, ins) in &ops {
                if ins {
                    proptest::prop_assert_eq!(t.insert(k, v), model.insert(k, v));
                } else {
                    proptest::prop_assert_eq!(t.remove(k), model.remove(&k));
                }
            }
            proptest::prop_assert_eq!(t.len(), model.len());
            let got = t.range_vec(0, u64::MAX);
            let expect: Vec<KeyValue> = model.iter().map(|(&k, &v)| (k, v)).collect();
            proptest::prop_assert_eq!(got, expect);
        }
    }
}
